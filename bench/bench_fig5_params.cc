// Reproduces Fig 5: sensitivity of CamE to (a) the number of attention
// heads m, (b) the exchanging factor theta, and (c) the temperature
// interval lambda, on both datasets. Each setting retrains CamE from
// scratch and reports test MRR.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"

namespace came {
namespace {

double RunCamE(const bench::BenchEnv& env, const eval::Evaluator& evaluator,
               int epochs, const core::CamEConfig& came) {
  auto zoo = bench::DefaultZoo();
  zoo.came = came;
  zoo.came.fusion_dim = bench::DefaultZoo().came.fusion_dim;
  zoo.came.reshape_h = bench::DefaultZoo().came.reshape_h;
  zoo.came.conv_filters = bench::DefaultZoo().came.conv_filters;
  bench::TrainedModel r =
      bench::TrainAndEval("CamE", env, evaluator, epochs, zoo);
  return r.test_metrics.Mrr();
}

void Sweep(const char* dataset_name, const bench::BenchEnv& env, int epochs) {
  eval::Evaluator evaluator(env.bkg.dataset);
  core::CamEConfig base = bench::DefaultZoo().came;

  std::printf("\n[%s]\n", dataset_name);
  {
    TableWriter t({"heads m", "MRR"});
    for (int m : {1, 2, 3}) {
      core::CamEConfig cfg = base;
      cfg.num_heads = m;
      t.AddRow({std::to_string(m),
                TableWriter::Num(RunCamE(env, evaluator, epochs, cfg))});
      std::printf("  (a) m=%d done\n", m);
      std::fflush(stdout);
    }
    std::printf("Fig 5(a) — number of heads (paper best: 2 on DRKG-MM, 3 on "
                "OMAHA-MM):\n%s",
                t.ToAscii().c_str());
  }
  {
    TableWriter t({"theta", "MRR"});
    for (float theta : {-2.0f, -0.5f, 1.0f}) {
      core::CamEConfig cfg = base;
      cfg.exchange_theta = theta;
      t.AddRow({TableWriter::Num(theta),
                TableWriter::Num(RunCamE(env, evaluator, epochs, cfg))});
      std::printf("  (b) theta=%.1f done\n", theta);
      std::fflush(stdout);
    }
    std::printf("Fig 5(b) — exchanging factor (paper best: -0.5 / -2):\n%s",
                t.ToAscii().c_str());
  }
  {
    TableWriter t({"lambda", "MRR"});
    for (float lambda : {1.0f, 5.0f, 20.0f}) {
      core::CamEConfig cfg = base;
      cfg.interval = lambda;
      cfg.num_heads = 2;
      t.AddRow({TableWriter::Num(lambda, 0),
                TableWriter::Num(RunCamE(env, evaluator, epochs, cfg))});
      std::printf("  (c) lambda=%.0f done\n", lambda);
      std::fflush(stdout);
    }
    std::printf("Fig 5(c) — temperature interval at m=2 (paper best: 5):\n%s",
                t.ToAscii().c_str());
  }
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.05, 6);
  {
    bench::BenchEnv drkg = bench::MakeDrkgEnv(args.scale);
    bench::PrintBenchHeader("Fig 5: parameter evaluation", drkg, args);
    Sweep("DRKG-MM-Synth", drkg, args.epochs);
  }
  {
    bench::BenchEnv omaha = bench::MakeOmahaEnv(args.scale * 1.5);
    Sweep("OMAHA-MM-Synth", omaha, args.epochs);
  }
  return 0;
}
