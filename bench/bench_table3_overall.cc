// Reproduces Table III: link prediction results for all nine unimodal and
// four multimodal baselines plus CamE, on both synthetic datasets, under
// the filtered ranking protocol (MRR / MR / Hits@1/3/10, head and tail
// direction averaged).
//
// Absolute numbers differ from the paper (synthetic data, CPU-scale
// hyperparameters); the reproduced *shape* is the ordering: CamE first on
// MRR/Hits, conv-decoder baselines strongest among the rest, TransE-based
// multimodal baselines weak.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"

namespace came {
namespace {

// Optional 3rd CLI arg: comma-separated model subset; 4th: "drkg" or
// "omaha" to run a single dataset (used for the full-budget headline
// addendum).
std::vector<std::string> SelectedModels(int argc, char** argv) {
  if (argc <= 3) return baselines::AllModelNames();
  std::vector<std::string> out;
  std::stringstream ss(argv[3]);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

void RunDataset(const char* title, const bench::BenchEnv& env,
                const bench::BenchArgs& args,
                const std::vector<std::string>& models) {
  bench::PrintBenchHeader(title, env, args);
  eval::Evaluator evaluator(env.bkg.dataset);
  const auto zoo = bench::DefaultZoo();

  TableWriter table(
      {"Model", "MRR", "MR", "Hits@1", "Hits@3", "Hits@10", "train[s]"});
  for (const std::string& name : models) {
    if (name == "IKRL" && models.size() > 1) {
      table.AddRow({"--- multimodal ---", "", "", "", "", "", ""});
    }
    bench::TrainedModel result =
        bench::TrainAndEval(name, env, evaluator, args.epochs, zoo);
    const eval::Metrics& m = result.test_metrics;
    table.AddRow({name, TableWriter::Num(m.Mrr()), TableWriter::Num(m.Mr(), 0),
                  TableWriter::Num(m.Hits1()), TableWriter::Num(m.Hits3()),
                  TableWriter::Num(m.Hits10()),
                  TableWriter::Num(result.train_seconds, 0)});
    std::printf("  %-10s %s\n", name.c_str(), m.ToString().c_str());
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToAscii().c_str());
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.15, 20);
  const auto models = SelectedModels(argc, argv);
  const bool drkg_only = argc > 4 && std::strcmp(argv[4], "drkg") == 0;
  const bool omaha_only = argc > 4 && std::strcmp(argv[4], "omaha") == 0;
  if (!omaha_only) {
    bench::BenchEnv drkg = bench::MakeDrkgEnv(args.scale);
    RunDataset("Table III (DRKG-MM-Synth)", drkg, args, models);
  }
  if (!drkg_only) {
    bench::BenchEnv omaha = bench::MakeOmahaEnv(args.scale * 1.3);
    RunDataset("Table III (OMAHA-MM-Synth)", omaha, args, models);
  }
  std::printf(
      "paper reference (DRKG-MM): CamE MRR=50.4 H@1=40.2 H@10=67.7; best "
      "baselines MKGformer MRR=45.4, DualE 45.7, ConvE 44.1; weakest "
      "multimodal TransAE MRR=6.8.\n");
  return 0;
}
