// Reproduces Fig 7: the case study. CamE is trained on DRKG-MM-Synth;
// for drug-drug-interaction test queries we print the top-3 predicted
// tail drugs with their names, drug families, molecular scaffolds, and
// whether their name affix matches the head's family — the cross-modal
// regularity ("-cillin" names <-> beta-lactam scaffolds) the paper
// highlights.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/textgen.h"

namespace came {
namespace {

std::vector<int64_t> TopK(const float* scores, int64_t n, int64_t k,
                          int64_t skip) {
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  std::partial_sort(ids.begin(), ids.begin() + k + 1, ids.end(),
                    [scores](int64_t a, int64_t b) {
                      return scores[a] > scores[b];
                    });
  std::vector<int64_t> out;
  for (int64_t id : ids) {
    if (id == skip) continue;
    out.push_back(id);
    if (static_cast<int64_t>(out.size()) == k) break;
  }
  return out;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.12, 15);
  bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  bench::PrintBenchHeader("Fig 7: case study (drug-drug interaction)", env,
                          args);
  const kg::Dataset& ds = env.bkg.dataset;

  eval::Evaluator evaluator(ds);
  bench::TrainedModel trained = bench::TrainAndEval(
      "CamE", env, evaluator, args.epochs, bench::DefaultZoo());
  std::printf("CamE test metrics: %s\n\n",
              trained.test_metrics.ToString().c_str());

  const int64_t ddi = ds.vocab.RelationId("ddi_CC");
  int shown = 0;
  ag::NoGradGuard guard;
  trained.model->SetTraining(false);
  for (const kg::Triple& t : ds.test) {
    if (t.rel != ddi || shown >= 4) continue;
    ++shown;
    const auto head_family =
        static_cast<datagen::DrugFamily>(env.bkg.cluster[t.head]);
    std::printf("query: (%s [%s], Drug-drug_Interaction, ?)\n",
                ds.vocab.EntityName(t.head).c_str(),
                datagen::DrugFamilyName(head_family));
    std::printf("  ground-truth tail: %s\n",
                ds.vocab.EntityName(t.tail).c_str());

    const tensor::Tensor scores =
        trained.model->ScoreAllTails({t.head}, {t.rel}).value();
    const auto top = TopK(scores.data(), ds.num_entities(), 3, t.head);
    for (size_t rank = 0; rank < top.size(); ++rank) {
      const int64_t e = top[rank];
      const bool is_compound =
          ds.vocab.entity_type(e) == kg::EntityType::kCompound;
      const char* family =
          is_compound ? datagen::DrugFamilyName(static_cast<datagen::DrugFamily>(
                            env.bkg.cluster[e]))
                      : kg::EntityTypeName(ds.vocab.entity_type(e));
      const char* affix_match =
          is_compound && env.bkg.cluster[e] == env.bkg.cluster[t.head]
              ? "  <-- shares family affix & scaffold with head"
              : "";
      std::printf("  top-%zu: %-18s family=%-14s score=%.2f%s\n", rank + 1,
                  ds.vocab.EntityName(e).c_str(), family,
                  scores.data()[e], affix_match);
      if (is_compound) {
        const auto& mol = env.bkg.molecules[static_cast<size_t>(e)];
        std::printf("          molecule: %lld atoms, %lld bonds, "
                    "%s scaffold; text: \"%s\"\n",
                    static_cast<long long>(mol.num_atoms()),
                    static_cast<long long>(mol.num_bonds()), family,
                    env.bkg.texts[static_cast<size_t>(e)]
                        .description.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: top-ranked tails share the head's pharmacological "
      "family, visible simultaneously in the name affix (e.g. \"-cillin\") "
      "and the molecular scaffold.\n");
  return 0;
}
