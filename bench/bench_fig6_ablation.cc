// Reproduces Fig 6: the ablation study. Each variant disables one CamE
// component (or one input modality) and retrains from scratch:
//   w/o EX   — no exchanging fusion
//   w/o TCA  — triple co-attention replaced by identity wiring
//   w/o MMF  — fusion module replaced by plain Hadamard multiplication
//   w/o RIC  — no entity-relation interaction (plain [h ; r] concat)
//   w/o M&R  — both MMF and RIC off (simple multimodal stacking)
//   w/o TD   — text modality removed
//   w/o MS   — molecular modality removed
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"

namespace came {
namespace {

struct Variant {
  const char* name;
  std::function<void(core::CamEConfig*)> apply;
};

std::vector<Variant> Variants(bool has_molecules) {
  std::vector<Variant> v = {
      {"CamE (full)", [](core::CamEConfig*) {}},
      {"w/o EX", [](core::CamEConfig* c) { c->use_exchange = false; }},
      {"w/o TCA", [](core::CamEConfig* c) { c->use_tca = false; }},
      {"w/o MMF", [](core::CamEConfig* c) { c->use_mmf = false; }},
      {"w/o RIC", [](core::CamEConfig* c) { c->use_ric = false; }},
      {"w/o M and R",
       [](core::CamEConfig* c) {
         c->use_mmf = false;
         c->use_ric = false;
       }},
      {"w/o TD", [](core::CamEConfig* c) { c->use_text = false; }},
  };
  if (has_molecules) {
    v.push_back(
        {"w/o MS", [](core::CamEConfig* c) { c->use_molecule = false; }});
  }
  return v;
}

void RunAblation(const char* dataset_name, const bench::BenchEnv& env,
                 int epochs) {
  eval::Evaluator evaluator(env.bkg.dataset);
  TableWriter t({"Variant", "MRR", "Hits@1", "Hits@10"});
  for (const Variant& variant : Variants(env.bkg.has_molecules)) {
    auto zoo = bench::DefaultZoo();
    variant.apply(&zoo.came);
    bench::TrainedModel r =
        bench::TrainAndEval("CamE", env, evaluator, epochs, zoo);
    t.AddRow({variant.name, TableWriter::Num(r.test_metrics.Mrr()),
              TableWriter::Num(r.test_metrics.Hits1()),
              TableWriter::Num(r.test_metrics.Hits10())});
    std::printf("  %-12s %s\n", variant.name,
                r.test_metrics.ToString().c_str());
    std::fflush(stdout);
  }
  std::printf("\nFig 6 (%s):\n%s", dataset_name, t.ToAscii().c_str());
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.08, 10);
  {
    bench::BenchEnv drkg = bench::MakeDrkgEnv(args.scale);
    bench::PrintBenchHeader("Fig 6: ablation study", drkg, args);
    RunAblation("DRKG-MM-Synth", drkg, args.epochs);
  }
  {
    bench::BenchEnv omaha = bench::MakeOmahaEnv(args.scale * 1.5);
    RunAblation("OMAHA-MM-Synth", omaha, args.epochs);
  }
  std::printf(
      "\npaper shape: every ablation hurts; w/o M and R hurts most; on "
      "DRKG-MM the molecule modality (w/o MS) matters more than text "
      "(w/o TD).\n");
  return 0;
}
