// Reproduces Fig 9: training and testing time per epoch as the KG grows
// (25% / 50% / 75% / 100% of the base scale), for CamE and the module
// ablations the paper compares (w/o MMF, w/o TCA, w/o M&R, w/o TD,
// w/o MS). The expected shape: near-linear growth in KG size, training
// cost dominated by the TCA operator (w/o TCA and w/o M&R cheapest),
// testing time roughly variant-independent.
// Alongside the ASCII tables, writes BENCH_fig9_scalability.json: one
// record per (fraction, variant) with train/test seconds, so the
// scalability trajectory is machine-readable across commits.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"

namespace came {
namespace {

struct Variant {
  const char* name;
  std::function<void(core::CamEConfig*)> apply;
};

struct Cell {
  double fraction;
  int64_t triples;
  std::string variant;
  double train_seconds;
  double test_seconds;
};

void WriteFig9Json(const std::string& path, const std::vector<Cell>& cells) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("fig9_scalability");
  w.Key("rows");
  w.BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject();
    w.Key("kg_fraction");
    w.Double(c.fraction);
    w.Key("train_triples");
    w.Int(c.triples);
    w.Key("variant");
    w.String(c.variant);
    w.Key("train_seconds");
    w.Double(c.train_seconds);
    w.Key("test_seconds");
    w.Double(c.test_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  if (w.WriteFile(path)) std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.12, 1);

  const std::vector<Variant> variants = {
      {"CamE", [](core::CamEConfig*) {}},
      {"w/o MMF", [](core::CamEConfig* c) { c->use_mmf = false; }},
      {"w/o TCA", [](core::CamEConfig* c) { c->use_tca = false; }},
      {"w/o M and R",
       [](core::CamEConfig* c) {
         c->use_mmf = false;
         c->use_ric = false;
       }},
      {"w/o TD", [](core::CamEConfig* c) { c->use_text = false; }},
      {"w/o MS", [](core::CamEConfig* c) { c->use_molecule = false; }},
  };

  TableWriter train_table(
      {"KG size", "triples", "CamE", "w/o MMF", "w/o TCA", "w/o M&R",
       "w/o TD", "w/o MS"});
  TableWriter test_table(
      {"KG size", "triples", "CamE", "w/o MMF", "w/o TCA", "w/o M&R",
       "w/o TD", "w/o MS"});

  std::vector<Cell> cells;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    bench::BenchEnv env = bench::MakeDrkgEnv(args.scale * fraction);
    if (fraction == 0.25) {
      bench::PrintBenchHeader("Fig 9: scalability (per-epoch time vs KG size)",
                              env, args);
    }
    std::vector<std::string> train_row = {
        TableWriter::Num(100 * fraction, 0) + "%",
        std::to_string(env.bkg.dataset.train.size())};
    std::vector<std::string> test_row = train_row;
    for (const Variant& variant : variants) {
      auto zoo = bench::DefaultZoo();
      variant.apply(&zoo.came);
      auto model = baselines::CreateModel("CamE", env.Context(), zoo);
      train::TrainConfig cfg =
          bench::TrainConfigFor("CamE", *model, args.epochs);
      train::Trainer trainer(model.get(), env.bkg.dataset, cfg);
      Stopwatch sw;
      trainer.RunEpoch();
      const double train_s = sw.ElapsedSeconds();

      eval::Evaluator evaluator(env.bkg.dataset);
      sw.Reset();
      evaluator.Evaluate(model.get(), env.bkg.dataset.test);
      const double test_s = sw.ElapsedSeconds();

      train_row.push_back(TableWriter::Num(train_s, 2));
      test_row.push_back(TableWriter::Num(test_s, 2));
      cells.push_back({fraction,
                       static_cast<int64_t>(env.bkg.dataset.train.size()),
                       variant.name, train_s, test_s});
      std::printf("  %3.0f%% %-12s train=%.2fs test=%.2fs\n", 100 * fraction,
                  variant.name, train_s, test_s);
      std::fflush(stdout);
    }
    train_table.AddRow(train_row);
    test_table.AddRow(test_row);
  }

  std::printf("\nFig 9 — training seconds per epoch:\n%s",
              train_table.ToAscii().c_str());
  std::printf("\nFig 9 — testing seconds (full test set):\n%s",
              test_table.ToAscii().c_str());
  WriteFig9Json("BENCH_fig9_scalability.json", cells);
  return 0;
}
