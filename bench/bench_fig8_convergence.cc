// Reproduces Fig 8: test MRR against wall-clock training time, (a) CamE
// against representative baselines and (b) CamE against its ablation
// variants. MRR is sampled on a fixed random subset of test triples,
// mirroring the paper's 10k-subset protocol, and evaluation time is
// excluded from the x axis.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"
#include "train/convergence.h"

namespace came {
namespace {

void PrintCurve(const std::string& label,
                const std::vector<train::ConvergencePoint>& curve) {
  std::printf("%-14s :", label.c_str());
  for (const auto& p : curve) {
    std::printf(" (%.0fs, %.1f)", p.seconds, p.mrr);
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::vector<train::ConvergencePoint> Run(
    const std::string& name, const bench::BenchEnv& env,
    const eval::Evaluator& evaluator, int epochs,
    const baselines::ZooOptions& zoo, int64_t eval_sample) {
  auto model = baselines::CreateModel(name, env.Context(), zoo);
  train::TrainConfig cfg = bench::TrainConfigFor(name, *model, epochs);
  return train::TrainWithConvergence(model.get(), env.bkg.dataset, cfg,
                                     evaluator, env.bkg.dataset.test,
                                     eval_sample,
                                     /*eval_every=*/(cfg.epochs + 9) / 10);
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.1, 10);
  bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  bench::PrintBenchHeader("Fig 8: convergence (test MRR vs training time)",
                          env, args);
  eval::Evaluator evaluator(env.bkg.dataset);
  const int64_t eval_sample = 400;  // paper: 10k of the full test set

  std::printf("\nFig 8(a) — baselines, (seconds, MRR%%) per checkpoint:\n");
  for (const char* name :
       {"DistMult", "ConvE", "a-RotatE", "MKGformer", "CamE"}) {
    PrintCurve(name, Run(name, env, evaluator, args.epochs,
                         bench::DefaultZoo(), eval_sample));
  }

  std::printf("\nFig 8(b) — ablations:\n");
  {
    PrintCurve("CamE", Run("CamE", env, evaluator, args.epochs,
                           bench::DefaultZoo(), eval_sample));
    auto zoo = bench::DefaultZoo();
    zoo.came.use_tca = false;
    PrintCurve("w/o TCA",
               Run("CamE", env, evaluator, args.epochs, zoo, eval_sample));
    zoo = bench::DefaultZoo();
    zoo.came.use_mmf = false;
    zoo.came.use_ric = false;
    PrintCurve("w/o M and R",
               Run("CamE", env, evaluator, args.epochs, zoo, eval_sample));
  }
  std::printf(
      "\npaper shape: shallow models converge earliest but plateau low; "
      "CamE starts slower (multimodal pipeline) yet reaches the best MRR; "
      "w/o TCA converges faster but to a clearly lower plateau.\n");
  return 0;
}
