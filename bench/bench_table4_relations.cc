// Reproduces Table IV (per-relation-type MRR / Hits@1 / Hits@10 for ConvE,
// a-RotatE, PairRE, DualE and CamE) and Table V (triple counts per
// relation type) on DRKG-MM-Synth. Models are trained on the whole KG and
// evaluated on test slices grouped by (head type, tail type).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"

namespace came {
namespace {

std::string GroupName(const kg::Vocab& vocab, const kg::Triple& t) {
  auto short_name = [](kg::EntityType type) -> std::string {
    switch (type) {
      case kg::EntityType::kGene:
        return "Gene";
      case kg::EntityType::kCompound:
        return "Compound";
      case kg::EntityType::kDisease:
        return "Disease";
      case kg::EntityType::kSideEffect:
        return "Side-Effect";
      default:
        return kg::EntityTypeName(type);
    }
  };
  return short_name(vocab.entity_type(t.head)) + "-" +
         short_name(vocab.entity_type(t.tail));
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.1, 12);
  bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  bench::PrintBenchHeader("Table IV/V: per-relation-type results", env, args);
  const kg::Dataset& ds = env.bkg.dataset;

  // Table V: triple counts per relation type over the whole KG.
  std::map<std::string, int64_t> counts;
  for (const kg::Triple& t : ds.AllTriples()) {
    ++counts[GroupName(ds.vocab, t)];
  }
  TableWriter table5({"Relations", "Number of Triples"});
  for (const auto& [group, n] : counts) {
    table5.AddRow({group, std::to_string(n)});
  }
  std::printf("Table V:\n%s\n", table5.ToAscii().c_str());

  // Group the test triples.
  std::map<std::string, std::vector<kg::Triple>> test_groups;
  for (const kg::Triple& t : ds.test) {
    test_groups[GroupName(ds.vocab, t)].push_back(t);
  }

  eval::Evaluator evaluator(ds);
  const auto zoo = bench::DefaultZoo();
  const std::vector<std::string> models = {"ConvE", "a-RotatE", "PairRE",
                                           "DualE", "CamE"};

  std::vector<std::string> header = {"Relations"};
  for (const auto& m : models) {
    header.push_back(m + ":MRR");
    header.push_back(m + ":H1");
    header.push_back(m + ":H10");
  }
  TableWriter table4(header);
  std::map<std::string, std::vector<std::string>> rows;
  for (const auto& [group, _] : test_groups) {
    rows[group] = {group};
  }

  for (const std::string& name : models) {
    bench::TrainedModel result =
        bench::TrainAndEval(name, env, evaluator, args.epochs, zoo);
    std::printf("  %-10s overall %s\n", name.c_str(),
                result.test_metrics.ToString().c_str());
    std::fflush(stdout);
    for (const auto& [group, triples] : test_groups) {
      const eval::Metrics m =
          evaluator.Evaluate(result.model.get(), triples);
      rows[group].push_back(TableWriter::Num(m.Mrr()));
      rows[group].push_back(TableWriter::Num(m.Hits1()));
      rows[group].push_back(TableWriter::Num(m.Hits10()));
    }
  }
  for (auto& [_, row] : rows) table4.AddRow(row);
  std::printf("\nTable IV:\n%s", table4.ToAscii().c_str());
  std::printf(
      "\npaper shape: CamE leads most relation types, with the largest "
      "margins on compound-related relations (Compound-Compound paper MRR "
      "68.3 vs ConvE 59.0); Gene-Gene is the exception (DualE best).\n");
  return 0;
}
