// Beyond-RAM scale proof: streams a synthetic BKG straight to TSV
// (never materialising the triple vector), then trains and filtered-
// evaluates a DistMult ScaleTrainer whose entity tables live in
// mmap-backed shard slabs under a tight residency budget — all while the
// process stays inside a fixed RSS budget that the full in-RAM tables
// alone would blow through.
//
// The bench runs a small calibration point first and the headline point
// second (default 1.2M entities), so the JSON carries triples/sec vs
// entity count. Exit status is non-zero if peak RSS exceeded the budget,
// which is what lets CI enforce the memory envelope rather than trust
// the README.
//
// Writes BENCH_sharded_scale.json (override with --json_out=PATH).
//
// Run:  ./bench_sharded_scale [--entities=N] [--triples=N]
//         [--rss_budget_mb=N] [--rows_per_shard=N] [--max_resident=N]
//         [--dim=N] [--eval_queries=N] [--work_dir=PATH] [--json_out=PATH]
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "datagen/stream_bkg.h"
#include "kg/filter_index.h"
#include "train/scale_trainer.h"

namespace came {
namespace {

struct Args {
  int64_t entities = 1'200'000;
  int64_t triples = 1'000'000;
  int64_t rss_budget_mb = 512;
  int64_t rows_per_shard = 65536;
  int64_t max_resident = 4;
  int64_t dim = 32;
  int64_t eval_queries = 50;
  std::string work_dir = "/tmp/came_bench_sharded";
  std::string json_out = "BENCH_sharded_scale.json";
};

int64_t PeakRssMb() {
  struct rusage usage = {};
  CAME_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  return usage.ru_maxrss / 1024;  // Linux reports KiB
}

datagen::BkgConfig ConfigFor(int64_t entities, int64_t triples) {
  datagen::BkgConfig config = datagen::BkgConfig::DrkgMmSynth(1.0);
  config.seed = 7;
  config.num_genes = entities * 4 / 10;
  config.num_compounds = entities * 3 / 10;
  config.num_diseases = entities * 2 / 10;
  config.num_side_effects =
      entities - config.num_genes - config.num_compounds - config.num_diseases;
  config.num_symptoms = 0;
  config.num_triples = triples;
  config.molecules = false;  // structural scale only
  return config;
}

struct PointResult {
  int64_t entities = 0;
  int64_t train_triples = 0;
  double datagen_seconds = 0;
  double train_seconds = 0;
  double triples_per_sec = 0;
  double eval_seconds = 0;
  double mrr = 0;
  double hits10 = 0;
  int64_t evictions = 0;
  int64_t map_misses = 0;
  int64_t resident_shards = 0;
};

PointResult RunPoint(const Args& args, int64_t entities, int64_t triples,
                     const std::string& tag) {
  const std::string dir = args.work_dir + "/" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // 1. Streamed dataset generation (bounded memory at any graph size).
  const datagen::BkgConfig config = ConfigFor(entities, triples);
  datagen::StreamBkgOptions gen_opts;
  gen_opts.out_dir = dir + "/data";
  gen_opts.write_entities = false;
  Stopwatch gen_watch;
  Result<datagen::StreamBkgSummary> generated =
      datagen::StreamGenerateBkg(config, gen_opts);
  CAME_CHECK(generated.ok()) << generated.status().ToString();
  const datagen::StreamBkgSummary& summary = generated.value();

  PointResult point;
  point.entities = summary.num_entities;
  point.train_triples = summary.train_triples;
  point.datagen_seconds = gen_watch.ElapsedSeconds();

  // 2. Train through sharded mmap-backed stores.
  train::ScaleTrainConfig tc;
  tc.dim = args.dim;
  tc.negatives = 1;
  tc.batch_size = 1024;
  tc.seed = 11;
  tc.store_dir = dir + "/stores";
  tc.rows_per_shard = args.rows_per_shard;
  tc.max_resident_shards = args.max_resident;
  tc.eval_panel_rows = 8192;
  tc.eval_query_batch = 64;
  Result<train::ScaleTrainer> made = train::ScaleTrainer::Create(
      summary.num_entities, summary.num_relations, tc);
  CAME_CHECK(made.ok()) << made.status().ToString();
  train::ScaleTrainer trainer = std::move(made).value();

  train::TsvTripleSource train_source(gen_opts.out_dir + "/train.tsv",
                                      summary.num_entities,
                                      summary.num_relations);
  Stopwatch train_watch;
  Result<double> loss = trainer.TrainEpoch(&train_source);
  CAME_CHECK(loss.ok()) << loss.status().ToString();
  point.train_seconds = train_watch.ElapsedSeconds();
  point.triples_per_sec =
      static_cast<double>(summary.train_triples) / point.train_seconds;

  // 3. Filtered evaluation over every entity, panel-swept per shard.
  kg::FilterIndex filter(summary.num_entities, summary.num_relations);
  std::vector<kg::Triple> eval_queries;
  {
    std::vector<kg::Triple> buffer;
    buffer.reserve(static_cast<size_t>(summary.train_triples));
    for (const char* split : {"train.tsv", "valid.tsv"}) {
      train::TsvTripleSource src(gen_opts.out_dir + "/" + split,
                                 summary.num_entities, summary.num_relations);
      CAME_CHECK(src.Reset().ok());
      kg::Triple t;
      for (;;) {
        Result<bool> got = src.Next(&t);
        CAME_CHECK(got.ok()) << got.status().ToString();
        if (!got.value()) break;
        buffer.push_back(t);
        if (std::strcmp(split, "valid.tsv") == 0 &&
            static_cast<int64_t>(eval_queries.size()) < args.eval_queries) {
          eval_queries.push_back(t);
        }
      }
      filter.AddTriples(buffer);
      buffer.clear();
    }
  }
  CAME_CHECK(!eval_queries.empty()) << "validation split came out empty";

  train::VectorTripleSource query_source(eval_queries);
  Stopwatch eval_watch;
  Result<eval::Metrics> metrics =
      trainer.EvaluateFiltered(&query_source, filter);
  CAME_CHECK(metrics.ok()) << metrics.status().ToString();
  point.eval_seconds = eval_watch.ElapsedSeconds();
  point.mrr = metrics.value().Mrr();
  point.hits10 = metrics.value().Hits10();

  const tensor::ShardStore::Stats stats = trainer.entity_store().GetStats();
  point.evictions = stats.evictions;
  point.map_misses = stats.map_misses;
  point.resident_shards = stats.resident_shards;

  std::printf(
      "[%s] entities=%lld train_triples=%lld datagen=%.1fs "
      "train=%.1fs (%.0f triples/s) eval=%.1fs mrr=%.4f evictions=%lld\n",
      tag.c_str(), static_cast<long long>(point.entities),
      static_cast<long long>(point.train_triples), point.datagen_seconds,
      point.train_seconds, point.triples_per_sec, point.eval_seconds,
      point.mrr, static_cast<long long>(point.evictions));

  std::filesystem::remove_all(dir);
  return point;
}

void WritePoint(JsonWriter* w, const PointResult& p) {
  w->BeginObject();
  w->Key("entities");
  w->Int(p.entities);
  w->Key("train_triples");
  w->Int(p.train_triples);
  w->Key("datagen_seconds");
  w->Double(p.datagen_seconds);
  w->Key("train_seconds");
  w->Double(p.train_seconds);
  w->Key("triples_per_sec");
  w->Double(p.triples_per_sec);
  w->Key("eval_seconds");
  w->Double(p.eval_seconds);
  w->Key("mrr");
  w->Double(p.mrr);
  w->Key("hits_at_10");
  w->Double(p.hits10);
  w->Key("shard_evictions");
  w->Int(p.evictions);
  w->Key("shard_map_misses");
  w->Int(p.map_misses);
  w->Key("resident_shards");
  w->Int(p.resident_shards);
  w->EndObject();
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&](const char* name, int64_t* out) {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      Result<int64_t> v = flags::ParseInt(arg.substr(prefix.size()));
      CAME_CHECK(v.ok()) << "bad flag " << arg;
      *out = v.value();
      return true;
    };
    if (int_flag("entities", &args.entities)) continue;
    if (int_flag("triples", &args.triples)) continue;
    if (int_flag("rss_budget_mb", &args.rss_budget_mb)) continue;
    if (int_flag("rows_per_shard", &args.rows_per_shard)) continue;
    if (int_flag("max_resident", &args.max_resident)) continue;
    if (int_flag("dim", &args.dim)) continue;
    if (int_flag("eval_queries", &args.eval_queries)) continue;
    if (arg.rfind("--work_dir=", 0) == 0) {
      args.work_dir = arg.substr(std::strlen("--work_dir="));
      continue;
    }
    if (arg.rfind("--json_out=", 0) == 0) {
      args.json_out = arg.substr(std::strlen("--json_out="));
      continue;
    }
    CAME_CHECK(false) << "unknown flag " << arg;
  }

  // Calibration point at 1/10 scale, then the headline point.
  const PointResult small =
      RunPoint(args, args.entities / 10, args.triples / 10, "calibration");
  const PointResult big =
      RunPoint(args, args.entities, args.triples, "headline");

  const int64_t rss_mb = PeakRssMb();
  const bool within_budget = rss_mb <= args.rss_budget_mb;
  // What the three entity-family tables would cost fully resident: the
  // number the sharded path is beating.
  const double in_ram_mb = 3.0 * static_cast<double>(big.entities) *
                           static_cast<double>(args.dim) * 4.0 / (1024 * 1024);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("sharded_scale");
  w.Key("dim");
  w.Int(args.dim);
  w.Key("rows_per_shard");
  w.Int(args.rows_per_shard);
  w.Key("max_resident_shards");
  w.Int(args.max_resident);
  w.Key("points");
  w.BeginArray();
  WritePoint(&w, small);
  WritePoint(&w, big);
  w.EndArray();
  w.Key("peak_rss_mb");
  w.Int(rss_mb);
  w.Key("rss_budget_mb");
  w.Int(args.rss_budget_mb);
  w.Key("within_budget");
  w.Bool(within_budget);
  w.Key("entity_tables_in_ram_mb");
  w.Double(in_ram_mb);
  w.EndObject();
  if (w.WriteFile(args.json_out)) {
    std::printf("wrote %s\n", args.json_out.c_str());
  }

  std::printf("peak RSS %lld MB (budget %lld MB) — %s\n",
              static_cast<long long>(rss_mb),
              static_cast<long long>(args.rss_budget_mb),
              within_budget ? "within budget" : "OVER BUDGET");
  return within_budget ? 0 : 1;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) { return came::Main(argc, argv); }
