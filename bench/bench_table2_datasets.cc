// Reproduces Table II (dataset statistics) and Fig 4 (long-tail entity and
// relation frequency histograms) on the synthetic DRKG-MM / OMAHA-MM
// stand-ins. Pure data generation — no training.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"

namespace came {
namespace {

void PrintFrequencyHistogram(const char* title,
                             const std::vector<int64_t>& counts) {
  // Log-2 bins of frequency, bar chart of how many items fall in each —
  // a long tail shows up as mass concentrated in the low bins.
  std::map<int, int64_t> bins;
  for (int64_t c : counts) {
    int bin = 0;
    while ((1LL << (bin + 1)) <= c) ++bin;
    ++bins[bin];
  }
  std::printf("%s (frequency -> #items):\n", title);
  for (const auto& [bin, n] : bins) {
    std::printf("  [%5lld, %5lld) %6lld |", (1LL << bin) * 1LL,
                (1LL << (bin + 1)) * 1LL, static_cast<long long>(n));
    const int bar = static_cast<int>(
        60.0 * static_cast<double>(n) /
        static_cast<double>(counts.size()));
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
}

void Describe(const bench::BenchEnv& env) {
  const kg::Dataset& ds = env.bkg.dataset;
  std::map<int64_t, int64_t> entity_freq;
  std::map<int64_t, int64_t> relation_freq;
  for (const kg::Triple& t : ds.AllTriples()) {
    ++entity_freq[t.head];
    ++entity_freq[t.tail];
    ++relation_freq[t.rel];
  }
  std::vector<int64_t> e_counts;
  for (const auto& [_, c] : entity_freq) e_counts.push_back(c);
  std::vector<int64_t> r_counts;
  for (const auto& [_, c] : relation_freq) r_counts.push_back(c);

  std::printf("\n--- Fig 4: %s ---\n", ds.name.c_str());
  PrintFrequencyHistogram("entity frequency", e_counts);
  PrintFrequencyHistogram("relation frequency", r_counts);

  // Per-entity-type counts (context for Table IV/V).
  std::printf("entity types:");
  for (auto type :
       {kg::EntityType::kGene, kg::EntityType::kCompound,
        kg::EntityType::kDisease, kg::EntityType::kSideEffect,
        kg::EntityType::kSymptom}) {
    const auto n = ds.vocab.EntitiesOfType(type).size();
    if (n > 0) std::printf(" %s=%zu", kg::EntityTypeName(type), n);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 0.3, 0);

  bench::BenchEnv drkg = bench::MakeDrkgEnv(args.scale);
  bench::BenchEnv omaha = bench::MakeOmahaEnv(args.scale);
  bench::PrintBenchHeader("Table II: dataset statistics", drkg, args);

  TableWriter table({"Dataset", "#Ent", "#Rel", "#Train", "#Valid", "#Test"});
  for (const bench::BenchEnv* env : {&drkg, &omaha}) {
    const kg::Dataset& ds = env->bkg.dataset;
    table.AddRow({ds.name, std::to_string(ds.num_entities()),
                  std::to_string(ds.num_relations()),
                  std::to_string(ds.train.size()),
                  std::to_string(ds.valid.size()),
                  std::to_string(ds.test.size())});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "(paper, full scale: DRKG-MM 97,238/107/4.70M/587k/587k; OMAHA-MM "
      "74,061/17/407k/50.8k/50.8k)\n");

  Describe(drkg);
  Describe(omaha);
  return 0;
}
