#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "common/stopwatch.h"

namespace came::bench {

BenchArgs BenchArgs::Parse(int argc, char** argv, double default_scale,
                           int default_epochs) {
  BenchArgs args{default_scale, default_epochs};
  if (argc > 1) args.scale = flags::DoubleFlag(argv[1], "scale", 1e-6, 1e6);
  if (argc > 2) {
    args.epochs =
        static_cast<int>(flags::IntFlag(argv[2], "epochs", 1, 1 << 20));
  }
  // CAME_BENCH_SCALE multiplies the bench's own default so one knob can
  // grow or shrink every bench together.
  if (const char* env = std::getenv("CAME_BENCH_SCALE")) {
    args.scale *= flags::DoubleFlag(env, "CAME_BENCH_SCALE(env)", 1e-6, 1e6);
  }
  return args;
}

baselines::ModelContext BenchEnv::Context(uint64_t seed) const {
  baselines::ModelContext ctx;
  ctx.num_entities = bkg.dataset.num_entities();
  ctx.num_relations = bkg.dataset.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &bkg.dataset.train;
  ctx.seed = seed;
  return ctx;
}

namespace {
BenchEnv MakeEnv(datagen::BkgConfig cfg, uint64_t seed) {
  cfg.seed = seed;
  datagen::GeneratedBkg bkg = datagen::GenerateBkg(cfg);
  encoders::FeatureBankConfig fb;
  fb.gin_pretrain_epochs = 2;
  fb.gin_pretrain_sample = 150;
  encoders::FeatureBank bank = encoders::BuildFeatureBank(bkg, fb);
  return BenchEnv{std::move(bkg), std::move(bank)};
}
}  // namespace

BenchEnv MakeDrkgEnv(double scale, uint64_t seed) {
  return MakeEnv(datagen::BkgConfig::DrkgMmSynth(scale), seed);
}

BenchEnv MakeOmahaEnv(double scale, uint64_t seed) {
  return MakeEnv(datagen::BkgConfig::OmahaMmSynth(scale), seed);
}

baselines::ZooOptions DefaultZoo() {
  baselines::ZooOptions zoo;
  zoo.dim = 32;
  zoo.conv.reshape_h = 4;
  zoo.conv.filters = 32;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;
  zoo.came.conv_filters = 32;
  return zoo;
}

train::TrainConfig TrainConfigFor(const std::string& model_name,
                                  const baselines::KgcModel& model,
                                  int epochs) {
  train::TrainConfig cfg;
  cfg.batch_size = 256;
  cfg.lr = 1e-3f;
  cfg.epochs = epochs;
  cfg = baselines::RecommendedTrainConfig(model_name, cfg);
  if (model.regime() != baselines::TrainingRegime::kOneToN) {
    // Shallow distance/bilinear models run ~10x faster per epoch; give
    // them a proportionally larger epoch budget (paper Fig 8 likewise
    // trains baselines to their own convergence).
    cfg.epochs = epochs * 2;
    cfg.negatives = 32;
  }
  return cfg;
}

TrainedModel TrainAndEval(const std::string& name, const BenchEnv& env,
                          const eval::Evaluator& evaluator, int epochs,
                          const baselines::ZooOptions& zoo,
                          int64_t eval_max_triples) {
  TrainedModel out;
  out.model = baselines::CreateModel(name, env.Context(), zoo);
  train::TrainConfig cfg = TrainConfigFor(name, *out.model, epochs);
  train::Trainer trainer(out.model.get(), env.bkg.dataset, cfg);
  Stopwatch sw;
  // Paper protocol: keep the checkpoint with the best validation Hits@10.
  trainer.TrainWithBestValidation(evaluator, std::max(2, cfg.epochs / 5),
                                  /*valid_sample=*/300);
  out.train_seconds = sw.ElapsedSeconds();
  eval::EvalConfig ec;
  ec.max_triples = eval_max_triples;
  out.test_metrics =
      evaluator.Evaluate(out.model.get(), env.bkg.dataset.test, ec);
  return out;
}

void PrintBenchHeader(const std::string& title, const BenchEnv& env,
                      const BenchArgs& args) {
  const auto& ds = env.bkg.dataset;
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "dataset=%s scale=%.2f epochs=%d | entities=%lld relations=%lld "
      "train/valid/test=%zu/%zu/%zu\n",
      ds.name.c_str(), args.scale, args.epochs,
      static_cast<long long>(ds.num_entities()),
      static_cast<long long>(ds.num_relations()), ds.train.size(),
      ds.valid.size(), ds.test.size());
}

}  // namespace came::bench
