// Serving benchmark: (h, r, ?) top-K latency and throughput through the
// inference stack (FusedEmbeddingTable + ScoreServer), unbatched vs the
// coalescing BatchingFrontEnd, at 1..4 client threads.
//
//   unbatched: each client thread calls ScoreServer::TopK per query —
//              every query pays its own encoder forward and panel sweep.
//   batched:   clients submit to a BatchingFrontEnd; whatever piles up
//              while the previous batch runs executes as one TopKBatch,
//              so the encoder forward and each packed entity panel are
//              shared across the whole batch.
//
// Writes BENCH_serving.json (override with --json_out=PATH): p50/p99
// latency and QPS per (mode, threads), plus the batched/unbatched
// throughput ratio at the highest thread count.
//
// A second section benchmarks the quantized scoring path (int8 / bf16
// candidate matrices) against the fp32 server on the same workload:
// per-query top-K agreement and Jaccard overlap, the max absolute score
// error over the returned candidates, the entity-matrix byte ratio, and
// unbatched throughput at the max thread count. The parity numbers are
// computed with the int8 GEMM microkernel *pinned* (--pin_kernel,
// default scalar) so the CI gate compares host-independent results; the
// resolved kernel is recorded in the JSON and asserted to match the
// request. Throughput is then measured on the auto-dispatched kernel.
//
// A third section measures the exact panel-skip pruning on a
// deliberately norm-skewed synthetic table (a hot band of large-norm
// rows in front of a long small-norm tail — the shape pruning exists
// for): prune-on (concurrent sweeps) vs prune-off (the pre-pruning
// serialised server) QPS/p99 at 1/4/8 clients, the fraction of panels
// skipped, and a pruned-vs-unpruned bitwise parity grid over
// {fp32, int8, bf16} x {plain, ties, NaN, filtered} that
// tools/check_serving_parity.py gates on.
//
// Run:  ./bench_serving [scale] [ignored] [--json_out=PATH]
//                       [--pin_kernel=scalar|avx2|vnni]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench_common.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "infer/batching_front_end.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "infer/score_server.h"
#include "kg/filter_index.h"
#include "tensor/qgemm.h"
#include "tensor/tensor.h"

namespace came {
namespace {

constexpr int64_t kTopK = 10;
constexpr int kMaxThreads = 4;

struct ModeResult {
  std::string mode;
  int threads = 0;
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  int64_t batches = 0;
  int64_t max_coalesced = 0;
};

double Percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

// Each client thread claims queries off a shared cursor and times each
// query end to end; per-mode QPS is total queries over wall-clock.
ModeResult RunUnbatched(infer::ScoreServer* server,
                        const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels, int threads) {
  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) return;
        Stopwatch sw;
        const Result<infer::TopKResult> r =
            server->TopK(heads[i], rels[i], kTopK);
        lat_us[static_cast<size_t>(t)].push_back(sw.ElapsedSeconds() * 1e6);
        CAME_CHECK(r.ok()) << r.status().ToString();
        CAME_CHECK(!r.value().ids.empty());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  ModeResult res;
  res.mode = "unbatched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  return res;
}

ModeResult RunBatched(infer::ScoreServer* server,
                      const std::vector<int64_t>& heads,
                      const std::vector<int64_t>& rels, int threads) {
  infer::BatchingFrontEndConfig cfg;
  cfg.max_batch = 64;
  infer::BatchingFrontEnd front(server, kTopK, {}, cfg);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      // Closed loop with a small pipeline per client: up to 4 requests in
      // flight, so the front end has something to coalesce even at low
      // client counts.
      constexpr size_t kDepth = 4;
      struct InFlight {
        std::future<infer::TopKResult> future;
        Stopwatch started;
      };
      std::vector<InFlight> window;
      auto drain_one = [&] {
        InFlight f = std::move(window.front());
        window.erase(window.begin());
        const infer::TopKResult r = f.future.get();
        lat_us[static_cast<size_t>(t)].push_back(f.started.ElapsedSeconds() *
                                                 1e6);
        CAME_CHECK(!r.ids.empty());
      };
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) break;
        if (window.size() >= kDepth) drain_one();
        window.push_back({front.Submit(heads[i], rels[i]), Stopwatch()});
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  const infer::BatchingFrontEnd::Stats stats = front.GetStats();
  ModeResult res;
  res.mode = "batched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  res.batches = stats.batches_executed;
  res.max_coalesced = stats.max_coalesced;
  return res;
}

// Quantized-vs-fp32 quality and throughput on one workload.
struct QuantResult {
  std::string dtype;
  std::string parity_kernel;    // int8 microkernel the parity ran on
  double agreement_at_k = 0;    // mean |top-K ids ∩ fp32 top-K ids| / K
  double jaccard_at_k = 0;      // mean |∩| / |∪| of the two id sets
  double max_abs_score_err = 0; // over every returned quantized candidate
  int64_t entity_matrix_bytes = 0;
  double bytes_ratio = 0;       // vs N * d * 4 fp32 bytes
  double qps_at_max_threads = 0;
  double throughput_vs_fp32 = 0;
};

QuantResult RunQuantized(infer::ScoreServer* fp32_server,
                         baselines::InnerProductKgcModel* model,
                         const infer::FusedEmbeddingTable* table,
                         infer::ScoreDtype dtype,
                         tensor::qgemm::Kernel pin_kernel,
                         const std::vector<int64_t>& heads,
                         const std::vector<int64_t>& rels,
                         double fp32_qps_at_max) {
  infer::ScoreServerConfig cfg;
  cfg.dtype = dtype;
  infer::ScoreServer qserver(model, table, cfg);

  QuantResult res;
  res.dtype = infer::ScoreDtypeName(dtype);
  res.entity_matrix_bytes = qserver.quantized_table().entity_matrix_bytes();
  res.bytes_ratio =
      static_cast<double>(res.entity_matrix_bytes) /
      static_cast<double>(table->num_entities() * table->dim() * 4);

  // Parity on the pinned microkernel: host-independent CI-gated numbers.
  CAME_CHECK(tensor::qgemm::KernelAvailable(pin_kernel));
  tensor::qgemm::SetKernel(pin_kernel);
  CAME_CHECK(tensor::qgemm::ActiveKernel() == pin_kernel);
  res.parity_kernel = tensor::qgemm::KernelName(pin_kernel);

  double agreement_sum = 0;
  double jaccard_sum = 0;
  for (size_t i = 0; i < heads.size(); ++i) {
    Result<infer::TopKResult> want_r =
        fp32_server->TopK(heads[i], rels[i], kTopK);
    CAME_CHECK(want_r.ok()) << want_r.status().ToString();
    Result<infer::TopKResult> got_r = qserver.TopK(heads[i], rels[i], kTopK);
    CAME_CHECK(got_r.ok()) << got_r.status().ToString();
    const infer::TopKResult want = std::move(want_r).value();
    const infer::TopKResult got = std::move(got_r).value();
    std::vector<int64_t> a = want.ids;
    std::vector<int64_t> b = got.ids;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int64_t> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    const double inter = static_cast<double>(both.size());
    const double uni = static_cast<double>(a.size() + b.size()) - inter;
    agreement_sum += inter / static_cast<double>(want.ids.size());
    jaccard_sum += uni > 0 ? inter / uni : 1.0;

    // fp32 scores of exactly the quantized server's answers, via a
    // restricted fp32 query — the score error the user actually sees.
    infer::TopKOptions opts;
    opts.restrict_to = &b;
    Result<infer::TopKResult> ref_r =
        fp32_server->TopK(heads[i], rels[i], kTopK, opts);
    CAME_CHECK(ref_r.ok()) << ref_r.status().ToString();
    const infer::TopKResult ref = std::move(ref_r).value();
    for (size_t r = 0; r < got.ids.size(); ++r) {
      for (size_t s = 0; s < ref.ids.size(); ++s) {
        if (ref.ids[s] != got.ids[r]) continue;
        const double err = std::fabs(static_cast<double>(got.scores[r]) -
                                     static_cast<double>(ref.scores[s]));
        res.max_abs_score_err = std::max(res.max_abs_score_err, err);
      }
    }
  }
  res.agreement_at_k = agreement_sum / static_cast<double>(heads.size());
  res.jaccard_at_k = jaccard_sum / static_cast<double>(heads.size());

  // Throughput on the auto-dispatched (native) kernel, like production.
  tensor::qgemm::SetKernel(tensor::qgemm::Kernel::kAuto);
  const ModeResult t = RunUnbatched(&qserver, heads, rels, kMaxThreads);
  res.qps_at_max_threads = t.qps;
  res.throughput_vs_fp32 =
      fp32_qps_at_max > 0 ? t.qps / fp32_qps_at_max : 0;
  tensor::qgemm::SetKernel(pin_kernel);
  return res;
}

// ---------------------------------------------------------------------------
// Exact panel-skip pruning section.
// ---------------------------------------------------------------------------

// Deterministic splitmix64-style hash to a float in [-1, 1).
float HashUnit(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<float>(
      static_cast<double>(x >> 11) / 4503599627370496.0 - 1.0);
}

// Norm-skewed serving table: `hot` full-scale rows up front, then a long
// tail of tiny-norm rows — the shape pruning exists for. Top-K answers
// live in the hot band, so once the heaps fill, every tail panel's bound
// loses to the K-th best and its GEMM is skipped.
infer::FusedEmbeddingTable MakeSkewedTable(int64_t n, int64_t d,
                                           int64_t hot) {
  tensor::Tensor cand =
      tensor::Tensor::Uninitialized({n, d});
  tensor::Tensor bias = tensor::Tensor::Uninitialized({n});
  for (int64_t i = 0; i < n; ++i) {
    const float scale = i < hot ? 1.0f : 0.01f;
    for (int64_t j = 0; j < d; ++j) {
      cand.data()[i * d + j] =
          scale * HashUnit(static_cast<uint64_t>(i) * 10007u +
                           static_cast<uint64_t>(j));
    }
    bias.data()[i] = 0.001f * HashUnit(0xb1a5u + static_cast<uint64_t>(i));
  }
  return infer::FusedEmbeddingTable("skewed", std::move(cand),
                                    std::move(bias), tensor::Tensor());
}

// Tie-and-NaN torture table for the parity grid: a hot band of distinct
// rows, then a tail that cycles 29 row patterns (identical rows across
// panels force score ties resolved by entity id), every value quantized
// to a coarse grid so quantized dtypes tie too. All values finite so the
// int8/bf16 builders accept it; NaN coverage comes from a NaN *query*.
infer::FusedEmbeddingTable MakeTieTable(int64_t n, int64_t d, int64_t hot) {
  auto grid = [](float v) { return std::round(v * 8.0f) / 8.0f; };
  tensor::Tensor cand = tensor::Tensor::Uninitialized({n, d});
  tensor::Tensor bias = tensor::Tensor::Uninitialized({n});
  for (int64_t i = 0; i < n; ++i) {
    const bool in_hot = i < hot;
    const float scale = in_hot ? 1.0f : 0.05f;
    const uint64_t pattern =
        in_hot ? static_cast<uint64_t>(i)
               : static_cast<uint64_t>(hot + (i - hot) % 29);
    for (int64_t j = 0; j < d; ++j) {
      cand.data()[i * d + j] =
          scale * grid(HashUnit(pattern * 131071u +
                                static_cast<uint64_t>(j)));
    }
    bias.data()[i] = 0.125f * grid(HashUnit(0xb1a5u + pattern));
  }
  return infer::FusedEmbeddingTable("ties", std::move(cand), std::move(bias),
                                    tensor::Tensor());
}

// Head id the parity encoder maps to an all-NaN query row (a diverged
// encoder in production) — exercises the NaN ordering under pruning.
constexpr int64_t kNaNQueryHead = 3;

infer::QueryEncoder SyntheticEncoder(int64_t d, bool nan_head) {
  return [d, nan_head](const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels) {
    tensor::Tensor q = tensor::Tensor::Uninitialized(
        {static_cast<int64_t>(heads.size()), d});
    for (size_t i = 0; i < heads.size(); ++i) {
      for (int64_t j = 0; j < d; ++j) {
        q.data()[static_cast<int64_t>(i) * d + j] =
            nan_head && heads[i] == kNaNQueryHead
                ? std::numeric_limits<float>::quiet_NaN()
                : HashUnit(static_cast<uint64_t>(heads[i]) * 1000003u +
                           static_cast<uint64_t>(rels[i]) * 257u +
                           static_cast<uint64_t>(j));
      }
    }
    return q;
  };
}

bool SameTopK(const infer::TopKResult& a, const infer::TopKResult& b) {
  return a.ids == b.ids && a.scores.size() == b.scores.size() &&
         std::memcmp(a.scores.data(), b.scores.data(),
                     a.scores.size() * sizeof(float)) == 0;
}

struct ParityCounts {
  int64_t cases = 0;
  int64_t mismatches = 0;
};

// Pruned-vs-unpruned bitwise parity over one dtype: plain/deep-K/NaN
// query/filtered/excluded top-K plus RankOf, between two servers over the
// same table that differ only in config.prune.
void RunPruneParity(const infer::FusedEmbeddingTable* table,
                    infer::ScoreDtype dtype, ParityCounts* counts,
                    int64_t* panels_skipped) {
  const int64_t n = table->num_entities();
  infer::QueryEncoder enc = SyntheticEncoder(table->dim(), true);
  infer::ScoreServerConfig on_cfg;
  on_cfg.dtype = dtype;
  on_cfg.prune = true;
  on_cfg.panel_width = 256;
  infer::ScoreServerConfig off_cfg = on_cfg;
  off_cfg.prune = false;
  infer::ScoreServer on_server(enc, table, on_cfg);
  infer::ScoreServer off_server(enc, table, off_cfg);

  kg::FilterIndex filter(n, 2);
  std::vector<kg::Triple> triples;
  for (int64_t h = 0; h < 16; ++h) {
    for (int64_t t = 0; t < n; t += 97) triples.push_back({h, 0, t});
  }
  filter.AddTriples(triples);
  std::vector<int64_t> exclude;
  for (int64_t t = 5; t < n; t += 61) exclude.push_back(t);

  auto check_topk = [&](int64_t head, int64_t k,
                        const infer::TopKOptions& opts) {
    const Result<infer::TopKResult> got = on_server.TopK(head, 0, k, opts);
    const Result<infer::TopKResult> want = off_server.TopK(head, 0, k, opts);
    CAME_CHECK(got.ok() && want.ok());
    ++counts->cases;
    if (!SameTopK(got.value(), want.value())) ++counts->mismatches;
  };
  auto check_rank = [&](int64_t head, int64_t target,
                        const infer::TopKOptions& opts) {
    const Result<double> got = on_server.RankOf(head, 0, target, opts);
    const Result<double> want = off_server.RankOf(head, 0, target, opts);
    CAME_CHECK(got.ok() && want.ok());
    ++counts->cases;
    if (std::memcmp(&got.value(), &want.value(), sizeof(double)) != 0)
      ++counts->mismatches;
  };

  for (int64_t head = 0; head < 24; ++head) {
    check_topk(head, kTopK, {});
    // Deep K reaches past the hot band into the tied tail, so the K-th
    // boundary lands mid-tie.
    check_topk(head, 100, {});
    infer::TopKOptions fopts;
    fopts.filter = &filter;
    fopts.keep = 97;
    check_topk(head, kTopK, fopts);
    infer::TopKOptions eopts;
    eopts.exclude = &exclude;
    check_topk(head, kTopK, eopts);
    check_rank(head, head % n, {});
    check_rank(head, n - 1 - head, fopts);
  }
  *panels_skipped += on_server.GetStats().panels_skipped;
}

int Main(int argc, char** argv) {
  std::string json_out = "BENCH_serving.json";
  std::string pin_kernel_name = "scalar";
  std::vector<char*> positional = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json_out="));
    } else if (arg.rfind("--pin_kernel=", 0) == 0) {
      pin_kernel_name = arg.substr(std::strlen("--pin_kernel="));
    } else {
      positional.push_back(argv[i]);
    }
  }
  tensor::qgemm::Kernel pin_kernel = tensor::qgemm::Kernel::kScalar;
  if (pin_kernel_name == "avx2") {
    pin_kernel = tensor::qgemm::Kernel::kAvx2;
  } else if (pin_kernel_name == "vnni") {
    pin_kernel = tensor::qgemm::Kernel::kVnni;
  } else {
    CAME_CHECK(pin_kernel_name == "scalar");
  }
  // Reuse the shared bench CLI for the dataset scale; epochs is unused
  // (serving cost does not depend on the weights, so no training).
  const bench::BenchArgs args = bench::BenchArgs::Parse(
      static_cast<int>(positional.size()), positional.data(), 0.25, 0);

  std::printf("building DRKG-MM-Synth (scale %.2f)...\n", args.scale);
  const bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  const kg::Dataset& ds = env.bkg.dataset;

  auto model = baselines::CreateModel("CamE", env.Context(), bench::DefaultZoo());
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  CAME_CHECK(ip != nullptr);
  model->SetTraining(false);
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);

  // Query workload: tail queries from the test split, tiled to a fixed
  // count so percentiles are stable.
  const size_t kQueries = 400;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  CAME_CHECK(!ds.test.empty());
  for (size_t i = 0; i < kQueries; ++i) {
    const kg::Triple& t = ds.test[i % ds.test.size()];
    heads.push_back(t.head);
    rels.push_back(t.rel);
  }

  // Warm-up: prime the tensor pool and GEMM packing scratch.
  const Result<std::vector<infer::TopKResult>> warm =
      server.TopKBatch({heads[0], heads[1]}, {rels[0], rels[1]}, kTopK);
  CAME_CHECK(warm.ok()) << warm.status().ToString();

  std::vector<ModeResult> results;
  for (int threads = 1; threads <= kMaxThreads; threads *= 2) {
    ModeResult u = RunUnbatched(&server, heads, rels, threads);
    ModeResult b = RunBatched(&server, heads, rels, threads);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps\n",
                u.mode.c_str(), u.threads, u.p50_us, u.p99_us, u.qps);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps  "
                "(%lld batches, max %lld coalesced)\n",
                b.mode.c_str(), b.threads, b.p50_us, b.p99_us, b.qps,
                static_cast<long long>(b.batches),
                static_cast<long long>(b.max_coalesced));
    results.push_back(u);
    results.push_back(b);
  }

  double unbatched_qps_at_max = 0;
  double batched_qps_at_max = 0;
  for (const ModeResult& r : results) {
    if (r.threads != kMaxThreads) continue;
    if (r.mode == "unbatched") unbatched_qps_at_max = r.qps;
    if (r.mode == "batched") batched_qps_at_max = r.qps;
  }
  const double speedup = unbatched_qps_at_max > 0
                             ? batched_qps_at_max / unbatched_qps_at_max
                             : 0;
  std::printf("batched/unbatched throughput at %d threads: %.2fx\n",
              kMaxThreads, speedup);

  // Quantized scoring path vs the fp32 server on the same workload.
  std::vector<QuantResult> quant;
  for (const infer::ScoreDtype dtype :
       {infer::ScoreDtype::kInt8, infer::ScoreDtype::kBf16}) {
    QuantResult q = RunQuantized(&server, ip, &table, dtype, pin_kernel,
                                 heads, rels, unbatched_qps_at_max);
    std::printf(
        "%-5s agreement@%lld %.4f  jaccard %.4f  max|err| %.3g  "
        "bytes %.2fx fp32  %8.1f qps @%dt (%.2fx fp32, kernel %s)\n",
        q.dtype.c_str(), static_cast<long long>(kTopK), q.agreement_at_k,
        q.jaccard_at_k, q.max_abs_score_err, q.bytes_ratio,
        q.qps_at_max_threads, kMaxThreads, q.throughput_vs_fp32,
        q.parity_kernel.c_str());
    quant.push_back(q);
  }

  // --- Exact panel-skip pruning on a norm-skewed synthetic table. The
  // prune-off arm also serialises sweeps (the pre-pruning server held one
  // mutex across every sweep), so the speedup is the combined effect of
  // pruning plus the concurrent-reader path.
  const int64_t pn = 24000, pd = 64, phot = 256;
  const infer::FusedEmbeddingTable skewed = MakeSkewedTable(pn, pd, phot);
  infer::QueryEncoder penc = SyntheticEncoder(pd, false);
  infer::ScoreServerConfig prune_off_cfg;
  prune_off_cfg.prune = false;
  prune_off_cfg.serialize_sweep = true;
  infer::ScoreServerConfig prune_on_cfg;
  prune_on_cfg.prune = true;
  infer::ScoreServer prune_off_server(penc, &skewed, prune_off_cfg);
  infer::ScoreServer prune_on_server(penc, &skewed, prune_on_cfg);

  std::vector<int64_t> pheads;
  std::vector<int64_t> prels;
  for (size_t i = 0; i < kQueries; ++i) {
    pheads.push_back(static_cast<int64_t>(i * 37) % pn);
    prels.push_back(0);
  }
  {
    const Result<infer::TopKResult> pwarm =
        prune_on_server.TopK(pheads[0], 0, kTopK);
    CAME_CHECK(pwarm.ok()) << pwarm.status().ToString();
  }

  std::vector<ModeResult> prune_results;
  double prune_off_qps4 = 0;
  double prune_on_qps4 = 0;
  for (const int threads : {1, 4, 8}) {
    ModeResult off = RunUnbatched(&prune_off_server, pheads, prels, threads);
    off.mode = "prune_off";
    ModeResult on = RunUnbatched(&prune_on_server, pheads, prels, threads);
    on.mode = "prune_on";
    for (const ModeResult* r : {&off, &on}) {
      std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps\n",
                  r->mode.c_str(), r->threads, r->p50_us, r->p99_us, r->qps);
    }
    if (threads == 4) {
      prune_off_qps4 = off.qps;
      prune_on_qps4 = on.qps;
    }
    prune_results.push_back(off);
    prune_results.push_back(on);
  }
  const infer::ScoreServer::Stats prune_stats = prune_on_server.GetStats();
  const double panels_total = static_cast<double>(
      prune_stats.panels_scored + prune_stats.panels_skipped);
  const double skip_ratio =
      panels_total > 0
          ? static_cast<double>(prune_stats.panels_skipped) / panels_total
          : 0;
  const double prune_speedup =
      prune_off_qps4 > 0 ? prune_on_qps4 / prune_off_qps4 : 0;
  std::printf("pruning: skipped %.1f%% of panels; prune_on/prune_off qps "
              "at 4 clients: %.2fx\n",
              100.0 * skip_ratio, prune_speedup);

  // Bitwise parity grid, pruned vs unpruned, on the tie/NaN fixture. Runs
  // on the pinned kernel so the CI-gated numbers are host-independent.
  tensor::qgemm::SetKernel(pin_kernel);
  const infer::FusedEmbeddingTable ties = MakeTieTable(1500, 16, 64);
  ParityCounts parity;
  int64_t parity_skipped = 0;
  for (const infer::ScoreDtype dtype :
       {infer::ScoreDtype::kFp32, infer::ScoreDtype::kInt8,
        infer::ScoreDtype::kBf16}) {
    RunPruneParity(&ties, dtype, &parity, &parity_skipped);
  }
  std::printf("prune parity: %lld cases, %lld mismatches, %lld panels "
              "skipped across the grid\n",
              static_cast<long long>(parity.cases),
              static_cast<long long>(parity.mismatches),
              static_cast<long long>(parity_skipped));

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("serving");
  w.Key("model");
  w.String("CamE");
  w.Key("num_entities");
  w.Int(ds.num_entities());
  w.Key("dim");
  w.Int(table.dim());
  w.Key("k");
  w.Int(kTopK);
  w.Key("queries");
  w.Int(static_cast<int64_t>(kQueries));
  w.Key("folded_rows");
  w.Bool(table.has_folded_rows());
  w.Key("results");
  w.BeginArray();
  for (const ModeResult& r : results) {
    w.BeginObject();
    w.Key("mode");
    w.String(r.mode);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("p50_us");
    w.Double(r.p50_us);
    w.Key("p99_us");
    w.Double(r.p99_us);
    w.Key("qps");
    w.Double(r.qps);
    if (r.mode == "batched") {
      w.Key("batches");
      w.Int(r.batches);
      w.Key("max_coalesced");
      w.Int(r.max_coalesced);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("batched_speedup_at_max_threads");
  w.Double(speedup);
  w.Key("quantized");
  w.BeginObject();
  w.Key("parity_kernel");
  w.String(pin_kernel_name);
  w.Key("throughput_kernel");
  w.String(tensor::qgemm::KernelName(
      tensor::qgemm::KernelAvailable(tensor::qgemm::Kernel::kVnni)
          ? tensor::qgemm::Kernel::kVnni
          : (tensor::qgemm::KernelAvailable(tensor::qgemm::Kernel::kAvx2)
                 ? tensor::qgemm::Kernel::kAvx2
                 : tensor::qgemm::Kernel::kScalar)));
  for (const QuantResult& q : quant) {
    w.Key(q.dtype);
    w.BeginObject();
    w.Key("parity_kernel");
    w.String(q.parity_kernel);
    w.Key("agreement_at_k");
    w.Double(q.agreement_at_k);
    w.Key("jaccard_at_k");
    w.Double(q.jaccard_at_k);
    w.Key("max_abs_score_err");
    w.Double(q.max_abs_score_err);
    w.Key("entity_matrix_bytes");
    w.Int(q.entity_matrix_bytes);
    w.Key("fp32_entity_matrix_bytes");
    w.Int(ds.num_entities() * table.dim() * 4);
    w.Key("bytes_ratio");
    w.Double(q.bytes_ratio);
    w.Key("qps_at_max_threads");
    w.Double(q.qps_at_max_threads);
    w.Key("throughput_vs_fp32");
    w.Double(q.throughput_vs_fp32);
    w.EndObject();
  }
  w.EndObject();
  w.Key("pruning");
  w.BeginObject();
  w.Key("num_entities");
  w.Int(pn);
  w.Key("dim");
  w.Int(pd);
  w.Key("hot_rows");
  w.Int(phot);
  w.Key("results");
  w.BeginArray();
  for (const ModeResult& r : prune_results) {
    w.BeginObject();
    w.Key("mode");
    w.String(r.mode);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("p50_us");
    w.Double(r.p50_us);
    w.Key("p99_us");
    w.Double(r.p99_us);
    w.Key("qps");
    w.Double(r.qps);
    w.EndObject();
  }
  w.EndArray();
  w.Key("panels_scored");
  w.Int(prune_stats.panels_scored);
  w.Key("panels_skipped");
  w.Int(prune_stats.panels_skipped);
  w.Key("panels_skipped_ratio");
  w.Double(skip_ratio);
  w.Key("bound_rejects");
  w.Int(prune_stats.bound_rejects);
  w.Key("combined_speedup_at_4_clients");
  w.Double(prune_speedup);
  w.Key("prune_parity");
  w.BeginObject();
  w.Key("parity_kernel");
  w.String(pin_kernel_name);
  w.Key("cases");
  w.Int(parity.cases);
  w.Key("mismatches");
  w.Int(parity.mismatches);
  w.Key("panels_skipped");
  w.Int(parity_skipped);
  w.Key("dtypes");
  w.BeginArray();
  for (const char* name : {"fp32", "int8", "bf16"}) w.String(name);
  w.EndArray();
  w.EndObject();
  w.EndObject();
  w.EndObject();
  if (w.WriteFile(json_out)) {
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) { return came::Main(argc, argv); }
