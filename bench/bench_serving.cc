// Serving benchmark: (h, r, ?) top-K latency and throughput through the
// inference stack (FusedEmbeddingTable + ScoreServer), unbatched vs the
// coalescing BatchingFrontEnd, at 1..4 client threads.
//
//   unbatched: each client thread calls ScoreServer::TopK per query —
//              every query pays its own encoder forward and panel sweep.
//   batched:   clients submit to a BatchingFrontEnd; whatever piles up
//              while the previous batch runs executes as one TopKBatch,
//              so the encoder forward and each packed entity panel are
//              shared across the whole batch.
//
// Writes BENCH_serving.json (override with --json_out=PATH): p50/p99
// latency and QPS per (mode, threads), plus the batched/unbatched
// throughput ratio at the highest thread count.
//
// Run:  ./bench_serving [scale] [ignored] [--json_out=PATH]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench_common.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "infer/batching_front_end.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"

namespace came {
namespace {

constexpr int64_t kTopK = 10;
constexpr int kMaxThreads = 4;

struct ModeResult {
  std::string mode;
  int threads = 0;
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  int64_t batches = 0;
  int64_t max_coalesced = 0;
};

double Percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

// Each client thread claims queries off a shared cursor and times each
// query end to end; per-mode QPS is total queries over wall-clock.
ModeResult RunUnbatched(infer::ScoreServer* server,
                        const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels, int threads) {
  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) return;
        Stopwatch sw;
        const infer::TopKResult r = server->TopK(heads[i], rels[i], kTopK);
        lat_us[static_cast<size_t>(t)].push_back(sw.ElapsedSeconds() * 1e6);
        CAME_CHECK(!r.ids.empty());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  ModeResult res;
  res.mode = "unbatched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  return res;
}

ModeResult RunBatched(infer::ScoreServer* server,
                      const std::vector<int64_t>& heads,
                      const std::vector<int64_t>& rels, int threads) {
  infer::BatchingFrontEndConfig cfg;
  cfg.max_batch = 64;
  infer::BatchingFrontEnd front(server, kTopK, {}, cfg);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      // Closed loop with a small pipeline per client: up to 4 requests in
      // flight, so the front end has something to coalesce even at low
      // client counts.
      constexpr size_t kDepth = 4;
      struct InFlight {
        std::future<infer::TopKResult> future;
        Stopwatch started;
      };
      std::vector<InFlight> window;
      auto drain_one = [&] {
        InFlight f = std::move(window.front());
        window.erase(window.begin());
        const infer::TopKResult r = f.future.get();
        lat_us[static_cast<size_t>(t)].push_back(f.started.ElapsedSeconds() *
                                                 1e6);
        CAME_CHECK(!r.ids.empty());
      };
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) break;
        if (window.size() >= kDepth) drain_one();
        window.push_back({front.Submit(heads[i], rels[i]), Stopwatch()});
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  const infer::BatchingFrontEnd::Stats stats = front.GetStats();
  ModeResult res;
  res.mode = "batched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  res.batches = stats.batches_executed;
  res.max_coalesced = stats.max_coalesced;
  return res;
}

int Main(int argc, char** argv) {
  std::string json_out = "BENCH_serving.json";
  std::vector<char*> positional = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json_out="));
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Reuse the shared bench CLI for the dataset scale; epochs is unused
  // (serving cost does not depend on the weights, so no training).
  const bench::BenchArgs args = bench::BenchArgs::Parse(
      static_cast<int>(positional.size()), positional.data(), 0.25, 0);

  std::printf("building DRKG-MM-Synth (scale %.2f)...\n", args.scale);
  const bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  const kg::Dataset& ds = env.bkg.dataset;

  auto model = baselines::CreateModel("CamE", env.Context(), bench::DefaultZoo());
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  CAME_CHECK(ip != nullptr);
  model->SetTraining(false);
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);

  // Query workload: tail queries from the test split, tiled to a fixed
  // count so percentiles are stable.
  const size_t kQueries = 400;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  CAME_CHECK(!ds.test.empty());
  for (size_t i = 0; i < kQueries; ++i) {
    const kg::Triple& t = ds.test[i % ds.test.size()];
    heads.push_back(t.head);
    rels.push_back(t.rel);
  }

  // Warm-up: prime the tensor pool and GEMM packing scratch.
  (void)server.TopKBatch({heads[0], heads[1]}, {rels[0], rels[1]}, kTopK);

  std::vector<ModeResult> results;
  for (int threads = 1; threads <= kMaxThreads; threads *= 2) {
    ModeResult u = RunUnbatched(&server, heads, rels, threads);
    ModeResult b = RunBatched(&server, heads, rels, threads);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps\n",
                u.mode.c_str(), u.threads, u.p50_us, u.p99_us, u.qps);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps  "
                "(%lld batches, max %lld coalesced)\n",
                b.mode.c_str(), b.threads, b.p50_us, b.p99_us, b.qps,
                static_cast<long long>(b.batches),
                static_cast<long long>(b.max_coalesced));
    results.push_back(u);
    results.push_back(b);
  }

  double unbatched_qps_at_max = 0;
  double batched_qps_at_max = 0;
  for (const ModeResult& r : results) {
    if (r.threads != kMaxThreads) continue;
    if (r.mode == "unbatched") unbatched_qps_at_max = r.qps;
    if (r.mode == "batched") batched_qps_at_max = r.qps;
  }
  const double speedup = unbatched_qps_at_max > 0
                             ? batched_qps_at_max / unbatched_qps_at_max
                             : 0;
  std::printf("batched/unbatched throughput at %d threads: %.2fx\n",
              kMaxThreads, speedup);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("serving");
  w.Key("model");
  w.String("CamE");
  w.Key("num_entities");
  w.Int(ds.num_entities());
  w.Key("dim");
  w.Int(table.dim());
  w.Key("k");
  w.Int(kTopK);
  w.Key("queries");
  w.Int(static_cast<int64_t>(kQueries));
  w.Key("folded_rows");
  w.Bool(table.has_folded_rows());
  w.Key("results");
  w.BeginArray();
  for (const ModeResult& r : results) {
    w.BeginObject();
    w.Key("mode");
    w.String(r.mode);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("p50_us");
    w.Double(r.p50_us);
    w.Key("p99_us");
    w.Double(r.p99_us);
    w.Key("qps");
    w.Double(r.qps);
    if (r.mode == "batched") {
      w.Key("batches");
      w.Int(r.batches);
      w.Key("max_coalesced");
      w.Int(r.max_coalesced);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("batched_speedup_at_max_threads");
  w.Double(speedup);
  w.EndObject();
  if (w.WriteFile(json_out)) {
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) { return came::Main(argc, argv); }
