// Serving benchmark: (h, r, ?) top-K latency and throughput through the
// inference stack (FusedEmbeddingTable + ScoreServer), unbatched vs the
// coalescing BatchingFrontEnd, at 1..4 client threads.
//
//   unbatched: each client thread calls ScoreServer::TopK per query —
//              every query pays its own encoder forward and panel sweep.
//   batched:   clients submit to a BatchingFrontEnd; whatever piles up
//              while the previous batch runs executes as one TopKBatch,
//              so the encoder forward and each packed entity panel are
//              shared across the whole batch.
//
// Writes BENCH_serving.json (override with --json_out=PATH): p50/p99
// latency and QPS per (mode, threads), plus the batched/unbatched
// throughput ratio at the highest thread count.
//
// A second section benchmarks the quantized scoring path (int8 / bf16
// candidate matrices) against the fp32 server on the same workload:
// per-query top-K agreement and Jaccard overlap, the max absolute score
// error over the returned candidates, the entity-matrix byte ratio, and
// unbatched throughput at the max thread count. The parity numbers are
// computed with the int8 GEMM microkernel *pinned* (--pin_kernel,
// default scalar) so the CI gate compares host-independent results; the
// resolved kernel is recorded in the JSON and asserted to match the
// request. Throughput is then measured on the auto-dispatched kernel.
//
// Run:  ./bench_serving [scale] [ignored] [--json_out=PATH]
//                       [--pin_kernel=scalar|avx2|vnni]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench_common.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "infer/batching_front_end.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "infer/score_server.h"
#include "tensor/qgemm.h"

namespace came {
namespace {

constexpr int64_t kTopK = 10;
constexpr int kMaxThreads = 4;

struct ModeResult {
  std::string mode;
  int threads = 0;
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  int64_t batches = 0;
  int64_t max_coalesced = 0;
};

double Percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

// Each client thread claims queries off a shared cursor and times each
// query end to end; per-mode QPS is total queries over wall-clock.
ModeResult RunUnbatched(infer::ScoreServer* server,
                        const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels, int threads) {
  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) return;
        Stopwatch sw;
        const infer::TopKResult r = server->TopK(heads[i], rels[i], kTopK);
        lat_us[static_cast<size_t>(t)].push_back(sw.ElapsedSeconds() * 1e6);
        CAME_CHECK(!r.ids.empty());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  ModeResult res;
  res.mode = "unbatched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  return res;
}

ModeResult RunBatched(infer::ScoreServer* server,
                      const std::vector<int64_t>& heads,
                      const std::vector<int64_t>& rels, int threads) {
  infer::BatchingFrontEndConfig cfg;
  cfg.max_batch = 64;
  infer::BatchingFrontEnd front(server, kTopK, {}, cfg);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat_us(static_cast<size_t>(threads));
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      // Closed loop with a small pipeline per client: up to 4 requests in
      // flight, so the front end has something to coalesce even at low
      // client counts.
      constexpr size_t kDepth = 4;
      struct InFlight {
        std::future<infer::TopKResult> future;
        Stopwatch started;
      };
      std::vector<InFlight> window;
      auto drain_one = [&] {
        InFlight f = std::move(window.front());
        window.erase(window.begin());
        const infer::TopKResult r = f.future.get();
        lat_us[static_cast<size_t>(t)].push_back(f.started.ElapsedSeconds() *
                                                 1e6);
        CAME_CHECK(!r.ids.empty());
      };
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= heads.size()) break;
        if (window.size() >= kDepth) drain_one();
        window.push_back({front.Submit(heads[i], rels[i]), Stopwatch()});
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  const infer::BatchingFrontEnd::Stats stats = front.GetStats();
  ModeResult res;
  res.mode = "batched";
  res.threads = threads;
  res.p50_us = Percentile(all, 0.5);
  res.p99_us = Percentile(all, 0.99);
  res.qps = static_cast<double>(heads.size()) / elapsed;
  res.batches = stats.batches_executed;
  res.max_coalesced = stats.max_coalesced;
  return res;
}

// Quantized-vs-fp32 quality and throughput on one workload.
struct QuantResult {
  std::string dtype;
  std::string parity_kernel;    // int8 microkernel the parity ran on
  double agreement_at_k = 0;    // mean |top-K ids ∩ fp32 top-K ids| / K
  double jaccard_at_k = 0;      // mean |∩| / |∪| of the two id sets
  double max_abs_score_err = 0; // over every returned quantized candidate
  int64_t entity_matrix_bytes = 0;
  double bytes_ratio = 0;       // vs N * d * 4 fp32 bytes
  double qps_at_max_threads = 0;
  double throughput_vs_fp32 = 0;
};

QuantResult RunQuantized(infer::ScoreServer* fp32_server,
                         baselines::InnerProductKgcModel* model,
                         const infer::FusedEmbeddingTable* table,
                         infer::ScoreDtype dtype,
                         tensor::qgemm::Kernel pin_kernel,
                         const std::vector<int64_t>& heads,
                         const std::vector<int64_t>& rels,
                         double fp32_qps_at_max) {
  infer::ScoreServerConfig cfg;
  cfg.dtype = dtype;
  infer::ScoreServer qserver(model, table, cfg);

  QuantResult res;
  res.dtype = infer::ScoreDtypeName(dtype);
  res.entity_matrix_bytes = qserver.quantized_table().entity_matrix_bytes();
  res.bytes_ratio =
      static_cast<double>(res.entity_matrix_bytes) /
      static_cast<double>(table->num_entities() * table->dim() * 4);

  // Parity on the pinned microkernel: host-independent CI-gated numbers.
  CAME_CHECK(tensor::qgemm::KernelAvailable(pin_kernel));
  tensor::qgemm::SetKernel(pin_kernel);
  CAME_CHECK(tensor::qgemm::ActiveKernel() == pin_kernel);
  res.parity_kernel = tensor::qgemm::KernelName(pin_kernel);

  double agreement_sum = 0;
  double jaccard_sum = 0;
  for (size_t i = 0; i < heads.size(); ++i) {
    const infer::TopKResult want =
        fp32_server->TopK(heads[i], rels[i], kTopK);
    const infer::TopKResult got = qserver.TopK(heads[i], rels[i], kTopK);
    std::vector<int64_t> a = want.ids;
    std::vector<int64_t> b = got.ids;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int64_t> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    const double inter = static_cast<double>(both.size());
    const double uni = static_cast<double>(a.size() + b.size()) - inter;
    agreement_sum += inter / static_cast<double>(want.ids.size());
    jaccard_sum += uni > 0 ? inter / uni : 1.0;

    // fp32 scores of exactly the quantized server's answers, via a
    // restricted fp32 query — the score error the user actually sees.
    infer::TopKOptions opts;
    opts.restrict_to = &b;
    const infer::TopKResult ref =
        fp32_server->TopK(heads[i], rels[i], kTopK, opts);
    for (size_t r = 0; r < got.ids.size(); ++r) {
      for (size_t s = 0; s < ref.ids.size(); ++s) {
        if (ref.ids[s] != got.ids[r]) continue;
        const double err = std::fabs(static_cast<double>(got.scores[r]) -
                                     static_cast<double>(ref.scores[s]));
        res.max_abs_score_err = std::max(res.max_abs_score_err, err);
      }
    }
  }
  res.agreement_at_k = agreement_sum / static_cast<double>(heads.size());
  res.jaccard_at_k = jaccard_sum / static_cast<double>(heads.size());

  // Throughput on the auto-dispatched (native) kernel, like production.
  tensor::qgemm::SetKernel(tensor::qgemm::Kernel::kAuto);
  const ModeResult t = RunUnbatched(&qserver, heads, rels, kMaxThreads);
  res.qps_at_max_threads = t.qps;
  res.throughput_vs_fp32 =
      fp32_qps_at_max > 0 ? t.qps / fp32_qps_at_max : 0;
  tensor::qgemm::SetKernel(pin_kernel);
  return res;
}

int Main(int argc, char** argv) {
  std::string json_out = "BENCH_serving.json";
  std::string pin_kernel_name = "scalar";
  std::vector<char*> positional = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json_out="));
    } else if (arg.rfind("--pin_kernel=", 0) == 0) {
      pin_kernel_name = arg.substr(std::strlen("--pin_kernel="));
    } else {
      positional.push_back(argv[i]);
    }
  }
  tensor::qgemm::Kernel pin_kernel = tensor::qgemm::Kernel::kScalar;
  if (pin_kernel_name == "avx2") {
    pin_kernel = tensor::qgemm::Kernel::kAvx2;
  } else if (pin_kernel_name == "vnni") {
    pin_kernel = tensor::qgemm::Kernel::kVnni;
  } else {
    CAME_CHECK(pin_kernel_name == "scalar");
  }
  // Reuse the shared bench CLI for the dataset scale; epochs is unused
  // (serving cost does not depend on the weights, so no training).
  const bench::BenchArgs args = bench::BenchArgs::Parse(
      static_cast<int>(positional.size()), positional.data(), 0.25, 0);

  std::printf("building DRKG-MM-Synth (scale %.2f)...\n", args.scale);
  const bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  const kg::Dataset& ds = env.bkg.dataset;

  auto model = baselines::CreateModel("CamE", env.Context(), bench::DefaultZoo());
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  CAME_CHECK(ip != nullptr);
  model->SetTraining(false);
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);

  // Query workload: tail queries from the test split, tiled to a fixed
  // count so percentiles are stable.
  const size_t kQueries = 400;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  CAME_CHECK(!ds.test.empty());
  for (size_t i = 0; i < kQueries; ++i) {
    const kg::Triple& t = ds.test[i % ds.test.size()];
    heads.push_back(t.head);
    rels.push_back(t.rel);
  }

  // Warm-up: prime the tensor pool and GEMM packing scratch.
  (void)server.TopKBatch({heads[0], heads[1]}, {rels[0], rels[1]}, kTopK);

  std::vector<ModeResult> results;
  for (int threads = 1; threads <= kMaxThreads; threads *= 2) {
    ModeResult u = RunUnbatched(&server, heads, rels, threads);
    ModeResult b = RunBatched(&server, heads, rels, threads);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps\n",
                u.mode.c_str(), u.threads, u.p50_us, u.p99_us, u.qps);
    std::printf("%-9s t=%d  p50 %8.0fus  p99 %8.0fus  %8.1f qps  "
                "(%lld batches, max %lld coalesced)\n",
                b.mode.c_str(), b.threads, b.p50_us, b.p99_us, b.qps,
                static_cast<long long>(b.batches),
                static_cast<long long>(b.max_coalesced));
    results.push_back(u);
    results.push_back(b);
  }

  double unbatched_qps_at_max = 0;
  double batched_qps_at_max = 0;
  for (const ModeResult& r : results) {
    if (r.threads != kMaxThreads) continue;
    if (r.mode == "unbatched") unbatched_qps_at_max = r.qps;
    if (r.mode == "batched") batched_qps_at_max = r.qps;
  }
  const double speedup = unbatched_qps_at_max > 0
                             ? batched_qps_at_max / unbatched_qps_at_max
                             : 0;
  std::printf("batched/unbatched throughput at %d threads: %.2fx\n",
              kMaxThreads, speedup);

  // Quantized scoring path vs the fp32 server on the same workload.
  std::vector<QuantResult> quant;
  for (const infer::ScoreDtype dtype :
       {infer::ScoreDtype::kInt8, infer::ScoreDtype::kBf16}) {
    QuantResult q = RunQuantized(&server, ip, &table, dtype, pin_kernel,
                                 heads, rels, unbatched_qps_at_max);
    std::printf(
        "%-5s agreement@%lld %.4f  jaccard %.4f  max|err| %.3g  "
        "bytes %.2fx fp32  %8.1f qps @%dt (%.2fx fp32, kernel %s)\n",
        q.dtype.c_str(), static_cast<long long>(kTopK), q.agreement_at_k,
        q.jaccard_at_k, q.max_abs_score_err, q.bytes_ratio,
        q.qps_at_max_threads, kMaxThreads, q.throughput_vs_fp32,
        q.parity_kernel.c_str());
    quant.push_back(q);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("serving");
  w.Key("model");
  w.String("CamE");
  w.Key("num_entities");
  w.Int(ds.num_entities());
  w.Key("dim");
  w.Int(table.dim());
  w.Key("k");
  w.Int(kTopK);
  w.Key("queries");
  w.Int(static_cast<int64_t>(kQueries));
  w.Key("folded_rows");
  w.Bool(table.has_folded_rows());
  w.Key("results");
  w.BeginArray();
  for (const ModeResult& r : results) {
    w.BeginObject();
    w.Key("mode");
    w.String(r.mode);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("p50_us");
    w.Double(r.p50_us);
    w.Key("p99_us");
    w.Double(r.p99_us);
    w.Key("qps");
    w.Double(r.qps);
    if (r.mode == "batched") {
      w.Key("batches");
      w.Int(r.batches);
      w.Key("max_coalesced");
      w.Int(r.max_coalesced);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("batched_speedup_at_max_threads");
  w.Double(speedup);
  w.Key("quantized");
  w.BeginObject();
  w.Key("parity_kernel");
  w.String(pin_kernel_name);
  w.Key("throughput_kernel");
  w.String(tensor::qgemm::KernelName(
      tensor::qgemm::KernelAvailable(tensor::qgemm::Kernel::kVnni)
          ? tensor::qgemm::Kernel::kVnni
          : (tensor::qgemm::KernelAvailable(tensor::qgemm::Kernel::kAvx2)
                 ? tensor::qgemm::Kernel::kAvx2
                 : tensor::qgemm::Kernel::kScalar)));
  for (const QuantResult& q : quant) {
    w.Key(q.dtype);
    w.BeginObject();
    w.Key("parity_kernel");
    w.String(q.parity_kernel);
    w.Key("agreement_at_k");
    w.Double(q.agreement_at_k);
    w.Key("jaccard_at_k");
    w.Double(q.jaccard_at_k);
    w.Key("max_abs_score_err");
    w.Double(q.max_abs_score_err);
    w.Key("entity_matrix_bytes");
    w.Int(q.entity_matrix_bytes);
    w.Key("fp32_entity_matrix_bytes");
    w.Int(ds.num_entities() * table.dim() * 4);
    w.Key("bytes_ratio");
    w.Double(q.bytes_ratio);
    w.Key("qps_at_max_threads");
    w.Double(q.qps_at_max_threads);
    w.Key("throughput_vs_fp32");
    w.Double(q.throughput_vs_fp32);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  if (w.WriteFile(json_out)) {
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) { return came::Main(argc, argv); }
