// Reproduces Fig 1: the diamond experiment. Diamonds are drug pairs
// (e1, e2) both connected to a common drug e0 (via a compound-compound
// edge) and to a common gene e3 via relations r1, r2. A balanced pool of
// "Same" (r1 == r2) and "Not-Same" diamonds is sampled; conditioning the
// selection on molecular-feature similarity of (e1, e2) should raise the
// "Same" rate well above the 50% base rate (the paper reports 66.98%).
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace came {
namespace {

struct Diamond {
  int64_t drug1;
  int64_t drug2;
  int64_t gene;
  bool same;
};

double Similarity(const tensor::Tensor& feats, int64_t a, int64_t b) {
  const int64_t d = feats.dim(1);
  const float* pa = feats.data() + a * d;
  const float* pb = feats.data() + b * d;
  double dot = 0;
  for (int64_t j = 0; j < d; ++j) dot += static_cast<double>(pa[j]) * pb[j];
  return dot;
}

}  // namespace
}  // namespace came

int main(int argc, char** argv) {
  using namespace came;
  const auto args = bench::BenchArgs::Parse(argc, argv, 1.0, 0);
  bench::BenchEnv env = bench::MakeDrkgEnv(args.scale);
  bench::PrintBenchHeader("Fig 1: diamond structures and molecular similarity",
                          env, args);
  const kg::Dataset& ds = env.bkg.dataset;

  // Index drug->gene edges and drug-drug adjacency over the whole KG.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>>
      gene_to_drugs;  // gene -> (drug, rel)
  std::unordered_map<int64_t, std::unordered_set<int64_t>> drug_adjacent;
  for (const kg::Triple& t : ds.AllTriples()) {
    const bool head_compound =
        ds.vocab.entity_type(t.head) == kg::EntityType::kCompound;
    const bool tail_gene =
        ds.vocab.entity_type(t.tail) == kg::EntityType::kGene;
    const bool tail_compound =
        ds.vocab.entity_type(t.tail) == kg::EntityType::kCompound;
    if (head_compound && tail_gene) {
      gene_to_drugs[t.tail].emplace_back(t.head, t.rel);
    }
    if (head_compound && tail_compound) {
      drug_adjacent[t.head].insert(t.tail);
      drug_adjacent[t.tail].insert(t.head);
    }
  }

  // Enumerate diamonds: drugs d1 != d2 sharing gene g and a common drug
  // neighbour e0.
  std::vector<Diamond> same_pool;
  std::vector<Diamond> diff_pool;
  for (const auto& [gene, drugs] : gene_to_drugs) {
    for (size_t i = 0; i < drugs.size(); ++i) {
      for (size_t j = i + 1; j < drugs.size(); ++j) {
        const auto& [d1, r1] = drugs[i];
        const auto& [d2, r2] = drugs[j];
        if (d1 == d2) continue;
        // Require the shared e0 neighbour that closes the diamond.
        const auto it1 = drug_adjacent.find(d1);
        const auto it2 = drug_adjacent.find(d2);
        if (it1 == drug_adjacent.end() || it2 == drug_adjacent.end()) {
          continue;
        }
        bool has_common = false;
        const auto& smaller =
            it1->second.size() < it2->second.size() ? it1->second
                                                    : it2->second;
        const auto& larger =
            it1->second.size() < it2->second.size() ? it2->second
                                                    : it1->second;
        for (int64_t n : smaller) {
          if (larger.count(n)) {
            has_common = true;
            break;
          }
        }
        if (!has_common) continue;
        Diamond dia{d1, d2, gene, r1 == r2};
        (dia.same ? same_pool : diff_pool).push_back(dia);
      }
    }
  }
  std::printf("diamond pool: Same=%zu Not-Same=%zu\n", same_pool.size(),
              diff_pool.size());
  if (same_pool.empty() || diff_pool.empty()) {
    std::printf("not enough diamonds at this scale; raise the scale arg\n");
    return 0;
  }

  // Balanced 50/50 sample (paper: 5,000 + 5,000).
  Rng rng(7);
  const size_t per_class =
      std::min({same_pool.size(), diff_pool.size(), size_t{5000}});
  rng.Shuffle(&same_pool);
  rng.Shuffle(&diff_pool);
  std::vector<Diamond> pool(same_pool.begin(),
                            same_pool.begin() + static_cast<long>(per_class));
  pool.insert(pool.end(), diff_pool.begin(),
              diff_pool.begin() + static_cast<long>(per_class));

  // 100 repeats: random candidate subset -> top-100 by molecule
  // similarity -> fraction Same.
  const tensor::Tensor& feats = env.bank.molecule_features();
  double conditioned_acc = 0.0;
  double random_acc = 0.0;
  const int repeats = 100;
  const size_t top_k = std::min<size_t>(100, per_class);
  for (int rep = 0; rep < repeats; ++rep) {
    rng.Shuffle(&pool);
    const size_t candidates = pool.size();  // threshold = top-100 of pool
    std::vector<std::pair<double, bool>> scored;
    for (size_t i = 0; i < candidates; ++i) {
      scored.emplace_back(Similarity(feats, pool[i].drug1, pool[i].drug2),
                          pool[i].same);
    }
    std::sort(scored.rbegin(), scored.rend());
    int same_top = 0;
    for (size_t i = 0; i < top_k; ++i) same_top += scored[i].second;
    conditioned_acc += static_cast<double>(same_top) / top_k;
    int same_rand = 0;
    for (size_t i = 0; i < top_k; ++i) same_rand += pool[i].same;
    random_acc += static_cast<double>(same_rand) / top_k;
  }
  conditioned_acc = 100.0 * conditioned_acc / repeats;
  random_acc = 100.0 * random_acc / repeats;

  std::printf("\nFig 1(b):\n");
  std::printf("  random sampling:                Same = %.2f%% (expected ~50%%)\n",
              random_acc);
  std::printf("  molecule-similarity conditioned: Same = %.2f%% (paper: 66.98%%)\n",
              conditioned_acc);
  std::printf("  lift over base rate: +%.2f points\n",
              conditioned_acc - random_acc);
  return 0;
}
