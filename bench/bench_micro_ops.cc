// Operator-level microbenchmarks (google-benchmark): the kernels that
// dominate CamE training per the RQ7 scalability analysis — GEMM, batched
// attention, the fused co-attention kernel, the TCA/MMF modules, and the
// convolutional decoder.
//
// Besides the human-readable google-benchmark table, the binary writes a
// machine-readable trajectory file (default BENCH_micro_ops.json, override
// with --json_out=PATH) holding GFLOP/s per GEMM shape for each available
// kernel — including the retained reference ikj loop, so the speedup of
// the blocked SGEMM subsystem is recorded per commit — plus the latency of
// a full filtered-ranking eval batch.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "baselines/model_zoo.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/mmf.h"
#include "core/tca.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "tensor/gemm.h"
#include "tensor/storage_pool.h"
#include "tensor/tensor_ops.h"
#include "train/trainer.h"

namespace came {
namespace {

namespace ts = tensor;

// Pool size before any benchmark overrides it (captured at static init).
const int kDefaultThreads = NumThreads();

ts::Tensor RandomTensor(ts::Shape shape, uint64_t seed) {
  Rng rng(seed);
  return nn::NormalInit(std::move(shape), &rng, 1.0);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ts::Tensor a = RandomTensor({n, n}, 1);
  ts::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchMatMul(benchmark::State& state) {
  const int64_t b = state.range(0);
  ts::Tensor x = RandomTensor({b, 32, 32}, 3);
  ts::Tensor y = RandomTensor({b, 32, 32}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::BatchMatMul(x, y));
  }
}
BENCHMARK(BM_BatchMatMul)->Arg(64)->Arg(256);

void BM_SoftmaxAlong(benchmark::State& state) {
  ts::Tensor x = RandomTensor({256, 64, 64}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::SoftmaxAlong(x, 1));
  }
}
BENCHMARK(BM_SoftmaxAlong);

void BM_CoAttentionFused(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t d = state.range(1);
  ag::Var x(RandomTensor({batch, d}, 6), true);
  ag::Var a(RandomTensor({batch, d}, 7), true);
  ag::Var b(RandomTensor({batch, d}, 8), true);
  ag::Var u(ts::Tensor::Scalar(0.2f), true);
  for (auto _ : state) {
    ag::Var out = ag::CoAttentionApply(x, a, b, u);
    ag::SumAll(out).Backward();
    x.ZeroGrad();
    a.ZeroGrad();
    b.ZeroGrad();
    u.ZeroGrad();
  }
}
BENCHMARK(BM_CoAttentionFused)->Args({128, 32})->Args({256, 32})->Args({256, 64});

void BM_CoAttentionUnfused(benchmark::State& state) {
  // The composed BatchMatMul/Softmax pipeline the fused kernel replaced;
  // the ratio to BM_CoAttentionFused is the ablation of that design choice.
  const int64_t batch = state.range(0);
  const int64_t d = state.range(1);
  ag::Var x(RandomTensor({batch, d}, 6), true);
  ag::Var a(RandomTensor({batch, d}, 7), true);
  ag::Var b(RandomTensor({batch, d}, 8), true);
  for (auto _ : state) {
    ag::Var m = ag::Scale(
        ag::BatchMatMul(ag::Reshape(a, {batch, d, 1}),
                        ag::Reshape(b, {batch, 1, d})),
        0.2f);
    ag::Var s = ag::SoftmaxAlong(m, 1);
    ag::Var out =
        ag::Reshape(ag::BatchMatMul(ag::Reshape(x, {batch, 1, d}), s),
                    {batch, d});
    ag::SumAll(out).Backward();
    x.ZeroGrad();
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_CoAttentionUnfused)->Args({128, 32})->Args({256, 32});

void BM_TcaForward(benchmark::State& state) {
  Rng rng(9);
  core::TcaConfig cfg;
  cfg.dim = state.range(1);
  cfg.num_heads = 2;
  core::Tca tca(cfg, &rng);
  ag::Var q(RandomTensor({state.range(0), cfg.dim}, 10), true);
  ag::Var d(RandomTensor({state.range(0), cfg.dim}, 11), true);
  for (auto _ : state) {
    auto [qt, dt] = tca.Forward(q, d);
    ag::SumAll(ag::Add(qt, dt)).Backward();
    tca.ZeroGrad();
    q.ZeroGrad();
    d.ZeroGrad();
  }
}
BENCHMARK(BM_TcaForward)->Args({256, 32})->Args({256, 64});

void BM_MmfForward(benchmark::State& state) {
  Rng rng(12);
  core::MmfConfig cfg;
  cfg.fusion_dim = 32;
  cfg.input_dims = {32, 32, 32};
  core::Mmf mmf(cfg, &rng);
  std::vector<ag::Var> inputs = {ag::Var(RandomTensor({256, 32}, 13), true),
                                 ag::Var(RandomTensor({256, 32}, 14), true),
                                 ag::Var(RandomTensor({256, 32}, 15), true)};
  for (auto _ : state) {
    ag::SumAll(mmf.Forward(inputs)).Backward();
    mmf.ZeroGrad();
    for (auto& v : inputs) v.ZeroGrad();
  }
}
BENCHMARK(BM_MmfForward);

void BM_Conv2dDecoder(benchmark::State& state) {
  Rng rng(16);
  nn::Conv2d conv(3, 32, 3, 1, &rng);
  ag::Var img(RandomTensor({256, 3, 4, 8}, 17), true);
  for (auto _ : state) {
    ag::SumAll(conv.Forward(img)).Backward();
    conv.ZeroGrad();
    img.ZeroGrad();
  }
}
BENCHMARK(BM_Conv2dDecoder);

void BM_Im2Col(benchmark::State& state) {
  ts::Tensor img = RandomTensor({256, 3, 4, 8}, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Im2Col(img, 3, 3, 1));
  }
}
BENCHMARK(BM_Im2Col);

void BM_GatherScatter(benchmark::State& state) {
  ts::Tensor table = RandomTensor({2000, 32}, 19);
  Rng rng(20);
  std::vector<int64_t> idx(512);
  for (auto& i : idx) i = static_cast<int64_t>(rng.UniformU64(2000));
  for (auto _ : state) {
    ts::Tensor rows = ts::GatherRows(table, idx);
    benchmark::DoNotOptimize(ts::ScatterAddRows(rows, idx, 2000));
  }
}
BENCHMARK(BM_GatherScatter);

// --- threads=1 vs threads=N comparison table ---------------------------
// The rows of each benchmark below differ only in the worker-pool size
// (the Arg), so e.g. BM_MatMul512Threads/real_time/1 vs .../4 is the
// measured speedup of the parallel execution layer on that shape.
// Real time is the column to read: CPU time sums across workers.

void BM_MatMul512Threads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  ts::Tensor a = RandomTensor({512, 512}, 21);
  ts::Tensor b = RandomTensor({512, 512}, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_MatMul512Threads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchMatMulThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  ts::Tensor x = RandomTensor({256, 64, 64}, 23);
  ts::Tensor y = RandomTensor({256, 64, 64}, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::BatchMatMul(x, y));
  }
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_BatchMatMulThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// A full filtered-ranking evaluation batch — ScoreAllTails (1-to-N GEMM)
// plus the per-query rank scans — the shape the CamE decoder evaluates.
void BM_EvalOneToNBatchThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  static datagen::GeneratedBkg* bkg = new datagen::GeneratedBkg(
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.1)));
  static eval::Evaluator* evaluator = new eval::Evaluator(bkg->dataset);
  static baselines::KgcModel* model = [] {
    baselines::ModelContext ctx;
    ctx.num_entities = bkg->dataset.num_entities();
    ctx.num_relations = bkg->dataset.num_relations_with_inverses();
    ctx.train_triples = &bkg->dataset.train;
    baselines::ZooOptions zoo;
    zoo.dim = 64;
    return baselines::CreateModel("DistMult", ctx, zoo).release();
  }();
  eval::EvalConfig ec;
  ec.max_triples = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator->Evaluate(model, bkg->dataset.test, ec));
  }
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_EvalOneToNBatchThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- machine-readable trajectory (BENCH_micro_ops.json) ----------------

// Best-of-several wall time for one call of `fn`, in seconds. Warms up
// once, then repeats until ~0.3 s total (at least 3 reps) and keeps the
// minimum — the standard microbench estimator, robust to scheduler noise.
template <typename Fn>
double BestSeconds(const Fn& fn) {
  fn();  // warm-up (pack buffers, page in operands)
  double best = 1e30;
  double total = 0.0;
  for (int rep = 0; rep < 50 && (rep < 3 || total < 0.3); ++rep) {
    Stopwatch sw;
    fn();
    const double s = sw.ElapsedSeconds();
    best = std::min(best, s);
    total += s;
  }
  return best;
}

// GFLOP/s for one (shape, kernel, threads) cell; kernel==nullopt-style
// empty string means the reference ikj loop.
void EmitGemmCell(JsonWriter* w, int64_t m, int64_t k, int64_t n,
                  const std::string& kernel, int threads, double seconds,
                  double ref_seconds) {
  const double gflops = 2.0 * static_cast<double>(m * k * n) / seconds / 1e9;
  w->BeginObject();
  w->Key("m");
  w->Int(m);
  w->Key("k");
  w->Int(k);
  w->Key("n");
  w->Int(n);
  w->Key("kernel");
  w->String(kernel);
  w->Key("threads");
  w->Int(threads);
  w->Key("ms");
  w->Double(seconds * 1e3);
  w->Key("gflops");
  w->Double(gflops);
  if (ref_seconds > 0.0) {
    w->Key("speedup_vs_reference");
    w->Double(ref_seconds / seconds);
  }
  w->EndObject();
}

}  // namespace

// Outside the anonymous namespace so main() below can name it.
void WriteMicroOpsJson(const std::string& path) {
  namespace gemm = ts::gemm;
  const std::vector<int> thread_counts =
      kDefaultThreads == 1 ? std::vector<int>{1}
                           : std::vector<int>{1, kDefaultThreads};
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("micro_ops");
  w.Key("default_threads");
  w.Int(kDefaultThreads);

  // GEMM GFLOP/s per shape: reference ikj at 1 thread, then every kernel
  // available on this machine at 1 and kDefaultThreads threads.
  w.Key("gemm");
  w.BeginArray();
  const std::vector<std::array<int64_t, 3>> shapes = {
      {128, 128, 128}, {256, 256, 256}, {512, 512, 512}, {300, 257, 301}};
  for (const auto& [m, k, n] : shapes) {
    ts::Tensor a = RandomTensor({m, k}, 25);
    ts::Tensor b = RandomTensor({k, n}, 26);
    ts::Tensor c({m, n});
    const double ref_s = BestSeconds([&] {
      gemm::ReferenceGemm(a.data(), b.data(), c.data(), m, k, n, false,
                          false, /*accumulate=*/false);
    });
    EmitGemmCell(&w, m, k, n, "reference", 1, ref_s, 0.0);
    for (const gemm::Kernel kern :
         {gemm::Kernel::kScalar, gemm::Kernel::kAvx2,
          gemm::Kernel::kAvx512}) {
      gemm::SetKernel(kern);
      if (gemm::ActiveKernel() != kern) continue;  // unavailable here
      for (const int threads : thread_counts) {
        SetNumThreads(threads);
        const double s = BestSeconds([&] {
          gemm::Gemm(a.data(), b.data(), c.data(), m, k, n, false, false,
                     /*accumulate=*/false);
        });
        EmitGemmCell(&w, m, k, n, gemm::KernelName(kern), threads, s,
                     threads == 1 ? ref_s : 0.0);
      }
      SetNumThreads(kDefaultThreads);
    }
    gemm::SetKernel(gemm::Kernel::kAuto);
  }
  w.EndArray();

  // One filtered-ranking evaluation batch (the BM_EvalOneToNBatchThreads
  // workload) at 1 and kDefaultThreads threads.
  w.Key("eval_one_to_n");
  w.BeginArray();
  {
    datagen::GeneratedBkg bkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.1)));
    eval::Evaluator evaluator(bkg.dataset);
    baselines::ModelContext ctx;
    ctx.num_entities = bkg.dataset.num_entities();
    ctx.num_relations = bkg.dataset.num_relations_with_inverses();
    ctx.train_triples = &bkg.dataset.train;
    baselines::ZooOptions zoo;
    zoo.dim = 64;
    std::unique_ptr<baselines::KgcModel> model =
        baselines::CreateModel("DistMult", ctx, zoo);
    eval::EvalConfig ec;
    ec.max_triples = 64;
    for (const int threads : thread_counts) {
      SetNumThreads(threads);
      const double s = BestSeconds(
          [&] { evaluator.Evaluate(model.get(), bkg.dataset.test, ec); });
      w.BeginObject();
      w.Key("threads");
      w.Int(threads);
      w.Key("ms");
      w.Double(s * 1e3);
      w.EndObject();
    }
    SetNumThreads(kDefaultThreads);
  }
  w.EndArray();

  // One CamE training epoch with the storage pool on vs off, at 1 and
  // kDefaultThreads threads: allocations per step (tensor-storage heap
  // buffers; with the pool off every acquire hits the heap, so the on/off
  // ratio is the steady-state allocation reduction) and step latency.
  w.Key("came_training_step");
  w.BeginArray();
  {
    namespace pool = ts::pool;
    const pool::Mode saved_mode = pool::ActiveMode();
    datagen::GeneratedBkg bkg(
        datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.05)));
    encoders::FeatureBankConfig fbc;
    encoders::FeatureBank bank = BuildFeatureBank(bkg, fbc);
    const int64_t batches =
        (static_cast<int64_t>(bkg.dataset.TrainWithInverses().size()) +
         255) / 256;  // TrainConfig default batch_size
    for (const pool::Mode mode : {pool::Mode::kOn, pool::Mode::kOff}) {
      for (const int threads : thread_counts) {
        pool::SetMode(mode);
        SetNumThreads(threads);
        baselines::ModelContext ctx;
        ctx.num_entities = bkg.dataset.num_entities();
        ctx.num_relations = bkg.dataset.num_relations_with_inverses();
        ctx.features = &bank;
        ctx.train_triples = &bkg.dataset.train;
        baselines::ZooOptions zoo;
        zoo.dim = 32;
        zoo.came.fusion_dim = 32;
        zoo.came.reshape_h = 4;
        std::unique_ptr<baselines::KgcModel> model =
            baselines::CreateModel("CamE", ctx, zoo);
        train::TrainConfig cfg;
        cfg.epochs = 4;
        train::Trainer trainer(model.get(), bkg.dataset, cfg);
        // Two warm-up epochs: the first populates the free lists, the
        // second settles them; the measured epoch is steady state.
        trainer.RunEpoch();
        trainer.RunEpoch();
        const int64_t h0 = pool::HeapAllocCount();
        const int64_t a0 = pool::AcquireCount();
        Stopwatch sw;
        trainer.RunEpoch();
        const double seconds = sw.ElapsedSeconds();
        const int64_t heap_allocs = pool::HeapAllocCount() - h0;
        const int64_t acquires = pool::AcquireCount() - a0;
        w.BeginObject();
        w.Key("pool");
        w.String(pool::ModeName(mode));
        w.Key("threads");
        w.Int(threads);
        w.Key("batches");
        w.Int(batches);
        w.Key("allocs_per_step");
        w.Double(static_cast<double>(heap_allocs) /
                 static_cast<double>(batches));
        w.Key("acquires_per_step");
        w.Double(static_cast<double>(acquires) /
                 static_cast<double>(batches));
        w.Key("step_ms");
        w.Double(seconds * 1e3 / static_cast<double>(batches));
        w.EndObject();
      }
    }
    pool::SetMode(saved_mode);
    SetNumThreads(kDefaultThreads);
  }
  w.EndArray();

  w.EndObject();
  if (w.WriteFile(path)) {
    CAME_LOG(Info) << "wrote " << path;
  }
}

}  // namespace came

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Our own flags come after google-benchmark consumed its recognised ones.
  std::string json_out = "BENCH_micro_ops.json";
  bool write_json = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json_out="));
    } else if (arg == "--no_json") {
      write_json = false;
    } else {
      std::fprintf(stderr, "unrecognised flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (write_json) came::WriteMicroOpsJson(json_out);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
