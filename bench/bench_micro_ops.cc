// Operator-level microbenchmarks (google-benchmark): the kernels that
// dominate CamE training per the RQ7 scalability analysis — GEMM, batched
// attention, the fused co-attention kernel, the TCA/MMF modules, and the
// convolutional decoder.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "baselines/model_zoo.h"
#include "common/parallel_for.h"
#include "core/mmf.h"
#include "core/tca.h"
#include "datagen/bkg_generator.h"
#include "eval/evaluator.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "tensor/tensor_ops.h"

namespace came {
namespace {

namespace ts = tensor;

// Pool size before any benchmark overrides it (captured at static init).
const int kDefaultThreads = NumThreads();

ts::Tensor RandomTensor(ts::Shape shape, uint64_t seed) {
  Rng rng(seed);
  return nn::NormalInit(std::move(shape), &rng, 1.0);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ts::Tensor a = RandomTensor({n, n}, 1);
  ts::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchMatMul(benchmark::State& state) {
  const int64_t b = state.range(0);
  ts::Tensor x = RandomTensor({b, 32, 32}, 3);
  ts::Tensor y = RandomTensor({b, 32, 32}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::BatchMatMul(x, y));
  }
}
BENCHMARK(BM_BatchMatMul)->Arg(64)->Arg(256);

void BM_SoftmaxAlong(benchmark::State& state) {
  ts::Tensor x = RandomTensor({256, 64, 64}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::SoftmaxAlong(x, 1));
  }
}
BENCHMARK(BM_SoftmaxAlong);

void BM_CoAttentionFused(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t d = state.range(1);
  ag::Var x(RandomTensor({batch, d}, 6), true);
  ag::Var a(RandomTensor({batch, d}, 7), true);
  ag::Var b(RandomTensor({batch, d}, 8), true);
  ag::Var u(ts::Tensor::Scalar(0.2f), true);
  for (auto _ : state) {
    ag::Var out = ag::CoAttentionApply(x, a, b, u);
    ag::SumAll(out).Backward();
    x.ZeroGrad();
    a.ZeroGrad();
    b.ZeroGrad();
    u.ZeroGrad();
  }
}
BENCHMARK(BM_CoAttentionFused)->Args({128, 32})->Args({256, 32})->Args({256, 64});

void BM_CoAttentionUnfused(benchmark::State& state) {
  // The composed BatchMatMul/Softmax pipeline the fused kernel replaced;
  // the ratio to BM_CoAttentionFused is the ablation of that design choice.
  const int64_t batch = state.range(0);
  const int64_t d = state.range(1);
  ag::Var x(RandomTensor({batch, d}, 6), true);
  ag::Var a(RandomTensor({batch, d}, 7), true);
  ag::Var b(RandomTensor({batch, d}, 8), true);
  for (auto _ : state) {
    ag::Var m = ag::Scale(
        ag::BatchMatMul(ag::Reshape(a, {batch, d, 1}),
                        ag::Reshape(b, {batch, 1, d})),
        0.2f);
    ag::Var s = ag::SoftmaxAlong(m, 1);
    ag::Var out =
        ag::Reshape(ag::BatchMatMul(ag::Reshape(x, {batch, 1, d}), s),
                    {batch, d});
    ag::SumAll(out).Backward();
    x.ZeroGrad();
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_CoAttentionUnfused)->Args({128, 32})->Args({256, 32});

void BM_TcaForward(benchmark::State& state) {
  Rng rng(9);
  core::TcaConfig cfg;
  cfg.dim = state.range(1);
  cfg.num_heads = 2;
  core::Tca tca(cfg, &rng);
  ag::Var q(RandomTensor({state.range(0), cfg.dim}, 10), true);
  ag::Var d(RandomTensor({state.range(0), cfg.dim}, 11), true);
  for (auto _ : state) {
    auto [qt, dt] = tca.Forward(q, d);
    ag::SumAll(ag::Add(qt, dt)).Backward();
    tca.ZeroGrad();
    q.ZeroGrad();
    d.ZeroGrad();
  }
}
BENCHMARK(BM_TcaForward)->Args({256, 32})->Args({256, 64});

void BM_MmfForward(benchmark::State& state) {
  Rng rng(12);
  core::MmfConfig cfg;
  cfg.fusion_dim = 32;
  cfg.input_dims = {32, 32, 32};
  core::Mmf mmf(cfg, &rng);
  std::vector<ag::Var> inputs = {ag::Var(RandomTensor({256, 32}, 13), true),
                                 ag::Var(RandomTensor({256, 32}, 14), true),
                                 ag::Var(RandomTensor({256, 32}, 15), true)};
  for (auto _ : state) {
    ag::SumAll(mmf.Forward(inputs)).Backward();
    mmf.ZeroGrad();
    for (auto& v : inputs) v.ZeroGrad();
  }
}
BENCHMARK(BM_MmfForward);

void BM_Conv2dDecoder(benchmark::State& state) {
  Rng rng(16);
  nn::Conv2d conv(3, 32, 3, 1, &rng);
  ag::Var img(RandomTensor({256, 3, 4, 8}, 17), true);
  for (auto _ : state) {
    ag::SumAll(conv.Forward(img)).Backward();
    conv.ZeroGrad();
    img.ZeroGrad();
  }
}
BENCHMARK(BM_Conv2dDecoder);

void BM_Im2Col(benchmark::State& state) {
  ts::Tensor img = RandomTensor({256, 3, 4, 8}, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Im2Col(img, 3, 3, 1));
  }
}
BENCHMARK(BM_Im2Col);

void BM_GatherScatter(benchmark::State& state) {
  ts::Tensor table = RandomTensor({2000, 32}, 19);
  Rng rng(20);
  std::vector<int64_t> idx(512);
  for (auto& i : idx) i = static_cast<int64_t>(rng.UniformU64(2000));
  for (auto _ : state) {
    ts::Tensor rows = ts::GatherRows(table, idx);
    benchmark::DoNotOptimize(ts::ScatterAddRows(rows, idx, 2000));
  }
}
BENCHMARK(BM_GatherScatter);

// --- threads=1 vs threads=N comparison table ---------------------------
// The rows of each benchmark below differ only in the worker-pool size
// (the Arg), so e.g. BM_MatMul512Threads/real_time/1 vs .../4 is the
// measured speedup of the parallel execution layer on that shape.
// Real time is the column to read: CPU time sums across workers.

void BM_MatMul512Threads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  ts::Tensor a = RandomTensor({512, 512}, 21);
  ts::Tensor b = RandomTensor({512, 512}, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_MatMul512Threads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchMatMulThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  ts::Tensor x = RandomTensor({256, 64, 64}, 23);
  ts::Tensor y = RandomTensor({256, 64, 64}, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::BatchMatMul(x, y));
  }
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_BatchMatMulThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// A full filtered-ranking evaluation batch — ScoreAllTails (1-to-N GEMM)
// plus the per-query rank scans — the shape the CamE decoder evaluates.
void BM_EvalOneToNBatchThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  static datagen::GeneratedBkg* bkg = new datagen::GeneratedBkg(
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(0.1)));
  static eval::Evaluator* evaluator = new eval::Evaluator(bkg->dataset);
  static baselines::KgcModel* model = [] {
    baselines::ModelContext ctx;
    ctx.num_entities = bkg->dataset.num_entities();
    ctx.num_relations = bkg->dataset.num_relations_with_inverses();
    ctx.train_triples = &bkg->dataset.train;
    baselines::ZooOptions zoo;
    zoo.dim = 64;
    return baselines::CreateModel("DistMult", ctx, zoo).release();
  }();
  eval::EvalConfig ec;
  ec.max_triples = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator->Evaluate(model, bkg->dataset.test, ec));
  }
  SetNumThreads(kDefaultThreads);
}
BENCHMARK(BM_EvalOneToNBatchThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace came

BENCHMARK_MAIN();
