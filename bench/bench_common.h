#ifndef CAME_BENCH_BENCH_COMMON_H_
#define CAME_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure of the CamE paper on the synthetic
// DRKG-MM / OMAHA-MM stand-ins; this header provides the dataset +
// feature-bank setup, per-model training policy, and CLI scale handling.

#include <memory>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came::bench {

/// CLI of every bench: [scale] [epochs]. `scale` multiplies the dataset
/// preset (Fig 9 sweeps it); `epochs` caps the per-model training budget.
struct BenchArgs {
  double scale;
  int epochs;

  static BenchArgs Parse(int argc, char** argv, double default_scale,
                         int default_epochs);
};

/// A generated dataset with its frozen multimodal features.
struct BenchEnv {
  datagen::GeneratedBkg bkg;
  encoders::FeatureBank bank;

  baselines::ModelContext Context(uint64_t seed = 3) const;
};

/// Builds the DRKG-MM-Synth environment (GIN pre-training included).
BenchEnv MakeDrkgEnv(double scale, uint64_t seed = 42);
/// Builds the OMAHA-MM-Synth environment (no molecule modality).
BenchEnv MakeOmahaEnv(double scale, uint64_t seed = 42);

/// Model construction defaults used by all benches (dim 64 equivalents
/// scaled to CPU budgets; see DESIGN.md section 5).
baselines::ZooOptions DefaultZoo();

/// Per-model training config: the grid-searched margins from the model
/// zoo plus the regime-specific epoch budget (1-to-N decoders need more
/// epochs than the shallow distance models at equal wall-clock).
train::TrainConfig TrainConfigFor(const std::string& model_name,
                                  const baselines::KgcModel& model,
                                  int epochs);

/// Trains `name` on env and returns its filtered test metrics.
struct TrainedModel {
  std::unique_ptr<baselines::KgcModel> model;
  eval::Metrics test_metrics;
  double train_seconds = 0.0;
};
TrainedModel TrainAndEval(const std::string& name, const BenchEnv& env,
                          const eval::Evaluator& evaluator, int epochs,
                          const baselines::ZooOptions& zoo,
                          int64_t eval_max_triples = -1);

/// Prints a standard bench header with the dataset + budget actually used.
void PrintBenchHeader(const std::string& title, const BenchEnv& env,
                      const BenchArgs& args);

}  // namespace came::bench

#endif  // CAME_BENCH_BENCH_COMMON_H_
