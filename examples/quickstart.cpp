// Quickstart: the minimal end-to-end CamE pipeline.
//   1. Generate a small synthetic multimodal biological KG.
//   2. Build the frozen multimodal features (GIN molecules + text).
//   3. Train CamE with the 1-to-N objective.
//   4. Evaluate with filtered ranking and answer one link query.
//
// Run:  ./quickstart [scale=0.1] [epochs=10] [--ckpt=PATH] [--resume]
//
//   --ckpt=PATH  write a crash-safe checkpoint to PATH after every epoch
//   --resume     restore trainer state from --ckpt before training; the
//                continued run is bitwise-identical to one that never
//                stopped
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/flags.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace came;
  double scale = 0.1;
  int epochs = 10;
  std::string ckpt_path;
  bool resume = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ckpt=", 7) == 0) {
      ckpt_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (positional == 0) {
      scale = flags::DoubleFlag(argv[i], "scale", 1e-6, 1e6);
      ++positional;
    } else {
      epochs = static_cast<int>(
          flags::IntFlag(argv[i], "epochs", 1, 1 << 20));
      ++positional;
    }
  }
  if (resume && ckpt_path.empty()) {
    std::fprintf(stderr, "--resume requires --ckpt=PATH\n");
    return 1;
  }

  // 1. Data: a DRKG-like multimodal BKG (drugs carry molecular graphs,
  //    every entity carries a textual description).
  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(scale));
  const kg::Dataset& ds = bkg.dataset;
  std::printf("dataset: %lld entities, %lld relations, %zu train triples\n",
              static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()), ds.train.size());

  // 2. Frozen modality features (the paper's pre-trained GIN and
  //    CharacterBERT stand-ins).
  encoders::FeatureBankConfig fb;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, fb);

  // 3. Model + training.
  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &ds.train;
  baselines::ZooOptions zoo;
  zoo.dim = 32;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;
  auto model = baselines::CreateModel("CamE", ctx, zoo);
  std::printf("CamE: %lld parameters\n",
              static_cast<long long>(model->NumParameters()));

  train::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.checkpoint_path = ckpt_path;
  train::Trainer trainer(model.get(), ds, cfg);
  if (resume) {
    const Status st = trainer.Resume(ckpt_path);
    if (!st.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s at epoch %d\n", ckpt_path.c_str(),
                trainer.epochs_run());
  }
  trainer.Train([](const train::EpochStats& s) {
    std::printf("epoch %2d  loss %.4f  (%.1fs)\n", s.epoch, s.loss,
                s.seconds_elapsed);
  });

  // 4. Evaluation + one query.
  eval::Evaluator evaluator(ds);
  eval::EvalConfig ec;
  ec.max_triples = 300;
  std::printf("test: %s\n",
              evaluator.Evaluate(model.get(), ds.test, ec).ToString().c_str());

  const kg::Triple& q = ds.test.front();
  std::printf("\nquery (%s, %s, ?):\n", ds.vocab.EntityName(q.head).c_str(),
              ds.vocab.RelationName(q.rel).c_str());
  // Serving path: fold the entity-side state, answer through the
  // ScoreServer's blocked top-K sweep (no full score vector).
  model->SetTraining(false);
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);
  Result<infer::TopKResult> topr = server.TopK(q.head, q.rel, 5);
  if (!topr.ok()) {
    std::fprintf(stderr, "%s\n", topr.status().ToString().c_str());
    return 1;
  }
  const infer::TopKResult top = std::move(topr).value();
  for (size_t i = 0; i < top.ids.size(); ++i) {
    std::printf("  #%zu %-20s score %.2f%s\n", i + 1,
                ds.vocab.EntityName(top.ids[i]).c_str(), top.scores[i],
                top.ids[i] == q.tail ? "  <- ground truth" : "");
  }
  return 0;
}
