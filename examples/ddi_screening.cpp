// Drug-drug interaction screening: the Compound-Compound application
// (paper Section V-G). Trains CamE and MKGformer-lite side by side on the
// same KG, screens a drug against all other drugs for interaction risk,
// and contrasts the two models' hit rates on held-out interactions —
// showing how to run an A/B comparison through the shared KgcModel API.
//
// Run:  ./ddi_screening [scale=0.25] [epochs=25]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/flags.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "train/trainer.h"

namespace {

using namespace came;

std::unique_ptr<baselines::KgcModel> Train(
    const std::string& name, const baselines::ModelContext& ctx,
    const baselines::ZooOptions& zoo, const kg::Dataset& ds, int epochs) {
  auto model = baselines::CreateModel(name, ctx, zoo);
  train::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg = baselines::RecommendedTrainConfig(name, cfg);
  train::Trainer trainer(model.get(), ds, cfg);
  std::printf("training %s...\n", name.c_str());
  trainer.Train();
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale =
      argc > 1 ? flags::DoubleFlag(argv[1], "scale", 1e-6, 1e6) : 0.25;
  const int epochs = static_cast<int>(
      argc > 2 ? flags::IntFlag(argv[2], "epochs", 1, 1 << 20) : 25);

  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(scale));
  const kg::Dataset& ds = bkg.dataset;
  encoders::FeatureBankConfig fb;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, fb);

  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &ds.train;
  baselines::ZooOptions zoo;
  zoo.dim = 32;
  zoo.conv.reshape_h = 4;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;

  auto came_model = Train("CamE", ctx, zoo, ds, epochs);
  auto mkg_model = Train("MKGformer", ctx, zoo, ds, epochs);

  // Held-out interactions to screen for.
  const int64_t ddi = ds.vocab.RelationId("ddi_CC");
  std::vector<kg::Triple> held_out;
  for (const kg::Triple& t : ds.test) {
    if (t.rel == ddi) held_out.push_back(t);
  }
  std::printf("held-out interactions: %zu\n", held_out.size());

  eval::Evaluator evaluator(ds);
  std::printf("CamE       DDI ranking: %s\n",
              evaluator.Evaluate(came_model.get(), held_out).ToString().c_str());
  std::printf("MKGformer  DDI ranking: %s\n",
              evaluator.Evaluate(mkg_model.get(), held_out).ToString().c_str());

  // Screening report for one drug: top-10 interaction candidates among
  // compounds, with the known (training) interactions marked.
  if (held_out.empty()) return 0;
  const int64_t drug = held_out.front().head;
  kg::FilterIndex known(ds.num_entities(), ds.num_relations());
  known.AddTriples(ds.train);

  // Screening runs through the serving path: fold CamE's entity-side
  // state once, then ask the ScoreServer for the top compounds directly
  // (no full score vector, deterministic tie order).
  came_model->SetTraining(false);
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(came_model.get());
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);

  const auto compounds = ds.vocab.EntitiesOfType(kg::EntityType::kCompound);
  const std::vector<int64_t> exclude = {drug};
  infer::TopKOptions opts;
  opts.restrict_to = &compounds;
  opts.exclude = &exclude;
  Result<infer::TopKResult> topr = server.TopK(drug, ddi, 10, opts);
  if (!topr.ok()) {
    std::fprintf(stderr, "%s\n", topr.status().ToString().c_str());
    return 1;
  }
  const infer::TopKResult top = std::move(topr).value();

  std::printf("\nscreening report for %s (%s family):\n",
              ds.vocab.EntityName(drug).c_str(),
              datagen::DrugFamilyName(
                  static_cast<datagen::DrugFamily>(bkg.cluster[drug])));
  for (size_t i = 0; i < top.ids.size(); ++i) {
    const char* status = known.Contains(drug, ddi, top.ids[i])
                             ? "known interaction (train)"
                             : "novel prediction";
    std::printf("  %-20s score %6.2f  %s\n",
                ds.vocab.EntityName(top.ids[i]).c_str(), top.scores[i],
                status);
  }
  return 0;
}
