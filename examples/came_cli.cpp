// came_cli — command-line front end for the library, covering the whole
// lifecycle a downstream user needs without writing C++:
//
//   came_cli generate --out DIR [--dataset drkg|omaha] [--scale S] [--seed N]
//       Generate a synthetic multimodal BKG and save it as TSV.
//   came_cli train --kg DIR --model NAME --ckpt FILE [--epochs N] [--dim D]
//       Train any zoo model on a saved KG; writes a checkpoint.
//       (Multimodal models regenerate the modality features from the
//        dataset config recorded at generate time.)
//   came_cli eval --kg DIR --model NAME --ckpt FILE
//       Filtered-ranking evaluation of a checkpoint on the test split.
//   came_cli predict --kg DIR --model NAME --ckpt FILE --head E --rel R [--topk K]
//       Rank tail candidates for a query.
//
// The KG directory stores entities/relations/train/valid/test TSVs plus a
// small config.tsv describing how to rebuild the modality features.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/flags.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "eval/ranking.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "train/trainer.h"

namespace {

using namespace came;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    std::string value = "1";
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    flags[key] = value;
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: came_cli <generate|train|eval|predict> [flags]\n"
               "  generate --out DIR [--dataset drkg|omaha] [--scale S] "
               "[--seed N]\n"
               "  train    --kg DIR --model NAME --ckpt FILE [--epochs N] "
               "[--dim D]\n"
               "  eval     --kg DIR --model NAME --ckpt FILE [--max N]\n"
               "  predict  --kg DIR --model NAME --ckpt FILE --head ENTITY "
               "--rel RELATION [--topk K]\n");
  return 2;
}

// The generator config echo saved alongside the TSVs so later commands
// can rebuild identical modality features.
struct KgMeta {
  std::string dataset = "drkg";
  double scale = 0.2;
  uint64_t seed = 42;
};

Status SaveMeta(const std::string& dir, const KgMeta& meta) {
  std::ofstream out(dir + "/config.tsv");
  if (!out) return Status::IOError("cannot open " + dir + "/config.tsv");
  out << "dataset\t" << meta.dataset << "\nscale\t" << meta.scale
      << "\nseed\t" << meta.seed << "\n";
  return Status::OK();
}

Result<KgMeta> LoadMeta(const std::string& dir) {
  std::ifstream in(dir + "/config.tsv");
  if (!in) return Status::IOError("cannot open " + dir + "/config.tsv");
  KgMeta meta;
  std::string key;
  std::string value;
  while (in >> key >> value) {
    if (key == "dataset") meta.dataset = value;
    if (key == "scale") {
      auto parsed = flags::ParseDouble(value);
      if (!parsed.ok()) {
        return Status::Corruption(dir + "/config.tsv: bad scale \"" + value +
                                  "\"");
      }
      meta.scale = parsed.value();
    }
    if (key == "seed") {
      auto parsed = flags::ParseUint(value);
      if (!parsed.ok()) {
        return Status::Corruption(dir + "/config.tsv: bad seed \"" + value +
                                  "\"");
      }
      meta.seed = parsed.value();
    }
  }
  return meta;
}

datagen::BkgConfig ConfigFor(const KgMeta& meta) {
  datagen::BkgConfig cfg = meta.dataset == "omaha"
                               ? datagen::BkgConfig::OmahaMmSynth(meta.scale)
                               : datagen::BkgConfig::DrkgMmSynth(meta.scale);
  cfg.seed = meta.seed;
  return cfg;
}

int Generate(const std::map<std::string, std::string>& flags) {
  KgMeta meta;
  meta.dataset = FlagOr(flags, "dataset", "drkg");
  meta.scale = flags::DoubleFlag(FlagOr(flags, "scale", "0.2"), "scale",
                                 1e-6, 1e6);
  meta.seed = flags::UintFlag(FlagOr(flags, "seed", "42"), "seed");
  const std::string dir = FlagOr(flags, "out", "");
  if (dir.empty()) return Usage();

  datagen::GeneratedBkg bkg = datagen::GenerateBkg(ConfigFor(meta));
  std::filesystem::create_directories(dir);
  Status st = bkg.dataset.SaveTsv(dir);
  if (st.ok()) st = SaveMeta(dir, meta);
  if (!st.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld entities, %lld relations, %zu/%zu/%zu "
              "train/valid/test triples\n",
              dir.c_str(),
              static_cast<long long>(bkg.dataset.num_entities()),
              static_cast<long long>(bkg.dataset.num_relations()),
              bkg.dataset.train.size(), bkg.dataset.valid.size(),
              bkg.dataset.test.size());
  return 0;
}

// Loads the KG + rebuilds features + constructs the model.
struct LoadedModel {
  datagen::GeneratedBkg bkg;
  encoders::FeatureBank bank;
  std::unique_ptr<baselines::KgcModel> model;
};

int LoadAll(const std::map<std::string, std::string>& flags,
            LoadedModel* out) {
  const std::string dir = FlagOr(flags, "kg", "");
  const std::string name = FlagOr(flags, "model", "CamE");
  if (dir.empty()) return Usage();
  auto meta = LoadMeta(dir);
  if (!meta.ok()) {
    std::fprintf(stderr, "%s\n", meta.status().ToString().c_str());
    return 1;
  }
  // Regenerate the multimodal side deterministically from the meta; the
  // TSVs are authoritative for the structural side.
  out->bkg = datagen::GenerateBkg(ConfigFor(meta.value()));
  auto loaded = kg::Dataset::LoadTsv(dir, out->bkg.dataset.name);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  out->bkg.dataset = std::move(loaded).value();

  encoders::FeatureBankConfig fb;
  out->bank = BuildFeatureBank(out->bkg, fb);

  baselines::ModelContext ctx;
  ctx.num_entities = out->bkg.dataset.num_entities();
  ctx.num_relations = out->bkg.dataset.num_relations_with_inverses();
  ctx.features = &out->bank;
  ctx.train_triples = &out->bkg.dataset.train;
  baselines::ZooOptions zoo;
  zoo.dim = static_cast<int64_t>(
      flags::IntFlag(FlagOr(flags, "dim", "32"), "dim", 1, 1 << 16));
  zoo.conv.reshape_h = 4;
  zoo.came.fusion_dim = zoo.dim;
  zoo.came.reshape_h = 4;
  out->model = baselines::CreateModel(name, ctx, zoo);
  return 0;
}

int Train(const std::map<std::string, std::string>& flags) {
  LoadedModel lm;
  if (int rc = LoadAll(flags, &lm); rc != 0) return rc;
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  if (ckpt.empty()) return Usage();

  train::TrainConfig cfg;
  cfg.epochs = static_cast<int>(
      flags::IntFlag(FlagOr(flags, "epochs", "20"), "epochs", 1, 1 << 20));
  cfg = baselines::RecommendedTrainConfig(FlagOr(flags, "model", "CamE"),
                                          cfg);
  eval::Evaluator evaluator(lm.bkg.dataset);
  train::Trainer trainer(lm.model.get(), lm.bkg.dataset, cfg);
  const eval::Metrics best = trainer.TrainWithBestValidation(
      evaluator, std::max(2, cfg.epochs / 5), 300,
      [](const train::EpochStats& s) {
        std::printf("epoch %3d  loss %.4f  %.1fs\n", s.epoch, s.loss,
                    s.seconds_elapsed);
      });
  std::printf("best validation: %s\n", best.ToString().c_str());
  Status st = lm.model->SaveParameters(ckpt);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", ckpt.c_str());
  return 0;
}

int Eval(const std::map<std::string, std::string>& flags) {
  LoadedModel lm;
  if (int rc = LoadAll(flags, &lm); rc != 0) return rc;
  Status st = lm.model->LoadParameters(FlagOr(flags, "ckpt", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  eval::Evaluator evaluator(lm.bkg.dataset);
  eval::EvalConfig ec;
  ec.max_triples = flags::IntFlag(FlagOr(flags, "max", "-1"), "max", -1);
  const eval::Metrics m =
      evaluator.Evaluate(lm.model.get(), lm.bkg.dataset.test, ec);
  std::printf("test: %s\n", m.ToString().c_str());
  return 0;
}

int Predict(const std::map<std::string, std::string>& flags) {
  LoadedModel lm;
  if (int rc = LoadAll(flags, &lm); rc != 0) return rc;
  Status st = lm.model->LoadParameters(FlagOr(flags, "ckpt", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const kg::Dataset& ds = lm.bkg.dataset;
  const int64_t head = ds.vocab.EntityId(FlagOr(flags, "head", ""));
  const int64_t rel = ds.vocab.RelationId(FlagOr(flags, "rel", ""));
  if (head < 0 || rel < 0) {
    std::fprintf(stderr, "unknown --head or --rel\n");
    return 1;
  }
  const int64_t topk = flags::IntFlag(FlagOr(flags, "topk", "10"), "topk",
                                      1, 1 << 20);

  lm.model->SetTraining(false);
  kg::FilterIndex known(ds.num_entities(), ds.num_relations());
  known.AddTriples(ds.train);
  const std::vector<int64_t> exclude = {head};  // never predict the query head

  std::vector<int64_t> ids;
  std::vector<float> top_scores;
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(lm.model.get());
  if (ip != nullptr) {
    // Serving path: fold the entity-side state once, then answer the
    // query through the ScoreServer's blocked top-K sweep.
    const infer::FusedEmbeddingTable table =
        infer::FusedEmbeddingTable::Build(ip);
    table.InstallFoldedRows(ip);
    infer::ScoreServer server(ip, &table);
    infer::TopKOptions opts;
    opts.exclude = &exclude;
    Result<infer::TopKResult> result = server.TopK(head, rel, topk, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    ids = std::move(result.value().ids);
    top_scores = std::move(result.value().scores);
  } else {
    // Distance models have no candidate table to serve from; fall back to
    // a full scored scan in the same deterministic order.
    ag::NoGradGuard guard;
    tensor::Tensor scores = lm.model->ScoreAllTails({head}, {rel}).value();
    std::vector<int64_t> all(static_cast<size_t>(ds.num_entities()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    std::sort(all.begin(), all.end(), [&](int64_t a, int64_t b) {
      return eval::ScoredBefore(scores.data()[a], a, scores.data()[b], b);
    });
    for (int64_t t : all) {
      if (t == head) continue;
      if (static_cast<int64_t>(ids.size()) >= topk) break;
      ids.push_back(t);
      top_scores.push_back(scores.data()[t]);
    }
  }

  std::printf("(%s, %s, ?):\n", FlagOr(flags, "head", "").c_str(),
              FlagOr(flags, "rel", "").c_str());
  for (size_t i = 0; i < ids.size(); ++i) {
    std::printf("  %-22s %8.3f%s\n", ds.vocab.EntityName(ids[i]).c_str(),
                top_scores[i],
                known.Contains(head, rel, ids[i]) ? "  [known]" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return Generate(flags);
  if (cmd == "train") return Train(flags);
  if (cmd == "eval") return Eval(flags);
  if (cmd == "predict") return Predict(flags);
  return Usage();
}
