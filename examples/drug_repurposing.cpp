// Drug repurposing: the Compound-Disease application the paper motivates
// (Section V-G: "Compound-Disease relation is relevant to drug
// repurposing"). CamE is trained on the full KG with `treats` edges for
// some compounds held out (the test split), then asked to rank diseases
// for those compounds; we report where the held-out disease lands and
// show the supporting multimodal evidence.
//
// Run:  ./drug_repurposing [scale=0.25] [epochs=25]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/flags.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace came;
  const double scale =
      argc > 1 ? flags::DoubleFlag(argv[1], "scale", 1e-6, 1e6) : 0.25;
  const int epochs = static_cast<int>(
      argc > 2 ? flags::IntFlag(argv[2], "epochs", 1, 1 << 20) : 25);

  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(scale));
  const kg::Dataset& ds = bkg.dataset;
  encoders::FeatureBankConfig fb;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, fb);

  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &ds.train;
  auto zoo = baselines::ZooOptions();
  zoo.dim = 32;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;
  auto model = baselines::CreateModel("CamE", ctx, zoo);

  train::TrainConfig cfg;
  cfg.epochs = epochs;
  train::Trainer trainer(model.get(), ds, cfg);
  std::printf("training CamE for drug repurposing (%d epochs)...\n", epochs);
  trainer.Train();

  // Repurposing queries: held-out (compound, treats, disease) test edges.
  const int64_t treats = ds.vocab.RelationId("treats_CD");
  eval::Evaluator evaluator(ds);
  std::vector<kg::Triple> queries;
  for (const kg::Triple& t : ds.test) {
    if (t.rel == treats) queries.push_back(t);
  }
  std::printf("held-out treats edges: %zu\n", queries.size());
  if (queries.empty()) {
    std::printf("none at this scale; raise the scale argument\n");
    return 0;
  }
  std::printf("repurposing metrics: %s\n",
              evaluator.Evaluate(model.get(), queries).ToString().c_str());

  // Repurposing queries go through the serving path: entity-side state
  // folded once, then top diseases per compound from the ScoreServer
  // (type-aware shortlist, as a practitioner would).
  model->SetTraining(false);
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);

  const auto diseases = ds.vocab.EntitiesOfType(kg::EntityType::kDisease);
  infer::TopKOptions opts;
  opts.restrict_to = &diseases;
  int shown = 0;
  for (const kg::Triple& q : queries) {
    if (shown++ >= 3) break;
    Result<infer::TopKResult> topr = server.TopK(q.head, q.rel, 5, opts);
    if (!topr.ok()) {
      std::fprintf(stderr, "%s\n", topr.status().ToString().c_str());
      return 1;
    }
    const infer::TopKResult top = std::move(topr).value();
    const auto family =
        static_cast<datagen::DrugFamily>(bkg.cluster[q.head]);
    std::printf("\ncandidate drug: %s (%s family)\n",
                ds.vocab.EntityName(q.head).c_str(),
                datagen::DrugFamilyName(family));
    std::printf("  evidence: %s\n",
                bkg.texts[static_cast<size_t>(q.head)].description.c_str());
    for (size_t i = 0; i < top.ids.size(); ++i) {
      std::printf("  disease #%zu: %-22s score %.2f%s\n", i + 1,
                  ds.vocab.EntityName(top.ids[i]).c_str(), top.scores[i],
                  top.ids[i] == q.tail ? "  <- held-out indication" : "");
    }
  }
  return 0;
}
