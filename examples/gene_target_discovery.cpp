// Protein-target identification (Compound-Gene): the third application
// the paper's introduction motivates. This example also demonstrates the
// lower-level APIs: loading a dataset saved to TSV, pre-training
// structural embeddings, and initialising CamE's entity table from them.
//
// Run:  ./gene_target_discovery [scale=0.25] [epochs=25]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "baselines/model_zoo.h"
#include "common/flags.h"
#include "datagen/bkg_generator.h"
#include "encoders/feature_bank.h"
#include "eval/evaluator.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_server.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace came;
  const double scale =
      argc > 1 ? flags::DoubleFlag(argv[1], "scale", 1e-6, 1e6) : 0.25;
  const int epochs = static_cast<int>(
      argc > 2 ? flags::IntFlag(argv[2], "epochs", 1, 1 << 20) : 25);

  datagen::GeneratedBkg bkg =
      datagen::GenerateBkg(datagen::BkgConfig::DrkgMmSynth(scale));

  // Round-trip through the TSV on-disk format (how a real deployment
  // would ingest a curated KG rather than a generator).
  const std::string dir = "/tmp/came_example_kg";
  std::filesystem::create_directories(dir);
  Status st = bkg.dataset.SaveTsv(dir);
  if (!st.ok()) {
    std::printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = kg::Dataset::LoadTsv(dir, bkg.dataset.name);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const kg::Dataset& ds = loaded.value();
  std::printf("round-tripped %s through %s (%zu train triples)\n",
              ds.name.c_str(), dir.c_str(), ds.train.size());

  // Features, including TransE-pretrained structural embeddings used to
  // initialise CamE's entity table.
  encoders::FeatureBankConfig fb;
  fb.pretrain_structural = true;
  fb.structural.dim = 32;
  fb.structural.epochs = 10;
  encoders::FeatureBank bank = BuildFeatureBank(bkg, fb);

  baselines::ModelContext ctx;
  ctx.num_entities = ds.num_entities();
  ctx.num_relations = ds.num_relations_with_inverses();
  ctx.features = &bank;
  ctx.train_triples = &ds.train;
  baselines::ZooOptions zoo;
  zoo.dim = 32;
  zoo.came.fusion_dim = 32;
  zoo.came.reshape_h = 4;
  zoo.came.init_structural_from_pretrained = true;
  auto model = baselines::CreateModel("CamE", ctx, zoo);

  train::TrainConfig cfg;
  cfg.epochs = epochs;
  train::Trainer trainer(model.get(), ds, cfg);
  std::printf("training CamE (entity table warm-started from TransE)...\n");
  trainer.Train();

  // Target-identification queries: held-out targets_CG edges.
  const int64_t targets = ds.vocab.RelationId("targets_CG");
  std::vector<kg::Triple> queries;
  for (const kg::Triple& t : ds.test) {
    if (t.rel == targets) queries.push_back(t);
  }
  eval::Evaluator evaluator(ds);
  if (!queries.empty()) {
    std::printf("target-identification metrics: %s\n",
                evaluator.Evaluate(model.get(), queries).ToString().c_str());
  }

  // Rank genes for a compound through the serving path; print the
  // gene-family evidence.
  const kg::Triple q = queries.empty() ? ds.test.front() : queries.front();
  model->SetTraining(false);
  auto* ip = dynamic_cast<baselines::InnerProductKgcModel*>(model.get());
  const infer::FusedEmbeddingTable table = infer::FusedEmbeddingTable::Build(ip);
  table.InstallFoldedRows(ip);
  infer::ScoreServer server(ip, &table);
  const auto genes = ds.vocab.EntitiesOfType(kg::EntityType::kGene);
  infer::TopKOptions opts;
  opts.restrict_to = &genes;
  Result<infer::TopKResult> topr = server.TopK(q.head, q.rel, 5, opts);
  if (!topr.ok()) {
    std::fprintf(stderr, "%s\n", topr.status().ToString().c_str());
    return 1;
  }
  const infer::TopKResult top = std::move(topr).value();
  std::printf("\ncandidate targets for %s:\n",
              ds.vocab.EntityName(q.head).c_str());
  for (size_t i = 0; i < top.ids.size(); ++i) {
    const int64_t g = top.ids[i];
    std::printf("  #%zu %-10s score %6.2f  (%s)%s\n", i + 1,
                ds.vocab.EntityName(g).c_str(), top.scores[i],
                bkg.texts[static_cast<size_t>(g)].description.c_str(),
                g == q.tail ? "  <- held-out target" : "");
  }
  std::filesystem::remove_all(dir);
  return 0;
}
