file(REMOVE_RECURSE
  "CMakeFiles/drug_repurposing.dir/drug_repurposing.cpp.o"
  "CMakeFiles/drug_repurposing.dir/drug_repurposing.cpp.o.d"
  "drug_repurposing"
  "drug_repurposing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_repurposing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
