file(REMOVE_RECURSE
  "CMakeFiles/gene_target_discovery.dir/gene_target_discovery.cpp.o"
  "CMakeFiles/gene_target_discovery.dir/gene_target_discovery.cpp.o.d"
  "gene_target_discovery"
  "gene_target_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_target_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
