# Empty dependencies file for gene_target_discovery.
# This may be replaced when dependencies are built.
