file(REMOVE_RECURSE
  "CMakeFiles/came_cli.dir/came_cli.cpp.o"
  "CMakeFiles/came_cli.dir/came_cli.cpp.o.d"
  "came_cli"
  "came_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/came_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
