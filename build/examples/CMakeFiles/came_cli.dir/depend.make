# Empty dependencies file for came_cli.
# This may be replaced when dependencies are built.
