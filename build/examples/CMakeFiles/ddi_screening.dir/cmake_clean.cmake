file(REMOVE_RECURSE
  "CMakeFiles/ddi_screening.dir/ddi_screening.cpp.o"
  "CMakeFiles/ddi_screening.dir/ddi_screening.cpp.o.d"
  "ddi_screening"
  "ddi_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
