# Empty dependencies file for ddi_screening.
# This may be replaced when dependencies are built.
