# Empty dependencies file for bench_table4_relations.
# This may be replaced when dependencies are built.
