file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_relations.dir/bench_table4_relations.cc.o"
  "CMakeFiles/bench_table4_relations.dir/bench_table4_relations.cc.o.d"
  "bench_table4_relations"
  "bench_table4_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
