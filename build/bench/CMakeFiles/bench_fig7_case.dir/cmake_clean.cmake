file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_case.dir/bench_fig7_case.cc.o"
  "CMakeFiles/bench_fig7_case.dir/bench_fig7_case.cc.o.d"
  "bench_fig7_case"
  "bench_fig7_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
