# Empty dependencies file for bench_fig7_case.
# This may be replaced when dependencies are built.
