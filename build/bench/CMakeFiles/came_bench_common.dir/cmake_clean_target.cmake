file(REMOVE_RECURSE
  "libcame_bench_common.a"
)
