# Empty dependencies file for came_bench_common.
# This may be replaced when dependencies are built.
