file(REMOVE_RECURSE
  "CMakeFiles/came_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/came_bench_common.dir/bench_common.cc.o.d"
  "libcame_bench_common.a"
  "libcame_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/came_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
