
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/gradcheck.cc" "src/CMakeFiles/came.dir/autograd/gradcheck.cc.o" "gcc" "src/CMakeFiles/came.dir/autograd/gradcheck.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/came.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/came.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/came.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/came.dir/autograd/variable.cc.o.d"
  "/root/repo/src/baselines/bilinear.cc" "src/CMakeFiles/came.dir/baselines/bilinear.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/bilinear.cc.o.d"
  "/root/repo/src/baselines/compgcn.cc" "src/CMakeFiles/came.dir/baselines/compgcn.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/compgcn.cc.o.d"
  "/root/repo/src/baselines/conve.cc" "src/CMakeFiles/came.dir/baselines/conve.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/conve.cc.o.d"
  "/root/repo/src/baselines/kgc_model.cc" "src/CMakeFiles/came.dir/baselines/kgc_model.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/kgc_model.cc.o.d"
  "/root/repo/src/baselines/mkgformer_lite.cc" "src/CMakeFiles/came.dir/baselines/mkgformer_lite.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/mkgformer_lite.cc.o.d"
  "/root/repo/src/baselines/model_zoo.cc" "src/CMakeFiles/came.dir/baselines/model_zoo.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/model_zoo.cc.o.d"
  "/root/repo/src/baselines/multimodal_baselines.cc" "src/CMakeFiles/came.dir/baselines/multimodal_baselines.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/multimodal_baselines.cc.o.d"
  "/root/repo/src/baselines/rotational.cc" "src/CMakeFiles/came.dir/baselines/rotational.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/rotational.cc.o.d"
  "/root/repo/src/baselines/translational.cc" "src/CMakeFiles/came.dir/baselines/translational.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/translational.cc.o.d"
  "/root/repo/src/baselines/translational_extensions.cc" "src/CMakeFiles/came.dir/baselines/translational_extensions.cc.o" "gcc" "src/CMakeFiles/came.dir/baselines/translational_extensions.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/came.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/came.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/came.dir/common/random.cc.o" "gcc" "src/CMakeFiles/came.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/came.dir/common/status.cc.o" "gcc" "src/CMakeFiles/came.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/came.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/came.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/table_writer.cc" "src/CMakeFiles/came.dir/common/table_writer.cc.o" "gcc" "src/CMakeFiles/came.dir/common/table_writer.cc.o.d"
  "/root/repo/src/core/came_model.cc" "src/CMakeFiles/came.dir/core/came_model.cc.o" "gcc" "src/CMakeFiles/came.dir/core/came_model.cc.o.d"
  "/root/repo/src/core/mmf.cc" "src/CMakeFiles/came.dir/core/mmf.cc.o" "gcc" "src/CMakeFiles/came.dir/core/mmf.cc.o.d"
  "/root/repo/src/core/ric.cc" "src/CMakeFiles/came.dir/core/ric.cc.o" "gcc" "src/CMakeFiles/came.dir/core/ric.cc.o.d"
  "/root/repo/src/core/tca.cc" "src/CMakeFiles/came.dir/core/tca.cc.o" "gcc" "src/CMakeFiles/came.dir/core/tca.cc.o.d"
  "/root/repo/src/datagen/bkg_generator.cc" "src/CMakeFiles/came.dir/datagen/bkg_generator.cc.o" "gcc" "src/CMakeFiles/came.dir/datagen/bkg_generator.cc.o.d"
  "/root/repo/src/datagen/molecule.cc" "src/CMakeFiles/came.dir/datagen/molecule.cc.o" "gcc" "src/CMakeFiles/came.dir/datagen/molecule.cc.o.d"
  "/root/repo/src/datagen/textgen.cc" "src/CMakeFiles/came.dir/datagen/textgen.cc.o" "gcc" "src/CMakeFiles/came.dir/datagen/textgen.cc.o.d"
  "/root/repo/src/encoders/feature_bank.cc" "src/CMakeFiles/came.dir/encoders/feature_bank.cc.o" "gcc" "src/CMakeFiles/came.dir/encoders/feature_bank.cc.o.d"
  "/root/repo/src/encoders/gin.cc" "src/CMakeFiles/came.dir/encoders/gin.cc.o" "gcc" "src/CMakeFiles/came.dir/encoders/gin.cc.o.d"
  "/root/repo/src/encoders/structural_pretrain.cc" "src/CMakeFiles/came.dir/encoders/structural_pretrain.cc.o" "gcc" "src/CMakeFiles/came.dir/encoders/structural_pretrain.cc.o.d"
  "/root/repo/src/encoders/text_encoder.cc" "src/CMakeFiles/came.dir/encoders/text_encoder.cc.o" "gcc" "src/CMakeFiles/came.dir/encoders/text_encoder.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/came.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/came.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/came.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/came.dir/eval/metrics.cc.o.d"
  "/root/repo/src/kg/dataset.cc" "src/CMakeFiles/came.dir/kg/dataset.cc.o" "gcc" "src/CMakeFiles/came.dir/kg/dataset.cc.o.d"
  "/root/repo/src/kg/filter_index.cc" "src/CMakeFiles/came.dir/kg/filter_index.cc.o" "gcc" "src/CMakeFiles/came.dir/kg/filter_index.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/CMakeFiles/came.dir/kg/triple_store.cc.o" "gcc" "src/CMakeFiles/came.dir/kg/triple_store.cc.o.d"
  "/root/repo/src/kg/vocab.cc" "src/CMakeFiles/came.dir/kg/vocab.cc.o" "gcc" "src/CMakeFiles/came.dir/kg/vocab.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/came.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/came.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/came.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/came.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/came.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/came.dir/nn/module.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/came.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/came.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/came.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/came.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/came.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/came.dir/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/train/convergence.cc" "src/CMakeFiles/came.dir/train/convergence.cc.o" "gcc" "src/CMakeFiles/came.dir/train/convergence.cc.o.d"
  "/root/repo/src/train/grid_search.cc" "src/CMakeFiles/came.dir/train/grid_search.cc.o" "gcc" "src/CMakeFiles/came.dir/train/grid_search.cc.o.d"
  "/root/repo/src/train/negative_sampler.cc" "src/CMakeFiles/came.dir/train/negative_sampler.cc.o" "gcc" "src/CMakeFiles/came.dir/train/negative_sampler.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/came.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/came.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
