file(REMOVE_RECURSE
  "libcame.a"
)
