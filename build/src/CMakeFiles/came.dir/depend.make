# Empty dependencies file for came.
# This may be replaced when dependencies are built.
