file(REMOVE_RECURSE
  "CMakeFiles/test_datagen.dir/datagen/datagen_test.cc.o"
  "CMakeFiles/test_datagen.dir/datagen/datagen_test.cc.o.d"
  "test_datagen"
  "test_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
