file(REMOVE_RECURSE
  "CMakeFiles/test_encoders.dir/encoders/encoders_test.cc.o"
  "CMakeFiles/test_encoders.dir/encoders/encoders_test.cc.o.d"
  "test_encoders"
  "test_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
