# Empty dependencies file for test_encoders.
# This may be replaced when dependencies are built.
