file(REMOVE_RECURSE
  "CMakeFiles/test_kg.dir/kg/kg_test.cc.o"
  "CMakeFiles/test_kg.dir/kg/kg_test.cc.o.d"
  "test_kg"
  "test_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
