file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/fast_math_test.cc.o"
  "CMakeFiles/test_common.dir/common/fast_math_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/random_test.cc.o"
  "CMakeFiles/test_common.dir/common/random_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/status_test.cc.o"
  "CMakeFiles/test_common.dir/common/status_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/table_writer_test.cc.o"
  "CMakeFiles/test_common.dir/common/table_writer_test.cc.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
