file(REMOVE_RECURSE
  "CMakeFiles/test_eval.dir/eval/evaluator_property_test.cc.o"
  "CMakeFiles/test_eval.dir/eval/evaluator_property_test.cc.o.d"
  "test_eval"
  "test_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
