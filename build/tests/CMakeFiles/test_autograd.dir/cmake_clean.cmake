file(REMOVE_RECURSE
  "CMakeFiles/test_autograd.dir/autograd/autograd_invariants_test.cc.o"
  "CMakeFiles/test_autograd.dir/autograd/autograd_invariants_test.cc.o.d"
  "CMakeFiles/test_autograd.dir/autograd/autograd_test.cc.o"
  "CMakeFiles/test_autograd.dir/autograd/autograd_test.cc.o.d"
  "CMakeFiles/test_autograd.dir/autograd/gradcheck_test.cc.o"
  "CMakeFiles/test_autograd.dir/autograd/gradcheck_test.cc.o.d"
  "test_autograd"
  "test_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
