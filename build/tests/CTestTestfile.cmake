# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_autograd "/root/repo/build/tests/test_autograd")
set_tests_properties(test_autograd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_optim "/root/repo/build/tests/test_optim")
set_tests_properties(test_optim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kg "/root/repo/build/tests/test_kg")
set_tests_properties(test_kg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_datagen "/root/repo/build/tests/test_datagen")
set_tests_properties(test_datagen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_encoders "/root/repo/build/tests/test_encoders")
set_tests_properties(test_encoders PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_train "/root/repo/build/tests/test_train")
set_tests_properties(test_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_eval "/root/repo/build/tests/test_eval")
set_tests_properties(test_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;came_add_test;/root/repo/tests/CMakeLists.txt;0;")
