#include "eval/ranking.h"

#include <algorithm>
#include <cmath>

namespace came::eval {

RankAccumulator::RankAccumulator(float target_score, int64_t target,
                                 std::span<const int64_t> known_tails)
    : target_score_(target_score),
      target_is_nan_(std::isnan(target_score)),
      target_(target),
      known_tails_(known_tails) {}

void RankAccumulator::Accumulate(const float* scores, int64_t begin,
                                 int64_t len) {
  if (target_is_nan_) return;  // Rank() derives the NaN-target rank directly.
  // known_tails is sorted; walk a cursor across this panel's id range.
  auto known_it =
      std::lower_bound(known_tails_.begin(), known_tails_.end(), begin);
  for (int64_t j = 0; j < len; ++j) {
    const int64_t i = begin + j;
    while (known_it != known_tails_.end() && *known_it < i) ++known_it;
    if (known_it != known_tails_.end() && *known_it == i && i != target_) {
      continue;  // filtered: another known true tail
    }
    if (i == target_) continue;
    const float s = scores[j];
    if (std::isnan(s)) continue;
    if (s > target_score_) {
      ++better_;
    } else if (s == target_score_) {
      ++equal_;
    }
  }
}

double RankAccumulator::Rank(int64_t n) const {
  if (target_is_nan_) {
    int64_t filtered_others = 0;
    for (int64_t t : known_tails_) filtered_others += t != target_;
    // 1 + the number of candidates the target is compared against.
    return static_cast<double>(n - filtered_others);
  }
  return 1.0 + static_cast<double>(better_) +
         static_cast<double>(equal_) / 2.0;
}

double FilteredRank(const float* scores, int64_t n, int64_t target,
                    std::span<const int64_t> known_tails) {
  RankAccumulator acc(scores[target], target, known_tails);
  acc.Accumulate(scores, 0, n);
  return acc.Rank(n);
}

bool ScoredBefore(float score_a, int64_t id_a, float score_b, int64_t id_b) {
  const bool nan_a = std::isnan(score_a);
  const bool nan_b = std::isnan(score_b);
  if (nan_a != nan_b) return nan_b;            // NaN ranks worst
  if (!nan_a && score_a != score_b) return score_a > score_b;
  return id_a < id_b;                          // deterministic tie-break
}

}  // namespace came::eval
