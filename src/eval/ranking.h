#ifndef CAME_EVAL_RANKING_H_
#define CAME_EVAL_RANKING_H_

#include <cstdint>
#include <span>

namespace came::eval {

// The single implementation of the filtered ranking protocol (Bordes et
// al.) shared by the Evaluator, the ScoreServer, and the scenario CLIs.
// Rules:
//   * known true tails for the query — other than the target — are
//     filtered out of the candidate set entirely;
//   * ties rank as 1 + #better + #equal/2, so a constant-scoring model
//     ranks mid-table instead of first;
//   * a NaN candidate score is skipped (it is neither better nor equal);
//   * a NaN *target* score ranks worst: 1 + the number of candidates it
//     was compared against. Without this rule a diverging model would
//     rank first on every query and silently report perfect MRR.

/// Streaming rank accumulator: feed disjoint [begin, begin+len) panels of
/// the score vector in any order, then read the rank. Lets the ScoreServer
/// rank a target over blocked entity panels without ever materialising the
/// full N-entity score vector; FilteredRank below is the one-shot wrapper
/// the Evaluator uses on a full row.
class RankAccumulator {
 public:
  /// The storage behind `known_tails` must stay alive and sorted
  /// ascending (FilterIndex guarantees both) for the accumulator's
  /// lifetime.
  RankAccumulator(float target_score, int64_t target,
                  std::span<const int64_t> known_tails);

  /// Accounts for candidates [begin, begin + len) with scores
  /// `scores[0..len)`. Panels must be disjoint; together they must cover
  /// exactly the candidate ids the rank should be computed over.
  void Accumulate(const float* scores, int64_t begin, int64_t len);

  /// Filtered rank after all panels covering [0, n) have been fed.
  double Rank(int64_t n) const;

 private:
  float target_score_;
  bool target_is_nan_;
  int64_t target_;
  std::span<const int64_t> known_tails_;
  int64_t better_ = 0;
  int64_t equal_ = 0;
};

/// One-shot filtered rank of `target` within the full score row
/// `scores[0..n)`.
double FilteredRank(const float* scores, int64_t n, int64_t target,
                    std::span<const int64_t> known_tails);

/// The total order the serving layer ranks candidates by: higher score
/// first, NaN scores worst (below every real score), ties broken by
/// ascending entity id so results are deterministic. Returns true when
/// (score_a, id_a) ranks strictly ahead of (score_b, id_b).
bool ScoredBefore(float score_a, int64_t id_a, float score_b, int64_t id_b);

}  // namespace came::eval

#endif  // CAME_EVAL_RANKING_H_
