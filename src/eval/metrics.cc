#include "eval/metrics.h"

#include <cstdio>

#include "common/logging.h"

namespace came::eval {

void Metrics::AddRank(double rank) {
  CAME_CHECK_GE(rank, 1.0);
  rank_sum += rank;
  reciprocal_sum += 1.0 / rank;
  hits1 += rank <= 1.0;
  hits3 += rank <= 3.0;
  hits10 += rank <= 10.0;
  ++count;
}

void Metrics::Merge(const Metrics& other) {
  rank_sum += other.rank_sum;
  reciprocal_sum += other.reciprocal_sum;
  hits1 += other.hits1;
  hits3 += other.hits3;
  hits10 += other.hits10;
  count += other.count;
}

double Metrics::Mr() const { return count == 0 ? 0.0 : rank_sum / count; }
double Metrics::Mrr() const {
  return count == 0 ? 0.0 : 100.0 * reciprocal_sum / count;
}
double Metrics::Hits1() const {
  return count == 0 ? 0.0 : 100.0 * hits1 / count;
}
double Metrics::Hits3() const {
  return count == 0 ? 0.0 : 100.0 * hits3 / count;
}
double Metrics::Hits10() const {
  return count == 0 ? 0.0 : 100.0 * hits10 / count;
}

std::string Metrics::ToString() const {
  char buf[160];
  (void)std::snprintf(buf, sizeof(buf),
                "MRR=%.1f MR=%.0f H@1=%.1f H@3=%.1f H@10=%.1f (n=%lld)",
                Mrr(), Mr(), Hits1(), Hits3(), Hits10(),
                static_cast<long long>(count));
  return buf;
}

}  // namespace came::eval
