#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/random.h"
#include "eval/ranking.h"
#include "infer/no_tape.h"

namespace came::eval {

Evaluator::Evaluator(const kg::Dataset& dataset)
    : dataset_(dataset),
      filter_(dataset.num_entities(), dataset.num_relations()) {
  filter_.AddTriples(dataset.AllTriples());
}

Metrics Evaluator::Evaluate(baselines::KgcModel* model,
                            const std::vector<kg::Triple>& triples,
                            const EvalConfig& config) const {
  CAME_CHECK(model != nullptr);
  const bool was_training = model->training();
  model->SetTraining(false);
  // Enforced no-tape scope: every model forward below dispatches
  // forward-only, and the guard CHECK-fails if any op records a node.
  infer::NoTapeGuard guard;

  // Build the query list: (head, rel, target-tail) per direction.
  struct Query {
    int64_t head;
    int64_t rel;
    int64_t target;
  };
  std::vector<Query> queries;
  std::vector<kg::Triple> subset = triples;
  if (config.max_triples >= 0 &&
      static_cast<int64_t>(subset.size()) > config.max_triples) {
    Rng rng(config.seed);
    rng.Shuffle(&subset);
    subset.resize(static_cast<size_t>(config.max_triples));
  }
  const int64_t r_offset = dataset_.num_relations();
  for (const kg::Triple& t : subset) {
    queries.push_back({t.head, t.rel, t.tail});
    if (config.both_directions) {
      queries.push_back({t.tail, t.rel + r_offset, t.head});
    }
  }

  Metrics metrics;
  const int64_t n = dataset_.num_entities();
  // Reused across batches: the index vectors keep their capacity, and the
  // score tensor the model returns recycles the same pooled buffer every
  // batch (identical shape -> same size class).
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  std::vector<double> ranks;
  for (size_t start = 0; start < queries.size();
       start += static_cast<size_t>(config.batch_size)) {
    const size_t end = std::min(
        queries.size(), start + static_cast<size_t>(config.batch_size));
    heads.clear();
    rels.clear();
    for (size_t i = start; i < end; ++i) {
      heads.push_back(queries[i].head);
      rels.push_back(queries[i].rel);
    }
    const tensor::Tensor scores =
        model->ScoreAllTails(heads, rels).value();
    // Each query's O(N) rank scan is independent; compute them across the
    // pool, then accumulate sequentially so the metric sums (ordered
    // double additions) stay deterministic at any thread count.
    const int64_t bsz = static_cast<int64_t>(end - start);
    ranks.assign(static_cast<size_t>(bsz), 0.0);
    const int64_t grain = std::max<int64_t>(1, 4096 / std::max<int64_t>(1, n));
    ParallelFor(0, bsz, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const Query& q = queries[start + static_cast<size_t>(i)];
        const float* row = scores.data() + i * n;
        ranks[static_cast<size_t>(i)] =
            FilteredRank(row, n, q.target, filter_.Tails(q.head, q.rel));
      }
    });
    for (double r : ranks) metrics.AddRank(r);
  }
  model->SetTraining(was_training);
  return metrics;
}

}  // namespace came::eval
