#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace came::eval {

Evaluator::Evaluator(const kg::Dataset& dataset)
    : dataset_(dataset),
      filter_(dataset.num_entities(), dataset.num_relations()) {
  filter_.AddTriples(dataset.AllTriples());
}

namespace {

// Filtered rank of `target` within `scores` (row of length N): known true
// tails other than the target are skipped entirely.
double FilteredRank(const float* scores, int64_t n, int64_t target,
                    const std::vector<int64_t>& known_tails) {
  const float s_target = scores[target];
  int64_t better = 0;
  int64_t equal = 0;
  size_t known_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    // known_tails is sorted; advance the cursor and skip filtered ids.
    while (known_idx < known_tails.size() && known_tails[known_idx] < i) {
      ++known_idx;
    }
    if (known_idx < known_tails.size() && known_tails[known_idx] == i &&
        i != target) {
      continue;
    }
    if (i == target) continue;
    const float s = scores[i];
    if (std::isnan(s)) continue;
    if (s > s_target) {
      ++better;
    } else if (s == s_target) {
      ++equal;
    }
  }
  return 1.0 + static_cast<double>(better) + static_cast<double>(equal) / 2.0;
}

}  // namespace

Metrics Evaluator::Evaluate(baselines::KgcModel* model,
                            const std::vector<kg::Triple>& triples,
                            const EvalConfig& config) const {
  CAME_CHECK(model != nullptr);
  const bool was_training = model->training();
  model->SetTraining(false);
  ag::NoGradGuard guard;

  // Build the query list: (head, rel, target-tail) per direction.
  struct Query {
    int64_t head;
    int64_t rel;
    int64_t target;
  };
  std::vector<Query> queries;
  std::vector<kg::Triple> subset = triples;
  if (config.max_triples >= 0 &&
      static_cast<int64_t>(subset.size()) > config.max_triples) {
    Rng rng(config.seed);
    rng.Shuffle(&subset);
    subset.resize(static_cast<size_t>(config.max_triples));
  }
  const int64_t r_offset = dataset_.num_relations();
  for (const kg::Triple& t : subset) {
    queries.push_back({t.head, t.rel, t.tail});
    if (config.both_directions) {
      queries.push_back({t.tail, t.rel + r_offset, t.head});
    }
  }

  Metrics metrics;
  const int64_t n = dataset_.num_entities();
  for (size_t start = 0; start < queries.size();
       start += static_cast<size_t>(config.batch_size)) {
    const size_t end = std::min(
        queries.size(), start + static_cast<size_t>(config.batch_size));
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    for (size_t i = start; i < end; ++i) {
      heads.push_back(queries[i].head);
      rels.push_back(queries[i].rel);
    }
    const tensor::Tensor scores =
        model->ScoreAllTails(heads, rels).value();
    for (size_t i = start; i < end; ++i) {
      const Query& q = queries[i];
      const float* row =
          scores.data() + static_cast<int64_t>(i - start) * n;
      metrics.AddRank(
          FilteredRank(row, n, q.target, filter_.Tails(q.head, q.rel)));
    }
  }
  model->SetTraining(was_training);
  return metrics;
}

}  // namespace came::eval
