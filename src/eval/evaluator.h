#ifndef CAME_EVAL_EVALUATOR_H_
#define CAME_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "baselines/kgc_model.h"
#include "eval/metrics.h"
#include "kg/dataset.h"
#include "kg/filter_index.h"

namespace came::eval {

struct EvalConfig {
  int64_t batch_size = 128;
  /// Evaluate at most this many triples (-1 = all); used by the
  /// convergence experiment, which samples 10k test triples like the
  /// paper (Section V-I).
  int64_t max_triples = -1;
  /// Rank both (h, r, ?) and the inverse (t, r^-1, ?) query per triple.
  bool both_directions = true;
  uint64_t seed = 5;
};

/// Filtered-setting ranking evaluator (Bordes et al.): when ranking the
/// true tail, every *other* known true tail of the query — across train,
/// valid and test — is masked out. Ties rank as 1 + #better + #equal/2 so
/// constant-scoring models rank mid-table instead of first.
class Evaluator {
 public:
  explicit Evaluator(const kg::Dataset& dataset);

  /// Evaluates (with the model switched to eval mode and no tape) over
  /// the given triples — pass dataset.test, dataset.valid, or any slice.
  Metrics Evaluate(baselines::KgcModel* model,
                   const std::vector<kg::Triple>& triples,
                   const EvalConfig& config = {}) const;

  const kg::FilterIndex& filter() const { return filter_; }

 private:
  const kg::Dataset& dataset_;
  kg::FilterIndex filter_;
};

}  // namespace came::eval

#endif  // CAME_EVAL_EVALUATOR_H_
