#ifndef CAME_EVAL_METRICS_H_
#define CAME_EVAL_METRICS_H_

#include <cstdint>
#include <string>

namespace came::eval {

/// Accumulator for the paper's ranking metrics. Ranks are 1-based.
/// Accessors report MRR/Hits as percentages (x100), matching how the
/// paper's tables print them.
struct Metrics {
  double rank_sum = 0.0;
  double reciprocal_sum = 0.0;
  int64_t hits1 = 0;
  int64_t hits3 = 0;
  int64_t hits10 = 0;
  int64_t count = 0;

  void AddRank(double rank);
  void Merge(const Metrics& other);

  double Mr() const;
  double Mrr() const;     // percentage
  double Hits1() const;   // percentage
  double Hits3() const;   // percentage
  double Hits10() const;  // percentage

  /// "MRR=50.4 MR=412 H@1=40.2 H@3=57.1 H@10=67.7 (n=...)"
  std::string ToString() const;
};

}  // namespace came::eval

#endif  // CAME_EVAL_METRICS_H_
