#include "optim/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace came::optim {

Optimizer::Optimizer(std::vector<ag::Var> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    CAME_CHECK(p.defined());
    CAME_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(tensor::Tensor::Zeros(p.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (!p.has_grad()) continue;
    tensor::Tensor g = p.grad();
    float* pv = p.mutable_value().data();
    const float* pg = g.data();
    const int64_t n = g.numel();
    if (momentum_ > 0.0f) {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        const float grad = pg[j] + weight_decay_ * pv[j];
        vel[j] = momentum_ * vel[j] + grad;
        pv[j] -= lr_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        pv[j] -= lr_ * (pg[j] + weight_decay_ * pv[j]);
      }
    }
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.shape()));
    v_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (!p.has_grad()) continue;
    tensor::Tensor g = p.grad();
    float* pv = p.mutable_value().data();
    const float* pg = g.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = g.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = pg[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      // Decoupled weight decay (AdamW) when configured.
      pv[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                      weight_decay_ * pv[j]);
    }
  }
}

Status Adam::RestoreState(int64_t step_count,
                          const std::vector<tensor::Tensor>& m,
                          const std::vector<tensor::Tensor>& v) {
  if (step_count < 0) {
    return Status::InvalidArgument("Adam step count must be >= 0, got " +
                                   std::to_string(step_count));
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam moment count mismatch: optimizer has " +
        std::to_string(params_.size()) + " params, state has " +
        std::to_string(m.size()) + "/" + std::to_string(v.size()));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!tensor::SameShape(m[i].shape(), params_[i].shape()) ||
        !tensor::SameShape(v[i].shape(), params_[i].shape())) {
      return Status::InvalidArgument("Adam moment shape mismatch at index " +
                                     std::to_string(i));
    }
  }
  t_ = step_count;
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i] = m[i].Clone();
    v_[i] = v[i].Clone();
  }
  return Status::OK();
}

float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const tensor::Tensor g = p.grad();
    for (int64_t j = 0; j < g.numel(); ++j) {
      total += static_cast<double>(g.data()[j]) * g.data()[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      if (!p.has_grad()) continue;
      // Scale through the stored accumulator itself: grad() only promises
      // a value, so clipping a (potential) copy would silently be a no-op.
      ag::Var handle = p;  // cheap shared-state handle
      tensor::Tensor& g = handle.mutable_grad();
      for (int64_t j = 0; j < g.numel(); ++j) g.data()[j] *= scale;
    }
  }
  return norm;
}

}  // namespace came::optim
