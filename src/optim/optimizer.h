#ifndef CAME_OPTIM_OPTIMIZER_H_
#define CAME_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace came::optim {

/// Base interface: holds the parameter list, applies updates from the
/// gradients accumulated by Backward().
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 protected:
  std::vector<ag::Var> params_;
  float lr_;
};

/// SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) — the optimiser the paper uses (Section V-B).
/// Optional decoupled weight decay turns it into AdamW.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  /// Serialisation accessors (checkpointing). The moment vectors are
  /// aligned with the constructor's parameter order.
  int64_t step_count() const { return t_; }
  const std::vector<tensor::Tensor>& first_moments() const { return m_; }
  const std::vector<tensor::Tensor>& second_moments() const { return v_; }

  /// Restores state captured from another Adam over identically-shaped
  /// parameters; the next Step() is then bitwise-identical to the one the
  /// donor would have taken. Fails on count/shape mismatch without
  /// modifying this optimizer.
  Status RestoreState(int64_t step_count,
                      const std::vector<tensor::Tensor>& m,
                      const std::vector<tensor::Tensor>& v);

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clipping norm.
float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm);

}  // namespace came::optim

#endif  // CAME_OPTIM_OPTIMIZER_H_
