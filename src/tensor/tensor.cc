#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace came::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CAME_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(NumElements(shape_)),
      data_(pool::Acquire(numel_, /*zero=*/true)) {}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = NumElements(t.shape_);
  t.data_ = pool::Acquire(t.numel_, /*zero=*/false);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  // fully-written: Fill stores every element
  Tensor t = Uninitialized(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  CAME_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = static_cast<int64_t>(values.size());
  if (t.numel_ > 0) {
    // Adopt the vector's buffer directly (zero-copy): an aliasing handle
    // keeps the vector alive and points at its elements. These buffers
    // never enter the pool and are not counted in its stats.
    auto holder = std::make_shared<std::vector<float>>(std::move(values));
    t.data_ = pool::StorageHandle(holder, holder->data());
  }
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{1}, value); }

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += ndim();
  CAME_CHECK_GE(i, 0);
  CAME_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  CAME_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    CAME_CHECK_GE(i, 0);
    CAME_CHECK_LT(i, shape_[d]);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(idx)];
}

void Tensor::set(std::initializer_list<int64_t> idx, float value) {
  data()[FlatIndex(idx)] = value;
}

Tensor Tensor::Clone() const {
  // fully-written: memcpy covers all numel_ elements (0-sized skips)
  Tensor t = Uninitialized(shape_);
  if (numel_ > 0) {
    std::memcpy(t.data(), data(), static_cast<size_t>(numel_) * sizeof(float));
  }
  return t;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  CAME_CHECK_EQ(NumElements(new_shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  float* p = data();
  for (int64_t i = 0; i < numel_; ++i) p[i] = value;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data()[i];
  }
  if (n < numel_) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace came::tensor
