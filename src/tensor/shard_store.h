#ifndef CAME_TENSOR_SHARD_STORE_H_
#define CAME_TENSOR_SHARD_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "tensor/panel_bounds.h"

namespace came::tensor {

/// Element encoding of a ShardStore's slab payloads. The trainer always
/// produces kF32 stores; kInt8/kBf16 stores are derived from a sealed
/// fp32 store via ShardStore::Quantize and are immutable (serving-only).
enum class ShardDtype : uint8_t { kF32 = 0, kInt8 = 1, kBf16 = 2 };

/// "f32" | "int8" | "bf16".
std::string ShardDtypeName(ShardDtype dtype);

/// Residency policy for a ShardStore.
struct ShardStoreOptions {
  /// Rows per on-disk slab. 0 means one slab covering every row — the
  /// in-RAM special case expressed in the same layout.
  int64_t rows_per_shard = 0;
  /// Maximum simultaneously mapped slabs (the LRU-resident working set).
  /// 0 means unlimited (everything stays mapped once touched). Pinned
  /// slabs (PinPanel) never count as eviction victims, so concurrent
  /// readers can push residency transiently past the budget.
  int64_t max_resident_shards = 0;
  /// Verify every slab's payload CRC against the manifest when opening a
  /// sealed store. Costs one streaming pass over the data.
  bool verify_on_open = true;
};

/// A 2-D float row table `[rows, dim]` sliced into fixed-size on-disk
/// slabs, mmap-backed with an LRU-resident working set — the storage
/// layer that lets embedding tables, Adam moment state, and candidate
/// matrices grow past RAM.
///
/// Layout on disk (`dir/`):
///   * `manifest` — versioned, CRC-framed metadata (magic "CAMESHD1",
///     written atomically via the crash-safe temp+fsync+rename path):
///     shape, slab geometry, a sealed flag, and one payload CRC32 per
///     slab. fp32 stores write manifest version 1 (bit-identical to the
///     pre-quantization format); quantized stores write version 2, which
///     adds one dtype byte after the version field.
///   * `slab_<i>.bin` — raw little-endian payload of rows
///     [i*rows_per_shard, min((i+1)*rows_per_shard, rows)), no header,
///     so a mapped slab is directly addressable at element alignment.
///     fp32/bf16 slabs are the bare row data; int8 slabs are the int8
///     rows, zero-padded to a 64-byte boundary, followed by one fp32
///     dequantization scale per row (the padding keeps the scale block
///     float-aligned inside the mapping).
///   * `bounds` — advisory CRC-framed sidecar (magic "CAMESHB1") holding
///     the per-block PanelBoundTable the serving layer's panel pruning
///     uses, tagged with a CRC over the manifest's slab CRCs. The
///     manifest format itself never changes for this: a missing, stale
///     or corrupt sidecar is rebuilt from the slabs on Open (one
///     streaming pass) and rewritten, so pre-existing stores keep
///     loading bit-for-bit and a bad sidecar can never produce an
///     unsound bound.
///
/// Lifecycle: `Create` makes zero-filled slabs and an *unsealed*
/// manifest; mutate rows freely; `Seal()` msyncs every dirty slab,
/// recomputes payload CRCs and the panel bounds, and atomically
/// publishes the sealed manifest. `Open` accepts sealed stores only and
/// (by default) verifies every slab CRC, so a bit-flipped, truncated, or
/// trailing-garbage slab or manifest surfaces as `Corruption` instead
/// of being served.
///
/// `InRam` builds the one-shard special case — a single anonymous
/// mapping, always resident, no files — through the identical row/panel
/// access path, which is what makes sharded-vs-in-RAM bitwise parity a
/// property of the layout rather than of duplicated compute code.
///
/// Thread safety: the residency machinery (map/unmap, LRU clock, pins,
/// stats) is guarded by an internal mutex, so the read-side accessors —
/// Row, PanelRows and the quantized panel accessors, PinPanel/UnpinPanel,
/// ShardEnd, bounds(), GetStats — may be called from concurrent threads.
/// A returned panel pointer is only guaranteed to outlive subsequent
/// accessor calls from *other* threads while the caller holds a pin on
/// its shard (PinPanel); a single-threaded caller keeps the historical
/// contract (valid until its own next call that can evict). Mutation —
/// MutableRow, Seal, Quantize, ContentCrc32, move construction — still
/// requires external serialisation with no concurrent readers.
class ShardStore {
 public:
  ShardStore() = default;
  ~ShardStore();
  ShardStore(ShardStore&& other) noexcept;
  ShardStore& operator=(ShardStore&& other) noexcept;
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// Anonymous in-RAM store: one shard, always resident, zero-filled.
  static Result<ShardStore> InRam(int64_t rows, int64_t dim);

  /// Creates `dir` (must not already hold a manifest) with zero-filled
  /// slabs and an unsealed manifest.
  static Result<ShardStore> Create(const std::string& dir, int64_t rows,
                                   int64_t dim,
                                   const ShardStoreOptions& options = {});

  /// Opens a sealed store. `options.rows_per_shard` is ignored (the
  /// manifest fixes the geometry); the residency budget and
  /// verify_on_open apply.
  static Result<ShardStore> Open(const std::string& dir,
                                 const ShardStoreOptions& options = {});

  /// Re-encodes a sealed-or-unsealed fp32 store's rows into a new
  /// *sealed* quantized store at `dir` (must not already hold a
  /// manifest), streaming shard by shard so peak memory is one slab. The
  /// geometry (rows_per_shard) is inherited from `src`. `dtype` must be
  /// kInt8 or kBf16; rows containing NaN/Inf are rejected with
  /// InvalidArgument. The result is immutable: MutableRow and the fp32
  /// accessors CHECK-fail on it.
  static Result<ShardStore> Quantize(ShardStore* src, const std::string& dir,
                                     ShardDtype dtype,
                                     const ShardStoreOptions& options = {});

  int64_t rows() const { return rows_; }
  int64_t dim() const { return dim_; }
  ShardDtype dtype() const { return dtype_; }
  int64_t rows_per_shard() const { return rows_per_shard_; }
  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }
  bool in_ram() const { return dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Read access to row `r` (fp32 stores only). May fault the owning
  /// slab in (and evict the least-recently-used unpinned one).
  const float* Row(int64_t r) CAME_EXCLUDES(mu_);
  /// Write access (fp32 stores only); marks the owning slab dirty (its
  /// CRC is stale until the next Seal) and drops the panel bounds (they
  /// no longer bound the mutated contents).
  float* MutableRow(int64_t r) CAME_EXCLUDES(mu_);

  /// Contiguous rows [begin, end), which must not cross a slab boundary
  /// (use ShardEnd to clamp panels). Zero-copy into the mapping. fp32
  /// stores only — quantized stores serve the accessors below.
  const float* PanelRows(int64_t begin, int64_t end) CAME_EXCLUDES(mu_);

  /// int8 rows [begin, end) of a kInt8 store (same boundary and lifetime
  /// contract as PanelRows).
  const int8_t* QuantPanelRows(int64_t begin, int64_t end)
      CAME_EXCLUDES(mu_);
  /// Per-row fp32 dequantization scales for rows [begin, end) of a kInt8
  /// store, indexed panel-locally. Lives in the same mapping as
  /// QuantPanelRows for the same range, so both pointers are usable
  /// together.
  const float* PanelScales(int64_t begin, int64_t end) CAME_EXCLUDES(mu_);
  /// bf16 rows [begin, end) of a kBf16 store.
  const uint16_t* Bf16PanelRows(int64_t begin, int64_t end)
      CAME_EXCLUDES(mu_);

  /// Maps the slab owning rows [begin, end) (which must not cross a slab
  /// boundary) and pins it against eviction; returns the shard index to
  /// hand back to UnpinPanel. While pinned, pointers into the slab stay
  /// valid across accessor calls from other threads. Pins nest.
  int64_t PinPanel(int64_t begin, int64_t end) CAME_EXCLUDES(mu_);
  void UnpinPanel(int64_t shard) CAME_EXCLUDES(mu_);

  /// Whether `shard`'s slab is currently mapped (tests/observability).
  bool ShardResident(int64_t shard) const CAME_EXCLUDES(mu_);

  /// Per-block score-bound metadata over the store's rows (no bias —
  /// shard-backed serving is inner-product only). Empty — meaning "never
  /// prune" — until Seal()/Quantize computes it or Open loads/rebuilds
  /// it; MutableRow drops it. Do not call concurrently with mutation.
  const PanelBoundTable& bounds() const { return bounds_; }

  /// Exclusive end of the slab containing `row` (clamped to rows()).
  int64_t ShardEnd(int64_t row) const;

  /// msync every dirty slab, recompute payload CRCs and panel bounds,
  /// atomically publish a sealed manifest and rewrite the bounds
  /// sidecar. In-RAM stores: computes bounds only. Idempotent.
  Status Seal() CAME_EXCLUDES(mu_);

  /// Row-order CRC32 over the full table contents (parity tests and the
  /// checkpoint-bytes comparison). Streams shard by shard.
  uint32_t ContentCrc32() CAME_EXCLUDES(mu_);

  struct Stats {
    int64_t map_hits = 0;
    int64_t map_misses = 0;
    int64_t evictions = 0;
    /// Victim scans that found every resident slab pinned and had to map
    /// past the residency budget instead of evicting.
    int64_t pin_blocked_evictions = 0;
    int64_t resident_shards = 0;
    int64_t resident_bytes = 0;
  };
  Stats GetStats() const CAME_EXCLUDES(mu_);

 private:
  struct Shard {
    // Residency fields (base, last_use, pins) are guarded by mu_; the
    // analysis cannot express per-element guards through the vector.
    void* base = nullptr;   // mapped payload (nullptr when not resident)
    int64_t begin = 0;      // first row (immutable after construction)
    int64_t end = 0;        // one past the last row (immutable)
    uint64_t last_use = 0;  // LRU clock stamp
    int64_t pins = 0;       // PinPanel leases blocking eviction
    bool dirty = false;     // mutation-path only (externally serialised)
    uint32_t crc = 0;       // manifest payload CRC (sealed stores)
  };

  int64_t ShardIndex(int64_t row) const { return row / rows_per_shard_; }
  std::string SlabPath(int64_t shard) const;
  /// On-disk slab bytes for rows [begin, end) under this store's dtype
  /// (int8 slabs include the padded scale block).
  int64_t ShardByteSize(int64_t begin, int64_t end) const;
  /// Ensures the shard is mapped; returns its payload base.
  Result<char*> Acquire(int64_t shard) CAME_EXCLUDES(mu_);
  Result<char*> AcquireLocked(int64_t shard) CAME_REQUIRES(mu_);
  /// Acquire + CHECK-on-IO-failure, with the panel bounds checks shared
  /// by every panel accessor. Returns the mapped slab base and (via
  /// `shard_out`) the owning shard index.
  char* AcquirePanel(int64_t begin, int64_t end, int64_t* shard_out)
      CAME_EXCLUDES(mu_);
  Status MapShard(int64_t shard) CAME_REQUIRES(mu_);
  void UnmapShard(int64_t shard) CAME_REQUIRES(mu_);
  Status WriteManifest(bool sealed);
  /// Streams every slab and rebuilds bounds_ from the payload bytes.
  Status ComputeBounds() CAME_EXCLUDES(mu_);
  /// CRC over the manifest's slab-CRC array: the sidecar staleness tag.
  uint32_t BoundsTag() const;
  Status WriteBoundsSidecar() const;
  Status LoadBoundsSidecar();
  void MoveFrom(ShardStore&& other);
  void ReleaseAll();

  std::string dir_;
  int64_t rows_ = 0;
  int64_t dim_ = 0;
  ShardDtype dtype_ = ShardDtype::kF32;
  int64_t rows_per_shard_ = 0;
  int64_t max_resident_ = 0;
  bool sealed_ = false;
  /// Guards the residency machinery: the LRU clock, resident count,
  /// stats, and every Shard's base/last_use/pins.
  mutable came::Mutex mu_;
  uint64_t clock_ CAME_GUARDED_BY(mu_) = 0;
  int64_t resident_count_ CAME_GUARDED_BY(mu_) = 0;
  std::vector<Shard> shards_;
  Stats stats_ CAME_GUARDED_BY(mu_);
  PanelBoundTable bounds_;
};

}  // namespace came::tensor

#endif  // CAME_TENSOR_SHARD_STORE_H_
