#ifndef CAME_TENSOR_SHARD_STORE_H_
#define CAME_TENSOR_SHARD_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace came::tensor {

/// Element encoding of a ShardStore's slab payloads. The trainer always
/// produces kF32 stores; kInt8/kBf16 stores are derived from a sealed
/// fp32 store via ShardStore::Quantize and are immutable (serving-only).
enum class ShardDtype : uint8_t { kF32 = 0, kInt8 = 1, kBf16 = 2 };

/// "f32" | "int8" | "bf16".
std::string ShardDtypeName(ShardDtype dtype);

/// Residency policy for a ShardStore.
struct ShardStoreOptions {
  /// Rows per on-disk slab. 0 means one slab covering every row — the
  /// in-RAM special case expressed in the same layout.
  int64_t rows_per_shard = 0;
  /// Maximum simultaneously mapped slabs (the LRU-resident working set).
  /// 0 means unlimited (everything stays mapped once touched).
  int64_t max_resident_shards = 0;
  /// Verify every slab's payload CRC against the manifest when opening a
  /// sealed store. Costs one streaming pass over the data.
  bool verify_on_open = true;
};

/// A 2-D float row table `[rows, dim]` sliced into fixed-size on-disk
/// slabs, mmap-backed with an LRU-resident working set — the storage
/// layer that lets embedding tables, Adam moment state, and candidate
/// matrices grow past RAM.
///
/// Layout on disk (`dir/`):
///   * `manifest` — versioned, CRC-framed metadata (magic "CAMESHD1",
///     written atomically via the crash-safe temp+fsync+rename path):
///     shape, slab geometry, a sealed flag, and one payload CRC32 per
///     slab. fp32 stores write manifest version 1 (bit-identical to the
///     pre-quantization format); quantized stores write version 2, which
///     adds one dtype byte after the version field.
///   * `slab_<i>.bin` — raw little-endian payload of rows
///     [i*rows_per_shard, min((i+1)*rows_per_shard, rows)), no header,
///     so a mapped slab is directly addressable at element alignment.
///     fp32/bf16 slabs are the bare row data; int8 slabs are the int8
///     rows, zero-padded to a 64-byte boundary, followed by one fp32
///     dequantization scale per row (the padding keeps the scale block
///     float-aligned inside the mapping).
///
/// Lifecycle: `Create` makes zero-filled slabs and an *unsealed*
/// manifest; mutate rows freely; `Seal()` msyncs every dirty slab,
/// recomputes payload CRCs and atomically publishes the sealed
/// manifest. `Open` accepts sealed stores only and (by default)
/// verifies every slab CRC, so a bit-flipped, truncated, or
/// trailing-garbage slab or manifest surfaces as `Corruption` instead
/// of being served.
///
/// `InRam` builds the one-shard special case — a single anonymous
/// mapping, always resident, no files — through the identical row/panel
/// access path, which is what makes sharded-vs-in-RAM bitwise parity a
/// property of the layout rather than of duplicated compute code.
///
/// Not thread-safe: callers serialise access externally (the trainer
/// gathers/scatters sequentially; evaluators sweep panels from one
/// thread and only parallelise over the scores already produced).
/// Pointers returned by Row/MutableRow/PanelRows stay valid until the
/// next member call that can evict (any row/panel access, Flush, Seal).
class ShardStore {
 public:
  ShardStore() = default;
  ~ShardStore();
  ShardStore(ShardStore&& other) noexcept;
  ShardStore& operator=(ShardStore&& other) noexcept;
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// Anonymous in-RAM store: one shard, always resident, zero-filled.
  static Result<ShardStore> InRam(int64_t rows, int64_t dim);

  /// Creates `dir` (must not already hold a manifest) with zero-filled
  /// slabs and an unsealed manifest.
  static Result<ShardStore> Create(const std::string& dir, int64_t rows,
                                   int64_t dim,
                                   const ShardStoreOptions& options = {});

  /// Opens a sealed store. `options.rows_per_shard` is ignored (the
  /// manifest fixes the geometry); the residency budget and
  /// verify_on_open apply.
  static Result<ShardStore> Open(const std::string& dir,
                                 const ShardStoreOptions& options = {});

  /// Re-encodes a sealed-or-unsealed fp32 store's rows into a new
  /// *sealed* quantized store at `dir` (must not already hold a
  /// manifest), streaming shard by shard so peak memory is one slab. The
  /// geometry (rows_per_shard) is inherited from `src`. `dtype` must be
  /// kInt8 or kBf16; rows containing NaN/Inf are rejected with
  /// InvalidArgument. The result is immutable: MutableRow and the fp32
  /// accessors CHECK-fail on it.
  static Result<ShardStore> Quantize(ShardStore* src, const std::string& dir,
                                     ShardDtype dtype,
                                     const ShardStoreOptions& options = {});

  int64_t rows() const { return rows_; }
  int64_t dim() const { return dim_; }
  ShardDtype dtype() const { return dtype_; }
  int64_t rows_per_shard() const { return rows_per_shard_; }
  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }
  bool in_ram() const { return dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Read access to row `r` (fp32 stores only). May fault the owning
  /// slab in (and evict the least-recently-used one).
  const float* Row(int64_t r);
  /// Write access (fp32 stores only); marks the owning slab dirty (its
  /// CRC is stale until the next Seal).
  float* MutableRow(int64_t r);

  /// Contiguous rows [begin, end), which must not cross a slab boundary
  /// (use ShardEnd to clamp panels). Zero-copy into the mapping. fp32
  /// stores only — quantized stores serve the accessors below.
  const float* PanelRows(int64_t begin, int64_t end);

  /// int8 rows [begin, end) of a kInt8 store (same boundary and lifetime
  /// contract as PanelRows).
  const int8_t* QuantPanelRows(int64_t begin, int64_t end);
  /// Per-row fp32 dequantization scales for rows [begin, end) of a kInt8
  /// store, indexed panel-locally. Lives in the same mapping as
  /// QuantPanelRows for the same range, so both pointers are usable
  /// together.
  const float* PanelScales(int64_t begin, int64_t end);
  /// bf16 rows [begin, end) of a kBf16 store.
  const uint16_t* Bf16PanelRows(int64_t begin, int64_t end);

  /// Exclusive end of the slab containing `row` (clamped to rows()).
  int64_t ShardEnd(int64_t row) const;

  /// msync every dirty slab, recompute payload CRCs, atomically publish
  /// a sealed manifest. In-RAM stores: no-op, OK. Idempotent.
  Status Seal();

  /// Row-order CRC32 over the full table contents (parity tests and the
  /// checkpoint-bytes comparison). Streams shard by shard.
  uint32_t ContentCrc32();

  struct Stats {
    int64_t map_hits = 0;
    int64_t map_misses = 0;
    int64_t evictions = 0;
    int64_t resident_shards = 0;
    int64_t resident_bytes = 0;
  };
  Stats GetStats() const;

 private:
  struct Shard {
    void* base = nullptr;   // mapped payload (nullptr when not resident)
    int64_t begin = 0;      // first row
    int64_t end = 0;        // one past the last row
    uint64_t last_use = 0;  // LRU clock stamp
    bool dirty = false;
    uint32_t crc = 0;       // manifest payload CRC (sealed stores)
  };

  int64_t ShardIndex(int64_t row) const { return row / rows_per_shard_; }
  std::string SlabPath(int64_t shard) const;
  /// On-disk slab bytes for rows [begin, end) under this store's dtype
  /// (int8 slabs include the padded scale block).
  int64_t ShardByteSize(int64_t begin, int64_t end) const;
  /// Ensures the shard is mapped; returns its payload base.
  Result<char*> Acquire(int64_t shard);
  /// Acquire + CHECK-on-IO-failure, with the panel bounds checks shared
  /// by every panel accessor. Returns the mapped slab base and (via
  /// `shard_out`) the owning shard index.
  char* AcquirePanel(int64_t begin, int64_t end, int64_t* shard_out);
  Status MapShard(int64_t shard);
  void UnmapShard(int64_t shard);
  Status WriteManifest(bool sealed);
  void MoveFrom(ShardStore&& other);
  void ReleaseAll();

  std::string dir_;
  int64_t rows_ = 0;
  int64_t dim_ = 0;
  ShardDtype dtype_ = ShardDtype::kF32;
  int64_t rows_per_shard_ = 0;
  int64_t max_resident_ = 0;
  bool sealed_ = false;
  uint64_t clock_ = 0;
  int64_t resident_count_ = 0;
  std::vector<Shard> shards_;
  Stats stats_;
};

}  // namespace came::tensor

#endif  // CAME_TENSOR_SHARD_STORE_H_
