#ifndef CAME_TENSOR_TENSOR_OPS_H_
#define CAME_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace came::tensor {

// ---------------------------------------------------------------------------
// Shape / broadcasting helpers
// ---------------------------------------------------------------------------

/// NumPy-style right-aligned broadcast result shape. CHECK-fails on
/// incompatible shapes.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Sums `t` over its broadcast dimensions so the result has shape `target`
/// (the reverse of broadcasting; used by autograd backward passes).
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise (broadcasting) binary ops
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// out = a + alpha * b (same shape only; used for gradient accumulation).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// ---------------------------------------------------------------------------
// Elementwise unary ops
// ---------------------------------------------------------------------------

Tensor Neg(const Tensor& t);
Tensor Exp(const Tensor& t);
Tensor Log(const Tensor& t);
Tensor Sqrt(const Tensor& t);
Tensor Square(const Tensor& t);
Tensor Sigmoid(const Tensor& t);
Tensor Tanh(const Tensor& t);
Tensor Relu(const Tensor& t);
Tensor Scale(const Tensor& t, float s);
Tensor AddScalar(const Tensor& t, float s);
Tensor Abs(const Tensor& t);

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// C = op(A) * op(B) for 2-D tensors, where op transposes when the flag is
/// set. Shapes must be compatible after transposition.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Batched matmul over 3-D tensors [B, m, k] x [B, k, n] -> [B, m, n]
/// (with optional per-operand transposition of the trailing two dims).
Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
                   bool trans_b = false);

/// Raw GEMM on pointers: C (m x n) += op(A) * op(B). `accumulate=false`
/// zeroes C first. Exposed for kernels (conv im2col) that multiply many
/// small per-sample slices without allocating per-slice tensors.
void MatMulRaw(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n, bool trans_a, bool trans_b, bool accumulate);

/// 2-D transpose.
Tensor Transpose2D(const Tensor& t);
/// Swap the trailing two dims of a 3-D tensor.
Tensor BatchTranspose(const Tensor& t);

// ---------------------------------------------------------------------------
// Reductions & softmax
// ---------------------------------------------------------------------------

/// Sum of all elements as shape-{1} tensor.
Tensor SumAll(const Tensor& t);
float SumAllScalar(const Tensor& t);
float MaxAbs(const Tensor& t);

/// Sum along one axis. `keepdim` keeps a size-1 axis in place.
Tensor SumAlong(const Tensor& t, int64_t dim, bool keepdim);
/// Max along one axis (values only).
Tensor MaxAlong(const Tensor& t, int64_t dim, bool keepdim);
/// Numerically stable softmax along `dim`.
Tensor SoftmaxAlong(const Tensor& t, int64_t dim);

// ---------------------------------------------------------------------------
// Shape surgery
// ---------------------------------------------------------------------------

/// Concatenates tensors (equal shapes except along `dim`) along `dim`.
Tensor Concat(const std::vector<Tensor>& parts, int64_t dim);
/// Contiguous slice [start, start+len) along `dim`.
Tensor SliceAlong(const Tensor& t, int64_t dim, int64_t start, int64_t len);

// ---------------------------------------------------------------------------
// Indexed ops (embedding lookup)
// ---------------------------------------------------------------------------

/// rows[i] = matrix[indices[i]] for a 2-D matrix [N, d] -> [B, d].
Tensor GatherRows(const Tensor& matrix, const std::vector<int64_t>& indices);
/// out[indices[i]] += src[i]; out shape [num_rows, d].
Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& indices,
                      int64_t num_rows);

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

/// out[i] = mask[i] != 0 ? a[i] : b[i]; all three same shape.
Tensor Where(const Tensor& mask, const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Convolution building blocks (stride 1)
// ---------------------------------------------------------------------------

/// Unfolds [B, C, H, W] into columns [B, C*kh*kw, out_h*out_w] with zero
/// padding `pad` and stride 1.
Tensor Im2Col(const Tensor& input, int64_t kh, int64_t kw, int64_t pad);
/// Adjoint of Im2Col: folds columns back into [B, C, H, W].
Tensor Col2Im(const Tensor& cols, int64_t batch, int64_t channels, int64_t h,
              int64_t w, int64_t kh, int64_t kw, int64_t pad);

}  // namespace came::tensor

#endif  // CAME_TENSOR_TENSOR_OPS_H_
