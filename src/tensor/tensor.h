#ifndef CAME_TENSOR_TENSOR_H_
#define CAME_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/storage_pool.h"

namespace came::tensor {

/// Tensor shape: row-major, up to 4 dimensions in practice.
using Shape = std::vector<int64_t>;

int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);
bool SameShape(const Shape& a, const Shape& b);

/// Dense row-major float tensor with shared (copy-on-nothing) storage.
///
/// `Tensor` is a cheap handle: copying it aliases the same buffer. Use
/// `Clone()` for a deep copy. Mutating through `data()` mutates all
/// aliases — the autograd layer relies on this for in-place gradient
/// accumulation but user code should treat tensors as values.
///
/// Storage comes from the size-class pool (`storage_pool.h`); the
/// `CAME_TENSOR_POOL` env knob selects recycling / plain heap / scrub.
class Tensor {
 public:
  /// An empty 0-element tensor (shape {0}). Allocates nothing.
  Tensor();
  /// Zero-filled tensor of the given shape (same guarantee as `Zeros`).
  explicit Tensor(Shape shape);

  static Tensor Zeros(Shape shape);
  /// Tensor whose contents are unspecified — every element must be
  /// written before it is read. Only for buffers that are fully
  /// overwritten (op outputs, scratch); accumulators that `+=` into
  /// their buffer need `Zeros`. Under CAME_TENSOR_POOL=scrub the
  /// contents are signalling NaNs, so a read-before-write shows up as
  /// NaN (and aborts with provenance under CAME_TAPE_AUDIT=full).
  static Tensor Uninitialized(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Takes ownership of `values`; NumElements(shape) must match.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);
  /// 0-D-like scalar represented as shape {1}.
  static Tensor Scalar(float value);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return numel_; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  /// Element accessors for tests and small-scale code. O(ndim) per call.
  float at(std::initializer_list<int64_t> idx) const;
  void set(std::initializer_list<int64_t> idx, float value);

  /// Deep copy.
  Tensor Clone() const;

  /// Returns a tensor sharing this buffer with a different shape.
  /// NumElements must be preserved.
  Tensor Reshape(Shape new_shape) const;

  /// True if the two handles alias the same (non-empty) buffer.
  bool SharesBufferWith(const Tensor& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  /// Fills the buffer with a constant.
  void Fill(float value);

  /// Debug rendering (small tensors only).
  std::string ToString(int64_t max_elements = 64) const;

 private:
  Shape shape_;
  int64_t numel_ = 0;
  pool::StorageHandle data_;

  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;
};

}  // namespace came::tensor

#endif  // CAME_TENSOR_TENSOR_H_
