#include "tensor/shard_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <vector>

#include "common/io.h"
#include "common/logging.h"
#include "tensor/qgemm.h"

namespace came::tensor {

namespace {

// Manifest layout (little-endian):
//   magic   8 bytes "CAMESHD1"
//   len     u64                  -- payload byte length
//   payload:
//     version        u64           -- 1 (fp32) or 2 (quantized)
//     dtype          u8            -- version 2 only: 1 int8, 2 bf16
//     rows           i64
//     dim            i64
//     rows_per_shard i64
//     sealed         u8
//     num_shards     u64
//     crc[i]         u32 per shard  -- slab payload CRC32 (sealed only)
//   crc     u32                  -- CRC32 of the payload
// fp32 stores keep writing version 1 (bit-identical to the format before
// quantized stores existed), so pre-existing stores and tools stay valid.
// Panel-pruning bound metadata deliberately lives in a separate advisory
// sidecar (below) rather than a new manifest version: the manifest is the
// integrity root and its bytes are pinned by the corruption-matrix tests.
constexpr char kMagic[8] = {'C', 'A', 'M', 'E', 'S', 'H', 'D', '1'};
constexpr uint64_t kVersion = 1;
constexpr uint64_t kQuantVersion = 2;
constexpr uint64_t kMaxShards = 1ULL << 24;

// Bounds sidecar layout (little-endian):
//   magic   8 bytes "CAMESHB1"
//   len     u64                  -- payload byte length
//   payload:
//     version u64                  -- 1
//     tag     u32                  -- CRC32 over the manifest's slab CRCs
//     bounds  PanelBoundTable::Encode bytes
//   crc     u32                  -- CRC32 of the payload
// The tag ties the bounds to the exact sealed contents they were computed
// from; a mismatch (store re-sealed without the sidecar catching up) reads
// as corruption and the bounds are rebuilt from the slabs.
constexpr char kBoundsMagic[8] = {'C', 'A', 'M', 'E', 'S', 'H', 'B', '1'};
constexpr uint64_t kBoundsVersion = 1;

int64_t PadTo64(int64_t n) { return (n + 63) & ~int64_t{63}; }

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > size_ - pos_) {
      return Status::Corruption("manifest truncated at byte " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  const char* cursor() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string ManifestPath(const std::string& dir) { return dir + "/manifest"; }

std::string BoundsPath(const std::string& dir) { return dir + "/bounds"; }

int64_t ShardBytesDt(int64_t begin, int64_t end, int64_t dim,
                     ShardDtype dtype) {
  const int64_t rows = end - begin;
  switch (dtype) {
    case ShardDtype::kF32:
      return rows * dim * static_cast<int64_t>(sizeof(float));
    case ShardDtype::kBf16:
      return rows * dim * static_cast<int64_t>(sizeof(uint16_t));
    case ShardDtype::kInt8:
      // int8 rows, padded so the per-row fp32 scale block that follows
      // is 64-byte aligned inside the mapping.
      return PadTo64(rows * dim) +
             rows * static_cast<int64_t>(sizeof(float));
  }
  CAME_CHECK(false) << "unknown shard dtype";
  return 0;
}

/// CRC32 of a slab file's payload via a transient read-only mapping (does
/// not disturb the store's residency set).
Result<uint32_t> SlabFileCrc(const std::string& path, int64_t bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(err));
  }
  if (st.st_size != bytes) {
    ::close(fd);
    return Status::Corruption(path + ": slab is " +
                              std::to_string(st.st_size) + " bytes, want " +
                              std::to_string(bytes));
  }
  if (bytes == 0) {
    ::close(fd);
    return uint32_t{0};
  }
  void* base =
      ::mmap(nullptr, static_cast<size_t>(bytes), PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  const uint32_t crc = io::Crc32(base, static_cast<size_t>(bytes));
  ::munmap(base, static_cast<size_t>(bytes));
  return crc;
}

}  // namespace

std::string ShardDtypeName(ShardDtype dtype) {
  switch (dtype) {
    case ShardDtype::kF32:
      return "f32";
    case ShardDtype::kInt8:
      return "int8";
    case ShardDtype::kBf16:
      return "bf16";
  }
  return "unknown";
}

int64_t ShardStore::ShardByteSize(int64_t begin, int64_t end) const {
  return ShardBytesDt(begin, end, dim_, dtype_);
}

ShardStore::~ShardStore() { ReleaseAll(); }

void ShardStore::MoveFrom(ShardStore&& other) {
  // Moves require external serialisation (no concurrent readers on either
  // store), but the guarded fields still want their locks for the
  // analysis — uncontended by contract, so the cost is nil.
  came::MutexLock other_lock(&other.mu_);
  came::MutexLock lock(&mu_);
  dir_ = std::move(other.dir_);
  rows_ = other.rows_;
  dim_ = other.dim_;
  dtype_ = other.dtype_;
  rows_per_shard_ = other.rows_per_shard_;
  max_resident_ = other.max_resident_;
  sealed_ = other.sealed_;
  clock_ = other.clock_;
  resident_count_ = other.resident_count_;
  shards_ = std::move(other.shards_);
  stats_ = other.stats_;
  bounds_ = std::move(other.bounds_);
  other.shards_.clear();
  other.resident_count_ = 0;
  other.rows_ = other.dim_ = 0;
  other.bounds_ = PanelBoundTable();
}

ShardStore::ShardStore(ShardStore&& other) noexcept {
  MoveFrom(std::move(other));
}

ShardStore& ShardStore::operator=(ShardStore&& other) noexcept {
  if (this != &other) {
    ReleaseAll();
    MoveFrom(std::move(other));
  }
  return *this;
}

void ShardStore::ReleaseAll() {
  came::MutexLock lock(&mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].base != nullptr) {
      ::munmap(shards_[i].base,
               static_cast<size_t>(
                   ShardByteSize(shards_[i].begin, shards_[i].end)));
      shards_[i].base = nullptr;
    }
  }
  resident_count_ = 0;
  stats_.resident_shards = 0;
  stats_.resident_bytes = 0;
}

std::string ShardStore::SlabPath(int64_t shard) const {
  return dir_ + "/slab_" + std::to_string(shard) + ".bin";
}

Result<ShardStore> ShardStore::InRam(int64_t rows, int64_t dim) {
  if (rows <= 0 || dim <= 0) {
    return Status::InvalidArgument("ShardStore wants rows > 0 and dim > 0");
  }
  ShardStore s;
  s.rows_ = rows;
  s.dim_ = dim;
  s.rows_per_shard_ = rows;
  s.max_resident_ = 0;
  s.shards_.resize(1);
  Shard& sh = s.shards_[0];
  sh.begin = 0;
  sh.end = rows;
  const size_t bytes = static_cast<size_t>(s.ShardByteSize(0, rows));
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status::IOError("anonymous mmap of " + std::to_string(bytes) +
                           " bytes: " + std::strerror(errno));
  }
  sh.base = base;
  {
    came::MutexLock lock(&s.mu_);
    s.resident_count_ = 1;
    s.stats_.resident_shards = 1;
    s.stats_.resident_bytes = static_cast<int64_t>(bytes);
  }
  return s;
}

Result<ShardStore> ShardStore::Create(const std::string& dir, int64_t rows,
                                      int64_t dim,
                                      const ShardStoreOptions& options) {
  if (rows <= 0 || dim <= 0) {
    return Status::InvalidArgument("ShardStore wants rows > 0 and dim > 0");
  }
  if (options.rows_per_shard < 0 || options.max_resident_shards < 0) {
    return Status::InvalidArgument("negative shard-store option");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  {
    struct stat st {};
    if (::stat(ManifestPath(dir).c_str(), &st) == 0) {
      return Status::InvalidArgument(dir +
                                     " already holds a shard store manifest");
    }
  }
  ShardStore s;
  s.dir_ = dir;
  s.rows_ = rows;
  s.dim_ = dim;
  s.rows_per_shard_ =
      options.rows_per_shard == 0 ? rows : options.rows_per_shard;
  s.max_resident_ = options.max_resident_shards;
  const int64_t n_shards =
      (rows + s.rows_per_shard_ - 1) / s.rows_per_shard_;
  s.shards_.resize(static_cast<size_t>(n_shards));
  for (int64_t i = 0; i < n_shards; ++i) {
    Shard& sh = s.shards_[static_cast<size_t>(i)];
    sh.begin = i * s.rows_per_shard_;
    sh.end = std::min(rows, sh.begin + s.rows_per_shard_);
    const std::string path = s.SlabPath(i);
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC,
                          0644);
    if (fd < 0) {
      return Status::IOError("open " + path + ": " + std::strerror(errno));
    }
    // ftruncate reserves a sparse zero-filled payload without writing it.
    if (::ftruncate(fd, s.ShardByteSize(sh.begin, sh.end)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("ftruncate " + path + ": " + std::strerror(err));
    }
    ::close(fd);
  }
  CAME_RETURN_IF_ERROR(s.WriteManifest(/*sealed=*/false));
  return s;
}

Result<ShardStore> ShardStore::Open(const std::string& dir,
                                    const ShardStoreOptions& options) {
  std::string raw;
  CAME_RETURN_IF_ERROR(io::ReadFile(ManifestPath(dir), &raw));
  if (raw.size() < sizeof(kMagic) + sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::Corruption(dir + ": manifest too small");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(dir + ": bad shard store magic");
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len, raw.data() + sizeof(kMagic), sizeof(payload_len));
  const size_t framed =
      sizeof(kMagic) + sizeof(uint64_t) + payload_len + sizeof(uint32_t);
  if (payload_len > raw.size() || framed != raw.size()) {
    return Status::Corruption(dir + ": manifest length mismatch");
  }
  const char* payload = raw.data() + sizeof(kMagic) + sizeof(uint64_t);
  uint32_t want_crc = 0;
  std::memcpy(&want_crc, payload + payload_len, sizeof(want_crc));
  if (io::Crc32(payload, payload_len) != want_crc) {
    return Status::Corruption(dir + ": manifest checksum mismatch");
  }

  Reader r(payload, payload_len);
  uint64_t version = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&version));
  if (version != kVersion && version != kQuantVersion) {
    return Status::Corruption(dir + ": unsupported shard store version " +
                              std::to_string(version));
  }
  ShardStore s;
  s.dir_ = dir;
  if (version == kQuantVersion) {
    uint8_t dtype_byte = 0;
    CAME_RETURN_IF_ERROR(r.ReadPod(&dtype_byte));
    if (dtype_byte != static_cast<uint8_t>(ShardDtype::kInt8) &&
        dtype_byte != static_cast<uint8_t>(ShardDtype::kBf16)) {
      return Status::Corruption(dir + ": unknown quantized slab dtype byte " +
                                std::to_string(dtype_byte));
    }
    s.dtype_ = static_cast<ShardDtype>(dtype_byte);
  }
  uint8_t sealed = 0;
  uint64_t n_shards = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&s.rows_));
  CAME_RETURN_IF_ERROR(r.ReadPod(&s.dim_));
  CAME_RETURN_IF_ERROR(r.ReadPod(&s.rows_per_shard_));
  CAME_RETURN_IF_ERROR(r.ReadPod(&sealed));
  CAME_RETURN_IF_ERROR(r.ReadPod(&n_shards));
  if (s.rows_ <= 0 || s.dim_ <= 0 || s.rows_per_shard_ <= 0 ||
      n_shards > kMaxShards ||
      static_cast<int64_t>(n_shards) !=
          (s.rows_ + s.rows_per_shard_ - 1) / s.rows_per_shard_) {
    return Status::Corruption(dir + ": implausible shard store geometry");
  }
  if (!sealed) {
    return Status::FailedPrecondition(
        dir + ": store is not sealed (crashed mid-write or still training); "
              "refusing to serve unverifiable data");
  }
  s.sealed_ = true;
  s.max_resident_ = options.max_resident_shards;
  s.shards_.resize(n_shards);
  for (uint64_t i = 0; i < n_shards; ++i) {
    Shard& sh = s.shards_[i];
    sh.begin = static_cast<int64_t>(i) * s.rows_per_shard_;
    sh.end = std::min(s.rows_, sh.begin + s.rows_per_shard_);
    CAME_RETURN_IF_ERROR(r.ReadPod(&sh.crc));
  }
  if (r.remaining() != 0) {
    return Status::Corruption(dir + ": trailing bytes in manifest payload");
  }
  for (uint64_t i = 0; i < n_shards; ++i) {
    const Shard& sh = s.shards_[i];
    const std::string path = s.SlabPath(static_cast<int64_t>(i));
    if (options.verify_on_open) {
      Result<uint32_t> crc =
          SlabFileCrc(path, s.ShardByteSize(sh.begin, sh.end));
      if (!crc.ok()) return crc.status();
      if (crc.value() != sh.crc) {
        return Status::Corruption(path + ": slab checksum mismatch");
      }
    } else {
      struct stat st {};
      if (::stat(path.c_str(), &st) != 0) {
        return Status::IOError("stat " + path + ": " + std::strerror(errno));
      }
      if (st.st_size != s.ShardByteSize(sh.begin, sh.end)) {
        return Status::Corruption(path + ": slab size mismatch");
      }
    }
  }
  // The bounds sidecar is advisory: stores sealed before it existed (or
  // with a stale/corrupt/truncated sidecar) rebuild the bounds from the
  // slabs in one streaming pass and rewrite it best-effort. Integrity is
  // never weakened — an unusable sidecar costs a rebuild, not soundness.
  const Status side = s.LoadBoundsSidecar();
  if (!side.ok()) {
    CAME_LOG(Info) << dir << ": rebuilding panel bounds ("
                   << side.message() << ")";
    CAME_RETURN_IF_ERROR(s.ComputeBounds());
    s.WriteBoundsSidecar().LogIfError("shard store bounds sidecar rewrite");
  }
  return s;
}

Result<ShardStore> ShardStore::Quantize(ShardStore* src,
                                        const std::string& dir,
                                        ShardDtype dtype,
                                        const ShardStoreOptions& options) {
  if (src == nullptr) {
    return Status::InvalidArgument("Quantize wants a source store");
  }
  if (src->dtype() != ShardDtype::kF32) {
    return Status::InvalidArgument("Quantize wants an fp32 source store, got " +
                                   ShardDtypeName(src->dtype()));
  }
  if (dtype == ShardDtype::kF32) {
    return Status::InvalidArgument(
        "Quantize target dtype must be int8 or bf16");
  }
  if (src->in_ram() && dir.empty()) {
    return Status::InvalidArgument("Quantize wants a destination directory");
  }
  if (options.max_resident_shards < 0) {
    return Status::InvalidArgument("negative shard-store option");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  {
    struct stat st {};
    if (::stat(ManifestPath(dir).c_str(), &st) == 0) {
      return Status::InvalidArgument(dir +
                                     " already holds a shard store manifest");
    }
  }

  ShardStore s;
  s.dir_ = dir;
  s.rows_ = src->rows();
  s.dim_ = src->dim();
  s.dtype_ = dtype;
  s.rows_per_shard_ = src->rows_per_shard();
  s.max_resident_ = options.max_resident_shards;
  const int64_t n_shards = src->num_shards();
  s.shards_.resize(static_cast<size_t>(n_shards));

  // One slab at a time: read the fp32 rows from the source's mapping,
  // re-encode into a payload buffer, write the slab, record its CRC and
  // fold its rows into the panel bounds (over the *encoded* values, so
  // the bound is scale-aware rather than inherited from fp32).
  PanelBoundTable bounds(s.rows_, kDefaultBoundBlockRows);
  std::string payload;
  for (int64_t i = 0; i < n_shards; ++i) {
    Shard& sh = s.shards_[static_cast<size_t>(i)];
    sh.begin = i * s.rows_per_shard_;
    sh.end = std::min(s.rows_, sh.begin + s.rows_per_shard_);
    const int64_t srows = sh.end - sh.begin;
    const float* rows = src->PanelRows(sh.begin, sh.end);
    payload.assign(static_cast<size_t>(s.ShardByteSize(sh.begin, sh.end)),
                   '\0');
    if (dtype == ShardDtype::kInt8) {
      std::vector<int8_t> q(static_cast<size_t>(srows * s.dim_));
      std::vector<float> scales(static_cast<size_t>(srows));
      Status st = qgemm::QuantizeRowsInt8(rows, srows, s.dim_, q.data(),
                                          scales.data());
      if (!st.ok()) {
        return Status::InvalidArgument("slab " + std::to_string(i) + ": " +
                                       st.message());
      }
      std::memcpy(payload.data(), q.data(), q.size());
      std::memcpy(payload.data() + PadTo64(srows * s.dim_), scales.data(),
                  scales.size() * sizeof(float));
      AccountRowsInt8(&bounds, q.data(), scales.data(), /*bias=*/nullptr,
                      sh.begin, srows, s.dim_);
    } else {
      std::vector<uint16_t> enc(static_cast<size_t>(srows * s.dim_));
      Status st = qgemm::EncodeRowsBf16(rows, srows, s.dim_, enc.data());
      if (!st.ok()) {
        return Status::InvalidArgument("slab " + std::to_string(i) + ": " +
                                       st.message());
      }
      std::memcpy(payload.data(), enc.data(),
                  enc.size() * sizeof(uint16_t));
      AccountRowsBf16(&bounds, enc.data(), /*bias=*/nullptr, sh.begin, srows,
                      s.dim_);
    }
    CAME_RETURN_IF_ERROR(io::WriteFileAtomic(
        s.SlabPath(i), payload.data(), payload.size()));
    sh.crc = io::Crc32(payload.data(), payload.size());
  }
  s.bounds_ = std::move(bounds);
  // Slabs and CRCs are durable; publish the sealed manifest directly —
  // a quantized store is never served unsealed.
  CAME_RETURN_IF_ERROR(s.WriteManifest(/*sealed=*/true));
  s.WriteBoundsSidecar().LogIfError("shard store bounds sidecar write");
  return s;
}

Status ShardStore::WriteManifest(bool sealed) {
  std::string payload;
  if (dtype_ == ShardDtype::kF32) {
    AppendPod(&payload, kVersion);
  } else {
    AppendPod(&payload, kQuantVersion);
    AppendPod(&payload, static_cast<uint8_t>(dtype_));
  }
  AppendPod(&payload, rows_);
  AppendPod(&payload, dim_);
  AppendPod(&payload, rows_per_shard_);
  AppendPod(&payload, static_cast<uint8_t>(sealed ? 1 : 0));
  AppendPod(&payload, static_cast<uint64_t>(shards_.size()));
  for (const Shard& sh : shards_) AppendPod(&payload, sh.crc);

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendPod(&file, static_cast<uint64_t>(payload.size()));
  file += payload;
  AppendPod(&file, io::Crc32(payload.data(), payload.size()));
  CAME_RETURN_IF_ERROR(
      io::WriteFileAtomic(ManifestPath(dir_), file.data(), file.size()));
  sealed_ = sealed;
  return Status::OK();
}

uint32_t ShardStore::BoundsTag() const {
  std::string crcs;
  for (const Shard& sh : shards_) AppendPod(&crcs, sh.crc);
  return io::Crc32(crcs.data(), crcs.size());
}

Status ShardStore::WriteBoundsSidecar() const {
  if (in_ram()) return Status::OK();
  if (bounds_.empty()) {
    return Status::FailedPrecondition("no panel bounds computed yet");
  }
  std::string payload;
  AppendPod(&payload, kBoundsVersion);
  AppendPod(&payload, BoundsTag());
  payload += bounds_.Encode();

  std::string file;
  file.append(kBoundsMagic, sizeof(kBoundsMagic));
  AppendPod(&file, static_cast<uint64_t>(payload.size()));
  file += payload;
  AppendPod(&file, io::Crc32(payload.data(), payload.size()));
  return io::WriteFileAtomic(BoundsPath(dir_), file.data(), file.size());
}

Status ShardStore::LoadBoundsSidecar() {
  std::string raw;
  CAME_RETURN_IF_ERROR(io::ReadFile(BoundsPath(dir_), &raw));
  if (raw.size() < sizeof(kBoundsMagic) + sizeof(uint64_t) +
                       sizeof(uint32_t)) {
    return Status::Corruption(dir_ + ": bounds sidecar too small");
  }
  if (std::memcmp(raw.data(), kBoundsMagic, sizeof(kBoundsMagic)) != 0) {
    return Status::Corruption(dir_ + ": bad bounds sidecar magic");
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len, raw.data() + sizeof(kBoundsMagic),
              sizeof(payload_len));
  const size_t framed = sizeof(kBoundsMagic) + sizeof(uint64_t) +
                        payload_len + sizeof(uint32_t);
  if (payload_len > raw.size() || framed != raw.size()) {
    return Status::Corruption(dir_ + ": bounds sidecar length mismatch");
  }
  const char* payload = raw.data() + sizeof(kBoundsMagic) + sizeof(uint64_t);
  uint32_t want_crc = 0;
  std::memcpy(&want_crc, payload + payload_len, sizeof(want_crc));
  if (io::Crc32(payload, payload_len) != want_crc) {
    return Status::Corruption(dir_ + ": bounds sidecar checksum mismatch");
  }

  Reader r(payload, payload_len);
  uint64_t version = 0;
  uint32_t tag = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&version));
  if (version != kBoundsVersion) {
    return Status::Corruption(dir_ + ": unsupported bounds sidecar version " +
                              std::to_string(version));
  }
  CAME_RETURN_IF_ERROR(r.ReadPod(&tag));
  if (tag != BoundsTag()) {
    return Status::Corruption(
        dir_ + ": bounds sidecar is stale (slab CRC tag mismatch)");
  }
  Result<PanelBoundTable> table =
      PanelBoundTable::Decode(r.cursor(), r.remaining());
  if (!table.ok()) return table.status();
  if (table.value().rows() != rows_) {
    return Status::Corruption(dir_ + ": bounds sidecar covers " +
                              std::to_string(table.value().rows()) +
                              " rows, store has " + std::to_string(rows_));
  }
  bounds_ = std::move(table).value();
  return Status::OK();
}

Status ShardStore::ComputeBounds() {
  PanelBoundTable bounds(rows_, kDefaultBoundBlockRows);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const int64_t begin = shards_[i].begin;
    const int64_t end = shards_[i].end;
    const int64_t n = end - begin;
    switch (dtype_) {
      case ShardDtype::kF32:
        AccountRowsFp32(&bounds, PanelRows(begin, end), /*bias=*/nullptr,
                        begin, n, dim_);
        break;
      case ShardDtype::kInt8: {
        // Both pointers land in the same slab mapping, so the second
        // accessor is a residency hit and cannot evict the first.
        const int8_t* codes = QuantPanelRows(begin, end);
        const float* scales = PanelScales(begin, end);
        AccountRowsInt8(&bounds, codes, scales, /*bias=*/nullptr, begin, n,
                        dim_);
        break;
      }
      case ShardDtype::kBf16:
        AccountRowsBf16(&bounds, Bf16PanelRows(begin, end), /*bias=*/nullptr,
                        begin, n, dim_);
        break;
    }
  }
  bounds_ = std::move(bounds);
  return Status::OK();
}

Status ShardStore::MapShard(int64_t shard) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  CAME_CHECK(sh.base == nullptr);
  // Make room under the residency budget first.
  while (max_resident_ > 0 && resident_count_ >= max_resident_) {
    int64_t victim = -1;
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].base != nullptr && shards_[i].pins == 0 &&
          shards_[i].last_use < oldest) {
        oldest = shards_[i].last_use;
        victim = static_cast<int64_t>(i);
      }
    }
    if (victim < 0) {
      // Every resident slab holds a pin lease; map past the budget rather
      // than stall the reader. Residency self-corrects: once pins drop,
      // the next map's eviction scan keeps reclaiming until under budget.
      ++stats_.pin_blocked_evictions;
      break;
    }
    UnmapShard(victim);
    ++stats_.evictions;
  }
  const std::string path = SlabPath(shard);
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  const int64_t bytes = ShardByteSize(sh.begin, sh.end);
  void* base = ::mmap(nullptr, static_cast<size_t>(bytes),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  sh.base = base;
  ++resident_count_;
  ++stats_.map_misses;
  stats_.resident_shards = resident_count_;
  stats_.resident_bytes += bytes;
  return Status::OK();
}

void ShardStore::UnmapShard(int64_t shard) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.base == nullptr) return;
  const int64_t bytes = ShardByteSize(sh.begin, sh.end);
  // MAP_SHARED dirty pages survive the unmap in the page cache; durability
  // and checksums are re-established by Seal().
  ::munmap(sh.base, static_cast<size_t>(bytes));
  sh.base = nullptr;
  --resident_count_;
  stats_.resident_shards = resident_count_;
  stats_.resident_bytes -= bytes;
}

Result<char*> ShardStore::Acquire(int64_t shard) {
  came::MutexLock lock(&mu_);
  return AcquireLocked(shard);
}

Result<char*> ShardStore::AcquireLocked(int64_t shard) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.base == nullptr) {
    CAME_RETURN_IF_ERROR(MapShard(shard));
  } else {
    ++stats_.map_hits;
  }
  sh.last_use = ++clock_;
  return static_cast<char*>(sh.base);
}

char* ShardStore::AcquirePanel(int64_t begin, int64_t end,
                               int64_t* shard_out) {
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LE(end, rows_);
  const int64_t shard = ShardIndex(begin);
  CAME_CHECK_LE(end, shards_[static_cast<size_t>(shard)].end)
      << "panel crosses a shard boundary";
  Result<char*> base = Acquire(shard);
  CAME_CHECK(base.ok()) << base.status().ToString();
  *shard_out = shard;
  return base.value();
}

int64_t ShardStore::PinPanel(int64_t begin, int64_t end) {
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LE(end, rows_);
  const int64_t shard = ShardIndex(begin);
  CAME_CHECK_LE(end, shards_[static_cast<size_t>(shard)].end)
      << "panel crosses a shard boundary";
  came::MutexLock lock(&mu_);
  Result<char*> base = AcquireLocked(shard);
  CAME_CHECK(base.ok()) << base.status().ToString();
  ++shards_[static_cast<size_t>(shard)].pins;
  return shard;
}

void ShardStore::UnpinPanel(int64_t shard) {
  CAME_CHECK_GE(shard, 0);
  CAME_CHECK_LT(shard, num_shards());
  came::MutexLock lock(&mu_);
  Shard& sh = shards_[static_cast<size_t>(shard)];
  CAME_CHECK_GT(sh.pins, 0) << "unbalanced UnpinPanel";
  --sh.pins;
}

bool ShardStore::ShardResident(int64_t shard) const {
  CAME_CHECK_GE(shard, 0);
  CAME_CHECK_LT(shard, num_shards());
  came::MutexLock lock(&mu_);
  return shards_[static_cast<size_t>(shard)].base != nullptr;
}

const float* ShardStore::Row(int64_t r) {
  CAME_CHECK(dtype_ == ShardDtype::kF32)
      << "fp32 row access on a " << ShardDtypeName(dtype_) << " store";
  CAME_CHECK_GE(r, 0);
  CAME_CHECK_LT(r, rows_);
  const int64_t shard = ShardIndex(r);
  Result<char*> base = Acquire(shard);
  CAME_CHECK(base.ok()) << base.status().ToString();
  return reinterpret_cast<const float*>(base.value()) +
         (r - shards_[static_cast<size_t>(shard)].begin) * dim_;
}

float* ShardStore::MutableRow(int64_t r) {
  CAME_CHECK(dtype_ == ShardDtype::kF32)
      << "quantized stores are immutable (dtype " << ShardDtypeName(dtype_)
      << ")";
  CAME_CHECK_GE(r, 0);
  CAME_CHECK_LT(r, rows_);
  const int64_t shard = ShardIndex(r);
  Result<char*> base = Acquire(shard);
  CAME_CHECK(base.ok()) << base.status().ToString();
  Shard& sh = shards_[static_cast<size_t>(shard)];
  sh.dirty = true;
  // Any bound computed before this write may now be an under-estimate;
  // drop back to the never-prune state until the next Seal recomputes.
  bounds_ = PanelBoundTable();
  if (sealed_ && !in_ram()) {
    // First mutation of a sealed store: publish an unsealed manifest so a
    // crash mid-update reads as "unsealed" rather than passing stale CRCs.
    const Status st = WriteManifest(/*sealed=*/false);
    CAME_CHECK(st.ok()) << st.ToString();
  }
  return reinterpret_cast<float*>(base.value()) + (r - sh.begin) * dim_;
}

const float* ShardStore::PanelRows(int64_t begin, int64_t end) {
  CAME_CHECK(dtype_ == ShardDtype::kF32)
      << "fp32 panel access on a " << ShardDtypeName(dtype_) << " store";
  int64_t shard = 0;
  const char* base = AcquirePanel(begin, end, &shard);
  return reinterpret_cast<const float*>(base) +
         (begin - shards_[static_cast<size_t>(shard)].begin) * dim_;
}

const int8_t* ShardStore::QuantPanelRows(int64_t begin, int64_t end) {
  CAME_CHECK(dtype_ == ShardDtype::kInt8)
      << "int8 panel access on a " << ShardDtypeName(dtype_) << " store";
  int64_t shard = 0;
  const char* base = AcquirePanel(begin, end, &shard);
  return reinterpret_cast<const int8_t*>(base) +
         (begin - shards_[static_cast<size_t>(shard)].begin) * dim_;
}

const float* ShardStore::PanelScales(int64_t begin, int64_t end) {
  CAME_CHECK(dtype_ == ShardDtype::kInt8)
      << "row scales on a " << ShardDtypeName(dtype_) << " store";
  int64_t shard = 0;
  const char* base = AcquirePanel(begin, end, &shard);
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  const char* scales = base + PadTo64((sh.end - sh.begin) * dim_);
  return reinterpret_cast<const float*>(scales) + (begin - sh.begin);
}

const uint16_t* ShardStore::Bf16PanelRows(int64_t begin, int64_t end) {
  CAME_CHECK(dtype_ == ShardDtype::kBf16)
      << "bf16 panel access on a " << ShardDtypeName(dtype_) << " store";
  int64_t shard = 0;
  const char* base = AcquirePanel(begin, end, &shard);
  return reinterpret_cast<const uint16_t*>(base) +
         (begin - shards_[static_cast<size_t>(shard)].begin) * dim_;
}

int64_t ShardStore::ShardEnd(int64_t row) const {
  CAME_CHECK_GE(row, 0);
  CAME_CHECK_LT(row, rows_);
  return shards_[static_cast<size_t>(ShardIndex(row))].end;
}

Status ShardStore::Seal() {
  if (in_ram()) return ComputeBounds();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = shards_[i];
    const int64_t bytes = ShardByteSize(sh.begin, sh.end);
    if (sh.base != nullptr) {
      if (::msync(sh.base, static_cast<size_t>(bytes), MS_SYNC) != 0) {
        return Status::IOError("msync " + SlabPath(static_cast<int64_t>(i)) +
                               ": " + std::strerror(errno));
      }
      sh.crc = io::Crc32(sh.base, static_cast<size_t>(bytes));
    } else {
      // Evicted dirty pages live in the page cache; fsync makes them
      // durable, then a transient mapping yields the checksum.
      const std::string path = SlabPath(static_cast<int64_t>(i));
      const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        return Status::IOError("open " + path + ": " + std::strerror(errno));
      }
      if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::IOError("fsync " + path + ": " + std::strerror(err));
      }
      ::close(fd);
      Result<uint32_t> crc = SlabFileCrc(path, bytes);
      if (!crc.ok()) return crc.status();
      sh.crc = crc.value();
    }
    sh.dirty = false;
  }
  // Bounds stream through the panel accessors, which take mu_ themselves —
  // compute them before (and outside) the manifest publish.
  CAME_RETURN_IF_ERROR(ComputeBounds());
  CAME_RETURN_IF_ERROR(WriteManifest(/*sealed=*/true));
  WriteBoundsSidecar().LogIfError("shard store bounds sidecar write");
  return Status::OK();
}

uint32_t ShardStore::ContentCrc32() {
  uint32_t crc = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = shards_[i];
    int64_t shard = 0;
    // Raw slab bytes, not PanelRows: the hash covers whatever encoding
    // the store carries (for fp32 that is the same bytes as before).
    const char* base = AcquirePanel(sh.begin, sh.end, &shard);
    crc = io::Crc32(
        base, static_cast<size_t>(ShardByteSize(sh.begin, sh.end)), crc);
  }
  return crc;
}

ShardStore::Stats ShardStore::GetStats() const {
  came::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace came::tensor
