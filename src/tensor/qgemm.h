#ifndef CAME_TENSOR_QGEMM_H_
#define CAME_TENSOR_QGEMM_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace came::tensor::qgemm {

// ---------------------------------------------------------------------------
// Quantized scoring kernels: per-row symmetric int8 (plus a bf16 storage
// fallback) with fp32 outputs. The serving shape is fixed — queries [m, k]
// against candidate rows [n, k], both row-major, producing row-dot scores
// C[i, j] = <A[i], B[j]> — so unlike the fp32 GEMM there are no transpose
// flags and no accumulate mode.
//
// Determinism contract: the int8 path accumulates each dot product in
// exact int32 arithmetic and applies one fixed fp32 scaling expression
//   C[i, j] = float(acc32) * (a_scale[i] * b_scale[j])
// in every kernel, so results are bitwise-identical across kernel choices
// (scalar / AVX2 / VNNI) and thread counts — the property the parity grid
// in tests/tensor/qgemm_test.cc pins. Approximation error lives entirely
// in the quantization step, never in the kernels.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Per-row symmetric int8 quantization.
//
// scale = max|row| / 127, q = round-to-nearest-even(x / scale), clamped to
// [-127, 127]. The [-127, 127] range (not -128) keeps every AVX2
// vpmaddubsw pair sum within int16 (2 * 127 * 127 = 32258 < 32767), so the
// SIMD kernels never saturate. An all-zero row gets scale 0 and
// dequantizes exactly to zero.
// ---------------------------------------------------------------------------

/// Quantizes `rows` rows of `dim` floats. `out` is [rows * dim] int8,
/// `scales` is [rows] fp32. Rejects rows containing NaN or Inf with
/// InvalidArgument (a quantized *table* must never silently encode
/// garbage); the error names the offending row.
Status QuantizeRowsInt8(const float* src, int64_t rows, int64_t dim,
                        int8_t* out, float* scales);

/// Query-side variant for the serving hot path, where a non-finite query
/// must degrade instead of erroring: a row containing NaN/Inf gets
/// scale = quiet NaN and an all-zero quantized row, so every score it
/// produces is NaN and ranks worst under the serving order.
void QuantizeRowsInt8Serving(const float* src, int64_t rows, int64_t dim,
                             int8_t* out, float* scales);

/// Two-digit query quantization for the int8 scoring path: `hi` is the
/// ordinary per-row int8 encoding, `lo` re-quantizes the per-element
/// residual (x - hi * hi_scale) with its own scale. Since the residual's
/// magnitude is at most hi_scale / 2, lo_scale <= hi_scale / 254 — the
/// query contributes ~127x less error to the score than a single int8
/// digit, leaving the candidate matrix as the dominant (and gated)
/// approximation. Non-finite rows degrade like the single-digit serving
/// variant: both scales NaN, both digit rows zero.
void QuantizeRowsInt8ServingTwoDigit(const float* src, int64_t rows,
                                     int64_t dim, int8_t* hi,
                                     float* hi_scales, int8_t* lo,
                                     float* lo_scales);

/// Round-trip helper for tests: the dequantized value of one element.
inline float DequantizeInt8(int8_t q, float scale) {
  return static_cast<float>(q) * scale;
}

// ---------------------------------------------------------------------------
// bf16 storage fallback: same panel interface, half the bytes of fp32.
// Encoding is round-to-nearest-even truncation of the fp32 bit pattern;
// decoding is an exact widening (bf16 values are a subset of fp32), so a
// bf16 scoring path is bitwise equal to fp32 scoring over the rounded
// candidate matrix.
// ---------------------------------------------------------------------------

uint16_t Fp32ToBf16(float v);
float Bf16ToFp32(uint16_t v);

/// Encodes rows to bf16, rejecting NaN/Inf rows with InvalidArgument
/// (same table hygiene as int8).
Status EncodeRowsBf16(const float* src, int64_t rows, int64_t dim,
                      uint16_t* out);

/// Exact widening decode of `n` bf16 values into fp32.
void DecodeBf16(const uint16_t* src, int64_t n, float* out);

// ---------------------------------------------------------------------------
// Int8 GEMM with fp32 output.
// ---------------------------------------------------------------------------

/// C[i, j] = float(<A[i], B[j]>_int32) * (a_scales[i] * b_scales[j]).
/// A is [m, k] int8 row-major, B is [n, k] int8 row-major, C is [m, n]
/// fp32 row-major (overwritten). Parallelised over candidate blocks with
/// a shape-only partition; bitwise-identical at any CAME_NUM_THREADS and
/// any kernel choice.
void GemmInt8(const int8_t* a, const float* a_scales, const int8_t* b,
              const float* b_scales, float* c, int64_t m, int64_t k,
              int64_t n);

/// Serial scalar reference (the parity oracle for the dispatched kernels;
/// bitwise-equal to GemmInt8 by the determinism contract above).
void ReferenceGemmInt8(const int8_t* a, const float* a_scales,
                       const int8_t* b, const float* b_scales, float* c,
                       int64_t m, int64_t k, int64_t n);

/// Two-digit-query GEMM (the ScoreServer's int8 sweep): A is the (hi, lo)
/// digit pair from QuantizeRowsInt8ServingTwoDigit, B the int8 candidate
/// panel. One pass over each B row computes both integer dots and applies
/// the fixed combine
///   C[i, j] = float(hi_acc) * (hi_s[i] * b_s[j])
///           + float(lo_acc) * (lo_s[i] * b_s[j])
/// through a single shared code site, so bitwise kernel/thread parity
/// holds exactly as in GemmInt8.
void GemmInt8TwoDigit(const int8_t* a_hi, const float* a_hi_scales,
                      const int8_t* a_lo, const float* a_lo_scales,
                      const int8_t* b, const float* b_scales, float* c,
                      int64_t m, int64_t k, int64_t n);

/// Serial scalar reference for GemmInt8TwoDigit.
void ReferenceGemmInt8TwoDigit(const int8_t* a_hi, const float* a_hi_scales,
                               const int8_t* a_lo, const float* a_lo_scales,
                               const int8_t* b, const float* b_scales,
                               float* c, int64_t m, int64_t k, int64_t n);

// ---------------------------------------------------------------------------
// Row-norm upper bounds for the serving layer's Cauchy–Schwarz panel
// pruning (infer::ScoreServer). Each helper returns a float f with
// f >= ||row||_2 of the row *as the scoring path sees it* — the raw fp32
// values, the dequantized int8 codes (scale-aware), or the decoded bf16
// values. Accumulation runs in double and the result rounds up one ulp,
// so the bound can never be below the true norm; a row containing NaN or
// Inf (or a NaN/Inf scale) returns +inf, which disables pruning for its
// block instead of producing an unsound bound.
// ---------------------------------------------------------------------------

float RowNormUpperBoundFp32(const float* row, int64_t dim);

/// Norm-of-codes: |scale| * sqrt(sum q^2) over the dequantized row. The
/// integer square sum is exact, so only the final scale multiply rounds.
float RowNormUpperBoundInt8(const int8_t* codes, int64_t dim, float scale);

float RowNormUpperBoundBf16(const uint16_t* row, int64_t dim);

// ---------------------------------------------------------------------------
// Microkernel dispatch, mirroring tensor::gemm::Kernel: which kernels
// exist depends on the compile-time ISA, which one runs is decided at
// startup from cpuid, overridable via CAME_QGEMM_KERNEL
// ("vnni" | "avx2" | "scalar" | "auto") or SetKernel.
// ---------------------------------------------------------------------------

enum class Kernel {
  kAuto,    ///< pick the best kernel the CPU and binary support
  kScalar,  ///< portable int32 dot loop
  kAvx2,    ///< AVX2 vpsignb + vpmaddubsw + vpmaddwd
  kVnni,    ///< AVX-512 VNNI vpdpbusd (256-bit, requires AVX512VL)
};

/// The kernel GemmInt8 will actually run (never kAuto).
Kernel ActiveKernel();

/// Forces the microkernel at runtime (tests / benches). kAuto restores
/// cpuid-based selection; unavailable requests fall back with a warning.
void SetKernel(Kernel k);

/// True when `k` can run on this CPU with this binary.
bool KernelAvailable(Kernel k);

/// Human-readable name ("vnni", "avx2", "scalar", "auto").
std::string KernelName(Kernel k);

}  // namespace came::tensor::qgemm

#endif  // CAME_TENSOR_QGEMM_H_
