#ifndef CAME_TENSOR_GEMM_H_
#define CAME_TENSOR_GEMM_H_

#include <cstdint>
#include <string>

namespace came::tensor::gemm {

// ---------------------------------------------------------------------------
// Single-precision GEMM: C (m x n, row-major) = op(A) * op(B) [+ C].
//
// The implementation is a cache-blocked, packed-panel SGEMM with a
// register-tiled microkernel (see DESIGN.md "GEMM subsystem"). Operands are
// consumed through their transpose flags by the packing routines, so no
// transposed copy is ever materialized. Work is distributed over the
// ParallelFor worker pool with a partition that depends only on the problem
// shape — never the thread count — so results are bitwise-identical at
// every CAME_NUM_THREADS setting.
// ---------------------------------------------------------------------------

/// op(A) is m x k, op(B) is k x n, C is m x n, all dense row-major.
/// A is m x k (trans_a=false) or k x m (trans_a=true); B is k x n
/// (trans_b=false) or n x k (trans_b=true). `accumulate=false` overwrites
/// C; `accumulate=true` adds to it.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate);

/// The retained pre-blocking ikj kernel (serial, unpacked). Kept as the
/// parity reference for tests and as the before-side of the GEMM benches.
/// Accumulation order differs from Gemm (straight k-order per output vs
/// KC-blocked register tiles), so parity is tolerance-based; see
/// tests/tensor/gemm_test.cc for the policy.
void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, bool trans_a, bool trans_b,
                   bool accumulate);

// ---------------------------------------------------------------------------
// Microkernel dispatch
// ---------------------------------------------------------------------------

/// Available microkernel implementations, best-first. Which ones exist in
/// the binary depends on the compile-time ISA (-march); which one runs is
/// decided at startup from cpuid, overridable via the CAME_GEMM_KERNEL
/// environment variable ("avx512" | "avx2" | "scalar" | "auto") or
/// SetKernel below.
enum class Kernel {
  kAuto,    ///< pick the best kernel the CPU and binary support
  kScalar,  ///< portable blocked C++ (still compiler-autovectorizable)
  kAvx2,    ///< AVX2 + FMA 6x16 microkernel
  kAvx512,  ///< AVX-512F 8x32 microkernel
};

/// The kernel Gemm will actually run (never kAuto). Resolved on first use
/// from CAME_GEMM_KERNEL, then cpuid; an unavailable request falls back to
/// the best available kernel with a warning.
Kernel ActiveKernel();

/// Forces the microkernel at runtime (tests / benches). kAuto restores
/// cpuid-based selection. Requests for kernels the CPU or binary cannot
/// run fall back to the best available one.
void SetKernel(Kernel k);

/// Human-readable name ("avx512", "avx2", "scalar", "auto").
std::string KernelName(Kernel k);

}  // namespace came::tensor::gemm

#endif  // CAME_TENSOR_GEMM_H_
