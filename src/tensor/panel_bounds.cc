#include "tensor/panel_bounds.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "tensor/qgemm.h"

namespace came::tensor {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

PanelBoundTable::PanelBoundTable(int64_t rows, int64_t block_rows)
    : rows_(rows), block_rows_(block_rows) {
  CAME_CHECK_GT(rows, 0);
  CAME_CHECK_GT(block_rows, 0);
  const int64_t blocks = (rows + block_rows - 1) / block_rows;
  norms_.assign(static_cast<size_t>(blocks), 0.0f);
  bias_max_.assign(static_cast<size_t>(blocks), 0.0f);
}

void PanelBoundTable::AccountRow(int64_t r, float norm_upper, float bias) {
  CAME_CHECK(!empty());
  CAME_CHECK_GE(r, 0);
  CAME_CHECK_LT(r, rows_);
  const size_t blk = static_cast<size_t>(r / block_rows_);
  // NaN would poison the max comparisons below into silently keeping the
  // old (too-small) value; widen to +inf, which correctly never prunes.
  if (std::isnan(norm_upper)) norm_upper = kInf;
  if (std::isnan(bias)) bias = kInf;
  norms_[blk] = std::max(norms_[blk], norm_upper);
  bias_max_[blk] = std::max(bias_max_[blk], bias);
}

float PanelBoundTable::MaxNorm(int64_t begin, int64_t end) const {
  if (empty()) return kInf;
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, rows_);
  float m = 0.0f;
  for (int64_t b = begin / block_rows_; b <= (end - 1) / block_rows_; ++b) {
    m = std::max(m, norms_[static_cast<size_t>(b)]);
  }
  return m;
}

float PanelBoundTable::MaxBias(int64_t begin, int64_t end) const {
  if (empty()) return kInf;
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, rows_);
  float m = bias_max_[static_cast<size_t>(begin / block_rows_)];
  for (int64_t b = begin / block_rows_ + 1; b <= (end - 1) / block_rows_;
       ++b) {
    m = std::max(m, bias_max_[static_cast<size_t>(b)]);
  }
  return m;
}

std::string PanelBoundTable::Encode() const {
  std::string buf;
  AppendPod(&buf, rows_);
  AppendPod(&buf, block_rows_);
  AppendPod(&buf, static_cast<uint64_t>(norms_.size()));
  buf.append(reinterpret_cast<const char*>(norms_.data()),
             norms_.size() * sizeof(float));
  buf.append(reinterpret_cast<const char*>(bias_max_.data()),
             bias_max_.size() * sizeof(float));
  return buf;
}

Result<PanelBoundTable> PanelBoundTable::Decode(const char* data,
                                                size_t size) {
  int64_t rows = 0;
  int64_t block_rows = 0;
  uint64_t blocks = 0;
  const size_t header = sizeof(rows) + sizeof(block_rows) + sizeof(blocks);
  if (size < header) {
    return Status::Corruption("panel bounds payload truncated");
  }
  std::memcpy(&rows, data, sizeof(rows));
  std::memcpy(&block_rows, data + sizeof(rows), sizeof(block_rows));
  std::memcpy(&blocks, data + sizeof(rows) + sizeof(block_rows),
              sizeof(blocks));
  if (rows <= 0 || block_rows <= 0 ||
      blocks != static_cast<uint64_t>((rows + block_rows - 1) / block_rows)) {
    return Status::Corruption("implausible panel bounds geometry");
  }
  if (size != header + 2 * blocks * sizeof(float)) {
    return Status::Corruption("panel bounds payload length mismatch");
  }
  PanelBoundTable t(rows, block_rows);
  std::memcpy(t.norms_.data(), data + header, blocks * sizeof(float));
  std::memcpy(t.bias_max_.data(), data + header + blocks * sizeof(float),
              blocks * sizeof(float));
  for (size_t b = 0; b < blocks; ++b) {
    // A negative or NaN "max norm" can only come from a corrupt or
    // hostile payload; serving with it would make pruning unsound.
    if (std::isnan(t.norms_[b]) || t.norms_[b] < 0.0f ||
        std::isnan(t.bias_max_[b])) {
      return Status::Corruption("panel bounds contain invalid block values");
    }
  }
  return t;
}

void AccountRowsFp32(PanelBoundTable* bounds, const float* rows,
                     const float* bias, int64_t first_row, int64_t n,
                     int64_t d) {
  for (int64_t i = 0; i < n; ++i) {
    bounds->AccountRow(first_row + i,
                       qgemm::RowNormUpperBoundFp32(rows + i * d, d),
                       bias != nullptr ? bias[i] : 0.0f);
  }
}

void AccountRowsInt8(PanelBoundTable* bounds, const int8_t* codes,
                     const float* scales, const float* bias,
                     int64_t first_row, int64_t n, int64_t d) {
  for (int64_t i = 0; i < n; ++i) {
    bounds->AccountRow(
        first_row + i,
        qgemm::RowNormUpperBoundInt8(codes + i * d, d, scales[i]),
        bias != nullptr ? bias[i] : 0.0f);
  }
}

void AccountRowsBf16(PanelBoundTable* bounds, const uint16_t* rows,
                     const float* bias, int64_t first_row, int64_t n,
                     int64_t d) {
  for (int64_t i = 0; i < n; ++i) {
    bounds->AccountRow(first_row + i,
                       qgemm::RowNormUpperBoundBf16(rows + i * d, d),
                       bias != nullptr ? bias[i] : 0.0f);
  }
}

}  // namespace came::tensor
