#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "common/parallel_for.h"
#include "tensor/storage_pool.h"

namespace came::tensor::gemm {

namespace {

// ---------------------------------------------------------------------------
// Blocking parameters (see DESIGN.md "GEMM subsystem").
//
// kKC x NR panels of B stream through L1/L2 inside the microkernel; a
// kMC x kKC packed block of A stays L2-resident while every B panel of the
// current column block is applied to it. kMC is a common multiple of every
// microkernel's MR so full blocks pack without internal edge panels, and —
// critically — the row-block grid {0, kMC, 2*kMC, ...} that ParallelFor
// distributes depends only on m, never on the kernel or thread count.
// ---------------------------------------------------------------------------
constexpr int64_t kMC = 96;   // rows of A per parallel work item
constexpr int64_t kKC = 256;  // depth of one packed panel pass
constexpr int64_t kNC = 1024; // columns of B packed per pass

// Products smaller than this skip packing entirely: the blocked path's
// pack+dispatch overhead exceeds the multiply itself. Shape-only test, so
// the chosen path (and the result) is independent of the thread count.
constexpr int64_t kSmallGemmFlopCutoff = 32 * 32 * 32;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
int64_t RoundUp(int64_t a, int64_t b) { return CeilDiv(a, b) * b; }

// ---------------------------------------------------------------------------
// Packing. Operand layout is absorbed here: element (i, p) of op(A) lives at
// a[i * a_si + p * a_sp] where the strides encode the transpose flag, so the
// microkernel only ever sees contiguous zero-padded panels and no transposed
// copy of A or B is materialized.
//
//   Ap: per MR-row panel, column-major within the panel: ap[p * MR + r]
//   Bp: per NR-col panel, row-major within the panel:    bp[p * NR + c]
// ---------------------------------------------------------------------------

template <int MR>
void PackA(const float* a, int64_t a_si, int64_t a_sp, int64_t ic, int64_t pc,
           int64_t mc, int64_t kc, float* ap) {
  for (int64_t ir = 0; ir < mc; ir += MR) {
    const int64_t rows = std::min<int64_t>(MR, mc - ir);
    const float* base = a + (ic + ir) * a_si + pc * a_sp;
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = base + p * a_sp;
      int64_t r = 0;
      for (; r < rows; ++r) ap[r] = src[r * a_si];
      for (; r < MR; ++r) ap[r] = 0.0f;
      ap += MR;
    }
  }
}

template <int NR>
void PackB(const float* b, int64_t b_sp, int64_t b_sj, int64_t pc, int64_t jc,
           int64_t kc, int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += NR) {
    const int64_t cols = std::min<int64_t>(NR, nc - jr);
    const float* base = b + pc * b_sp + (jc + jr) * b_sj;
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = base + p * b_sp;
      if (b_sj == 1 && cols == NR) {
        std::memcpy(bp, src, NR * sizeof(float));
      } else {
        int64_t c = 0;
        for (; c < cols; ++c) bp[c] = src[c * b_sj];
        for (; c < NR; ++c) bp[c] = 0.0f;
      }
      bp += NR;
    }
  }
}

// ---------------------------------------------------------------------------
// Microkernels: C[rows x cols] += Ap panel (MR x kc) * Bp panel (kc x NR).
// Full tiles accumulate in registers and add straight into C; edge tiles
// run the identical FMA sequence into a zeroed local tile first, then add
// the valid region, so edge handling never changes the arithmetic.
// ---------------------------------------------------------------------------

// Portable fallback, MR=4 / NR=16. ISA-portable, not AVX2/FMA-gated: on
// GNU-compatible compilers it uses generic vector extensions, which lower
// to whatever SIMD the target has (SSE, NEON, ...) or plain scalar code.
// A pure-loop variant covers other compilers. Named register accumulators
// are essential: array-typed accumulator tiles spill to the stack and the
// resulting store-to-load dependency chain caps the kernel at a fraction
// of machine peak.
constexpr int kScalarMR = 4;
constexpr int kScalarNR = 16;

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"  // v8f ABI is internal to this TU

typedef float v8f __attribute__((vector_size(32)));

inline v8f Splat8(float s) { return v8f{s, s, s, s, s, s, s, s}; }
inline v8f Load8(const float* p) {
  v8f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void Store8(float* p, v8f v) { std::memcpy(p, &v, sizeof(v)); }

// 4x16 register tile: 8 generic-vector accumulators + 2 B loads.
void MicroKernelScalarTile(const float* ap, const float* bp, int64_t kc,
                           float* c, int64_t ldc) {
  v8f a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
  for (int64_t p = 0; p < kc; ++p) {
    const v8f b0 = Load8(bp + p * kScalarNR);
    const v8f b1 = Load8(bp + p * kScalarNR + 8);
    const float* arow = ap + p * kScalarMR;
    a00 += Splat8(arow[0]) * b0;
    a01 += Splat8(arow[0]) * b1;
    a10 += Splat8(arow[1]) * b0;
    a11 += Splat8(arow[1]) * b1;
    a20 += Splat8(arow[2]) * b0;
    a21 += Splat8(arow[2]) * b1;
    a30 += Splat8(arow[3]) * b0;
    a31 += Splat8(arow[3]) * b1;
  }
  float* c0 = c;
  float* c1 = c + ldc;
  float* c2 = c + 2 * ldc;
  float* c3 = c + 3 * ldc;
  Store8(c0, Load8(c0) + a00);
  Store8(c0 + 8, Load8(c0 + 8) + a01);
  Store8(c1, Load8(c1) + a10);
  Store8(c1 + 8, Load8(c1 + 8) + a11);
  Store8(c2, Load8(c2) + a20);
  Store8(c2 + 8, Load8(c2 + 8) + a21);
  Store8(c3, Load8(c3) + a30);
  Store8(c3 + 8, Load8(c3 + 8) + a31);
}

#pragma GCC diagnostic pop
#else   // plain-loop variant for compilers without GNU vector extensions
void MicroKernelScalarTile(const float* ap, const float* bp, int64_t kc,
                           float* c, int64_t ldc) {
  float acc[kScalarMR][kScalarNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kScalarNR;
    const float* arow = ap + p * kScalarMR;
    for (int r = 0; r < kScalarMR; ++r) {
      const float av = arow[r];
      for (int j = 0; j < kScalarNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kScalarMR; ++r) {
    float* crow = c + r * ldc;
    for (int j = 0; j < kScalarNR; ++j) crow[j] += acc[r][j];
  }
}
#endif  // __GNUC__ || __clang__

void MicroKernelScalar(const float* ap, const float* bp, int64_t kc, float* c,
                       int64_t ldc, int rows, int cols) {
  if (rows == kScalarMR && cols == kScalarNR) {
    MicroKernelScalarTile(ap, bp, kc, c, ldc);
    return;
  }
  float tmp[kScalarMR * kScalarNR] = {};
  MicroKernelScalarTile(ap, bp, kc, tmp, kScalarNR);
  for (int r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += tmp[r * kScalarNR + j];
  }
}

#if defined(__AVX2__) && defined(__FMA__)
constexpr int kAvx2MR = 6;
constexpr int kAvx2NR = 16;

// 6x16 register tile: 12 ymm accumulators + 2 ymm B loads + 1 broadcast.
void MicroKernelAvx2Tile(const float* ap, const float* bp, int64_t kc,
                         float* c, int64_t ldc) {
  __m256 acc[kAvx2MR][2];
  for (int r = 0; r < kAvx2MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kAvx2NR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kAvx2NR + 8);
    const float* arow = ap + p * kAvx2MR;
    for (int r = 0; r < kAvx2MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kAvx2MR; ++r) {
    float* crow = c + r * ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
    _mm256_storeu_ps(crow + 8,
                     _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
  }
}

void MicroKernelAvx2(const float* ap, const float* bp, int64_t kc, float* c,
                     int64_t ldc, int rows, int cols) {
  if (rows == kAvx2MR && cols == kAvx2NR) {
    MicroKernelAvx2Tile(ap, bp, kc, c, ldc);
    return;
  }
  alignas(32) float tmp[kAvx2MR * kAvx2NR] = {};
  MicroKernelAvx2Tile(ap, bp, kc, tmp, kAvx2NR);
  for (int r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += tmp[r * kAvx2NR + j];
  }
}
#endif  // __AVX2__ && __FMA__

#if defined(__AVX512F__)
constexpr int kAvx512MR = 12;
constexpr int kAvx512NR = 32;

// 12x32 register tile: 24 zmm accumulators + 2 zmm B loads + 1 broadcast.
void MicroKernelAvx512Tile(const float* ap, const float* bp, int64_t kc,
                           float* c, int64_t ldc) {
  __m512 acc[kAvx512MR][2];
  for (int r = 0; r < kAvx512MR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kAvx512NR);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kAvx512NR + 16);
    const float* arow = ap + p * kAvx512MR;
    for (int r = 0; r < kAvx512MR; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kAvx512MR; ++r) {
    float* crow = c + r * ldc;
    _mm512_storeu_ps(crow, _mm512_add_ps(_mm512_loadu_ps(crow), acc[r][0]));
    _mm512_storeu_ps(crow + 16,
                     _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc[r][1]));
  }
}

void MicroKernelAvx512(const float* ap, const float* bp, int64_t kc, float* c,
                       int64_t ldc, int rows, int cols) {
  if (rows == kAvx512MR && cols == kAvx512NR) {
    MicroKernelAvx512Tile(ap, bp, kc, c, ldc);
    return;
  }
  alignas(64) float tmp[kAvx512MR * kAvx512NR] = {};
  MicroKernelAvx512Tile(ap, bp, kc, tmp, kAvx512NR);
  for (int r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += tmp[r * kAvx512NR + j];
  }
}
#endif  // __AVX512F__

// ---------------------------------------------------------------------------
// Blocked driver. Loop nest (outside in): column blocks of C (jc), depth
// panels (pc, serial — so the accumulation order into C is fixed), then
// row blocks of A distributed over the worker pool. Each row block packs
// its own slab of A (thread-local scratch) and writes a disjoint band of C
// rows; the packed B panel is shared read-only across workers.
// ---------------------------------------------------------------------------

using MicroKernelFn = void (*)(const float*, const float*, int64_t, float*,
                               int64_t, int, int);

template <int MR, int NR, MicroKernelFn MK>
void BlockedGemm(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n, bool trans_a, bool trans_b) {
  const int64_t a_si = trans_a ? 1 : k;  // stride of i in op(A)(i, p)
  const int64_t a_sp = trans_a ? m : 1;  // stride of p
  const int64_t b_sp = trans_b ? 1 : n;  // stride of p in op(B)(p, j)
  const int64_t b_sj = trans_b ? k : 1;  // stride of j

  // Packing scratch comes from the storage pool on a per-panel lease
  // instead of thread_local vectors, which grew to the largest panel ever
  // packed and held it for the life of the thread. Leases return the
  // buffer at panel-loop exit; PackA/PackB fully write the padded region
  // (zeroed edges), so uninitialised scratch is safe.
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t nc_pad = RoundUp(nc, NR);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const pool::ScratchLease bp_lease(nc_pad * kc);
      float* bp = bp_lease.data();  // raw pointer: workers share the
                                    // calling thread's packed panel
      PackB<NR>(b, b_sp, b_sj, pc, jc, kc, nc, bp);

      const int64_t ap_numel = RoundUp(std::min(kMC, m), MR) * kc;
      ParallelFor(0, CeilDiv(m, kMC), /*grain=*/1,
                  [&, bp](int64_t blk_lo, int64_t blk_hi) {
        const pool::ScratchLease ap_lease(ap_numel);
        float* ap_buf = ap_lease.data();
        for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const int64_t ic = blk * kMC;
          const int64_t mc = std::min(kMC, m - ic);
          PackA<MR>(a, a_si, a_sp, ic, pc, mc, kc, ap_buf);
          for (int64_t jr = 0; jr < nc; jr += NR) {
            const float* bpan = bp + (jr / NR) * NR * kc;
            const int cols = static_cast<int>(std::min<int64_t>(NR, nc - jr));
            for (int64_t ir = 0; ir < mc; ir += MR) {
              const float* apan = ap_buf + (ir / MR) * MR * kc;
              const int rows =
                  static_cast<int>(std::min<int64_t>(MR, mc - ir));
              MK(apan, bpan, kc, c + (ic + ir) * n + (jc + jr), n, rows,
                 cols);
            }
          }
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

bool KernelAvailable(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if defined(__AVX2__) && defined(__FMA__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Kernel::kAvx512:
#if defined(__AVX512F__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case Kernel::kAuto:
      return false;
  }
  return false;
}

Kernel BestAvailableKernel() {
  if (KernelAvailable(Kernel::kAvx512)) return Kernel::kAvx512;
  if (KernelAvailable(Kernel::kAvx2)) return Kernel::kAvx2;
  return Kernel::kScalar;
}

Kernel ResolveRequested(Kernel requested) {
  if (requested == Kernel::kAuto) return BestAvailableKernel();
  if (KernelAvailable(requested)) return requested;
  const Kernel fallback = BestAvailableKernel();
  CAME_LOG(Warning) << "GEMM kernel \"" << KernelName(requested)
                    << "\" not available on this CPU/binary; using \""
                    << KernelName(fallback) << "\"";
  return fallback;
}

Kernel ResolveFromEnv() {
  const char* env = std::getenv("CAME_GEMM_KERNEL");
  if (env == nullptr || *env == '\0') return BestAvailableKernel();
  const std::string v(env);
  if (v == "auto") return BestAvailableKernel();
  if (v == "scalar") return ResolveRequested(Kernel::kScalar);
  if (v == "avx2") return ResolveRequested(Kernel::kAvx2);
  if (v == "avx512") return ResolveRequested(Kernel::kAvx512);
  CAME_LOG(Warning) << "ignoring invalid CAME_GEMM_KERNEL=\"" << v
                    << "\" (want auto|scalar|avx2|avx512)";
  return BestAvailableKernel();
}

std::atomic<Kernel> g_kernel{Kernel::kAuto};

}  // namespace

Kernel ActiveKernel() {
  Kernel k = g_kernel.load(std::memory_order_relaxed);
  if (k == Kernel::kAuto) {
    k = ResolveFromEnv();
    g_kernel.store(k, std::memory_order_relaxed);
  }
  return k;
}

void SetKernel(Kernel k) {
  g_kernel.store(k == Kernel::kAuto ? ResolveFromEnv() : ResolveRequested(k),
                 std::memory_order_relaxed);
}

std::string KernelName(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, bool trans_a, bool trans_b,
                   bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  auto a_at = [&](int64_t i, int64_t p) {
    return trans_a ? a[p * m + i] : a[i * k + p];
  };
  if (!trans_b) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a_at(i, p);
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // B is [n, k] accessed as B^T: dot products of rows.
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a_at(i, p) * brow[p];
        crow[j] += acc;
      }
    }
  }
}

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (k <= 0) return;
  if (m * k * n < kSmallGemmFlopCutoff) {
    // Too small to amortize packing; the reference loop is serial, so this
    // path is trivially thread-count-invariant.
    ReferenceGemm(a, b, c, m, k, n, trans_a, trans_b, /*accumulate=*/true);
    return;
  }
  switch (ActiveKernel()) {
#if defined(__AVX512F__)
    case Kernel::kAvx512:
      BlockedGemm<kAvx512MR, kAvx512NR, MicroKernelAvx512>(a, b, c, m, k, n,
                                                           trans_a, trans_b);
      return;
#endif
#if defined(__AVX2__) && defined(__FMA__)
    case Kernel::kAvx2:
      BlockedGemm<kAvx2MR, kAvx2NR, MicroKernelAvx2>(a, b, c, m, k, n,
                                                     trans_a, trans_b);
      return;
#endif
    default:
      BlockedGemm<kScalarMR, kScalarNR, MicroKernelScalar>(a, b, c, m, k, n,
                                                           trans_a, trans_b);
      return;
  }
}

}  // namespace came::tensor::gemm
