#ifndef CAME_TENSOR_STORAGE_POOL_H_
#define CAME_TENSOR_STORAGE_POOL_H_

#include <cstdint>
#include <memory>
#include <string>

namespace came::tensor::pool {

/// Size-class pooling allocator for tensor storage.
///
/// Training and 1-to-N evaluation re-run the same op graph with identical
/// shapes every step, so the steady-state allocation pattern is a small
/// fixed set of buffer sizes acquired and released once per step. The pool
/// recycles those buffers through per-thread free lists over
/// power-of-two-ish size classes (capacities 2^k and 3*2^(k-1)) with a
/// shared mutex-guarded overflow pool, driving steady-state heap
/// allocations to ~zero.
///
/// Modes (CAME_TENSOR_POOL environment variable, default `on`):
///   on    recycle buffers through the free lists.
///   off   every acquire is a fresh heap allocation and every release a
///         heap free — keeps ASan's per-allocation poisoning effective, so
///         sanitizer CI runs in this mode.
///   scrub recycle, but poison buffers with signalling NaNs on release and
///         on uninitialised acquire, so any read-before-write of a
///         recycled buffer surfaces as a NaN — which CAME_TAPE_AUDIT=full
///         then turns into an abort naming the op that read it.
///
/// Determinism: the pool only changes *where* a buffer's bytes live, never
/// what is written to them. Zeroed acquires are zero in every mode, and
/// uninitialised acquires are only handed to code that fully overwrites
/// the region it reads back, so training is bitwise-identical across all
/// three modes (the pool parity tests assert this at 1 and 4 threads).
enum class Mode {
  kOff,
  kOn,
  kScrub,
};

/// Active mode; resolved from CAME_TENSOR_POOL on first use.
Mode ActiveMode();
/// Overrides the mode at runtime (benchmarks/tests). Buffers remember how
/// they were allocated, so switching modes while tensors are live is safe.
void SetMode(Mode mode);
std::string ModeName(Mode mode);

/// Allocation statistics. Counter semantics:
///   live_bytes    capacity bytes currently leased to handles
///   pooled_bytes  capacity bytes sitting in free lists (thread + shared)
///   hits          acquires served from a free list
///   misses        acquires that fell through to the heap
///   acquires      total acquire calls (== hits + misses)
///   heap_allocs   monotonic count of heap buffer allocations
struct Stats {
  int64_t live_bytes = 0;
  int64_t pooled_bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t acquires = 0;
  int64_t heap_allocs = 0;
};
Stats GetStats();

/// Monotonic counters for allocs-per-interval measurements: sample before
/// and after an interval (e.g. one training step) and subtract.
int64_t HeapAllocCount();
int64_t AcquireCount();

/// The capacity (in floats) of the size class that serves a request for
/// `numel` floats. Exposed for tests; requests above the largest class are
/// returned verbatim (they bypass the pool).
int64_t ClassCapacity(int64_t numel);

/// Shared storage handle: points at element 0 of the buffer; releasing the
/// last reference returns the buffer to the pool (or the heap, matching
/// how it was acquired). Aliasing handles (Tensor::Reshape) share the
/// control block, so buffer identity is pointer identity.
using StorageHandle = std::shared_ptr<float>;

/// Acquires storage for `numel` floats. `zero` guarantees zeroed contents;
/// otherwise the contents are unspecified (signalling NaNs under scrub).
StorageHandle Acquire(int64_t numel, bool zero);

/// Moves the calling thread's free lists into the shared pool, making the
/// buffers acquirable from any thread. Called automatically at thread
/// exit.
void FlushThreadCache();

/// Frees every buffer cached in the calling thread's lists and the shared
/// pool (buffers cached on *other* live threads stay put). Tests use this
/// to start from a clean slate.
void Clear();

/// The signalling-NaN pattern scrub mode poisons buffers with.
float ScrubPattern();

/// RAII lease of uninitialised scratch for raw kernels (GEMM packing
/// buffers, im2col slabs): acquires on construction, returns the buffer to
/// the pool on destruction, so scratch lives exactly as long as the panel
/// loop that needs it instead of growing a thread_local forever.
class ScratchLease {
 public:
  explicit ScratchLease(int64_t numel) : handle_(Acquire(numel, false)) {}
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  float* data() const { return handle_.get(); }

 private:
  StorageHandle handle_;
};

}  // namespace came::tensor::pool

#endif  // CAME_TENSOR_STORAGE_POOL_H_
