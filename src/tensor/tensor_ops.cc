#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "tensor/gemm.h"

namespace came::tensor {

namespace {

// Minimum scalar ops per ParallelFor chunk; ranges below this stay serial.
// Fixed (never derived from the thread count) so chunk boundaries — and
// therefore results — are identical at every CAME_NUM_THREADS setting.
constexpr int64_t kElementwiseGrain = 1 << 15;

// Row grain for row-blocked kernels: enough rows that one chunk covers
// ~kElementwiseGrain scalar ops of per-row cost.
int64_t RowGrain(int64_t per_row_cost) {
  return std::max<int64_t>(
      1, kElementwiseGrain / std::max<int64_t>(1, per_row_cost));
}

// Pads `shape` on the left with 1s to `ndim` dims.
Shape PadShape(const Shape& shape, size_t ndim) {
  Shape out(ndim, 1);
  std::copy(shape.begin(), shape.end(),
            out.begin() + static_cast<int64_t>(ndim - shape.size()));
  return out;
}

// Row-major strides; broadcast dims (size 1 where out size > 1) get stride 0.
std::vector<int64_t> BroadcastStrides(const Shape& padded, const Shape& out) {
  std::vector<int64_t> strides(padded.size(), 0);
  int64_t s = 1;
  for (int64_t d = static_cast<int64_t>(padded.size()) - 1; d >= 0; --d) {
    const auto du = static_cast<size_t>(d);
    strides[du] = (padded[du] == out[du]) ? s : 0;
    CAME_CHECK(padded[du] == out[du] || padded[du] == 1)
        << "broadcast mismatch";
    s *= padded[du];
  }
  return strides;
}

template <typename F>
Tensor BinaryBroadcast(const Tensor& a, const Tensor& b, F op) {
  if (SameShape(a.shape(), b.shape())) {
    // fully-written: elementwise ParallelFor stores every output
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElementwiseGrain,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) po[i] = op(pa[i], pb[i]);
                });
    return out;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  const size_t nd = out_shape.size();
  const Shape sa = PadShape(a.shape(), nd);
  const Shape sb = PadShape(b.shape(), nd);
  const auto stra = BroadcastStrides(sa, out_shape);
  const auto strb = BroadcastStrides(sb, out_shape);

  // fully-written: the strided broadcast loop stores every output
  Tensor out = Tensor::Uninitialized(out_shape);
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();

  const int64_t n = out.numel();
  ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    // Seed the odometer at linear index `lo`.
    std::vector<int64_t> idx(nd, 0);
    int64_t off_a = 0;
    int64_t off_b = 0;
    int64_t rem = lo;
    for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
      const auto du = static_cast<size_t>(d);
      idx[du] = rem % out_shape[du];
      rem /= out_shape[du];
      off_a += idx[du] * stra[du];
      off_b += idx[du] * strb[du];
    }
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = op(pa[off_a], pb[off_b]);
      // Odometer increment.
      for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
        const auto du = static_cast<size_t>(d);
        ++idx[du];
        off_a += stra[du];
        off_b += strb[du];
        if (idx[du] < out_shape[du]) break;
        off_a -= stra[du] * out_shape[du];
        off_b -= strb[du] * out_shape[du];
        idx[du] = 0;
      }
    }
  });
  return out;
}

template <typename F>
Tensor Unary(const Tensor& t, F op) {
  // fully-written: op is applied to (and stored at) every element
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* pi = t.data();
  float* po = out.data();
  ParallelFor(0, t.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = op(pi[i]);
  });
  return out;
}

// Decomposes a shape around `dim` into (outer, axis, inner) extents.
void AxisDecompose(const Shape& shape, int64_t dim, int64_t* outer,
                   int64_t* axis, int64_t* inner) {
  const int64_t nd = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += nd;
  CAME_CHECK_GE(dim, 0);
  CAME_CHECK_LT(dim, nd);
  *outer = 1;
  *axis = shape[static_cast<size_t>(dim)];
  *inner = 1;
  for (int64_t d = 0; d < dim; ++d) *outer *= shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < nd; ++d) *inner *= shape[static_cast<size_t>(d)];
}

Shape ReducedShape(const Shape& shape, int64_t dim, bool keepdim) {
  const int64_t nd = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += nd;
  Shape out;
  for (int64_t d = 0; d < nd; ++d) {
    if (d == dim) {
      if (keepdim) out.push_back(1);
    } else {
      out.push_back(shape[static_cast<size_t>(d)]);
    }
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t nd = std::max(a.size(), b.size());
  const Shape pa = PadShape(a, nd);
  const Shape pb = PadShape(b, nd);
  Shape out(nd);
  for (size_t d = 0; d < nd; ++d) {
    CAME_CHECK(pa[d] == pb[d] || pa[d] == 1 || pb[d] == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[d] = std::max(pa[d], pb[d]);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (SameShape(t.shape(), target)) return t;
  const size_t nd = t.shape().size();
  const Shape pt = PadShape(target, nd);
  Tensor cur = t;
  // Sum over axes where target extent is 1 but tensor extent is larger.
  for (int64_t d = 0; d < static_cast<int64_t>(nd); ++d) {
    const auto du = static_cast<size_t>(d);
    if (pt[du] == 1 && cur.shape()[du] != 1) {
      cur = SumAlong(cur, d, /*keepdim=*/true);
    }
  }
  return cur.Reshape(target);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast(a, b, [](float x, float y) { return x / y; });
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  CAME_CHECK(SameShape(x.shape(), y->shape()));
  const float* px = x.data();
  float* py = y->data();
  ParallelFor(0, x.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

Tensor Neg(const Tensor& t) {
  return Unary(t, [](float x) { return -x; });
}
Tensor Exp(const Tensor& t) {
  return Unary(t, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& t) {
  return Unary(t, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& t) {
  return Unary(t, [](float x) { return std::sqrt(x); });
}
Tensor Square(const Tensor& t) {
  return Unary(t, [](float x) { return x * x; });
}
Tensor Sigmoid(const Tensor& t) {
  return Unary(t, [](float x) {
    // Branch on sign for numerical stability at large |x|.
    if (x >= 0) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}
Tensor Tanh(const Tensor& t) {
  return Unary(t, [](float x) { return std::tanh(x); });
}
Tensor Relu(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? x : 0.0f; });
}
Tensor Scale(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return s * x; });
}
Tensor AddScalar(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return x + s; });
}
Tensor Abs(const Tensor& t) {
  return Unary(t, [](float x) { return std::fabs(x); });
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  CAME_CHECK_EQ(a.ndim(), 2);
  CAME_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  CAME_CHECK_EQ(k, kb) << "matmul inner dim: " << ShapeToString(a.shape())
                       << " x " << ShapeToString(b.shape());
  // fully-written: Gemm with accumulate=false overwrites all of C.
  Tensor c = Tensor::Uninitialized(Shape{m, n});
  gemm::Gemm(a.data(), b.data(), c.data(), m, k, n, trans_a, trans_b,
             /*accumulate=*/false);
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b) {
  CAME_CHECK_EQ(a.ndim(), 3);
  CAME_CHECK_EQ(b.ndim(), 3);
  CAME_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t batch = a.dim(0);
  const int64_t m = trans_a ? a.dim(2) : a.dim(1);
  const int64_t k = trans_a ? a.dim(1) : a.dim(2);
  const int64_t kb = trans_b ? b.dim(2) : b.dim(1);
  const int64_t n = trans_b ? b.dim(1) : b.dim(2);
  CAME_CHECK_EQ(k, kb) << "bmm inner dim: " << ShapeToString(a.shape())
                       << " x " << ShapeToString(b.shape());
  // fully-written: accumulate=false GEMM overwrites each batch slab
  Tensor c = Tensor::Uninitialized(Shape{batch, m, n});
  const int64_t a_stride = a.dim(1) * a.dim(2);
  const int64_t b_stride = b.dim(1) * b.dim(2);
  const int64_t c_stride = m * n;
  // Parallel across batch items (each writes its own output slab); the
  // ParallelFor nested inside Gemm detects it is inside a chunk and runs
  // that slice serially.
  ParallelFor(0, batch, RowGrain(m * k * n), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      gemm::Gemm(a.data() + i * a_stride, b.data() + i * b_stride,
                 c.data() + i * c_stride, m, k, n, trans_a, trans_b,
                 /*accumulate=*/false);
    }
  });
  return c;
}

void MatMulRaw(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  gemm::Gemm(a, b, c, m, k, n, trans_a, trans_b, accumulate);
}

Tensor Transpose2D(const Tensor& t) {
  CAME_CHECK_EQ(t.ndim(), 2);
  const int64_t r = t.dim(0);
  const int64_t c = t.dim(1);
  // fully-written: every (j, i) target is stored by the swap loops
  Tensor out = Tensor::Uninitialized(Shape{c, r});
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      out.data()[j * r + i] = t.data()[i * c + j];
    }
  }
  return out;
}

Tensor BatchTranspose(const Tensor& t) {
  CAME_CHECK_EQ(t.ndim(), 3);
  const int64_t b = t.dim(0);
  const int64_t r = t.dim(1);
  const int64_t c = t.dim(2);
  // fully-written: every transposed element is stored per batch
  Tensor out = Tensor::Uninitialized(Shape{b, c, r});
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* src = t.data() + bi * r * c;
    float* dst = out.data() + bi * r * c;
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < c; ++j) dst[j * r + i] = src[i * c + j];
    }
  }
  return out;
}

Tensor SumAll(const Tensor& t) { return Tensor::Scalar(SumAllScalar(t)); }

float SumAllScalar(const Tensor& t) {
  double acc = 0.0;
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float MaxAbs(const Tensor& t) {
  float m = 0.0f;
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

Tensor SumAlong(const Tensor& t, int64_t dim, bool keepdim) {
  int64_t outer;
  int64_t axis;
  int64_t inner;
  AxisDecompose(t.shape(), dim, &outer, &axis, &inner);
  // Accumulates with += below, so the output must start zeroed.
  Tensor out(ReducedShape(t.shape(), dim, keepdim));
  const float* pi = t.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t a = 0; a < axis; ++a) {
      const float* src = pi + (o * axis + a) * inner;
      float* dst = po + o * inner;
      for (int64_t in = 0; in < inner; ++in) dst[in] += src[in];
    }
  }
  return out;
}

Tensor MaxAlong(const Tensor& t, int64_t dim, bool keepdim) {
  int64_t outer;
  int64_t axis;
  int64_t inner;
  AxisDecompose(t.shape(), dim, &outer, &axis, &inner);
  CAME_CHECK_GT(axis, 0);
  // fully-written: the max reduction stores every (outer, inner) cell
  Tensor out = Tensor::Uninitialized(ReducedShape(t.shape(), dim, keepdim));
  const float* pi = t.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t in = 0; in < inner; ++in) {
      float m = pi[(o * axis) * inner + in];
      for (int64_t a = 1; a < axis; ++a) {
        m = std::max(m, pi[(o * axis + a) * inner + in]);
      }
      po[o * inner + in] = m;
    }
  }
  return out;
}

Tensor SoftmaxAlong(const Tensor& t, int64_t dim) {
  int64_t outer;
  int64_t axis;
  int64_t inner;
  AxisDecompose(t.shape(), dim, &outer, &axis, &inner);
  // fully-written: the normalise pass stores every element
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* pi = t.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t in = 0; in < inner; ++in) {
      const int64_t base = o * axis * inner + in;
      float m = pi[base];
      for (int64_t a = 1; a < axis; ++a) {
        m = std::max(m, pi[base + a * inner]);
      }
      double denom = 0.0;
      for (int64_t a = 0; a < axis; ++a) {
        const float e = std::exp(pi[base + a * inner] - m);
        po[base + a * inner] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t a = 0; a < axis; ++a) po[base + a * inner] *= inv;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  CAME_CHECK(!parts.empty());
  const int64_t nd = parts[0].ndim();
  if (dim < 0) dim += nd;
  int64_t total = 0;
  for (const auto& p : parts) {
    CAME_CHECK_EQ(p.ndim(), nd);
    for (int64_t d = 0; d < nd; ++d) {
      if (d != dim) {
        CAME_CHECK_EQ(p.dim(d), parts[0].dim(d));
      }
    }
    total += p.dim(dim);
  }
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(dim)] = total;
  // fully-written: the parts' copies tile the whole concat axis
  Tensor out = Tensor::Uninitialized(out_shape);

  int64_t outer;
  int64_t axis_out;
  int64_t inner;
  AxisDecompose(out_shape, dim, &outer, &axis_out, &inner);
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t axis_p = p.dim(dim);
    const float* src = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      float* dst = out.data() + (o * axis_out + offset) * inner;
      std::copy(src + o * axis_p * inner, src + (o + 1) * axis_p * inner, dst);
    }
    offset += axis_p;
  }
  return out;
}

Tensor SliceAlong(const Tensor& t, int64_t dim, int64_t start, int64_t len) {
  const int64_t nd = t.ndim();
  if (dim < 0) dim += nd;
  CAME_CHECK_GE(start, 0);
  CAME_CHECK_LE(start + len, t.dim(dim));
  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(dim)] = len;
  // fully-written: the per-outer copies cover the full slice
  Tensor out = Tensor::Uninitialized(out_shape);

  int64_t outer;
  int64_t axis;
  int64_t inner;
  AxisDecompose(t.shape(), dim, &outer, &axis, &inner);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = t.data() + (o * axis + start) * inner;
    float* dst = out.data() + o * len * inner;
    std::copy(src, src + len * inner, dst);
  }
  return out;
}

Tensor GatherRows(const Tensor& matrix, const std::vector<int64_t>& indices) {
  CAME_CHECK_EQ(matrix.ndim(), 2);
  const int64_t n = matrix.dim(0);
  const int64_t d = matrix.dim(1);
  // fully-written: one row copy per index covers the whole output
  Tensor out = Tensor::Uninitialized(Shape{static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    CAME_CHECK_GE(r, 0);
    CAME_CHECK_LT(r, n);
    std::copy(matrix.data() + r * d, matrix.data() + (r + 1) * d,
              out.data() + static_cast<int64_t>(i) * d);
  }
  return out;
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  CAME_CHECK_EQ(src.ndim(), 2);
  CAME_CHECK_EQ(src.dim(0), static_cast<int64_t>(indices.size()));
  const int64_t d = src.dim(1);
  // Rows not named by `indices` must read as zero, and named rows
  // accumulate with += — keep the zeroed allocation.
  Tensor out(Shape{num_rows, d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    CAME_CHECK_GE(r, 0);
    CAME_CHECK_LT(r, num_rows);
    const float* s = src.data() + static_cast<int64_t>(i) * d;
    float* dst = out.data() + r * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += s[j];
  }
  return out;
}

Tensor Where(const Tensor& mask, const Tensor& a, const Tensor& b) {
  CAME_CHECK(SameShape(mask.shape(), a.shape()));
  CAME_CHECK(SameShape(a.shape(), b.shape()));
  // fully-written: the select loop stores every element
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pm = mask.data();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = (pm[i] != 0.0f) ? pa[i] : pb[i];
  return out;
}

Tensor Im2Col(const Tensor& input, int64_t kh, int64_t kw, int64_t pad) {
  CAME_CHECK_EQ(input.ndim(), 4);
  const int64_t b = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t out_h = h + 2 * pad - kh + 1;
  const int64_t out_w = w + 2 * pad - kw + 1;
  CAME_CHECK_GT(out_h, 0);
  CAME_CHECK_GT(out_w, 0);
  // fully-written: padding cells are stored explicitly as 0 below.
  Tensor cols = Tensor::Uninitialized(Shape{b, c * kh * kw, out_h * out_w});
  const float* pi = input.data();
  float* po = cols.data();
  const int64_t col_stride = c * kh * kw * out_h * out_w;
  ParallelFor(0, b, RowGrain(col_stride), [&](int64_t b_lo, int64_t b_hi) {
  for (int64_t bi = b_lo; bi < b_hi; ++bi) {
    float* col = po + bi * col_stride;
    const float* img = pi + bi * c * h * w;
    int64_t row = 0;
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t ki = 0; ki < kh; ++ki) {
        for (int64_t kj = 0; kj < kw; ++kj, ++row) {
          float* dst = col + row * out_h * out_w;
          for (int64_t oi = 0; oi < out_h; ++oi) {
            const int64_t ii = oi + ki - pad;
            for (int64_t oj = 0; oj < out_w; ++oj) {
              const int64_t jj = oj + kj - pad;
              dst[oi * out_w + oj] =
                  (ii >= 0 && ii < h && jj >= 0 && jj < w)
                      ? img[(ci * h + ii) * w + jj]
                      : 0.0f;
            }
          }
        }
      }
    }
  }
  });
  return cols;
}

Tensor Col2Im(const Tensor& cols, int64_t batch, int64_t channels, int64_t h,
              int64_t w, int64_t kh, int64_t kw, int64_t pad) {
  CAME_CHECK_EQ(cols.ndim(), 3);
  const int64_t out_h = h + 2 * pad - kh + 1;
  const int64_t out_w = w + 2 * pad - kw + 1;
  CAME_CHECK_EQ(cols.dim(0), batch);
  CAME_CHECK_EQ(cols.dim(1), channels * kh * kw);
  CAME_CHECK_EQ(cols.dim(2), out_h * out_w);
  // Accumulates overlapping windows with += — must start zeroed.
  Tensor img(Shape{batch, channels, h, w});
  const float* pc = cols.data();
  float* po = img.data();
  const int64_t col_stride = channels * kh * kw * out_h * out_w;
  ParallelFor(0, batch, RowGrain(col_stride),
              [&](int64_t b_lo, int64_t b_hi) {
  for (int64_t bi = b_lo; bi < b_hi; ++bi) {
    const float* col = pc + bi * col_stride;
    float* out = po + bi * channels * h * w;
    int64_t row = 0;
    for (int64_t ci = 0; ci < channels; ++ci) {
      for (int64_t ki = 0; ki < kh; ++ki) {
        for (int64_t kj = 0; kj < kw; ++kj, ++row) {
          const float* src = col + row * out_h * out_w;
          for (int64_t oi = 0; oi < out_h; ++oi) {
            const int64_t ii = oi + ki - pad;
            if (ii < 0 || ii >= h) continue;
            for (int64_t oj = 0; oj < out_w; ++oj) {
              const int64_t jj = oj + kj - pad;
              if (jj < 0 || jj >= w) continue;
              out[(ci * h + ii) * w + jj] += src[oi * out_w + oj];
            }
          }
        }
      }
    }
  }
  });
  return img;
}

}  // namespace came::tensor
