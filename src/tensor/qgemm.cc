#include "tensor/qgemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "common/parallel_for.h"

namespace came::tensor::qgemm {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Candidate rows scored per parallel work item. Shape-only partition, so
// the thread grid never depends on CAME_NUM_THREADS — and every C element
// is computed independently in exact integer arithmetic, so the partition
// could not change results even if it did.
constexpr int64_t kColBlock = 64;

// ---------------------------------------------------------------------------
// Dot kernels: exact int32 dot of two int8 vectors with values in
// [-127, 127]. Excluding -128 keeps |a| a true uint7 and every
// vpmaddubsw pair sum within int16 (2 * 127 * 127 = 32258 < 32767), so
// no SIMD path can saturate and all kernels return the same int32.
// ---------------------------------------------------------------------------

int32_t DotScalar(const int8_t* a, const int8_t* b, int64_t k) {
  int32_t acc = 0;
  for (int64_t p = 0; p < k; ++p) {
    acc += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return acc;
}

#if defined(__AVX2__)
// vpsignb trick: a * b == |a| * (sign(a) * b) with |a| as the unsigned
// vpmaddubsw operand. Pairs sum into int16, vpmaddwd folds them to int32.
int32_t DotAvx2(const int8_t* a, const int8_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i pair16 = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pair16, ones));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; p < k; ++p) {
    total += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return total;
}
#endif  // __AVX2__

#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
// Same |a| / sign-adjusted-b operands, but vpdpbusd fuses the
// multiply-pairs-accumulate into one instruction per 32 bytes.
int32_t DotVnni(const int8_t* a, const int8_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    acc = _mm256_dpbusd_epi32(acc, abs_a, sgn_b);
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; p < k; ++p) {
    total += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return total;
}
#endif  // __AVX512VNNI__ && __AVX512VL__

using DotFn = int32_t (*)(const int8_t*, const int8_t*, int64_t);

// ---------------------------------------------------------------------------
// Kernel selection (mirrors tensor::gemm).
// ---------------------------------------------------------------------------

Kernel BestAvailableKernel() {
  if (KernelAvailable(Kernel::kVnni)) return Kernel::kVnni;
  if (KernelAvailable(Kernel::kAvx2)) return Kernel::kAvx2;
  return Kernel::kScalar;
}

Kernel ResolveRequested(Kernel requested) {
  if (requested == Kernel::kAuto) return BestAvailableKernel();
  if (KernelAvailable(requested)) return requested;
  const Kernel fallback = BestAvailableKernel();
  CAME_LOG(Warning) << "int8 GEMM kernel \"" << KernelName(requested)
                    << "\" not available on this CPU/binary; using \""
                    << KernelName(fallback) << "\"";
  return fallback;
}

Kernel ResolveFromEnv() {
  const char* env = std::getenv("CAME_QGEMM_KERNEL");
  if (env == nullptr || *env == '\0') return BestAvailableKernel();
  const std::string v(env);
  if (v == "auto") return BestAvailableKernel();
  if (v == "scalar") return ResolveRequested(Kernel::kScalar);
  if (v == "avx2") return ResolveRequested(Kernel::kAvx2);
  if (v == "vnni") return ResolveRequested(Kernel::kVnni);
  CAME_LOG(Warning) << "ignoring invalid CAME_QGEMM_KERNEL=\"" << v
                    << "\" (want auto|scalar|avx2|vnni)";
  return BestAvailableKernel();
}

std::atomic<Kernel> g_kernel{Kernel::kAuto};

DotFn ActiveDotFn() {
  switch (ActiveKernel()) {
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
    case Kernel::kVnni:
      return DotVnni;
#endif
#if defined(__AVX2__)
    case Kernel::kAvx2:
      return DotAvx2;
#endif
    default:
      return DotScalar;
  }
}

// Quantizes one row; returns false when the row contains NaN/Inf.
// inv = 127 / max|row| is hoisted so the per-element work is one multiply
// plus a round; lrintf under the default rounding mode is
// round-to-nearest-even, the same policy everywhere.
bool QuantizeRowInt8(const float* row, int64_t dim, int8_t* out,
                     float* scale) {
  float maxabs = 0.0f;
  bool finite = true;
  for (int64_t j = 0; j < dim; ++j) {
    const float av = std::fabs(row[j]);
    if (!std::isfinite(av)) finite = false;
    if (av > maxabs) maxabs = av;
  }
  if (!finite) return false;
  if (maxabs == 0.0f) {
    std::memset(out, 0, static_cast<size_t>(dim));
    *scale = 0.0f;
    return true;
  }
  const float inv = 127.0f / maxabs;
  for (int64_t j = 0; j < dim; ++j) {
    long q = std::lrintf(row[j] * inv);
    if (q > 127) q = 127;
    if (q < -127) q = -127;
    out[j] = static_cast<int8_t>(q);
  }
  *scale = maxabs / 127.0f;
  return true;
}

// The two-digit combine lives in one deliberately-uninlined function so
// GemmInt8TwoDigit and its scalar reference share a single machine-code
// site for the fp32 arithmetic: whatever fp-contract choice the compiler
// makes (fma or not), it makes it once, and bitwise parity holds.
__attribute__((noinline)) float CombineTwoDigit(int32_t hi_acc, float hi_s,
                                                int32_t lo_acc, float lo_s,
                                                float b_s) {
  return static_cast<float>(hi_acc) * (hi_s * b_s) +
         static_cast<float>(lo_acc) * (lo_s * b_s);
}

}  // namespace

Status QuantizeRowsInt8(const float* src, int64_t rows, int64_t dim,
                        int8_t* out, float* scales) {
  CAME_CHECK_GE(rows, 0);
  CAME_CHECK_GT(dim, 0);
  for (int64_t i = 0; i < rows; ++i) {
    if (!QuantizeRowInt8(src + i * dim, dim, out + i * dim, &scales[i])) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) +
          " contains NaN/Inf; refusing to quantize it into a table");
    }
  }
  return Status::OK();
}

void QuantizeRowsInt8Serving(const float* src, int64_t rows, int64_t dim,
                             int8_t* out, float* scales) {
  CAME_CHECK_GE(rows, 0);
  CAME_CHECK_GT(dim, 0);
  for (int64_t i = 0; i < rows; ++i) {
    if (!QuantizeRowInt8(src + i * dim, dim, out + i * dim, &scales[i])) {
      // Non-finite query row: poison the scale so every score it produces
      // is NaN (ranked worst by the serving order) instead of garbage.
      std::memset(out + i * dim, 0, static_cast<size_t>(dim));
      scales[i] = std::numeric_limits<float>::quiet_NaN();
    }
  }
}

void QuantizeRowsInt8ServingTwoDigit(const float* src, int64_t rows,
                                     int64_t dim, int8_t* hi,
                                     float* hi_scales, int8_t* lo,
                                     float* lo_scales) {
  CAME_CHECK_GE(rows, 0);
  CAME_CHECK_GT(dim, 0);
  std::vector<float> residual(static_cast<size_t>(dim));
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = src + i * dim;
    int8_t* hrow = hi + i * dim;
    int8_t* lrow = lo + i * dim;
    if (!QuantizeRowInt8(row, dim, hrow, &hi_scales[i])) {
      std::memset(hrow, 0, static_cast<size_t>(dim));
      std::memset(lrow, 0, static_cast<size_t>(dim));
      hi_scales[i] = std::numeric_limits<float>::quiet_NaN();
      lo_scales[i] = std::numeric_limits<float>::quiet_NaN();
      continue;
    }
    for (int64_t j = 0; j < dim; ++j) {
      residual[static_cast<size_t>(j)] =
          row[j] - static_cast<float>(hrow[j]) * hi_scales[i];
    }
    // A finite row has a finite residual, so this cannot fail.
    CAME_CHECK(QuantizeRowInt8(residual.data(), dim, lrow, &lo_scales[i]));
  }
}

uint16_t Fp32ToBf16(float v) {
  uint32_t x = 0;
  std::memcpy(&x, &v, sizeof(x));
  if ((x & 0x7FFFFFFFu) > 0x7F800000u) {
    // NaN: truncate and force a quiet-bit so rounding can't carry the
    // mantissa into the exponent and turn it into an infinity.
    return static_cast<uint16_t>((x >> 16) | 0x0040u);
  }
  const uint32_t lsb = (x >> 16) & 1u;
  x += 0x7FFFu + lsb;  // round-to-nearest-even on the dropped 16 bits
  return static_cast<uint16_t>(x >> 16);
}

float Bf16ToFp32(uint16_t v) {
  const uint32_t x = static_cast<uint32_t>(v) << 16;
  float f = 0.0f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

Status EncodeRowsBf16(const float* src, int64_t rows, int64_t dim,
                      uint16_t* out) {
  CAME_CHECK_GE(rows, 0);
  CAME_CHECK_GT(dim, 0);
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = src + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      if (!std::isfinite(row[j])) {
        return Status::InvalidArgument(
            "row " + std::to_string(i) +
            " contains NaN/Inf; refusing to encode it into a bf16 table");
      }
      out[i * dim + j] = Fp32ToBf16(row[j]);
    }
  }
  return Status::OK();
}

void DecodeBf16(const uint16_t* src, int64_t n, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = Bf16ToFp32(src[i]);
}

void ReferenceGemmInt8(const int8_t* a, const float* a_scales,
                       const int8_t* b, const float* b_scales, float* c,
                       int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const int32_t acc = DotScalar(a + i * k, b + j * k, k);
      c[i * n + j] =
          static_cast<float>(acc) * (a_scales[i] * b_scales[j]);
    }
  }
}

void GemmInt8(const int8_t* a, const float* a_scales, const int8_t* b,
              const float* b_scales, float* c, int64_t m, int64_t k,
              int64_t n) {
  if (m <= 0 || n <= 0) return;
  const DotFn dot = ActiveDotFn();
  ParallelFor(0, CeilDiv(n, kColBlock), /*grain=*/1,
              [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t j0 = blk * kColBlock;
      const int64_t j1 = std::min(n, j0 + kColBlock);
      for (int64_t i = 0; i < m; ++i) {
        const int8_t* arow = a + i * k;
        const float as = a_scales[i];
        float* crow = c + i * n;
        for (int64_t j = j0; j < j1; ++j) {
          const int32_t acc = dot(arow, b + j * k, k);
          // The one scaling expression shared with ReferenceGemmInt8 —
          // keeping it identical is what makes kernel/thread parity
          // bitwise rather than approximate.
          crow[j] = static_cast<float>(acc) * (as * b_scales[j]);
        }
      }
    }
  });
}

void ReferenceGemmInt8TwoDigit(const int8_t* a_hi, const float* a_hi_scales,
                               const int8_t* a_lo, const float* a_lo_scales,
                               const int8_t* b, const float* b_scales,
                               float* c, int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const int32_t hi_acc = DotScalar(a_hi + i * k, b + j * k, k);
      const int32_t lo_acc = DotScalar(a_lo + i * k, b + j * k, k);
      c[i * n + j] = CombineTwoDigit(hi_acc, a_hi_scales[i], lo_acc,
                                     a_lo_scales[i], b_scales[j]);
    }
  }
}

void GemmInt8TwoDigit(const int8_t* a_hi, const float* a_hi_scales,
                      const int8_t* a_lo, const float* a_lo_scales,
                      const int8_t* b, const float* b_scales, float* c,
                      int64_t m, int64_t k, int64_t n) {
  if (m <= 0 || n <= 0) return;
  const DotFn dot = ActiveDotFn();
  ParallelFor(0, CeilDiv(n, kColBlock), /*grain=*/1,
              [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t j0 = blk * kColBlock;
      const int64_t j1 = std::min(n, j0 + kColBlock);
      for (int64_t i = 0; i < m; ++i) {
        const int8_t* hrow = a_hi + i * k;
        const int8_t* lrow = a_lo + i * k;
        const float hs = a_hi_scales[i];
        const float ls = a_lo_scales[i];
        float* crow = c + i * n;
        for (int64_t j = j0; j < j1; ++j) {
          // Both digit dots hit the same B row back to back, so the
          // panel is read once from cache, not twice from memory.
          const int8_t* brow = b + j * k;
          const int32_t hi_acc = dot(hrow, brow, k);
          const int32_t lo_acc = dot(lrow, brow, k);
          crow[j] = CombineTwoDigit(hi_acc, hs, lo_acc, ls, b_scales[j]);
        }
      }
    }
  });
}

namespace {

// Rounds a double norm up to the smallest float that is >= it. The
// double -> float conversion rounds to nearest, so one nextafter step
// covers the case where it rounded down past the true value.
float RoundNormUp(double norm) {
  if (!std::isfinite(norm)) return std::numeric_limits<float>::infinity();
  const float f = static_cast<float>(norm);
  return static_cast<double>(f) >= norm
             ? f
             : std::nextafterf(f, std::numeric_limits<float>::infinity());
}

}  // namespace

float RowNormUpperBoundFp32(const float* row, int64_t dim) {
  double acc = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    const double v = static_cast<double>(row[j]);
    if (!std::isfinite(v)) return std::numeric_limits<float>::infinity();
    acc += v * v;
  }
  return RoundNormUp(std::sqrt(acc));
}

float RowNormUpperBoundInt8(const int8_t* codes, int64_t dim, float scale) {
  if (!std::isfinite(scale)) return std::numeric_limits<float>::infinity();
  int64_t acc = 0;  // exact: dim * 127^2 stays far below 2^63
  for (int64_t j = 0; j < dim; ++j) {
    acc += static_cast<int64_t>(codes[j]) * static_cast<int64_t>(codes[j]);
  }
  return RoundNormUp(std::fabs(static_cast<double>(scale)) *
                     std::sqrt(static_cast<double>(acc)));
}

float RowNormUpperBoundBf16(const uint16_t* row, int64_t dim) {
  double acc = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    const double v = static_cast<double>(Bf16ToFp32(row[j]));
    if (!std::isfinite(v)) return std::numeric_limits<float>::infinity();
    acc += v * v;
  }
  return RoundNormUp(std::sqrt(acc));
}

Kernel ActiveKernel() {
  Kernel k = g_kernel.load(std::memory_order_relaxed);
  if (k == Kernel::kAuto) {
    k = ResolveFromEnv();
    g_kernel.store(k, std::memory_order_relaxed);
  }
  return k;
}

void SetKernel(Kernel k) {
  g_kernel.store(k == Kernel::kAuto ? ResolveFromEnv() : ResolveRequested(k),
                 std::memory_order_relaxed);
}

bool KernelAvailable(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if defined(__AVX2__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Kernel::kVnni:
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
      return __builtin_cpu_supports("avx512vnni") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
    case Kernel::kAuto:
      return false;
  }
  return false;
}

std::string KernelName(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kVnni:
      return "vnni";
  }
  return "unknown";
}

}  // namespace came::tensor::qgemm
