#ifndef CAME_TENSOR_PANEL_BOUNDS_H_
#define CAME_TENSOR_PANEL_BOUNDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace came::tensor {

/// Default block granularity for panel bounds: fine enough that the
/// smallest shard/panel geometries in the tree (rows_per_shard 37 in
/// tests, panel_width 64) see per-block resolution, at a metadata cost
/// of 8 bytes per 64 rows.
inline constexpr int64_t kDefaultBoundBlockRows = 64;

/// Conservative per-block score-bound metadata over a row table: for
/// fixed-size blocks of rows, the maximum L2 row norm (an upper bound —
/// see qgemm::RowNormUpperBound*) and the maximum per-row bias. The
/// serving sweep combines them into the Cauchy–Schwarz panel bound
///   score(q, row) <= ||q|| * MaxNorm(panel) + MaxBias(panel)
/// which lets it skip panels that provably cannot beat a query's current
/// K-th best (infer::ScoreServer).
///
/// Blocks are globally aligned: block i covers rows
/// [i * block_rows, (i+1) * block_rows), independent of any slab or
/// panel geometry, so a panel bound is the max over every block the
/// panel intersects — a superset of the panel's rows, hence still an
/// upper bound. Non-finite inputs must be folded in as +inf (the
/// builders and AccountRow guarantee this), which disables pruning for
/// the block rather than producing an unsound bound.
///
/// An empty (default-constructed) table is the "no metadata" state:
/// MaxNorm/MaxBias return +inf and nothing ever prunes.
class PanelBoundTable {
 public:
  PanelBoundTable() = default;

  /// All-blocks-at-zero table covering `rows` rows; fold rows in with
  /// AccountRow. The zero baseline is itself a valid upper bound for
  /// norms (>= 0 trivially) and for the bias of rows that carry none.
  PanelBoundTable(int64_t rows, int64_t block_rows);

  bool empty() const { return rows_ == 0; }
  int64_t rows() const { return rows_; }
  int64_t block_rows() const { return block_rows_; }
  int64_t num_blocks() const { return static_cast<int64_t>(norms_.size()); }

  /// Max-merges row r's norm upper bound and bias into its block. A NaN
  /// bias (or norm) is widened to +inf so the block can never prune.
  void AccountRow(int64_t r, float norm_upper, float bias);

  /// Upper bound (>=) on the L2 norm of every row in [begin, end).
  float MaxNorm(int64_t begin, int64_t end) const;
  /// Upper bound (>=) on the bias of every row in [begin, end); 0 for
  /// tables built without bias.
  float MaxBias(int64_t begin, int64_t end) const;

  /// Serialization payload (little-endian: rows i64, block_rows i64,
  /// num_blocks u64, norms f32[], bias f32[]). Framing — magic, CRC —
  /// belongs to the container embedding it.
  std::string Encode() const;
  static Result<PanelBoundTable> Decode(const char* data, size_t size);

  bool operator==(const PanelBoundTable&) const = default;

 private:
  int64_t rows_ = 0;
  int64_t block_rows_ = 0;
  std::vector<float> norms_;     // per-block max row-norm upper bound
  std::vector<float> bias_max_;  // per-block max bias (0 without bias)
};

/// Builders over contiguous row tables in each serving encoding. `bias`
/// may be null (no per-row bias). `first_row` offsets the accounted row
/// ids, so a caller streaming disjoint row ranges into one shared table
/// (ShardStore slabs) can reuse the same entry points.
void AccountRowsFp32(PanelBoundTable* bounds, const float* rows,
                     const float* bias, int64_t first_row, int64_t n,
                     int64_t d);
void AccountRowsInt8(PanelBoundTable* bounds, const int8_t* codes,
                     const float* scales, const float* bias,
                     int64_t first_row, int64_t n, int64_t d);
void AccountRowsBf16(PanelBoundTable* bounds, const uint16_t* rows,
                     const float* bias, int64_t first_row, int64_t n,
                     int64_t d);

}  // namespace came::tensor

#endif  // CAME_TENSOR_PANEL_BOUNDS_H_
