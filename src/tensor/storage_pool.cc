#include "tensor/storage_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace came::tensor::pool {

namespace {

// Size classes: 2^k and 3*2^(k-1), from 64 floats (256 B) up to 2^33
// floats (32 GiB) — geometric spacing with at most 33% internal waste.
// Requests above the largest class bypass the pool entirely.
constexpr int64_t kMinClassFloats = 64;
constexpr int64_t kMaxClassFloats = int64_t{1} << 33;

// Per-class depth of a thread's free list before the excess spills to the
// shared pool. Kept small so buffers freed on a thread that never
// re-acquires them (e.g. worker-side frees of main-thread tensors) reach
// the shared pool within a few steps instead of stranding in the cache.
constexpr size_t kMaxPerClass = 4;

const std::vector<int64_t>& ClassTable() {
  static const std::vector<int64_t>* table = [] {
    auto* t = new std::vector<int64_t>;
    for (int64_t pow2 = kMinClassFloats; pow2 <= kMaxClassFloats; pow2 *= 2) {
      t->push_back(pow2);
      const int64_t mid = pow2 + pow2 / 2;  // 3 * 2^(k-1)
      if (mid <= kMaxClassFloats) t->push_back(mid);
    }
    return t;
  }();
  return *table;
}

// Index of the smallest class with capacity >= numel; -1 when the request
// is larger than every class.
int ClassIndexFor(int64_t numel) {
  const auto& table = ClassTable();
  const auto it = std::lower_bound(table.begin(), table.end(), numel);
  if (it == table.end()) return -1;
  return static_cast<int>(it - table.begin());
}

// --- counters -----------------------------------------------------------

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_pooled_bytes{0};
std::atomic<int64_t> g_hits{0};
std::atomic<int64_t> g_misses{0};
std::atomic<int64_t> g_heap_allocs{0};

// --- mode ---------------------------------------------------------------

constexpr int kModeUnresolved = -1;
std::atomic<int> g_mode{kModeUnresolved};

Mode ResolveFromEnv() {
  const char* env = std::getenv("CAME_TENSOR_POOL");
  if (env == nullptr || *env == '\0') return Mode::kOn;
  const std::string v(env);
  if (v == "on") return Mode::kOn;
  if (v == "off") return Mode::kOff;
  if (v == "scrub") return Mode::kScrub;
  CAME_LOG(Warning) << "ignoring invalid CAME_TENSOR_POOL=\"" << v
                    << "\" (want on|off|scrub)";
  return Mode::kOn;
}

// --- raw buffers --------------------------------------------------------

constexpr std::align_val_t kAlignment{64};  // one cache line / zmm vector

float* HeapAlloc(int64_t numel) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<float*>(::operator new(
      static_cast<size_t>(numel) * sizeof(float), kAlignment));
}

void HeapFree(float* p) { ::operator delete(p, kAlignment); }

void Poison(float* p, int64_t numel) {
  const float snan = ScrubPattern();
  for (int64_t i = 0; i < numel; ++i) p[i] = snan;
}

// --- shared pool + thread caches ----------------------------------------

struct SharedPool {
  came::Mutex mu;
  std::vector<std::vector<float*>> lists CAME_GUARDED_BY(mu);  // per class
};

// Leaked singleton: thread caches flush into it from thread_local
// destructors, which may run during process teardown.
SharedPool& Shared() {
  static SharedPool* pool = [] {
    auto* p = new SharedPool;
    p->lists.resize(ClassTable().size());
    return p;
  }();
  return *pool;
}

struct ThreadCache {
  std::vector<std::vector<float*>> lists;

  ThreadCache() { lists.resize(ClassTable().size()); }

  ~ThreadCache() { FlushTo(Shared()); }

  void FlushTo(SharedPool& shared) {
    came::MutexLock lock(&shared.mu);
    for (size_t cls = 0; cls < lists.size(); ++cls) {
      auto& src = lists[cls];
      auto& dst = shared.lists[cls];
      dst.insert(dst.end(), src.begin(), src.end());
      src.clear();
    }
  }
};

ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

// Returns `p` (capacity floats, known pool class) to the free lists.
void ReleaseToPool(float* p, int64_t capacity) {
  if (ActiveMode() == Mode::kScrub) Poison(p, capacity);
  const int cls = ClassIndexFor(capacity);
  CAME_CHECK_GE(cls, 0);
  ThreadCache& cache = Cache();
  auto& list = cache.lists[static_cast<size_t>(cls)];
  list.push_back(p);
  g_pooled_bytes.fetch_add(capacity * static_cast<int64_t>(sizeof(float)),
                           std::memory_order_relaxed);
  if (list.size() > kMaxPerClass) {
    // Spill the older half so repeated cross-thread frees reach threads
    // that actually re-acquire this class.
    const size_t spill = list.size() / 2;
    SharedPool& shared = Shared();
    came::MutexLock lock(&shared.mu);
    auto& dst = shared.lists[static_cast<size_t>(cls)];
    dst.insert(dst.end(), list.begin(),
               list.begin() + static_cast<int64_t>(spill));
    list.erase(list.begin(), list.begin() + static_cast<int64_t>(spill));
  }
}

// Pops a cached buffer of class `cls`, or nullptr.
float* TryAcquireFromPool(int cls, int64_t capacity) {
  ThreadCache& cache = Cache();
  auto& list = cache.lists[static_cast<size_t>(cls)];
  float* p = nullptr;
  if (!list.empty()) {
    p = list.back();
    list.pop_back();
  } else {
    SharedPool& shared = Shared();
    came::MutexLock lock(&shared.mu);
    auto& dst = shared.lists[static_cast<size_t>(cls)];
    if (!dst.empty()) {
      p = dst.back();
      dst.pop_back();
    }
  }
  if (p != nullptr) {
    g_pooled_bytes.fetch_sub(capacity * static_cast<int64_t>(sizeof(float)),
                             std::memory_order_relaxed);
  }
  return p;
}

// shared_ptr deleter. Captures at acquire time how the buffer must be
// freed, so flipping the mode while tensors are live stays correct.
struct Deleter {
  int64_t capacity;
  bool pooled;

  void operator()(float* p) const {
    g_live_bytes.fetch_sub(capacity * static_cast<int64_t>(sizeof(float)),
                           std::memory_order_relaxed);
    if (pooled) {
      ReleaseToPool(p, capacity);
    } else {
      HeapFree(p);
    }
  }
};

}  // namespace

Mode ActiveMode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m == kModeUnresolved) {
    m = static_cast<int>(ResolveFromEnv());
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

void SetMode(Mode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::string ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kOn:
      return "on";
    case Mode::kScrub:
      return "scrub";
  }
  return "unknown";
}

Stats GetStats() {
  Stats s;
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.pooled_bytes = g_pooled_bytes.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.acquires = s.hits + s.misses;
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  return s;
}

int64_t HeapAllocCount() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

int64_t AcquireCount() {
  return g_hits.load(std::memory_order_relaxed) +
         g_misses.load(std::memory_order_relaxed);
}

int64_t ClassCapacity(int64_t numel) {
  const int cls = ClassIndexFor(numel);
  if (cls < 0) return numel;
  return ClassTable()[static_cast<size_t>(cls)];
}

float ScrubPattern() {
  // Signalling NaN: exponent all ones, quiet bit clear, payload non-zero.
  constexpr uint32_t kBits = 0x7FA0DEAD;
  float f;
  std::memcpy(&f, &kBits, sizeof(f));
  return f;
}

StorageHandle Acquire(int64_t numel, bool zero) {
  CAME_CHECK_GE(numel, 0);
  if (numel == 0) return nullptr;

  const Mode mode = ActiveMode();
  const int cls = mode == Mode::kOff ? -1 : ClassIndexFor(numel);
  const int64_t capacity =
      cls < 0 ? numel : ClassTable()[static_cast<size_t>(cls)];
  const bool pooled = cls >= 0;

  float* p = pooled ? TryAcquireFromPool(cls, capacity) : nullptr;
  if (p != nullptr) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    p = HeapAlloc(capacity);
    g_misses.fetch_add(1, std::memory_order_relaxed);
  }
  g_live_bytes.fetch_add(capacity * static_cast<int64_t>(sizeof(float)),
                         std::memory_order_relaxed);

  if (zero) {
    std::memset(p, 0, static_cast<size_t>(numel) * sizeof(float));
  } else if (mode == Mode::kScrub) {
    // Poison unconditionally (not just recycled buffers): fresh heap
    // memory is just as unread, and buffers released before the mode
    // flipped to scrub were not poisoned on the way in.
    Poison(p, numel);
  }
  return StorageHandle(p, Deleter{capacity, pooled});
}

void FlushThreadCache() { Cache().FlushTo(Shared()); }

void Clear() {
  const auto& table = ClassTable();
  int64_t freed_bytes = 0;
  ThreadCache& cache = Cache();
  for (size_t cls = 0; cls < cache.lists.size(); ++cls) {
    for (float* p : cache.lists[cls]) {
      HeapFree(p);
      freed_bytes += table[cls] * static_cast<int64_t>(sizeof(float));
    }
    cache.lists[cls].clear();
  }
  SharedPool& shared = Shared();
  came::MutexLock lock(&shared.mu);
  for (size_t cls = 0; cls < shared.lists.size(); ++cls) {
    for (float* p : shared.lists[cls]) {
      HeapFree(p);
      freed_bytes += table[cls] * static_cast<int64_t>(sizeof(float));
    }
    shared.lists[cls].clear();
  }
  // pooled_bytes keeps covering buffers cached on *other* live threads.
  g_pooled_bytes.fetch_sub(freed_bytes, std::memory_order_relaxed);
}

}  // namespace came::tensor::pool
