#include "datagen/bkg_generator.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "kg/triple_store.h"

namespace came::datagen {

namespace {
using kg::EntityType;
}  // namespace

BkgConfig BkgConfig::DrkgMmSynth(double scale) {
  BkgConfig c;
  c.name = "DRKG-MM-Synth";
  c.molecules = true;
  c.num_genes = 700;
  c.num_compounds = 900;
  c.num_diseases = 300;
  c.num_side_effects = 200;
  c.num_triples = 20000;
  c.head_zipf = 1.1;
  c.cluster_fidelity = 0.85;
  // Relation mix mirrors the paper's Table V shares of DRKG-MM
  // (Gene-Gene 54.6%, Compound-Compound 32.3%, Compound-Gene 4.9%,
  //  Compound-SideEffect 3.3%, Disease-Gene 2.9%, Compound-Disease 2.0%),
  // with uneven within-family weights for long-tail relation frequency.
  c.relations = {
      {"interacts_GG", EntityType::kGene, EntityType::kGene, 0.300},
      {"coexpressed_GG", EntityType::kGene, EntityType::kGene, 0.150},
      {"regulates_GG", EntityType::kGene, EntityType::kGene, 0.060},
      {"binds_GG", EntityType::kGene, EntityType::kGene, 0.036},
      {"ddi_CC", EntityType::kCompound, EntityType::kCompound, 0.200},
      {"resembles_CC", EntityType::kCompound, EntityType::kCompound, 0.080},
      {"synergy_CC", EntityType::kCompound, EntityType::kCompound, 0.043},
      {"targets_CG", EntityType::kCompound, EntityType::kGene, 0.025},
      {"inhibits_CG", EntityType::kCompound, EntityType::kGene, 0.012},
      {"activates_CG", EntityType::kCompound, EntityType::kGene, 0.008},
      {"binds_CG", EntityType::kCompound, EntityType::kGene, 0.004},
      {"causes_CSE", EntityType::kCompound, EntityType::kSideEffect, 0.033},
      {"associates_DG", EntityType::kDisease, EntityType::kGene, 0.017},
      {"downregulates_DG", EntityType::kDisease, EntityType::kGene, 0.012},
      {"treats_CD", EntityType::kCompound, EntityType::kDisease, 0.013},
      {"palliates_CD", EntityType::kCompound, EntityType::kDisease, 0.007},
  };
  return c.Scaled(scale);
}

BkgConfig BkgConfig::OmahaMmSynth(double scale) {
  BkgConfig c;
  c.name = "OMAHA-MM-Synth";
  c.molecules = false;  // OMAHA compounds carry no molecular information
  c.num_genes = 300;
  c.num_compounds = 150;
  c.num_diseases = 400;
  c.num_side_effects = 0;
  c.num_symptoms = 250;
  c.num_triples = 7000;  // sparse KG (paper: degree-five floor, still sparse)
  c.head_zipf = 0.75;
  c.relations = {
      {"has_symptom_DS", EntityType::kDisease, EntityType::kSymptom, 0.30},
      {"differential_DD", EntityType::kDisease, EntityType::kDisease, 0.15},
      {"disease_gene_DG", EntityType::kDisease, EntityType::kGene, 0.15},
      {"gene_gene_GG", EntityType::kGene, EntityType::kGene, 0.15},
      {"mutation_of_GG", EntityType::kGene, EntityType::kGene, 0.05},
      {"treats_CD", EntityType::kCompound, EntityType::kDisease, 0.10},
      {"contraindicated_CD", EntityType::kCompound, EntityType::kDisease,
       0.05},
      {"interacts_CC", EntityType::kCompound, EntityType::kCompound, 0.05},
  };
  return c.Scaled(scale);
}

BkgConfig BkgConfig::Scaled(double factor) const {
  CAME_CHECK_GT(factor, 0.0);
  BkgConfig c = *this;
  auto scale_count = [factor](int64_t v) {
    return std::max<int64_t>(v == 0 ? 0 : 8,
                             static_cast<int64_t>(v * factor));
  };
  c.num_genes = scale_count(num_genes);
  c.num_compounds = scale_count(num_compounds);
  c.num_diseases = scale_count(num_diseases);
  c.num_side_effects = scale_count(num_side_effects);
  c.num_symptoms = scale_count(num_symptoms);
  c.num_triples = std::max<int64_t>(
      200, static_cast<int64_t>(num_triples * factor));
  return c;
}

std::vector<int64_t> GeneratedBkg::CompoundIds() const {
  return dataset.vocab.EntitiesOfType(EntityType::kCompound);
}

Status BkgConfig::Validate() const {
  const struct {
    const char* name;
    int64_t count;
    int64_t clusters;
  } types[] = {
      {"genes", num_genes, gene_clusters},
      {"compounds", num_compounds, kNumDrugFamilies},
      {"diseases", num_diseases, disease_clusters},
      {"side_effects", num_side_effects, side_effect_clusters},
      {"symptoms", num_symptoms, symptom_clusters},
  };
  int64_t total_entities = 0;
  for (const auto& t : types) {
    if (t.count < 0) {
      return Status::InvalidArgument(std::string("negative count for ") +
                                     t.name);
    }
    if (t.count > 0 && t.clusters <= 0) {
      return Status::InvalidArgument(std::string("non-positive cluster "
                                                 "count for ") +
                                     t.name);
    }
    total_entities += t.count;
  }
  if (total_entities == 0) {
    return Status::InvalidArgument("no entities of any type");
  }
  if (num_triples <= 0) {
    return Status::InvalidArgument("num_triples must be positive");
  }
  if (cluster_fidelity < 0.0 || cluster_fidelity > 1.0) {
    return Status::InvalidArgument("cluster_fidelity outside [0, 1]");
  }
  if (head_zipf < 0.0) {
    return Status::InvalidArgument("head_zipf must be non-negative");
  }
  if (relations.empty()) {
    return Status::InvalidArgument("no relations in schema");
  }
  auto count_of = [&](EntityType type) -> int64_t {
    switch (type) {
      case EntityType::kGene: return num_genes;
      case EntityType::kCompound: return num_compounds;
      case EntityType::kDisease: return num_diseases;
      case EntityType::kSideEffect: return num_side_effects;
      case EntityType::kSymptom: return num_symptoms;
      default: return 0;
    }
  };
  double weight_sum = 0.0;
  double possible = 0.0;  // double: head*tail products can overflow int64
  for (const auto& r : relations) {
    if (r.weight < 0.0) {
      return Status::InvalidArgument("negative weight for relation " +
                                     r.name);
    }
    const int64_t heads = count_of(r.head_type);
    const int64_t tails = count_of(r.tail_type);
    if (r.weight > 0.0 && (heads == 0 || tails == 0)) {
      return Status::InvalidArgument("relation " + r.name +
                                     " references an empty entity type");
    }
    weight_sum += r.weight;
    double pairs = static_cast<double>(heads) * static_cast<double>(tails);
    if (r.head_type == r.tail_type) pairs -= heads;  // self-loops rejected
    possible += pairs;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("relation weights sum to zero");
  }
  if (static_cast<double>(num_triples) > possible) {
    return Status::InvalidArgument(
        "num_triples " + std::to_string(num_triples) +
        " exceeds the number of distinct triples the populations admit");
  }
  return Status::OK();
}

namespace {

struct TypePopulation {
  std::vector<int64_t> ids;                       // entity ids of this type
  std::vector<std::vector<int64_t>> by_cluster;   // ids per cluster
  int64_t num_clusters = 0;
};

}  // namespace

GeneratedBkg GenerateBkg(const BkgConfig& config) {
  const Status valid = config.Validate();
  CAME_CHECK(valid.ok()) << valid.ToString();
  Rng rng(config.seed);
  GeneratedBkg out;
  out.dataset.name = config.name;
  out.has_molecules = config.molecules;
  kg::Vocab& vocab = out.dataset.vocab;

  std::unordered_map<int, TypePopulation> pops;  // key: EntityType

  auto make_entities = [&](EntityType type, int64_t count, int64_t clusters,
                           auto&& make_text) {
    if (count == 0) return;
    TypePopulation& pop = pops[static_cast<int>(type)];
    pop.num_clusters = clusters;
    pop.by_cluster.resize(static_cast<size_t>(clusters));
    for (int64_t i = 0; i < count; ++i) {
      const int64_t cluster = rng.Zipf(clusters, 0.6);
      EntityText text = make_text(cluster);
      // Ensure unique names (the vocab dedups by name).
      std::string name = text.name;
      int suffix = 1;
      while (vocab.EntityId(name) >= 0) {
        name = text.name + "_" + std::to_string(++suffix);
      }
      text.name = name;
      const int64_t id = vocab.AddEntity(name, type);
      out.texts.push_back(text);
      out.cluster.push_back(cluster);
      if (type == EntityType::kCompound && config.molecules) {
        out.molecules.push_back(
            GenerateMolecule(static_cast<DrugFamily>(cluster), &rng));
      } else {
        out.molecules.emplace_back();
      }
      pop.ids.push_back(id);
      pop.by_cluster[static_cast<size_t>(cluster)].push_back(id);
    }
  };

  make_entities(EntityType::kGene, config.num_genes, config.gene_clusters,
                [&](int64_t c) { return GenerateGeneText(c, &rng); });
  make_entities(EntityType::kCompound, config.num_compounds,
                kNumDrugFamilies, [&](int64_t c) {
                  return GenerateCompoundText(static_cast<DrugFamily>(c),
                                              &rng);
                });
  make_entities(EntityType::kDisease, config.num_diseases,
                config.disease_clusters,
                [&](int64_t c) { return GenerateDiseaseText(c, &rng); });
  make_entities(EntityType::kSideEffect, config.num_side_effects,
                config.side_effect_clusters,
                [&](int64_t c) { return GenerateSideEffectText(c, &rng); });
  make_entities(EntityType::kSymptom, config.num_symptoms,
                config.symptom_clusters, [&](int64_t c) {
                  return GenerateSideEffectText(c + 100, &rng);
                });

  // Relation budgets proportional to schema weights.
  double weight_sum = 0.0;
  for (const auto& r : config.relations) weight_sum += r.weight;
  CAME_CHECK_GT(weight_sum, 0.0);

  // The latent relation semantics: per (head_type, tail_type) group,
  // relations get DISTINCT preferred tail clusters for each head cluster
  // (a random permutation). A (head-cluster, tail-cluster) pair thus
  // identifies at most one relation of the group — the property behind
  // the paper's Fig 1 diamond statistics (same-family drugs attached to
  // the same gene overwhelmingly share the relation).
  std::vector<std::vector<int64_t>> preferred_per_relation(
      config.relations.size());
  {
    std::map<std::pair<int, int>, std::vector<size_t>> groups;
    for (size_t i = 0; i < config.relations.size(); ++i) {
      groups[{static_cast<int>(config.relations[i].head_type),
              static_cast<int>(config.relations[i].tail_type)}]
          .push_back(i);
    }
    for (const auto& [key, members] : groups) {
      TypePopulation& heads = pops[key.first];
      TypePopulation& tails = pops[key.second];
      if (heads.ids.empty() || tails.ids.empty()) continue;
      for (size_t m = 0; m < members.size(); ++m) {
        preferred_per_relation[members[m]].resize(
            static_cast<size_t>(heads.num_clusters));
      }
      for (int64_t hc = 0; hc < heads.num_clusters; ++hc) {
        // 64-bit permutation indices: a 2^31-cluster population must not
        // wrap the permutation fill.
        std::vector<int64_t> perm(static_cast<size_t>(tails.num_clusters));
        for (size_t i = 0; i < perm.size(); ++i) {
          perm[i] = static_cast<int64_t>(i);
        }
        rng.Shuffle(&perm);
        for (size_t m = 0; m < members.size(); ++m) {
          preferred_per_relation[members[m]][static_cast<size_t>(hc)] =
              perm[m % perm.size()];
        }
      }
    }
  }

  kg::TripleStore store;
  for (size_t rel_idx = 0; rel_idx < config.relations.size(); ++rel_idx) {
    const auto& schema = config.relations[rel_idx];
    const int64_t rel_id = vocab.AddRelation(schema.name);
    TypePopulation& heads = pops[static_cast<int>(schema.head_type)];
    TypePopulation& tails = pops[static_cast<int>(schema.tail_type)];
    CAME_CHECK(!heads.ids.empty())
        << "no entities of head type for " << schema.name;
    CAME_CHECK(!tails.ids.empty())
        << "no entities of tail type for " << schema.name;
    const std::vector<int64_t>& preferred = preferred_per_relation[rel_idx];

    const auto budget = static_cast<int64_t>(
        config.num_triples * schema.weight / weight_sum);
    int64_t produced = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = budget * 20 + 1000;
    while (produced < budget && attempts < max_attempts) {
      ++attempts;
      const int64_t head =
          heads.ids[static_cast<size_t>(rng.Zipf(
              static_cast<int64_t>(heads.ids.size()), config.head_zipf))];
      const int64_t head_cluster = out.cluster[static_cast<size_t>(head)];
      int64_t tail_cluster;
      if (rng.Bernoulli(config.cluster_fidelity)) {
        tail_cluster = preferred[static_cast<size_t>(head_cluster)];
      } else {
        tail_cluster = static_cast<int64_t>(rng.UniformU64(
            static_cast<uint64_t>(tails.num_clusters)));
      }
      const auto& pool =
          tails.by_cluster[static_cast<size_t>(tail_cluster)];
      if (pool.empty()) continue;
      const int64_t tail = pool[static_cast<size_t>(rng.Zipf(
          static_cast<int64_t>(pool.size()), config.head_zipf * 0.6))];
      if (head == tail) continue;
      if (store.Add({head, rel_id, tail})) ++produced;
    }
  }

  kg::SplitTriples(store.triples(), &rng, &out.dataset.train,
                   &out.dataset.valid, &out.dataset.test);
  return out;
}

}  // namespace came::datagen
