#include "datagen/molecule.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"

namespace came::datagen {

const char* DrugFamilyName(DrugFamily family) {
  switch (family) {
    case DrugFamily::kPenicillin:
      return "penicillin";
    case DrugFamily::kSulfonamide:
      return "sulfonamide";
    case DrugFamily::kPhenol:
      return "phenol";
    case DrugFamily::kPiperazine:
      return "piperazine";
    case DrugFamily::kStatin:
      return "statin";
    case DrugFamily::kBenzodiazepine:
      return "benzodiazepine";
    case DrugFamily::kOpioid:
      return "opioid";
    case DrugFamily::kTetracycline:
      return "tetracycline";
    case DrugFamily::kNumFamilies:
      break;
  }
  return "unknown";
}

std::vector<std::vector<int>> Molecule::AdjacencyLists() const {
  std::vector<std::vector<int>> adj(atoms.size());
  for (const auto& [a, b] : bonds) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  }
  return adj;
}

bool Molecule::IsValid() const {
  if (atoms.empty()) return false;
  const int n = static_cast<int>(atoms.size());
  for (const auto& [a, b] : bonds) {
    if (a < 0 || b < 0 || a >= n || b >= n || a == b) return false;
  }
  // Connectivity via BFS.
  auto adj = AdjacencyLists();
  std::vector<bool> seen(atoms.size(), false);
  std::vector<int> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    for (int v : adj[static_cast<size_t>(u)]) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        ++visited;
        queue.push_back(v);
      }
    }
  }
  return visited == atoms.size();
}

namespace {

// Atom indices live in Molecule's public `int`-typed bond pairs; guard
// the size_t -> int conversion instead of silently wrapping past 2^31.
int CheckedAtomIndex(size_t n) {
  CAME_CHECK_LE(n, static_cast<size_t>(INT32_MAX)) << "molecule too large";
  return static_cast<int>(n);
}

// Appends a ring of `elements` and returns the indices of its atoms.
std::vector<int> AddRing(Molecule* m, const std::vector<int>& elements) {
  std::vector<int> idx;
  const int base = CheckedAtomIndex(m->atoms.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    m->atoms.push_back(elements[i]);
    idx.push_back(base + static_cast<int>(i));
  }
  for (size_t i = 0; i < elements.size(); ++i) {
    const int a = idx[i];
    const int b = idx[(i + 1) % elements.size()];
    m->bonds.emplace_back(std::min(a, b), std::max(a, b));
  }
  return idx;
}

void AddBond(Molecule* m, int a, int b) {
  m->bonds.emplace_back(std::min(a, b), std::max(a, b));
}

int AddAtom(Molecule* m, int element, int bonded_to) {
  const int idx = CheckedAtomIndex(m->atoms.size());
  m->atoms.push_back(element);
  AddBond(m, idx, bonded_to);
  return idx;
}

}  // namespace

Molecule FamilyScaffold(DrugFamily family) {
  Molecule m;
  m.family = static_cast<int>(family);
  switch (family) {
    case DrugFamily::kPenicillin: {
      // Beta-lactam (4-ring with N and exocyclic carbonyl) fused to a
      // thiazolidine-like 5-ring with S.
      auto lactam = AddRing(&m, {kNitrogen, kCarbon, kCarbon, kCarbon});
      AddAtom(&m, kOxygen, lactam[3]);  // carbonyl oxygen
      auto thia = AddRing(&m, {kSulfur, kCarbon, kCarbon, kCarbon, kNitrogen});
      AddBond(&m, lactam[1], thia[1]);  // ring fusion
      AddBond(&m, lactam[0], thia[4]);
      break;
    }
    case DrugFamily::kSulfonamide: {
      auto benzene = AddRing(&m, std::vector<int>(6, kCarbon));
      const int s = AddAtom(&m, kSulfur, benzene[0]);
      AddAtom(&m, kOxygen, s);
      AddAtom(&m, kOxygen, s);
      AddAtom(&m, kNitrogen, s);
      break;
    }
    case DrugFamily::kPhenol: {
      auto benzene = AddRing(&m, std::vector<int>(6, kCarbon));
      AddAtom(&m, kOxygen, benzene[0]);
      AddAtom(&m, kOxygen, benzene[3]);
      break;
    }
    case DrugFamily::kPiperazine: {
      AddRing(&m, {kNitrogen, kCarbon, kCarbon, kNitrogen, kCarbon, kCarbon});
      break;
    }
    case DrugFamily::kStatin: {
      // Dihydroxy-heptanoic-like chain ending in a carboxyl group.
      int prev = -1;
      for (int i = 0; i < 6; ++i) {
        if (prev < 0) {
          m.atoms.push_back(kCarbon);
          prev = 0;
        } else {
          prev = AddAtom(&m, kCarbon, prev);
        }
        if (i == 1 || i == 3) AddAtom(&m, kOxygen, prev);
      }
      AddAtom(&m, kOxygen, prev);
      AddAtom(&m, kOxygen, prev);
      break;
    }
    case DrugFamily::kBenzodiazepine: {
      auto benzene = AddRing(&m, std::vector<int>(6, kCarbon));
      auto seven = AddRing(&m, {kNitrogen, kCarbon, kCarbon, kNitrogen,
                                kCarbon, kCarbon, kCarbon});
      AddBond(&m, benzene[0], seven[1]);
      AddBond(&m, benzene[1], seven[6]);
      AddAtom(&m, kChlorine, benzene[3]);
      break;
    }
    case DrugFamily::kOpioid: {
      auto ring1 = AddRing(&m, std::vector<int>(6, kCarbon));
      auto ring2 = AddRing(&m, std::vector<int>(6, kCarbon));
      AddBond(&m, ring1[0], ring2[0]);
      AddBond(&m, ring1[1], ring2[1]);
      const int n = AddAtom(&m, kNitrogen, ring2[3]);
      AddAtom(&m, kCarbon, n);  // N-methyl
      AddAtom(&m, kOxygen, ring1[3]);
      break;
    }
    case DrugFamily::kTetracycline: {
      std::vector<int> prev_ring;
      for (int r = 0; r < 4; ++r) {
        auto ring = AddRing(&m, std::vector<int>(6, kCarbon));
        if (!prev_ring.empty()) {
          AddBond(&m, prev_ring[2], ring[0]);
          AddBond(&m, prev_ring[3], ring[5]);
        }
        prev_ring = ring;
      }
      AddAtom(&m, kOxygen, 0);
      AddAtom(&m, kOxygen, 7);
      break;
    }
    case DrugFamily::kNumFamilies:
      CAME_CHECK(false) << "not a family";
  }
  return m;
}

Molecule GenerateMolecule(DrugFamily family, Rng* rng,
                          int64_t decoration_atoms) {
  CAME_CHECK(rng != nullptr);
  Molecule m = FamilyScaffold(family);
  // Random decoration: short substituent chains attached at random scaffold
  // atoms, with occasional heteroatoms and occasional small rings. The
  // budget stays 64-bit end to end; a 32-bit `remaining` would wrap for
  // large requested decorations.
  int64_t remaining = decoration_atoms + rng->UniformInt(-2, 3);
  while (remaining > 0) {
    const int anchor = CheckedAtomIndex(static_cast<size_t>(
        rng->UniformU64(static_cast<uint64_t>(m.atoms.size()))));
    if (rng->Bernoulli(0.15) && remaining >= 5) {
      // Attach a cyclopentyl/cyclohexyl-like ring.
      const int64_t size = rng->Bernoulli(0.5) ? 5 : 6;
      std::vector<int> elems(static_cast<size_t>(size), kCarbon);
      if (rng->Bernoulli(0.3)) elems[0] = kNitrogen;
      auto ring = AddRing(&m, elems);
      AddBond(&m, anchor, ring[0]);
      remaining -= size;
    } else {
      const int64_t len = rng->UniformInt(1, 3);
      int prev = anchor;
      for (int64_t i = 0; i < len; ++i) {
        int element = kCarbon;
        const double roll = rng->UniformDouble();
        if (roll < 0.10) {
          element = kOxygen;
        } else if (roll < 0.16) {
          element = kNitrogen;
        } else if (roll < 0.19) {
          element = kFluorine;
        }
        prev = AddAtom(&m, element, prev);
      }
      remaining -= len;
    }
  }
  return m;
}

}  // namespace came::datagen
