#ifndef CAME_DATAGEN_MOLECULE_H_
#define CAME_DATAGEN_MOLECULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace came::datagen {

/// Atom element codes for the synthetic molecular graphs.
enum Element : int {
  kCarbon = 0,
  kNitrogen,
  kOxygen,
  kSulfur,
  kChlorine,
  kFluorine,
  kPhosphorus,
  kNumElements,
};

/// Drug families. Each family has a characteristic scaffold substructure
/// (molecular motif) and a characteristic name affix (textual motif) — the
/// cross-modal correlation the paper's Fig 1 / Fig 7 build on.
enum class DrugFamily : int {
  kPenicillin = 0,    // beta-lactam + thiazolidine scaffold, "-cillin"
  kSulfonamide,       // SO2-N group on benzene, "Sulfa-"
  kPhenol,            // aromatic ring + hydroxyls, "-phrine"
  kPiperazine,        // 1,4-diazinane ring, "-azine"
  kStatin,            // dihydroxy acid chain, "-statin"
  kBenzodiazepine,    // fused 7-ring with two N, "-zepam"
  kOpioid,            // fused ring system with N-methyl, "-orphine"
  kTetracycline,      // four fused 6-rings, "-cycline"
  kNumFamilies,
};

constexpr int kNumDrugFamilies = static_cast<int>(DrugFamily::kNumFamilies);

const char* DrugFamilyName(DrugFamily family);

/// Undirected molecular graph: atoms carry element labels, bonds are
/// unordered pairs (single/double bonds are not distinguished — the GIN
/// encoder consumes element labels and connectivity only).
struct Molecule {
  std::vector<int> atoms;                      // element code per atom
  std::vector<std::pair<int, int>> bonds;      // atom index pairs, a < b
  int family = -1;                             // generating DrugFamily

  int64_t num_atoms() const { return static_cast<int64_t>(atoms.size()); }
  int64_t num_bonds() const { return static_cast<int64_t>(bonds.size()); }
  /// Adjacency lists (built on demand).
  std::vector<std::vector<int>> AdjacencyLists() const;
  /// True if every bond references valid atoms and the graph is connected.
  bool IsValid() const;
};

/// The family-characteristic scaffold alone (no decoration).
Molecule FamilyScaffold(DrugFamily family);

/// Scaffold plus `decoration_atoms`-ish random substituents (chains and
/// small rings with occasional heteroatoms). Same-family molecules share
/// the scaffold subgraph; cross-family molecules do not.
Molecule GenerateMolecule(DrugFamily family, Rng* rng,
                          int64_t decoration_atoms = 6);

}  // namespace came::datagen

#endif  // CAME_DATAGEN_MOLECULE_H_
