#ifndef CAME_DATAGEN_STREAM_BKG_H_
#define CAME_DATAGEN_STREAM_BKG_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "datagen/bkg_generator.h"
#include "kg/vocab.h"

namespace came::datagen {

/// Arithmetic entity-id layout for the streaming generator: ids are
/// assigned contiguously per type (genes first, then compounds, diseases,
/// side effects, symptoms), so type membership and per-type offsets are
/// O(1) 64-bit arithmetic instead of materialised id vectors. Cluster
/// assignment is a pure function of (seed, id), so a billion-entity
/// population costs no memory at all.
class EntityLayout {
 public:
  explicit EntityLayout(const BkgConfig& config);

  int64_t total() const { return total_; }
  int64_t TypeBegin(kg::EntityType type) const;
  int64_t TypeCount(kg::EntityType type) const;
  int64_t ClustersOf(kg::EntityType type) const;
  kg::EntityType TypeOf(int64_t id) const;

  /// Deterministic latent cluster of `id` (Zipf-shaped over the type's
  /// cluster count, matching the in-RAM generator's cluster marginals).
  int64_t ClusterOf(int64_t id) const;

 private:
  static constexpr int kNumTypes = 5;  // gene/compound/disease/se/symptom
  int64_t begin_[kNumTypes + 1] = {};
  int64_t clusters_[kNumTypes] = {};
  int64_t total_ = 0;
  uint64_t seed_ = 0;
};

/// Where the streamed dataset lands and how triples split.
struct StreamBkgOptions {
  std::string out_dir;
  double train_frac = 0.8;
  double valid_frac = 0.1;
  /// Also stream entities.tsv / relations.tsv (schematic per-type names),
  /// making the directory loadable by Dataset::LoadTsv. Turn off for
  /// benchmark runs where only the triple files matter.
  bool write_entities = true;
};

/// What the streaming run produced.
struct StreamBkgSummary {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t train_triples = 0;
  int64_t valid_triples = 0;
  int64_t test_triples = 0;
  int64_t attempts = 0;
};

/// Streaming twin of GenerateBkg: emits full-size graphs straight to
/// train.tsv / valid.tsv / test.tsv (plus vocab files) in `out_dir`
/// without ever materialising the triple vector, entity id lists, or
/// per-cluster pools. Memory is bounded by the duplicate-fingerprint set
/// (8 bytes per emitted triple) regardless of entity count. Same latent
/// semantics as GenerateBkg — Zipf heads, cluster-preferential tails via
/// a per-relation preferred-cluster permutation — but a distinct (still
/// seed-deterministic) random stream, so the two generators produce
/// different graphs with matching statistics. Modalities (molecules,
/// texts) are not generated: the streaming path exists for structural
/// scale.
Result<StreamBkgSummary> StreamGenerateBkg(const BkgConfig& config,
                                           const StreamBkgOptions& options);

}  // namespace came::datagen

#endif  // CAME_DATAGEN_STREAM_BKG_H_
