#include "datagen/textgen.h"

#include "common/logging.h"

namespace came::datagen {

namespace {

const char* const kConsonants[] = {"b", "c",  "d",  "f", "g", "l", "m",
                                   "n", "p",  "r",  "s", "t", "v", "x",
                                   "z", "tr", "br", "cl"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ia", "io"};

std::string RandomSyllables(Rng* rng, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    out += kConsonants[rng->UniformU64(std::size(kConsonants))];
    out += kVowels[rng->UniformU64(std::size(kVowels))];
  }
  return out;
}

std::string Capitalise(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

struct FamilyTextInfo {
  const char* affix;
  bool prefix;
  const char* description;
};

const FamilyTextInfo& FamilyInfo(DrugFamily family) {
  static const FamilyTextInfo kInfos[kNumDrugFamilies] = {
      {"cillin", false,
       "a penicillin-type beta-lactam antibiotic effective against many "
       "bacterial infections"},
      {"Sulfa", true,
       "a sulfonamide antimicrobial agent that inhibits folate synthesis"},
      {"phrine", false,
       "a phenolic sympathomimetic compound with one or more aromatic rings "
       "bearing hydroxyl groups"},
      {"azine", false,
       "a piperazine-derived compound acting on monoamine receptors"},
      {"statin", false,
       "a statin-class HMG-CoA reductase inhibitor lowering cholesterol"},
      {"zepam", false,
       "a benzodiazepine modulating GABA-A receptors with sedative action"},
      {"orphine", false,
       "an opioid analgesic acting on mu-opioid receptors"},
      {"cycline", false,
       "a tetracycline-class broad-spectrum antibiotic blocking the "
       "ribosome"},
  };
  const int idx = static_cast<int>(family);
  CAME_CHECK_GE(idx, 0);
  CAME_CHECK_LT(idx, kNumDrugFamilies);
  return kInfos[idx];
}

const char* const kGenePrefixes[] = {"SLC", "ABC", "CYP", "TNF", "KCN", "HLA",
                                     "COL", "MAP", "WNT", "FGF", "IL",  "TGF"};

const char* const kDiseasePrefixes[] = {"cardio", "neuro",  "hepato", "nephro",
                                        "dermo",  "gastro", "osteo",  "hemo"};
const char* const kDiseaseSuffixes[] = {"itis", "osis", "pathy", "oma",
                                        "emia", "algia", "plegia", "trophy"};

const char* const kSideEffectTerms[] = {
    "nausea",    "headache", "dizziness", "rash",     "fatigue",
    "insomnia",  "tremor",   "vomiting",  "pruritus", "edema",
    "dyspepsia", "myalgia",  "anorexia",  "vertigo",  "fever"};

}  // namespace

const char* FamilyNameAffix(DrugFamily family) {
  return FamilyInfo(family).affix;
}

bool FamilyAffixIsPrefix(DrugFamily family) {
  return FamilyInfo(family).prefix;
}

EntityText GenerateCompoundText(DrugFamily family, Rng* rng) {
  const FamilyTextInfo& info = FamilyInfo(family);
  const std::string stem = RandomSyllables(rng, 2);
  EntityText out;
  if (info.prefix) {
    out.name = std::string(info.affix) + stem;
  } else {
    out.name = Capitalise(stem + info.affix);
  }
  out.description = out.name + " is " + info.description + ".";
  return out;
}

EntityText GenerateGeneText(int64_t cluster, Rng* rng) {
  const size_t p =
      static_cast<size_t>(cluster) % std::size(kGenePrefixes);
  EntityText out;
  out.name = std::string(kGenePrefixes[p]) +
             std::to_string(rng->UniformInt(1, 30)) +
             static_cast<char>('A' + rng->UniformInt(0, 5)) +
             std::to_string(rng->UniformInt(1, 9));
  out.description = out.name +
                    " encodes a protein of the " + kGenePrefixes[p] +
                    " family involved in cellular signalling.";
  return out;
}

EntityText GenerateDiseaseText(int64_t cluster, Rng* rng) {
  const size_t p =
      static_cast<size_t>(cluster) % std::size(kDiseasePrefixes);
  const size_t s =
      static_cast<size_t>(cluster / 3) % std::size(kDiseaseSuffixes);
  EntityText out;
  out.name = Capitalise(std::string(kDiseasePrefixes[p]) +
                        RandomSyllables(rng, 1) + kDiseaseSuffixes[s]);
  out.description = out.name + " is a disorder of the " +
                    kDiseasePrefixes[p] + "logical system.";
  return out;
}

EntityText GenerateSideEffectText(int64_t cluster, Rng* rng) {
  const size_t base =
      static_cast<size_t>(cluster) % std::size(kSideEffectTerms);
  EntityText out;
  out.name = Capitalise(std::string(kSideEffectTerms[base]) + "_" +
                        RandomSyllables(rng, 1));
  out.description =
      out.name + " is an adverse reaction resembling " +
      kSideEffectTerms[base] + ".";
  return out;
}

}  // namespace came::datagen
