#ifndef CAME_DATAGEN_BKG_GENERATOR_H_
#define CAME_DATAGEN_BKG_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/molecule.h"
#include "datagen/textgen.h"
#include "kg/dataset.h"
#include "kg/vocab.h"

namespace came::datagen {

/// One relation in the generator schema: a typed edge family with a share
/// of the dataset's triple budget. Uneven weights within each type pair
/// produce the long-tail relation frequencies of Fig 4.
struct RelationSchema {
  std::string name;
  kg::EntityType head_type;
  kg::EntityType tail_type;
  double weight;
};

/// Configuration of the latent-factor BKG generator.
///
/// Generative model: every entity belongs to a latent semantic cluster
/// (drug family for compounds, gene/disease family otherwise). Each
/// relation carries a random map from head cluster to preferred tail
/// cluster; a triple's tail is drawn from the preferred cluster with
/// probability `cluster_fidelity` and uniformly otherwise. Head entities
/// are drawn Zipf-distributed, giving the long-tail degree histogram of
/// Fig 4. Because a compound's cluster *is* its drug family, and family
/// determines both the molecular scaffold and the name affix, the
/// multimodal features carry exactly the relational signal the paper
/// exploits (Fig 1's diamond statistics emerge from this coupling).
struct BkgConfig {
  std::string name = "DRKG-MM-Synth";
  uint64_t seed = 42;

  int64_t num_genes = 700;
  int64_t num_compounds = 900;
  int64_t num_diseases = 300;
  int64_t num_side_effects = 200;
  int64_t num_symptoms = 0;

  int64_t gene_clusters = 12;
  int64_t disease_clusters = 8;
  int64_t side_effect_clusters = 6;
  int64_t symptom_clusters = 6;
  // Compound clusters are the kNumDrugFamilies drug families.

  int64_t num_triples = 20000;
  double head_zipf = 1.1;
  double cluster_fidelity = 0.85;
  bool molecules = true;

  std::vector<RelationSchema> relations;

  /// DRKG-MM stand-in: dense, molecule modality on, relation mix follows
  /// the paper's Table V proportions.
  static BkgConfig DrkgMmSynth(double scale = 1.0);
  /// OMAHA-MM stand-in: sparse, no molecule modality, 9 relations.
  static BkgConfig OmahaMmSynth(double scale = 1.0);

  /// Returns a copy with entity and triple counts multiplied by `factor`
  /// (the Fig 9 scalability axis).
  BkgConfig Scaled(double factor) const;

  /// Checks the config for the failure modes that otherwise surface as
  /// UB or a crash deep inside generation: negative counts, no entities
  /// at all, non-positive cluster counts for populated types, relation
  /// weights that are negative or sum to zero, relations whose head/tail
  /// type has no entities, fidelity outside [0, 1], and a `num_triples`
  /// budget no population could satisfy.
  Status Validate() const;
};

/// A generated multimodal BKG: the structural dataset plus raw modality
/// data (molecular graphs and texts) and the ground-truth latent clusters
/// (used only by analysis benches, never by models).
struct GeneratedBkg {
  kg::Dataset dataset;
  std::vector<Molecule> molecules;  // per entity; empty unless compound
  std::vector<EntityText> texts;    // per entity
  std::vector<int64_t> cluster;     // per entity latent cluster / family
  bool has_molecules = false;

  /// Entity ids of all compounds (convenience for benches).
  std::vector<int64_t> CompoundIds() const;
};

/// Runs the generative model. Deterministic given config.seed. The
/// config must pass Validate() (checked on entry).
GeneratedBkg GenerateBkg(const BkgConfig& config);

}  // namespace came::datagen

#endif  // CAME_DATAGEN_BKG_GENERATOR_H_
