#ifndef CAME_DATAGEN_TEXTGEN_H_
#define CAME_DATAGEN_TEXTGEN_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "datagen/molecule.h"

namespace came::datagen {

/// Name + free-text description for an entity; stands in for the
/// DrugBank/Hetionet descriptions the paper embeds with CharacterBERT.
struct EntityText {
  std::string name;
  std::string description;
};

/// Compound names carry family-specific affixes ("...cillin", "Sulfa...",
/// "...azine", ...) mirroring real pharmacological naming conventions —
/// the textual motif CamE's case study (Fig 7) keys on. Descriptions
/// mention the family and indication keywords.
EntityText GenerateCompoundText(DrugFamily family, Rng* rng);

/// HGNC-style gene symbols (e.g. "SLC6A4"): `cluster` determines the
/// letter prefix so gene families are textually recognisable.
EntityText GenerateGeneText(int64_t cluster, Rng* rng);

/// Disease names built from Greco-Latin morphemes; `cluster` fixes the
/// system affix ("-itis", "-oma", "cardio-", ...).
EntityText GenerateDiseaseText(int64_t cluster, Rng* rng);

/// Side-effect names (symptom vocabulary).
EntityText GenerateSideEffectText(int64_t cluster, Rng* rng);

/// The name affix associated with a drug family, e.g. "cillin" — exposed
/// for the case-study bench to highlight matches.
const char* FamilyNameAffix(DrugFamily family);
/// True if the affix is a prefix (e.g. "Sulfa-") rather than a suffix.
bool FamilyAffixIsPrefix(DrugFamily family);

}  // namespace came::datagen

#endif  // CAME_DATAGEN_TEXTGEN_H_
