#include "core/mmf.h"

#include "common/logging.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::core {

std::pair<ag::Var, ag::Var> ExchangeFusion(const ag::Var& x, const ag::Var& y,
                                           float theta) {
  // Masks from the LayerNorm of the ORIGINAL inputs (Eq. 10/11); computed
  // outside the tape — the comparison itself carries no gradient.
  tensor::Tensor ln_x;
  tensor::Tensor ln_y;
  {
    ag::NoGradGuard guard;
    ln_x = ag::LayerNormNoAffine(x.Detach()).value();
    ln_y = ag::LayerNormNoAffine(y.Detach()).value();
  }
  auto below = [theta](const tensor::Tensor& t) {
    tensor::Tensor mask(t.shape());
    for (int64_t i = 0; i < t.numel(); ++i) {
      mask.data()[i] = t.data()[i] < theta ? 1.0f : 0.0f;
    }
    return mask;
  };
  tensor::Tensor swap_x = below(ln_x);  // x positions replaced by y
  tensor::Tensor swap_y = below(ln_y);  // y positions replaced by x
  ag::Var x_new = ag::WhereConst(swap_x, y, x);
  ag::Var y_new = ag::WhereConst(swap_y, x, y);
  return {x_new, y_new};
}

Mmf::Mmf(const MmfConfig& config, Rng* rng) : config_(config) {
  CAME_CHECK(!config.input_dims.empty());
  config_.tca.dim = config_.fusion_dim;
  const int64_t df = config_.fusion_dim;
  for (size_t i = 0; i < config_.input_dims.size(); ++i) {
    proj_.push_back(RegisterParameter(
        "w_proj_" + std::to_string(i),
        nn::XavierNormal({config_.input_dims[i], df}, rng)));
  }
  const size_t m = config_.input_dims.size();
  const size_t num_pairs = m * (m - 1) / 2;
  for (size_t p = 0; p < num_pairs; ++p) {
    pair_tca_.push_back(std::make_unique<Tca>(config_.tca, rng));
    RegisterSubmodule("tca_pair_" + std::to_string(p),
                      pair_tca_.back().get());
    bilinear_u_.push_back(RegisterParameter("bilinear_u_" + std::to_string(p),
                                            nn::XavierNormal({df, df}, rng)));
    bilinear_v_.push_back(RegisterParameter("bilinear_v_" + std::to_string(p),
                                            nn::XavierNormal({df, df}, rng)));
  }
  pool_p_ = RegisterParameter("pool_p", nn::XavierNormal({df, df}, rng));
  pool_b_ = RegisterParameter("pool_b", tensor::Tensor::Zeros({df}));
}

ag::Var Mmf::Forward(const std::vector<ag::Var>& modal_inputs) const {
  CAME_CHECK_EQ(modal_inputs.size(), config_.input_dims.size());
  // Project every modality to the fusion space.
  std::vector<ag::Var> projected;
  projected.reserve(modal_inputs.size());
  for (size_t i = 0; i < modal_inputs.size(); ++i) {
    projected.push_back(ag::MatMul(modal_inputs[i], proj_[i]));
  }

  if (!config_.enabled || projected.size() == 1) {
    // w/o MMF ablation (or a single modality): plain Hadamard fusion.
    ag::Var fused = ag::Sigmoid(projected[0]);
    for (size_t i = 1; i < projected.size(); ++i) {
      fused = ag::Mul(fused, ag::Sigmoid(projected[i]));
    }
    return fused;
  }

  // Pairwise TCA matching (Eq. 9) + exchanging fusion (Eq. 12) + low-rank
  // bilinear pooling (Eq. 13), Hadamard-combined over pairs.
  ag::Var h_f;
  size_t pair_idx = 0;
  for (size_t i = 0; i < projected.size(); ++i) {
    for (size_t j = i + 1; j < projected.size(); ++j, ++pair_idx) {
      ag::Var x = projected[i];
      ag::Var y = projected[j];
      if (config_.use_tca) {
        auto [tx, ty] = pair_tca_[pair_idx]->Forward(x, y);
        x = tx;
        y = ty;
      }
      if (config_.use_exchange) {
        auto [ex, ey] = ExchangeFusion(x, y, config_.exchange_theta);
        x = ex;
        y = ey;
      }
      ag::Var z = ag::Add(
          ag::MatMul(ag::Mul(ag::Sigmoid(ag::MatMul(x, bilinear_u_[pair_idx])),
                             ag::Sigmoid(ag::MatMul(y, bilinear_v_[pair_idx]))),
                     pool_p_),
          pool_b_);
      h_f = h_f.defined() ? ag::Mul(h_f, z) : z;
    }
  }
  return h_f;
}

}  // namespace came::core
