#ifndef CAME_CORE_TCA_H_
#define CAME_CORE_TCA_H_

#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "nn/module.h"

namespace came::core {

/// Configuration of the Triple Co-Attention operator (paper Section IV-A).
struct TcaConfig {
  /// Width of both inputs. The paper's Eq. (6) sums co- and intra-
  /// attention outputs, which is only well-typed when d1 == d2; every use
  /// in the paper projects its inputs to a common width first (see
  /// DESIGN.md), so this operator requires equal input widths.
  int64_t dim = 64;
  /// Number of attention heads m (paper best: 2 on DRKG-MM, 3 on OMAHA-MM).
  int num_heads = 2;
  /// Temperature interval lambda of Eq. (8); the i-th head divides its
  /// affinity matrices by tau_i = tau0 * (lambda * i).
  float interval = 5.0f;
  /// Initial value of the learnable base temperature tau0.
  float tau0_init = 1.0f;
};

/// Triple Co-Attention (TCA) operator.
///
/// Per head, three affinity matrices are built from sigmoid projections of
/// the two inputs Q, D (Eq. 1/4):
///   M_co    = s(Q Wq_co) (x) s(D Wd_co)      (batched outer product)
///   M_in^q  = s(Q Wq_co) (x) s(Q Wq_in)
///   M_in^d  = s(D Wd_co) (x) s(D Wd_in)
/// with Wq_co / Wd_co shared between the co- and intra-affinities so both
/// live in the same subspace. Each matrix is scaled by the head's
/// learnable temperature, row/column-softmaxed (Eq. 2), and applied back
/// to the inputs (Eq. 3/5); co- and intra-attention add (Eq. 6), heads
/// concatenate and project back to `dim` (Eq. 7).
class Tca : public nn::Module {
 public:
  Tca(const TcaConfig& config, Rng* rng);

  /// Returns (Q_tca, D_tca), both [B, dim], for inputs of shape [B, dim].
  std::pair<ag::Var, ag::Var> Forward(const ag::Var& q,
                                      const ag::Var& d) const;

  const TcaConfig& config() const { return config_; }
  /// Current value of the learnable base temperature (diagnostics).
  float tau0() const { return tau0_.value().data()[0]; }

 private:
  TcaConfig config_;
  // Per-head projections, each [dim, dim].
  std::vector<ag::Var> w_co_q_, w_co_d_, w_in_q_, w_in_d_;
  ag::Var w_head_q_;  // [m*dim, dim]
  ag::Var w_head_d_;  // [m*dim, dim]
  ag::Var tau0_;      // [1], learnable
};

}  // namespace came::core

#endif  // CAME_CORE_TCA_H_
