#ifndef CAME_CORE_CAME_MODEL_H_
#define CAME_CORE_CAME_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/conve.h"
#include "baselines/kgc_model.h"
#include "core/mmf.h"
#include "core/ric.h"
#include "core/tca.h"

namespace came::core {

/// Full CamE configuration, covering the paper's hyperparameters
/// (Section V-B) and the ablation switches of Fig 6.
struct CamEConfig {
  int64_t embed_dim = 64;   // d_e = d_r (paper: 500 / 100)
  int64_t fusion_dim = 64;  // d_f (paper: 200)
  int num_heads = 2;        // m (paper best: 2 / 3)
  float interval = 5.0f;    // lambda (paper best: 5 / 10)
  float exchange_theta = -0.5f;  // theta (paper best: -0.5 / -2)
  float tau0_init = 1.0f;
  int64_t conv_filters = 32;  // paper: 128
  int64_t conv_kernel = 3;    // paper: 9x9 at full scale
  int64_t reshape_h = 8;
  float dropout = 0.2f;
  /// Initialise the structured-embedding table from pre-trained structural
  /// features when the feature bank carries them (paper Section III /
  /// Fig 8a trains from scratch for fair comparison).
  bool init_structural_from_pretrained = false;

  // Ablation switches (Fig 6).
  bool use_tca = true;       // w/o TCA
  bool use_exchange = true;  // w/o EX
  bool use_mmf = true;       // w/o MMF
  bool use_ric = true;       // w/o RIC
  bool use_text = true;      // w/o TD
  bool use_molecule = true;  // w/o MS
};

/// CamE (the paper's model): multimodal TCA fusion (MMF) + relation-aware
/// interactive TCA (RIC) + two-branch convolutional decoder, trained
/// 1-to-N with Bernoulli NLL (Eq. 16).
///
/// Scoring follows our typed reading of Eq. 15 (see DESIGN.md): both conv
/// branches produce query vectors matched against the structured entity
/// table:
///   branch 1 channels: h_f, v_t W_t, v_m W_m      (multimodal view)
///   branch 2 channels: v_s, v_0 = [h_s ; r]       (structural view)
///   score(h,r,t) = <f1(branch1) W_1 + f2(branch2) W_2 , E_s[t]> + b_t.
class CamE : public baselines::InnerProductKgcModel {
 public:
  CamE(const baselines::ModelContext& context, const CamEConfig& config);

  std::string Name() const override { return "CamE"; }
  baselines::TrainingRegime regime() const override {
    return baselines::TrainingRegime::kOneToN;
  }

  const CamEConfig& config() const { return config_; }
  /// Which modalities are active, in order (subset of {"molecule",
  /// "text", "structural"}).
  const std::vector<std::string>& modality_names() const {
    return modality_names_;
  }

  /// The query-independent half of CamE's forward: the MMF fusion rows
  /// h_f = MMF(modalities(e)) for every entity e, [N, d_f]. MMF is
  /// per-row, so these rows are bitwise equal to what any batched forward
  /// computes — installing them via SetFoldedEncoderCache changes no
  /// score bit.
  tensor::Tensor FoldEntityEncoders() override;
  void SetFoldedEncoderCache(tensor::Tensor rows) override;
  bool HasFoldedEncoderCache() const override {
    return mmf_row_cache_.numel() > 0;
  }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }
  /// Training invalidates the folded MMF rows (parameters will move).
  void OnSetTraining(bool training) override;

 private:
  /// Gathers the active modality vectors for a batch of entities.
  std::vector<ag::Var> GatherModalities(const std::vector<int64_t>& heads);

  CamEConfig config_;
  std::vector<std::string> modality_names_;
  std::vector<int64_t> modality_dims_;
  int molecule_slot_ = -1;  // index into the modality list, -1 if absent
  int text_slot_ = -1;
  int structural_slot_ = -1;

  ag::Var entities_;   // E_s [N, d_e] (the structured modality)
  ag::Var relations_;  // [2R, d_r]
  std::unique_ptr<Mmf> mmf_;
  std::unique_ptr<Ric> ric_;
  // Decoder branch 1 (multimodal view).
  std::vector<ag::Var> v_to_fusion_;  // W_t / W_m ... : [2*d_r, d_f]
  std::unique_ptr<nn::Conv2d> conv1_;
  std::unique_ptr<nn::Linear> fc1_;
  // Decoder branch 2 (structural view).
  std::unique_ptr<nn::Conv2d> conv2_;
  std::unique_ptr<nn::Linear> fc2_;
  std::unique_ptr<nn::LayerNorm> norm_;
  std::unique_ptr<nn::Dropout> dropout_;
  /// Folded MMF rows [N, d_f] (empty = disabled). Eval-only; cleared on
  /// SetTraining(true).
  tensor::Tensor mmf_row_cache_;
};

}  // namespace came::core

#endif  // CAME_CORE_CAME_MODEL_H_
