#ifndef CAME_CORE_RIC_H_
#define CAME_CORE_RIC_H_

#include <memory>
#include <vector>

#include "core/tca.h"

namespace came::core {

/// Configuration of the Relation-aware Interactive TCA module
/// (Section IV-C).
struct RicConfig {
  int64_t rel_dim = 64;             // d_r (== d_e in the paper)
  std::vector<int64_t> input_dims;  // one per modality
  TcaConfig tca;                    // tca.dim is set to rel_dim
  // Ablation switches.
  bool use_tca = true;  // w/o TCA: interactive pair = (proj(h), r)
  bool enabled = true;  // w/o RIC: v = [proj(h) ; r] without interaction
};

/// RIC: builds the multimodal entity-relation interactive representations
/// v_w = [h'_w ; r'_w] with (h'_w, r'_w) = TCA(h_w, r) per modality
/// (Eq. 14). Modal inputs are first projected to the relation width so
/// the TCA operator is well-typed (see DESIGN.md on Eq. 14's dimensions).
class Ric : public nn::Module {
 public:
  Ric(const RicConfig& config, Rng* rng);

  /// Returns one v_w [B, 2*rel_dim] per modality.
  std::vector<ag::Var> Forward(const std::vector<ag::Var>& modal_inputs,
                               const ag::Var& relation) const;

 private:
  RicConfig config_;
  std::vector<ag::Var> proj_;                   // [input_dims[i], rel_dim]
  std::vector<std::unique_ptr<Tca>> modal_tca_;  // one per modality
};

}  // namespace came::core

#endif  // CAME_CORE_RIC_H_
