#include "core/came_model.h"

#include <algorithm>

#include "common/logging.h"
#include "infer/no_tape.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::core {

using baselines::ModelContext;
using baselines::Stack2d;

CamE::CamE(const ModelContext& context, const CamEConfig& config)
    : InnerProductKgcModel(context, config.embed_dim, /*entity_bias=*/true),
      config_(config) {
  CAME_CHECK(context.features != nullptr) << "CamE is multimodal";
  const encoders::FeatureBank& bank = *context.features;

  // Assemble the active modality list. The structured embedding is always
  // present; molecule/text depend on the ablation flags and on whether the
  // dataset actually carries the modality (OMAHA-MM has no molecules).
  bool any_molecule = false;
  for (int64_t e = 0; e < bank.num_entities() && !any_molecule; ++e) {
    any_molecule = bank.has_molecule(e);
  }
  if (config.use_molecule && any_molecule) {
    molecule_slot_ = static_cast<int>(modality_names_.size());
    modality_names_.push_back("molecule");
    modality_dims_.push_back(bank.dim_m());
  }
  if (config.use_text) {
    text_slot_ = static_cast<int>(modality_names_.size());
    modality_names_.push_back("text");
    modality_dims_.push_back(bank.dim_t());
  }
  structural_slot_ = static_cast<int>(modality_names_.size());
  modality_names_.push_back("structural");
  modality_dims_.push_back(config.embed_dim);

  tensor::Tensor entity_init =
      nn::EmbeddingInit({context.num_entities, config.embed_dim}, &rng_);
  if (config.init_structural_from_pretrained && bank.has_structural() &&
      bank.structural_features().dim(1) == config.embed_dim) {
    entity_init = bank.structural_features().Clone();
  }
  entities_ = RegisterParameter("entities", std::move(entity_init));
  relations_ = RegisterParameter(
      "relations",
      nn::EmbeddingInit({context.num_relations, config.embed_dim}, &rng_));

  TcaConfig tca;
  tca.num_heads = config.num_heads;
  tca.interval = config.interval;
  tca.tau0_init = config.tau0_init;

  MmfConfig mmf;
  mmf.fusion_dim = config.fusion_dim;
  mmf.input_dims = modality_dims_;
  mmf.tca = tca;
  mmf.exchange_theta = config.exchange_theta;
  mmf.use_tca = config.use_tca;
  mmf.use_exchange = config.use_exchange;
  mmf.enabled = config.use_mmf;
  mmf_ = std::make_unique<Mmf>(mmf, &rng_);
  RegisterSubmodule("mmf", mmf_.get());

  RicConfig ric;
  ric.rel_dim = config.embed_dim;
  ric.input_dims = modality_dims_;
  ric.tca = tca;
  ric.use_tca = config.use_tca;
  ric.enabled = config.use_ric;
  ric_ = std::make_unique<Ric>(ric, &rng_);
  RegisterSubmodule("ric", ric_.get());

  // Branch 1: h_f plus one projected interactive representation per
  // non-structural modality.
  const int64_t non_structural =
      static_cast<int64_t>(modality_names_.size()) - 1;
  for (int64_t i = 0; i < non_structural; ++i) {
    v_to_fusion_.push_back(RegisterParameter(
        "v_to_fusion_" + std::to_string(i),
        nn::XavierNormal({2 * config.embed_dim, config.fusion_dim}, &rng_)));
  }
  conv1_ = std::make_unique<nn::Conv2d>(1 + non_structural,
                                        config.conv_filters,
                                        config.conv_kernel,
                                        config.conv_kernel / 2, &rng_);
  RegisterSubmodule("conv1", conv1_.get());
  CAME_CHECK_EQ(config.fusion_dim % config.reshape_h, 0);
  const int64_t w1 = config.fusion_dim / config.reshape_h;
  fc1_ = std::make_unique<nn::Linear>(
      config.conv_filters * config.reshape_h * w1, config.embed_dim, &rng_);
  RegisterSubmodule("fc1", fc1_.get());

  // Branch 2: v_s and v_0 = [h_s ; r], both [B, 2*d_e].
  conv2_ = std::make_unique<nn::Conv2d>(2, config.conv_filters,
                                        config.conv_kernel,
                                        config.conv_kernel / 2, &rng_);
  RegisterSubmodule("conv2", conv2_.get());
  CAME_CHECK_EQ((2 * config.embed_dim) % config.reshape_h, 0);
  const int64_t w2 = 2 * config.embed_dim / config.reshape_h;
  fc2_ = std::make_unique<nn::Linear>(
      config.conv_filters * config.reshape_h * w2, config.embed_dim, &rng_);
  RegisterSubmodule("fc2", fc2_.get());

  norm_ = std::make_unique<nn::LayerNorm>(config.embed_dim);
  RegisterSubmodule("norm", norm_.get());
  dropout_ = std::make_unique<nn::Dropout>(config.dropout, &rng_);
  RegisterSubmodule("dropout", dropout_.get());
}

std::vector<ag::Var> CamE::GatherModalities(
    const std::vector<int64_t>& heads) {
  const encoders::FeatureBank& bank = *context_.features;
  std::vector<ag::Var> out(modality_names_.size());
  if (molecule_slot_ >= 0) {
    out[static_cast<size_t>(molecule_slot_)] =
        baselines::GatherConstRows(bank.molecule_features(), heads);
  }
  if (text_slot_ >= 0) {
    out[static_cast<size_t>(text_slot_)] =
        baselines::GatherConstRows(bank.text_features(), heads);
  }
  out[static_cast<size_t>(structural_slot_)] = ag::Gather(entities_, heads);
  return out;
}

tensor::Tensor CamE::FoldEntityEncoders() {
  CAME_CHECK(!training()) << "FoldEntityEncoders requires eval mode";
  infer::NoTapeGuard guard;
  const int64_t n = num_entities();
  tensor::Tensor rows({n, config_.fusion_dim});
  // Batched so peak memory stays bounded; MMF is per-row, so the batch
  // split cannot change any output bit.
  constexpr int64_t kBatch = 512;
  std::vector<int64_t> ids;
  for (int64_t start = 0; start < n; start += kBatch) {
    const int64_t end = std::min(n, start + kBatch);
    ids.clear();
    for (int64_t e = start; e < end; ++e) ids.push_back(e);
    const tensor::Tensor h_f = mmf_->Forward(GatherModalities(ids)).value();
    CAME_CHECK_EQ(h_f.dim(1), config_.fusion_dim);
    std::copy(h_f.data(), h_f.data() + h_f.numel(),
              rows.data() + start * config_.fusion_dim);
  }
  return rows;
}

void CamE::SetFoldedEncoderCache(tensor::Tensor rows) {
  if (rows.numel() == 0) {
    mmf_row_cache_ = tensor::Tensor();
    return;
  }
  CAME_CHECK_EQ(rows.ndim(), 2);
  CAME_CHECK_EQ(rows.dim(0), num_entities());
  CAME_CHECK_EQ(rows.dim(1), config_.fusion_dim);
  mmf_row_cache_ = std::move(rows);
}

void CamE::OnSetTraining(bool training) {
  if (training) mmf_row_cache_ = tensor::Tensor();
}

ag::Var CamE::Query(const std::vector<int64_t>& heads,
                    const std::vector<int64_t>& rels) {
  const int64_t batch = static_cast<int64_t>(heads.size());
  std::vector<ag::Var> modal = GatherModalities(heads);
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var h_s = modal[static_cast<size_t>(structural_slot_)];

  // MMF joint representation — gathered from the folded cache when one is
  // installed (eval only; bitwise identical to the live computation).
  ag::Var h_f;
  if (!training() && mmf_row_cache_.numel() > 0) {
    h_f = ag::Const(tensor::GatherRows(mmf_row_cache_, heads));
  } else {
    h_f = mmf_->Forward(modal);
  }

  // RIC interactive representations, one per modality.
  std::vector<ag::Var> v = ric_->Forward(modal, r);

  // Branch 1: multimodal view.
  std::vector<ag::Var> channels1 = {h_f};
  size_t proj_idx = 0;
  for (size_t i = 0; i < modality_names_.size(); ++i) {
    if (static_cast<int>(i) == structural_slot_) continue;
    channels1.push_back(ag::MatMul(v[i], v_to_fusion_[proj_idx++]));
  }
  ag::Var image1 = Stack2d(channels1, config_.reshape_h);
  ag::Var c1 = ag::Relu(conv1_->Forward(image1));
  ag::Var q1 = fc1_->Forward(
      dropout_->Forward(ag::Reshape(c1, {batch, c1.numel() / batch})));

  // Branch 2: structural view with v_s and v_0 = [h_s ; r].
  ag::Var v_s = v[static_cast<size_t>(structural_slot_)];
  ag::Var v_0 = ag::Concat({h_s, r}, 1);
  ag::Var image2 = Stack2d({v_s, v_0}, config_.reshape_h);
  ag::Var c2 = ag::Relu(conv2_->Forward(image2));
  ag::Var q2 = fc2_->Forward(
      dropout_->Forward(ag::Reshape(c2, {batch, c2.numel() / batch})));

  return ag::Relu(norm_->Forward(ag::Add(q1, q2)));
}

}  // namespace came::core
