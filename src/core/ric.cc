#include "core/ric.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::core {

Ric::Ric(const RicConfig& config, Rng* rng) : config_(config) {
  CAME_CHECK(!config.input_dims.empty());
  config_.tca.dim = config_.rel_dim;
  for (size_t i = 0; i < config_.input_dims.size(); ++i) {
    proj_.push_back(RegisterParameter(
        "w_proj_" + std::to_string(i),
        nn::XavierNormal({config_.input_dims[i], config_.rel_dim}, rng)));
    modal_tca_.push_back(std::make_unique<Tca>(config_.tca, rng));
    RegisterSubmodule("tca_" + std::to_string(i), modal_tca_.back().get());
  }
}

std::vector<ag::Var> Ric::Forward(const std::vector<ag::Var>& modal_inputs,
                                  const ag::Var& relation) const {
  CAME_CHECK_EQ(modal_inputs.size(), config_.input_dims.size());
  CAME_CHECK_EQ(relation.dim(1), config_.rel_dim);
  std::vector<ag::Var> out;
  out.reserve(modal_inputs.size());
  for (size_t i = 0; i < modal_inputs.size(); ++i) {
    ag::Var h = ag::MatMul(modal_inputs[i], proj_[i]);
    ag::Var r = relation;
    if (config_.enabled && config_.use_tca) {
      auto [ht, rt] = modal_tca_[i]->Forward(h, r);
      h = ht;
      r = rt;
    }
    out.push_back(ag::Concat({h, r}, 1));
  }
  return out;
}

}  // namespace came::core
