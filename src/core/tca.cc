#include "core/tca.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::core {

Tca::Tca(const TcaConfig& config, Rng* rng) : config_(config) {
  CAME_CHECK_GT(config.num_heads, 0);
  CAME_CHECK_GT(config.dim, 0);
  const int64_t d = config.dim;
  for (int h = 0; h < config.num_heads; ++h) {
    const std::string s = std::to_string(h);
    w_co_q_.push_back(
        RegisterParameter("w_co_q_" + s, nn::XavierNormal({d, d}, rng)));
    w_co_d_.push_back(
        RegisterParameter("w_co_d_" + s, nn::XavierNormal({d, d}, rng)));
    w_in_q_.push_back(
        RegisterParameter("w_in_q_" + s, nn::XavierNormal({d, d}, rng)));
    w_in_d_.push_back(
        RegisterParameter("w_in_d_" + s, nn::XavierNormal({d, d}, rng)));
  }
  w_head_q_ = RegisterParameter(
      "w_head_q", nn::XavierNormal({config.num_heads * d, d}, rng));
  w_head_d_ = RegisterParameter(
      "w_head_d", nn::XavierNormal({config.num_heads * d, d}, rng));
  tau0_ = RegisterParameter(
      "tau0", tensor::Tensor::Full({1}, config.tau0_init));
}

std::pair<ag::Var, ag::Var> Tca::Forward(const ag::Var& q,
                                         const ag::Var& d) const {
  const int64_t dim = config_.dim;
  CAME_CHECK_EQ(q.dim(1), dim);
  CAME_CHECK_EQ(d.dim(1), dim);
  CAME_CHECK_EQ(q.dim(0), d.dim(0));

  std::vector<ag::Var> q_heads;
  std::vector<ag::Var> d_heads;
  const ag::Var one = ag::Const(tensor::Tensor::Scalar(1.0f));
  for (int h = 0; h < config_.num_heads; ++h) {
    const auto hu = static_cast<size_t>(h);
    // Eq. (8): tau_i = tau0 * (lambda * i), i in {1..m}. The fused
    // co-attention op takes 1/tau.
    ag::Var inv_tau = ag::Div(
        one, ag::Scale(tau0_, config_.interval * static_cast<float>(h + 1)));

    ag::Var pq_co = ag::Sigmoid(ag::MatMul(q, w_co_q_[hu]));  // [B,d]
    ag::Var pd_co = ag::Sigmoid(ag::MatMul(d, w_co_d_[hu]));
    ag::Var pq_in = ag::Sigmoid(ag::MatMul(q, w_in_q_[hu]));
    ag::Var pd_in = ag::Sigmoid(ag::MatMul(d, w_in_d_[hu]));

    // Co-attention (Eq. 1-3): Q_co = Q^T softmax_dim0(M_co / tau),
    // D_co = softmax_dim1(M_co / tau) D, fused per call.
    ag::Var q_co = ag::CoAttentionApply(q, pq_co, pd_co, inv_tau);
    ag::Var d_co = ag::CoAttentionApply(d, pd_co, pq_co, inv_tau);

    // Intra-attention (Eq. 4-5); the co projections are shared so both
    // affinity families live in the same subspace.
    ag::Var q_in = ag::CoAttentionApply(q, pq_co, pq_in, inv_tau);
    ag::Var d_in = ag::CoAttentionApply(d, pd_co, pd_in, inv_tau);

    // Eq. (6).
    q_heads.push_back(ag::Add(q_co, q_in));
    d_heads.push_back(ag::Add(d_co, d_in));
  }

  // Eq. (7): concat heads and project back.
  if (config_.num_heads == 1) {
    return {ag::MatMul(q_heads[0], ag::Slice(w_head_q_, 0, 0, dim)),
            ag::MatMul(d_heads[0], ag::Slice(w_head_d_, 0, 0, dim))};
  }
  return {ag::MatMul(ag::Concat(q_heads, 1), w_head_q_),
          ag::MatMul(ag::Concat(d_heads, 1), w_head_d_)};
}

}  // namespace came::core
