#ifndef CAME_CORE_MMF_H_
#define CAME_CORE_MMF_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/tca.h"

namespace came::core {

/// The EX exchanging-fusion step (paper Eq. 10-12): positions whose
/// LayerNorm-ed activation falls below `theta` are considered unimportant
/// (smaller-norm-less-information) and are replaced by the other
/// modality's value at the same position. Both masks are computed from
/// the *inputs* before either side is modified; no gradient flows through
/// the threshold decision itself.
std::pair<ag::Var, ag::Var> ExchangeFusion(const ag::Var& x, const ag::Var& y,
                                           float theta);

/// Configuration of the Multimodal TCA Fusion module (Section IV-B).
struct MmfConfig {
  int64_t fusion_dim = 64;             // d_f
  std::vector<int64_t> input_dims;     // one per modality (2 or 3 of them)
  TcaConfig tca;                       // tca.dim is set to fusion_dim
  float exchange_theta = -0.5f;
  // Ablation switches (Fig 6).
  bool use_tca = true;       // w/o TCA: pairwise matching becomes identity
  bool use_exchange = true;  // w/o EX
  bool enabled = true;       // w/o MMF: fusion = plain Hadamard product
};

/// MMF: projects each modality to the fusion space, runs pairwise TCA
/// matching over every modality pair, exchanges low-attention features
/// (EX), and fuses the pair outputs with low-rank bilinear pooling
/// (Eq. 13) into the joint representation h_f.
class Mmf : public nn::Module {
 public:
  Mmf(const MmfConfig& config, Rng* rng);

  /// `modal_inputs[i]` is [B, input_dims[i]]; returns h_f [B, fusion_dim].
  ag::Var Forward(const std::vector<ag::Var>& modal_inputs) const;

  int64_t num_modalities() const {
    return static_cast<int64_t>(config_.input_dims.size());
  }

 private:
  MmfConfig config_;
  std::vector<ag::Var> proj_;  // W_i: [input_dims[i], fusion_dim]
  std::vector<std::unique_ptr<Tca>> pair_tca_;  // one per modality pair
  // Low-rank bilinear pooling (Eq. 13).
  std::vector<ag::Var> bilinear_u_;  // per pair [d_f, d_f]
  std::vector<ag::Var> bilinear_v_;  // per pair [d_f, d_f]
  ag::Var pool_p_;                   // [d_f, d_f]
  ag::Var pool_b_;                   // [d_f]
};

}  // namespace came::core

#endif  // CAME_CORE_MMF_H_
