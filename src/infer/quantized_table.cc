#include "infer/quantized_table.h"

#include <cstring>
#include <utility>

#include "common/io.h"
#include "common/logging.h"
#include "tensor/qgemm.h"

namespace came::infer {

namespace {

// Version 2 of the CAMEFET container (little-endian). Shares the v1
// magic and fourcc+len+crc section framing, so each loader can detect
// the other's files and point at the right entry point:
//   magic    8 bytes "CAMEFET1"
//   version  u32 = 2
//   count    u32 = 4
//   sections, in order:
//     META: name_len u32, name bytes, n i64, d i64, dtype u8
//           (1 = int8, 2 = bf16)
//     QROW: raw encoded rows, n*d bytes (int8) or n*d*2 bytes (bf16)
//     SCAL: n fp32 row scales (int8) or empty (bf16)
//     BIAS: n fp32 biases, or empty
constexpr char kMagic[8] = {'C', 'A', 'M', 'E', 'F', 'E', 'T', '1'};
constexpr uint32_t kQuantVersion = 2;
constexpr uint32_t kFp32Version = 1;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kSectionMeta = FourCc('M', 'E', 'T', 'A');
constexpr uint32_t kSectionQuantRows = FourCc('Q', 'R', 'O', 'W');
constexpr uint32_t kSectionScales = FourCc('S', 'C', 'A', 'L');
constexpr uint32_t kSectionBias = FourCc('B', 'I', 'A', 'S');
constexpr uint32_t kSectionBounds = FourCc('B', 'N', 'D', 'S');

constexpr uint64_t kMaxSectionBytes = 1ULL << 33;  // 8 GiB
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint8_t kDtypeInt8 = 1;
constexpr uint8_t kDtypeBf16 = 2;

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Status ReadRaw(void* out, size_t n) {
    if (n > size_ - pos_) {
      return Status::Corruption("quantized table truncated at byte " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(T));
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendSection(std::string* file, uint32_t id, const std::string& payload) {
  AppendPod(file, id);
  AppendPod(file, static_cast<uint64_t>(payload.size()));
  AppendPod(file, io::Crc32(payload.data(), payload.size()));
  file->append(payload);
}

uint8_t DtypeByte(ScoreDtype dtype) {
  return dtype == ScoreDtype::kInt8 ? kDtypeInt8 : kDtypeBf16;
}

}  // namespace

Result<QuantizedTable> QuantizedTable::Build(const FusedEmbeddingTable& table,
                                             ScoreDtype dtype) {
  if (dtype != ScoreDtype::kInt8 && dtype != ScoreDtype::kBf16) {
    return Status::InvalidArgument(
        "QuantizedTable::Build wants int8 or bf16, got " +
        ScoreDtypeName(dtype));
  }
  const int64_t n = table.num_entities();
  const int64_t d = table.dim();
  if (n <= 0 || d <= 0) {
    return Status::InvalidArgument("cannot quantize an empty fused table");
  }

  QuantizedTable out;
  out.model_name_ = table.model_name();
  out.dtype_ = dtype;
  out.num_entities_ = n;
  out.dim_ = d;
  const float* src = table.candidates().data();
  if (dtype == ScoreDtype::kInt8) {
    out.int8_rows_.resize(static_cast<size_t>(n * d));
    out.scales_.resize(static_cast<size_t>(n));
    CAME_RETURN_IF_ERROR(tensor::qgemm::QuantizeRowsInt8(
        src, n, d, out.int8_rows_.data(), out.scales_.data()));
  } else {
    out.bf16_rows_.resize(static_cast<size_t>(n * d));
    CAME_RETURN_IF_ERROR(
        tensor::qgemm::EncodeRowsBf16(src, n, d, out.bf16_rows_.data()));
  }
  if (table.has_bias()) out.bias_ = table.bias().Clone();
  out.ComputeBounds();
  return out;
}

void QuantizedTable::ComputeBounds() {
  bounds_ = tensor::PanelBoundTable(num_entities_,
                                    tensor::kDefaultBoundBlockRows);
  const float* bias = has_bias() ? bias_.data() : nullptr;
  if (dtype_ == ScoreDtype::kInt8) {
    tensor::AccountRowsInt8(&bounds_, int8_rows_.data(), scales_.data(),
                            bias, /*first_row=*/0, num_entities_, dim_);
  } else {
    tensor::AccountRowsBf16(&bounds_, bf16_rows_.data(), bias,
                            /*first_row=*/0, num_entities_, dim_);
  }
}

const int8_t* QuantizedTable::int8_rows() const {
  CAME_CHECK(dtype_ == ScoreDtype::kInt8)
      << "table dtype is " << ScoreDtypeName(dtype_);
  return int8_rows_.data();
}

const float* QuantizedTable::scales() const {
  CAME_CHECK(dtype_ == ScoreDtype::kInt8)
      << "table dtype is " << ScoreDtypeName(dtype_);
  return scales_.data();
}

const uint16_t* QuantizedTable::bf16_rows() const {
  CAME_CHECK(dtype_ == ScoreDtype::kBf16)
      << "table dtype is " << ScoreDtypeName(dtype_);
  return bf16_rows_.data();
}

int64_t QuantizedTable::entity_matrix_bytes() const {
  if (dtype_ == ScoreDtype::kInt8) {
    return static_cast<int64_t>(int8_rows_.size()) +
           static_cast<int64_t>(scales_.size()) * 4;
  }
  return static_cast<int64_t>(bf16_rows_.size()) * 2;
}

Status QuantizedTable::Save(const std::string& path) const {
  CAME_CHECK_GT(num_entities_, 0) << "cannot save an empty quantized table";

  std::string meta;
  AppendPod(&meta, static_cast<uint32_t>(model_name_.size()));
  meta.append(model_name_);
  AppendPod(&meta, num_entities_);
  AppendPod(&meta, dim_);
  AppendPod(&meta, DtypeByte(dtype_));

  std::string qrow;
  std::string scal;
  if (dtype_ == ScoreDtype::kInt8) {
    qrow.append(reinterpret_cast<const char*>(int8_rows_.data()),
                int8_rows_.size());
    scal.append(reinterpret_cast<const char*>(scales_.data()),
                scales_.size() * sizeof(float));
  } else {
    qrow.append(reinterpret_cast<const char*>(bf16_rows_.data()),
                bf16_rows_.size() * sizeof(uint16_t));
  }

  std::string bias;
  if (has_bias()) {
    bias.append(reinterpret_cast<const char*>(bias_.data()),
                static_cast<size_t>(bias_.numel()) * sizeof(float));
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendPod(&file, kQuantVersion);
  AppendPod(&file, static_cast<uint32_t>(bounds_.empty() ? 4 : 5));
  AppendSection(&file, kSectionMeta, meta);
  AppendSection(&file, kSectionQuantRows, qrow);
  AppendSection(&file, kSectionScales, scal);
  AppendSection(&file, kSectionBias, bias);
  if (!bounds_.empty()) {
    AppendSection(&file, kSectionBounds, bounds_.Encode());
  }
  return io::WriteFileAtomic(path, file.data(), file.size());
}

Status QuantizedTable::Load(const std::string& path, QuantizedTable* out) {
  CAME_CHECK(out != nullptr);
  std::string file;
  CAME_RETURN_IF_ERROR(io::ReadFile(path, &file));
  Reader r(file.data(), file.size());

  char magic[8];
  CAME_RETURN_IF_ERROR(r.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not a fused table (bad magic)");
  }
  uint32_t version = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&version));
  if (version == kFp32Version) {
    return Status::InvalidArgument(
        path + ": fused table version 1 is the fp32 format; load it with "
               "FusedEmbeddingTable::Load");
  }
  if (version != kQuantVersion) {
    return Status::InvalidArgument(path +
                                   ": unsupported fused table version " +
                                   std::to_string(version));
  }
  uint32_t section_count = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&section_count));
  if (section_count != 4 && section_count != 5) {
    return Status::Corruption(path + ": expected 4 or 5 sections, found " +
                              std::to_string(section_count));
  }

  std::string model_name;
  int64_t n = 0;
  int64_t d = 0;
  uint8_t dtype_byte = 0;
  std::string qrow;
  std::string scal;
  std::string bias_bytes;
  tensor::PanelBoundTable stored_bounds;

  constexpr uint32_t kExpectedOrder[5] = {kSectionMeta, kSectionQuantRows,
                                          kSectionScales, kSectionBias,
                                          kSectionBounds};
  for (uint32_t idx = 0; idx < section_count; ++idx) {
    uint32_t id = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    CAME_RETURN_IF_ERROR(r.ReadPod(&id));
    CAME_RETURN_IF_ERROR(r.ReadPod(&len));
    CAME_RETURN_IF_ERROR(r.ReadPod(&crc));
    if (id != kExpectedOrder[idx]) {
      return Status::Corruption(path + ": unexpected section id at index " +
                                std::to_string(idx));
    }
    if (len > kMaxSectionBytes || len > r.remaining()) {
      return Status::Corruption(path + ": section length out of range");
    }
    std::string payload(len, 0);
    CAME_RETURN_IF_ERROR(r.ReadRaw(payload.data(), len));
    if (io::Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption(path + ": CRC mismatch in section " +
                                std::to_string(idx));
    }
    switch (id) {
      case kSectionMeta: {
        Reader pr(payload.data(), payload.size());
        uint32_t name_len = 0;
        CAME_RETURN_IF_ERROR(pr.ReadPod(&name_len));
        if (name_len > kMaxNameLen) {
          return Status::Corruption("model name length out of range");
        }
        model_name.assign(name_len, 0);
        CAME_RETURN_IF_ERROR(pr.ReadRaw(model_name.data(), name_len));
        CAME_RETURN_IF_ERROR(pr.ReadPod(&n));
        CAME_RETURN_IF_ERROR(pr.ReadPod(&d));
        CAME_RETURN_IF_ERROR(pr.ReadPod(&dtype_byte));
        if (pr.remaining() != 0) {
          return Status::Corruption("trailing bytes in meta section");
        }
        break;
      }
      case kSectionQuantRows:
        qrow = std::move(payload);
        break;
      case kSectionScales:
        scal = std::move(payload);
        break;
      case kSectionBias:
        bias_bytes = std::move(payload);
        break;
      case kSectionBounds: {
        Result<tensor::PanelBoundTable> b =
            tensor::PanelBoundTable::Decode(payload.data(), payload.size());
        if (!b.ok()) return b.status();
        stored_bounds = std::move(b).value();
        break;
      }
      default:
        return Status::Corruption("unreachable section id");
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption(path + ": trailing bytes after last section");
  }

  // Cross-section validation: every payload length is fixed by the meta
  // header, so any mismatch is Corruption rather than a wild read.
  if (n <= 0 || d <= 0 || n > static_cast<int64_t>(kMaxSectionBytes) ||
      d > static_cast<int64_t>(kMaxSectionBytes)) {
    return Status::Corruption(path + ": meta shape out of range");
  }
  if (dtype_byte != kDtypeInt8 && dtype_byte != kDtypeBf16) {
    return Status::Corruption(path + ": unknown quantized dtype byte " +
                              std::to_string(dtype_byte));
  }
  const ScoreDtype dtype =
      dtype_byte == kDtypeInt8 ? ScoreDtype::kInt8 : ScoreDtype::kBf16;
  const uint64_t elems = static_cast<uint64_t>(n) * static_cast<uint64_t>(d);
  const uint64_t want_qrow =
      dtype == ScoreDtype::kInt8 ? elems : elems * sizeof(uint16_t);
  if (qrow.size() != want_qrow) {
    return Status::Corruption(path + ": quantized row bytes mismatch");
  }
  const uint64_t want_scal =
      dtype == ScoreDtype::kInt8 ? static_cast<uint64_t>(n) * sizeof(float)
                                 : 0;
  if (scal.size() != want_scal) {
    return Status::Corruption(path + ": scale bytes mismatch");
  }
  if (!bias_bytes.empty() &&
      bias_bytes.size() != static_cast<uint64_t>(n) * sizeof(float)) {
    return Status::Corruption(path + ": bias bytes mismatch");
  }

  QuantizedTable t;
  t.model_name_ = std::move(model_name);
  t.dtype_ = dtype;
  t.num_entities_ = n;
  t.dim_ = d;
  if (dtype == ScoreDtype::kInt8) {
    t.int8_rows_.resize(elems);
    std::memcpy(t.int8_rows_.data(), qrow.data(), qrow.size());
    t.scales_.resize(static_cast<size_t>(n));
    std::memcpy(t.scales_.data(), scal.data(), scal.size());
  } else {
    t.bf16_rows_.resize(elems);
    std::memcpy(t.bf16_rows_.data(), qrow.data(), qrow.size());
  }
  if (!bias_bytes.empty()) {
    t.bias_ = tensor::Tensor({n});
    std::memcpy(t.bias_.data(), bias_bytes.data(), bias_bytes.size());
  }
  if (!stored_bounds.empty()) {
    if (stored_bounds.rows() != n) {
      return Status::Corruption(path + ": bounds section covers " +
                                std::to_string(stored_bounds.rows()) +
                                " rows, table has " + std::to_string(n));
    }
    t.bounds_ = std::move(stored_bounds);
  } else {
    t.ComputeBounds();
  }
  *out = std::move(t);
  return Status::OK();
}

QuantizedTablePanelSource::QuantizedTablePanelSource(
    const QuantizedTable* table)
    : table_(table) {
  CAME_CHECK(table_ != nullptr);
  CAME_CHECK_GT(table_->num_entities(), 0) << "empty quantized table";
}

void QuantizedTablePanelSource::CheckRange(int64_t begin, int64_t end) const {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
}

int64_t QuantizedTablePanelSource::PanelEnd(int64_t begin) const {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, table_->num_entities());
  return table_->num_entities();
}

const float* QuantizedTablePanelSource::Panel(int64_t, int64_t) {
  CAME_CHECK(false) << "quantized table source has no fp32 panels (dtype "
                    << ScoreDtypeName(table_->dtype()) << ")";
  return nullptr;
}

const float* QuantizedTablePanelSource::BiasPanel(int64_t begin, int64_t end) {
  CAME_CHECK(table_->has_bias());
  CheckRange(begin, end);
  return table_->bias().data() + begin;
}

const int8_t* QuantizedTablePanelSource::PanelInt8(int64_t begin,
                                                   int64_t end) {
  CheckRange(begin, end);
  return table_->int8_rows() + begin * table_->dim();
}

const float* QuantizedTablePanelSource::PanelScales(int64_t begin,
                                                    int64_t end) {
  CheckRange(begin, end);
  return table_->scales() + begin;
}

const uint16_t* QuantizedTablePanelSource::PanelBf16(int64_t begin,
                                                     int64_t end) {
  CheckRange(begin, end);
  return table_->bf16_rows() + begin * table_->dim();
}

float QuantizedTablePanelSource::PanelMaxNorm(int64_t begin,
                                              int64_t end) const {
  return table_->bounds().MaxNorm(begin, end);
}

float QuantizedTablePanelSource::PanelMaxBias(int64_t begin,
                                              int64_t end) const {
  return table_->bounds().MaxBias(begin, end);
}

}  // namespace came::infer
