#ifndef CAME_INFER_CANDIDATE_PANELS_H_
#define CAME_INFER_CANDIDATE_PANELS_H_

#include <cstdint>

#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "tensor/shard_store.h"

namespace came::infer {

/// Where the serving layer's candidate-entity rows come from. The
/// ScoreServer sweeps candidates panel by panel; this interface lets the
/// same sweep run over an in-RAM FusedEmbeddingTable or an mmap-backed
/// ShardStore whose slabs page in and out under a residency budget — the
/// in-RAM table is just the one-shard special case.
///
/// Contract: pointers returned by Panel/BiasPanel stay valid only until
/// the next Panel/BiasPanel call on the same source (a shard-backed
/// source may evict the mapping). Callers consume each pointer (GEMM,
/// heap update) before asking for the next.
class CandidatePanelSource {
 public:
  virtual ~CandidatePanelSource() = default;

  virtual int64_t num_entities() const = 0;
  virtual int64_t dim() const = 0;
  virtual bool has_bias() const = 0;

  /// Largest legal exclusive end for a panel starting at `begin` (the
  /// owning shard's boundary, clamped to num_entities()).
  virtual int64_t PanelEnd(int64_t begin) const = 0;

  /// Contiguous candidate rows [begin, end), row-major [end-begin, dim].
  /// Requires end <= PanelEnd(begin).
  virtual const float* Panel(int64_t begin, int64_t end) = 0;

  /// Per-entity bias for rows [begin, end), indexed panel-locally
  /// (result[j] is the bias of entity begin + j). Only called when
  /// has_bias() is true.
  virtual const float* BiasPanel(int64_t begin, int64_t end) = 0;

  /// Storage precision of this source's candidate rows. The ScoreServer
  /// routes its sweep on this: kFp32 sources serve Panel(), kInt8 serve
  /// PanelInt8()+PanelScales(), kBf16 serve PanelBf16(). The base
  /// implementations of the quantized accessors CHECK-fail, so an fp32
  /// source never has to think about them.
  virtual ScoreDtype dtype() const { return ScoreDtype::kFp32; }

  /// Quantized candidate rows [begin, end), row-major int8 [end-begin,
  /// dim]. Same lifetime contract as Panel(). Requires dtype() == kInt8.
  virtual const int8_t* PanelInt8(int64_t begin, int64_t end);

  /// Per-row fp32 dequantization scales for rows [begin, end), indexed
  /// panel-locally. Requires dtype() == kInt8. Unlike Panel/BiasPanel,
  /// the scales pointer stays valid alongside the PanelInt8 pointer for
  /// the same range (both live in the same mapping or table).
  virtual const float* PanelScales(int64_t begin, int64_t end);

  /// bf16 candidate rows [begin, end), row-major [end-begin, dim].
  /// Requires dtype() == kBf16.
  virtual const uint16_t* PanelBf16(int64_t begin, int64_t end);
};

/// The in-RAM special case: panels are pointer arithmetic into the fused
/// table's contiguous candidate matrix; every panel boundary is legal.
class FusedTablePanelSource : public CandidatePanelSource {
 public:
  /// `table` is not owned and must outlive the source.
  explicit FusedTablePanelSource(const FusedEmbeddingTable* table);

  int64_t num_entities() const override { return table_->num_entities(); }
  int64_t dim() const override { return table_->dim(); }
  bool has_bias() const override { return table_->has_bias(); }
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;

 private:
  const FusedEmbeddingTable* table_;
};

/// Beyond-RAM serving: candidates live in a ShardStore (typically opened
/// sealed from the trainer's published slabs); panels are zero-copy views
/// into the mapped slab and must respect shard boundaries, which
/// PanelEnd reports. No per-entity bias (inner-product-only models).
/// Quantized stores (ShardStore::Quantize) are served through the same
/// source: dtype() mirrors the store's ShardDtype and the matching panel
/// accessors route to the store's quantized slab views.
class ShardStorePanelSource : public CandidatePanelSource {
 public:
  /// `store` is not owned and must outlive the source. The ScoreServer
  /// serialises access internally, matching ShardStore's
  /// single-threaded access contract.
  explicit ShardStorePanelSource(tensor::ShardStore* store);

  int64_t num_entities() const override { return store_->rows(); }
  int64_t dim() const override { return store_->dim(); }
  bool has_bias() const override { return false; }
  ScoreDtype dtype() const override;
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;
  const int8_t* PanelInt8(int64_t begin, int64_t end) override;
  const float* PanelScales(int64_t begin, int64_t end) override;
  const uint16_t* PanelBf16(int64_t begin, int64_t end) override;

 private:
  tensor::ShardStore* store_;
};

}  // namespace came::infer

#endif  // CAME_INFER_CANDIDATE_PANELS_H_
