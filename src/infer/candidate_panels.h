#ifndef CAME_INFER_CANDIDATE_PANELS_H_
#define CAME_INFER_CANDIDATE_PANELS_H_

#include <cstdint>

#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "tensor/shard_store.h"

namespace came::infer {

/// Where the serving layer's candidate-entity rows come from. The
/// ScoreServer sweeps candidates panel by panel; this interface lets the
/// same sweep run over an in-RAM FusedEmbeddingTable or an mmap-backed
/// ShardStore whose slabs page in and out under a residency budget — the
/// in-RAM table is just the one-shard special case.
///
/// Contract: pointers returned by Panel/BiasPanel stay valid only until
/// the next Panel/BiasPanel call on the same source (a shard-backed
/// source may evict the mapping). Callers consume each pointer (GEMM,
/// heap update) before asking for the next.
///
/// Concurrency: accessors may be called from multiple threads at once
/// (every implementation here is either immutable in-RAM state or backed
/// by the internally synchronised ShardStore) — but under concurrency
/// the single-threaded pointer lifetime above is not enough, because
/// *another* thread's access can evict a mapping between your calls.
/// Holding a pin lease (AcquirePanelPin) on the range restores it:
/// pointers obtained for a pinned range stay valid until the pin is
/// released.
class CandidatePanelSource {
 public:
  virtual ~CandidatePanelSource() = default;

  virtual int64_t num_entities() const = 0;
  virtual int64_t dim() const = 0;
  virtual bool has_bias() const = 0;

  /// Largest legal exclusive end for a panel starting at `begin` (the
  /// owning shard's boundary, clamped to num_entities()).
  virtual int64_t PanelEnd(int64_t begin) const = 0;

  /// Contiguous candidate rows [begin, end), row-major [end-begin, dim].
  /// Requires end <= PanelEnd(begin).
  virtual const float* Panel(int64_t begin, int64_t end) = 0;

  /// Per-entity bias for rows [begin, end), indexed panel-locally
  /// (result[j] is the bias of entity begin + j). Only called when
  /// has_bias() is true.
  virtual const float* BiasPanel(int64_t begin, int64_t end) = 0;

  /// Storage precision of this source's candidate rows. The ScoreServer
  /// routes its sweep on this: kFp32 sources serve Panel(), kInt8 serve
  /// PanelInt8()+PanelScales(), kBf16 serve PanelBf16(). The base
  /// implementations of the quantized accessors CHECK-fail, so an fp32
  /// source never has to think about them.
  virtual ScoreDtype dtype() const { return ScoreDtype::kFp32; }

  /// Quantized candidate rows [begin, end), row-major int8 [end-begin,
  /// dim]. Same lifetime contract as Panel(). Requires dtype() == kInt8.
  virtual const int8_t* PanelInt8(int64_t begin, int64_t end);

  /// Per-row fp32 dequantization scales for rows [begin, end), indexed
  /// panel-locally. Requires dtype() == kInt8. Unlike Panel/BiasPanel,
  /// the scales pointer stays valid alongside the PanelInt8 pointer for
  /// the same range (both live in the same mapping or table).
  virtual const float* PanelScales(int64_t begin, int64_t end);

  /// bf16 candidate rows [begin, end), row-major [end-begin, dim].
  /// Requires dtype() == kBf16.
  virtual const uint16_t* PanelBf16(int64_t begin, int64_t end);

  /// Upper bound (>=) on the L2 norm of every candidate row in
  /// [begin, end) — for quantized sources, of the dequantized encoded
  /// rows the sweep actually scores. The base implementation returns
  /// +inf ("no metadata"), which makes the ScoreServer's panel pruning a
  /// no-op rather than unsound. Thread-safe (immutable after
  /// construction/sealing).
  virtual float PanelMaxNorm(int64_t begin, int64_t end) const;
  /// Upper bound (>=) on the per-entity bias of rows [begin, end); the
  /// base implementation returns +inf. Sources without bias report 0.
  virtual float PanelMaxBias(int64_t begin, int64_t end) const;

  /// Takes a lease on whatever residency backs rows [begin, end), so the
  /// range's panel pointers stay valid across concurrent accessor calls
  /// from other threads until ReleasePanelPin. Returns an opaque token;
  /// the base implementation returns -1 ("nothing to pin" — in-RAM
  /// sources), which ReleasePanelPin ignores. Leases nest.
  virtual int64_t AcquirePanelPin(int64_t begin, int64_t end);
  virtual void ReleasePanelPin(int64_t token);
};

/// RAII pin lease over a CandidatePanelSource range.
class PanelPin {
 public:
  PanelPin(CandidatePanelSource* source, int64_t begin, int64_t end)
      : source_(source), token_(source->AcquirePanelPin(begin, end)) {}
  ~PanelPin() {
    if (token_ >= 0) source_->ReleasePanelPin(token_);
  }
  PanelPin(const PanelPin&) = delete;
  PanelPin& operator=(const PanelPin&) = delete;

 private:
  CandidatePanelSource* source_;
  int64_t token_;
};

/// The in-RAM special case: panels are pointer arithmetic into the fused
/// table's contiguous candidate matrix; every panel boundary is legal.
class FusedTablePanelSource : public CandidatePanelSource {
 public:
  /// `table` is not owned and must outlive the source.
  explicit FusedTablePanelSource(const FusedEmbeddingTable* table);

  int64_t num_entities() const override { return table_->num_entities(); }
  int64_t dim() const override { return table_->dim(); }
  bool has_bias() const override { return table_->has_bias(); }
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;
  float PanelMaxNorm(int64_t begin, int64_t end) const override;
  float PanelMaxBias(int64_t begin, int64_t end) const override;

 private:
  const FusedEmbeddingTable* table_;
};

/// Beyond-RAM serving: candidates live in a ShardStore (typically opened
/// sealed from the trainer's published slabs); panels are zero-copy views
/// into the mapped slab and must respect shard boundaries, which
/// PanelEnd reports. No per-entity bias (inner-product-only models).
/// Quantized stores (ShardStore::Quantize) are served through the same
/// source: dtype() mirrors the store's ShardDtype and the matching panel
/// accessors route to the store's quantized slab views.
class ShardStorePanelSource : public CandidatePanelSource {
 public:
  /// `store` is not owned and must outlive the source. ShardStore's
  /// residency machinery is internally synchronised, so this source is
  /// safe for concurrent readers; AcquirePanelPin maps to the store's
  /// pin leases, which concurrent sweeps hold while consuming a panel.
  explicit ShardStorePanelSource(tensor::ShardStore* store);

  int64_t num_entities() const override { return store_->rows(); }
  int64_t dim() const override { return store_->dim(); }
  bool has_bias() const override { return false; }
  ScoreDtype dtype() const override;
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;
  const int8_t* PanelInt8(int64_t begin, int64_t end) override;
  const float* PanelScales(int64_t begin, int64_t end) override;
  const uint16_t* PanelBf16(int64_t begin, int64_t end) override;
  float PanelMaxNorm(int64_t begin, int64_t end) const override;
  float PanelMaxBias(int64_t begin, int64_t end) const override;
  int64_t AcquirePanelPin(int64_t begin, int64_t end) override;
  void ReleasePanelPin(int64_t token) override;

 private:
  tensor::ShardStore* store_;
};

}  // namespace came::infer

#endif  // CAME_INFER_CANDIDATE_PANELS_H_
