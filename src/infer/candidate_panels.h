#ifndef CAME_INFER_CANDIDATE_PANELS_H_
#define CAME_INFER_CANDIDATE_PANELS_H_

#include <cstdint>

#include "infer/fused_embedding_table.h"
#include "tensor/shard_store.h"

namespace came::infer {

/// Where the serving layer's candidate-entity rows come from. The
/// ScoreServer sweeps candidates panel by panel; this interface lets the
/// same sweep run over an in-RAM FusedEmbeddingTable or an mmap-backed
/// ShardStore whose slabs page in and out under a residency budget — the
/// in-RAM table is just the one-shard special case.
///
/// Contract: pointers returned by Panel/BiasPanel stay valid only until
/// the next Panel/BiasPanel call on the same source (a shard-backed
/// source may evict the mapping). Callers consume each pointer (GEMM,
/// heap update) before asking for the next.
class CandidatePanelSource {
 public:
  virtual ~CandidatePanelSource() = default;

  virtual int64_t num_entities() const = 0;
  virtual int64_t dim() const = 0;
  virtual bool has_bias() const = 0;

  /// Largest legal exclusive end for a panel starting at `begin` (the
  /// owning shard's boundary, clamped to num_entities()).
  virtual int64_t PanelEnd(int64_t begin) const = 0;

  /// Contiguous candidate rows [begin, end), row-major [end-begin, dim].
  /// Requires end <= PanelEnd(begin).
  virtual const float* Panel(int64_t begin, int64_t end) = 0;

  /// Per-entity bias for rows [begin, end), indexed panel-locally
  /// (result[j] is the bias of entity begin + j). Only called when
  /// has_bias() is true.
  virtual const float* BiasPanel(int64_t begin, int64_t end) = 0;
};

/// The in-RAM special case: panels are pointer arithmetic into the fused
/// table's contiguous candidate matrix; every panel boundary is legal.
class FusedTablePanelSource : public CandidatePanelSource {
 public:
  /// `table` is not owned and must outlive the source.
  explicit FusedTablePanelSource(const FusedEmbeddingTable* table);

  int64_t num_entities() const override { return table_->num_entities(); }
  int64_t dim() const override { return table_->dim(); }
  bool has_bias() const override { return table_->has_bias(); }
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;

 private:
  const FusedEmbeddingTable* table_;
};

/// Beyond-RAM serving: candidates live in a ShardStore (typically opened
/// sealed from the trainer's published slabs); panels are zero-copy views
/// into the mapped slab and must respect shard boundaries, which
/// PanelEnd reports. No per-entity bias (inner-product-only models).
class ShardStorePanelSource : public CandidatePanelSource {
 public:
  /// `store` is not owned and must outlive the source. The ScoreServer
  /// serialises access internally, matching ShardStore's
  /// single-threaded access contract.
  explicit ShardStorePanelSource(tensor::ShardStore* store);

  int64_t num_entities() const override { return store_->rows(); }
  int64_t dim() const override { return store_->dim(); }
  bool has_bias() const override { return false; }
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;

 private:
  tensor::ShardStore* store_;
};

}  // namespace came::infer

#endif  // CAME_INFER_CANDIDATE_PANELS_H_
