#include "infer/no_tape.h"

#include "common/logging.h"

namespace came::infer {

NoTapeGuard::NoTapeGuard()
    : nodes_at_entry_(ag::TapeNodesRecordedThisThread()),
      dispatches_at_entry_(ag::NoTapeDispatchesThisThread()) {}

NoTapeGuard::~NoTapeGuard() {
  const int64_t recorded =
      ag::TapeNodesRecordedThisThread() - nodes_at_entry_;
  CAME_CHECK_EQ(recorded, 0)
      << "NoTapeGuard: " << recorded
      << " tape node(s) recorded inside a no-tape scope";
}

int64_t NoTapeGuard::ScopedNoTapeDispatches() const {
  return ag::NoTapeDispatchesThisThread() - dispatches_at_entry_;
}

}  // namespace came::infer
