#include "infer/candidate_panels.h"

#include "common/logging.h"

namespace came::infer {

FusedTablePanelSource::FusedTablePanelSource(const FusedEmbeddingTable* table)
    : table_(table) {
  CAME_CHECK(table_ != nullptr);
}

int64_t FusedTablePanelSource::PanelEnd(int64_t begin) const {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, table_->num_entities());
  return table_->num_entities();
}

const float* FusedTablePanelSource::Panel(int64_t begin, int64_t end) {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->candidates().data() + begin * table_->dim();
}

const float* FusedTablePanelSource::BiasPanel(int64_t begin, int64_t end) {
  CAME_CHECK(table_->has_bias());
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->bias().data() + begin;
}

ShardStorePanelSource::ShardStorePanelSource(tensor::ShardStore* store)
    : store_(store) {
  CAME_CHECK(store_ != nullptr);
}

int64_t ShardStorePanelSource::PanelEnd(int64_t begin) const {
  return store_->ShardEnd(begin);
}

const float* ShardStorePanelSource::Panel(int64_t begin, int64_t end) {
  return store_->PanelRows(begin, end);
}

const float* ShardStorePanelSource::BiasPanel(int64_t, int64_t) {
  CAME_CHECK(false) << "shard-backed candidate source has no bias";
  return nullptr;
}

}  // namespace came::infer
