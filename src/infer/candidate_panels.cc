#include "infer/candidate_panels.h"

#include <limits>

#include "common/logging.h"

namespace came::infer {

const int8_t* CandidatePanelSource::PanelInt8(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no int8 panels";
  return nullptr;
}

const float* CandidatePanelSource::PanelScales(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no int8 row scales";
  return nullptr;
}

const uint16_t* CandidatePanelSource::PanelBf16(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no bf16 panels";
  return nullptr;
}

float CandidatePanelSource::PanelMaxNorm(int64_t, int64_t) const {
  return std::numeric_limits<float>::infinity();
}

float CandidatePanelSource::PanelMaxBias(int64_t, int64_t) const {
  return std::numeric_limits<float>::infinity();
}

int64_t CandidatePanelSource::AcquirePanelPin(int64_t, int64_t) { return -1; }

void CandidatePanelSource::ReleasePanelPin(int64_t) {}

FusedTablePanelSource::FusedTablePanelSource(const FusedEmbeddingTable* table)
    : table_(table) {
  CAME_CHECK(table_ != nullptr);
}

int64_t FusedTablePanelSource::PanelEnd(int64_t begin) const {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, table_->num_entities());
  return table_->num_entities();
}

const float* FusedTablePanelSource::Panel(int64_t begin, int64_t end) {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->candidates().data() + begin * table_->dim();
}

const float* FusedTablePanelSource::BiasPanel(int64_t begin, int64_t end) {
  CAME_CHECK(table_->has_bias());
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->bias().data() + begin;
}

float FusedTablePanelSource::PanelMaxNorm(int64_t begin, int64_t end) const {
  return table_->bounds().MaxNorm(begin, end);
}

float FusedTablePanelSource::PanelMaxBias(int64_t begin, int64_t end) const {
  return table_->bounds().MaxBias(begin, end);
}

ShardStorePanelSource::ShardStorePanelSource(tensor::ShardStore* store)
    : store_(store) {
  CAME_CHECK(store_ != nullptr);
}

ScoreDtype ShardStorePanelSource::dtype() const {
  switch (store_->dtype()) {
    case tensor::ShardDtype::kF32:
      return ScoreDtype::kFp32;
    case tensor::ShardDtype::kInt8:
      return ScoreDtype::kInt8;
    case tensor::ShardDtype::kBf16:
      return ScoreDtype::kBf16;
  }
  CAME_CHECK(false) << "unknown shard dtype";
  return ScoreDtype::kFp32;
}

int64_t ShardStorePanelSource::PanelEnd(int64_t begin) const {
  return store_->ShardEnd(begin);
}

const float* ShardStorePanelSource::Panel(int64_t begin, int64_t end) {
  return store_->PanelRows(begin, end);
}

const float* ShardStorePanelSource::BiasPanel(int64_t, int64_t) {
  CAME_CHECK(false) << "shard-backed candidate source has no bias";
  return nullptr;
}

const int8_t* ShardStorePanelSource::PanelInt8(int64_t begin, int64_t end) {
  return store_->QuantPanelRows(begin, end);
}

const float* ShardStorePanelSource::PanelScales(int64_t begin, int64_t end) {
  return store_->PanelScales(begin, end);
}

const uint16_t* ShardStorePanelSource::PanelBf16(int64_t begin, int64_t end) {
  return store_->Bf16PanelRows(begin, end);
}

float ShardStorePanelSource::PanelMaxNorm(int64_t begin, int64_t end) const {
  return store_->bounds().MaxNorm(begin, end);
}

float ShardStorePanelSource::PanelMaxBias(int64_t begin, int64_t end) const {
  // Shard-backed serving is inner-product only (no per-entity bias), and
  // the store's bound table is built bias-free, so this is exactly 0 —
  // or +inf from an empty table, which just disables pruning.
  return store_->bounds().MaxBias(begin, end);
}

int64_t ShardStorePanelSource::AcquirePanelPin(int64_t begin, int64_t end) {
  return store_->PinPanel(begin, end);
}

void ShardStorePanelSource::ReleasePanelPin(int64_t token) {
  store_->UnpinPanel(token);
}

}  // namespace came::infer
