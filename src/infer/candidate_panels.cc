#include "infer/candidate_panels.h"

#include "common/logging.h"

namespace came::infer {

const int8_t* CandidatePanelSource::PanelInt8(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no int8 panels";
  return nullptr;
}

const float* CandidatePanelSource::PanelScales(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no int8 row scales";
  return nullptr;
}

const uint16_t* CandidatePanelSource::PanelBf16(int64_t, int64_t) {
  CAME_CHECK(false) << "source dtype " << ScoreDtypeName(dtype())
                    << " has no bf16 panels";
  return nullptr;
}

FusedTablePanelSource::FusedTablePanelSource(const FusedEmbeddingTable* table)
    : table_(table) {
  CAME_CHECK(table_ != nullptr);
}

int64_t FusedTablePanelSource::PanelEnd(int64_t begin) const {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, table_->num_entities());
  return table_->num_entities();
}

const float* FusedTablePanelSource::Panel(int64_t begin, int64_t end) {
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->candidates().data() + begin * table_->dim();
}

const float* FusedTablePanelSource::BiasPanel(int64_t begin, int64_t end) {
  CAME_CHECK(table_->has_bias());
  CAME_CHECK_GE(begin, 0);
  CAME_CHECK_LT(begin, end);
  CAME_CHECK_LE(end, table_->num_entities());
  return table_->bias().data() + begin;
}

ShardStorePanelSource::ShardStorePanelSource(tensor::ShardStore* store)
    : store_(store) {
  CAME_CHECK(store_ != nullptr);
}

ScoreDtype ShardStorePanelSource::dtype() const {
  switch (store_->dtype()) {
    case tensor::ShardDtype::kF32:
      return ScoreDtype::kFp32;
    case tensor::ShardDtype::kInt8:
      return ScoreDtype::kInt8;
    case tensor::ShardDtype::kBf16:
      return ScoreDtype::kBf16;
  }
  CAME_CHECK(false) << "unknown shard dtype";
  return ScoreDtype::kFp32;
}

int64_t ShardStorePanelSource::PanelEnd(int64_t begin) const {
  return store_->ShardEnd(begin);
}

const float* ShardStorePanelSource::Panel(int64_t begin, int64_t end) {
  return store_->PanelRows(begin, end);
}

const float* ShardStorePanelSource::BiasPanel(int64_t, int64_t) {
  CAME_CHECK(false) << "shard-backed candidate source has no bias";
  return nullptr;
}

const int8_t* ShardStorePanelSource::PanelInt8(int64_t begin, int64_t end) {
  return store_->QuantPanelRows(begin, end);
}

const float* ShardStorePanelSource::PanelScales(int64_t begin, int64_t end) {
  return store_->PanelScales(begin, end);
}

const uint16_t* ShardStorePanelSource::PanelBf16(int64_t begin, int64_t end) {
  return store_->Bf16PanelRows(begin, end);
}

}  // namespace came::infer
