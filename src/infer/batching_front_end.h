#ifndef CAME_INFER_BATCHING_FRONT_END_H_
#define CAME_INFER_BATCHING_FRONT_END_H_

#include <cstdint>
#include <deque>
#include <future>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "infer/score_server.h"

namespace came::infer {

struct BatchingFrontEndConfig {
  /// Largest coalesced batch handed to one TopKBatch call.
  int64_t max_batch = 64;
};

/// Coalescing front end for a ScoreServer: concurrent clients submit
/// single (h, r, ?) queries and get futures; a worker thread drains the
/// queue and executes whatever has accumulated as one TopKBatch call
/// (up to max_batch). Wider batches amortise query encoding and reuse
/// each packed entity panel across every query in the batch, which is
/// where batched serving wins its throughput over per-query calls —
/// bench_serving measures exactly this.
class BatchingFrontEnd {
 public:
  /// K and the filter options are fixed per front end and apply to every
  /// submitted query. `server` must outlive the front end; anything
  /// `opts` points at must stay alive too.
  BatchingFrontEnd(ScoreServer* server, int64_t k,
                   const TopKOptions& opts = {},
                   const BatchingFrontEndConfig& config = {});
  /// Drains outstanding queries, then joins the worker.
  ~BatchingFrontEnd();

  BatchingFrontEnd(const BatchingFrontEnd&) = delete;
  BatchingFrontEnd& operator=(const BatchingFrontEnd&) = delete;

  /// Enqueues one query; the future resolves when its batch executes. If
  /// the server rejects the batch (out-of-range ids), the future carries
  /// a std::runtime_error with the server's status message instead of a
  /// value.
  std::future<TopKResult> Submit(int64_t head, int64_t rel)
      CAME_EXCLUDES(mu_);

  struct Stats {
    int64_t queries_served = 0;
    int64_t batches_executed = 0;
    /// Largest batch actually coalesced (1 = no coalescing happened).
    int64_t max_coalesced = 0;
  };
  Stats GetStats() const CAME_EXCLUDES(mu_);

 private:
  struct Pending {
    int64_t head;
    int64_t rel;
    std::promise<TopKResult> promise;
  };

  void WorkerLoop() CAME_EXCLUDES(mu_);

  ScoreServer* server_;
  int64_t k_;
  TopKOptions opts_;
  BatchingFrontEndConfig config_;

  /// Guards the submission queue, shutdown flag and stats. Never held
  /// across TopKBatch — the worker drains under the lock, then scores
  /// unlocked, so Submit stays responsive during a batch.
  mutable came::Mutex mu_;
  came::CondVar cv_;
  std::deque<Pending> queue_ CAME_GUARDED_BY(mu_);
  bool stop_ CAME_GUARDED_BY(mu_) = false;
  Stats stats_ CAME_GUARDED_BY(mu_);
  std::thread worker_;
};

}  // namespace came::infer

#endif  // CAME_INFER_BATCHING_FRONT_END_H_
