#ifndef CAME_INFER_SCORE_DTYPE_H_
#define CAME_INFER_SCORE_DTYPE_H_

#include <string>

#include "common/status.h"

namespace came::infer {

/// Storage precision of the candidate-entity matrix the serving layer
/// scores against. Queries and accumulation stay fp32 in every mode;
/// only the entity-side bytes change:
///
///   * kFp32 — the baseline path, 4 bytes/element.
///   * kInt8 — per-row symmetric int8 + one fp32 scale per row
///             (~1 byte/element); scores come from exact int32 dots
///             scaled back to fp32 (tensor::qgemm).
///   * kBf16 — truncated fp32, 2 bytes/element; panels decode to fp32
///             and reuse the fp32 GEMM.
enum class ScoreDtype { kFp32, kInt8, kBf16 };

/// "fp32" | "int8" | "bf16".
std::string ScoreDtypeName(ScoreDtype dtype);

/// Inverse of ScoreDtypeName; InvalidArgument on anything else.
Result<ScoreDtype> ParseScoreDtype(const std::string& name);

/// Resolves CAME_SCORE_DTYPE ("fp32" | "int8" | "bf16"); unset or empty
/// means kFp32, an invalid value warns and falls back to kFp32. This is
/// the default for ScoreServerConfig::dtype, so exporting the variable
/// switches every fused-table server in the process.
ScoreDtype ScoreDtypeFromEnv();

}  // namespace came::infer

#endif  // CAME_INFER_SCORE_DTYPE_H_
