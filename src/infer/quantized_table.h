#ifndef CAME_INFER_QUANTIZED_TABLE_H_
#define CAME_INFER_QUANTIZED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "infer/score_dtype.h"
#include "tensor/panel_bounds.h"
#include "tensor/tensor.h"

namespace came::infer {

/// A FusedEmbeddingTable's candidate matrix re-encoded for compact
/// serving: per-row symmetric int8 (1 byte/element + one fp32 scale per
/// row, ~0.25x the fp32 bytes) or bf16 (2 bytes/element, 0.5x). The
/// per-entity bias stays fp32 — it is [N] not [N, d], so quantizing it
/// would save nothing and cost accuracy. Folded encoder rows are not
/// carried: they exist to rebuild query encoders, which stay fp32.
///
/// On disk this is version 2 of the CAMEFET container (same magic and
/// section framing as version 1, so either loader gives a precise
/// "wrong version, use the other loader" error instead of Corruption):
///   magic "CAMEFET1", version u32 = 2, count u32 = 4 or 5, then sections
///   META (name, N, d, dtype byte) / QROW (raw int8 or bf16 rows) /
///   SCAL (fp32 row scales; empty for bf16) / BIAS (fp32 bias; maybe
///   empty) / optional BNDS (panel-pruning bound table), each CRC32-framed
///   and bounds-checked like v1. 4-section files predate BNDS and load
///   with the bounds recomputed from the encoded rows.
class QuantizedTable {
 public:
  /// Empty table (num_entities() == 0). Populate via Build or Load.
  QuantizedTable() = default;

  /// Quantizes `table`'s candidate matrix. `dtype` must be kInt8 or
  /// kBf16; rows containing NaN/Inf are rejected with InvalidArgument
  /// (a quantized table must never encode garbage).
  static Result<QuantizedTable> Build(const FusedEmbeddingTable& table,
                                      ScoreDtype dtype);

  Status Save(const std::string& path) const;
  static Status Load(const std::string& path, QuantizedTable* out);

  const std::string& model_name() const { return model_name_; }
  ScoreDtype dtype() const { return dtype_; }
  int64_t num_entities() const { return num_entities_; }
  int64_t dim() const { return dim_; }
  bool has_bias() const { return bias_.numel() > 0; }
  const tensor::Tensor& bias() const { return bias_; }

  /// Quantized candidate rows, row-major [N, d]. int8 accessors require
  /// dtype() == kInt8, bf16 accessors dtype() == kBf16 (CHECK-enforced).
  const int8_t* int8_rows() const;
  /// Per-row fp32 dequantization scales, [N] (int8 only).
  const float* scales() const;
  const uint16_t* bf16_rows() const;

  /// Bytes of the encoded entity matrix including scales (the number the
  /// bench compares against N * d * 4 fp32 bytes).
  int64_t entity_matrix_bytes() const;

  /// Per-block score-bound metadata over the *encoded* rows (for int8,
  /// the bound covers the dequantized codes, scale-aware) plus the fp32
  /// bias. Always populated for a non-empty table; round-tripped through
  /// the on-disk BNDS section, recomputed for files written before it.
  const tensor::PanelBoundTable& bounds() const { return bounds_; }

 private:
  /// Rebuilds bounds_ from the encoded rows + bias currently held.
  void ComputeBounds();

  std::string model_name_;
  ScoreDtype dtype_ = ScoreDtype::kInt8;
  int64_t num_entities_ = 0;
  int64_t dim_ = 0;
  std::vector<int8_t> int8_rows_;    // [N * d] when dtype == kInt8
  std::vector<float> scales_;        // [N] when dtype == kInt8
  std::vector<uint16_t> bf16_rows_;  // [N * d] when dtype == kBf16
  tensor::Tensor bias_;              // [N] or empty
  tensor::PanelBoundTable bounds_;
};

/// CandidatePanelSource over a QuantizedTable: the in-RAM quantized
/// analogue of FusedTablePanelSource. Panels are pointer arithmetic into
/// the contiguous encoded matrix; the fp32 Panel() accessor CHECK-fails
/// (the ScoreServer routes on dtype() and never calls it).
class QuantizedTablePanelSource : public CandidatePanelSource {
 public:
  /// `table` is not owned and must outlive the source.
  explicit QuantizedTablePanelSource(const QuantizedTable* table);

  int64_t num_entities() const override { return table_->num_entities(); }
  int64_t dim() const override { return table_->dim(); }
  bool has_bias() const override { return table_->has_bias(); }
  ScoreDtype dtype() const override { return table_->dtype(); }
  int64_t PanelEnd(int64_t begin) const override;
  const float* Panel(int64_t begin, int64_t end) override;
  const float* BiasPanel(int64_t begin, int64_t end) override;
  const int8_t* PanelInt8(int64_t begin, int64_t end) override;
  const float* PanelScales(int64_t begin, int64_t end) override;
  const uint16_t* PanelBf16(int64_t begin, int64_t end) override;
  float PanelMaxNorm(int64_t begin, int64_t end) const override;
  float PanelMaxBias(int64_t begin, int64_t end) const override;

 private:
  void CheckRange(int64_t begin, int64_t end) const;

  const QuantizedTable* table_;
};

}  // namespace came::infer

#endif  // CAME_INFER_QUANTIZED_TABLE_H_
