#include "infer/score_server.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/kgc_model.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "eval/ranking.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"
#include "tensor/storage_pool.h"

namespace came::infer {

namespace {

struct Entry {
  float score;
  int64_t id;
};

// Heap comparator: "better-ranked first" is the heap's less-than, so the
// heap front (the comparator-maximum) is the worst kept entry — the one a
// better candidate evicts.
bool BetterEntry(const Entry& a, const Entry& b) {
  return eval::ScoredBefore(a.score, a.id, b.score, b.id);
}

// Skip-set cursor over a sorted id list (known tails / explicit excludes).
// A default-constructed cursor is inactive (matches nothing); an engaged
// cursor walks the span. The span's storage must outlive the cursor.
class SkipCursor {
 public:
  SkipCursor() = default;
  explicit SkipCursor(std::span<const int64_t> ids)
      : active_(true), ids_(ids), it_(ids_.begin()) {}

  bool active() const { return active_; }

  void Seek(int64_t first_id) {
    if (!active_) return;
    it_ = std::lower_bound(ids_.begin(), ids_.end(), first_id);
  }

  bool Skip(int64_t id) {
    if (!active_) return false;
    while (it_ != ids_.end() && *it_ < id) ++it_;
    return it_ != ids_.end() && *it_ == id;
  }

 private:
  bool active_ = false;
  std::span<const int64_t> ids_;
  std::span<const int64_t>::iterator it_{};
};

SkipCursor CursorOver(const std::vector<int64_t>* ids) {
  return ids == nullptr ? SkipCursor() : SkipCursor(std::span(*ids));
}

// Feeds one panel of scores into the query's bounded heap. `bias` is
// panel-local (bias[j] belongs to entity begin + j), matching the
// CandidatePanelSource::BiasPanel contract.
void UpdateHeap(std::vector<Entry>* heap, int64_t k, const float* scores,
                const float* bias, int64_t begin, int64_t len,
                SkipCursor filter_cursor, int64_t keep,
                SkipCursor exclude_cursor, SkipCursor restrict_cursor) {
  filter_cursor.Seek(begin);
  exclude_cursor.Seek(begin);
  restrict_cursor.Seek(begin);
  for (int64_t j = 0; j < len; ++j) {
    const int64_t id = begin + j;
    if (restrict_cursor.active() && !restrict_cursor.Skip(id)) continue;
    const bool in_filter = filter_cursor.Skip(id);
    const bool in_exclude = exclude_cursor.Skip(id);
    if ((in_filter || in_exclude) && id != keep) continue;
    const float s = bias != nullptr ? scores[j] + bias[j] : scores[j];
    if (static_cast<int64_t>(heap->size()) < k) {
      heap->push_back({s, id});
      std::push_heap(heap->begin(), heap->end(), BetterEntry);
    } else if (BetterEntry({s, id}, heap->front())) {
      std::pop_heap(heap->begin(), heap->end(), BetterEntry);
      heap->back() = {s, id};
      std::push_heap(heap->begin(), heap->end(), BetterEntry);
    }
  }
}

// Conditionally-held whole-sweep lock (ScoreServerConfig::serialize_sweep).
// The thread-safety analysis cannot express "acquired iff a runtime flag",
// and the mutex guards no fields (it only serialises sweeps), so the
// helper body is exempt from the analysis.
class OptionalSweepLock {
 public:
  explicit OptionalSweepLock(came::Mutex* mu) CAME_NO_THREAD_SAFETY_ANALYSIS
      : mu_(mu) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~OptionalSweepLock() CAME_NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) mu_->Unlock();
  }
  OptionalSweepLock(const OptionalSweepLock&) = delete;
  OptionalSweepLock& operator=(const OptionalSweepLock&) = delete;

 private:
  came::Mutex* mu_;
};

// Relative safety margin folded into every panel score bound. The sweep's
// fp32 GEMM accumulates with relative error <= dim * 2^-24 against the
// real-valued inner product (|sum q_j*c_j| <= ||q||*||c|| termwise via
// Cauchy–Schwarz, so the error is bounded relative to the bound itself);
// the int8 combine adds a few more ulps. 1e-3 dominates both up to
// dim ~10^4 while costing a negligible amount of pruning slack.
constexpr double kBoundSlack = 1e-3;

// Conservative fp32 upper bound on every serving score in a panel for a
// query of L2 norm `qnorm`: ||q|| * max_row_norm + max_bias, inflated by
// kBoundSlack and rounded *up* to float so the float comparisons against
// heap entries / target scores stay sound. NaN (only reachable via
// 0 * inf, e.g. a zero-norm query against a no-metadata +inf max_norm)
// widens to +inf: "no usable bound, never prune".
float PanelScoreBound(double qnorm, float max_norm, float max_bias) {
  const double qn_mn = qnorm * static_cast<double>(max_norm);
  const double mb = static_cast<double>(max_bias);
  const double bound =
      qn_mn + mb + (std::abs(qn_mn) + std::abs(mb)) * kBoundSlack;
  if (std::isnan(bound)) return std::numeric_limits<float>::infinity();
  float f = static_cast<float>(bound);
  if (static_cast<double>(f) < bound)
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  return f;
}

// L2 norm of the int8 path's *effective* query row: the two-digit
// dequantized vector v_j = hi_j*hi_scale + lo_j*lo_scale the GEMM scores
// with. Computed in double (error is ~ulps, far inside kBoundSlack); NaN
// scales (non-finite query rows) propagate to +inf, which disables
// pruning for that query.
double TwoDigitQueryNorm(const int8_t* hi, float hi_scale, const int8_t* lo,
                         float lo_scale, int64_t d) {
  double sum = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double v = static_cast<double>(hi[j]) * hi_scale +
                     static_cast<double>(lo[j]) * lo_scale;
    sum += v * v;
  }
  const double norm = std::sqrt(sum);
  return std::isnan(norm) ? std::numeric_limits<double>::infinity() : norm;
}

// One panel of the sweep plus its cached bound metadata. `key` is the
// batch-level ordering bound (max query norm * max_norm + max_bias),
// NaN-sanitised to +inf so the sort stays a strict weak ordering.
struct PanelSeg {
  int64_t begin = 0;
  int64_t end = 0;
  float max_norm = 0.0f;
  float max_bias = 0.0f;
  double key = 0.0;
};

}  // namespace

bool ScorePruneFromEnv() {
  const char* v = std::getenv("CAME_SCORE_PRUNE");
  if (v == nullptr || *v == '\0') return true;
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  CAME_LOG(Warning) << "CAME_SCORE_PRUNE=" << v
                    << " is not on/off; defaulting to on";
  return true;
}

ScoreServer::ScoreServer(baselines::InnerProductKgcModel* model,
                         const FusedEmbeddingTable* table,
                         const ScoreServerConfig& config)
    : ScoreServer(
          [model](const std::vector<int64_t>& heads,
                  const std::vector<int64_t>& rels) {
            return model->ServingQuery(heads, rels);
          },
          table, config) {
  CAME_CHECK(model != nullptr);
  if (config_.num_relations <= 0)
    config_.num_relations = model->num_relations();
}

ScoreServer::ScoreServer(QueryEncoder encoder,
                         const FusedEmbeddingTable* table,
                         const ScoreServerConfig& config)
    : encoder_(std::move(encoder)), table_(table), config_(config) {
  CAME_CHECK(encoder_ != nullptr);
  CAME_CHECK(table_ != nullptr);
  if (config_.dtype == ScoreDtype::kFp32) {
    owned_source_ = std::make_unique<FusedTablePanelSource>(table_);
  } else {
    // Quantize the candidate matrix once at construction; the sweep then
    // scores against the compact snapshot for the server's lifetime.
    Result<QuantizedTable> qt = QuantizedTable::Build(*table_, config_.dtype);
    CAME_CHECK(qt.ok()) << qt.status().ToString();
    owned_qtable_ = std::make_unique<QuantizedTable>(std::move(qt).value());
    owned_source_ =
        std::make_unique<QuantizedTablePanelSource>(owned_qtable_.get());
  }
  source_ = owned_source_.get();
  CAME_CHECK_GT(source_->num_entities(), 0) << "empty fused table";
  if (config_.panel_width <= 0) {
    CAME_LOG(Warning) << "ScoreServerConfig::panel_width "
                      << config_.panel_width << " is not positive; using 1024";
    config_.panel_width = 1024;
  }
}

ScoreServer::ScoreServer(QueryEncoder encoder, CandidatePanelSource* source,
                         const ScoreServerConfig& config)
    : encoder_(std::move(encoder)), source_(source), config_(config) {
  CAME_CHECK(encoder_ != nullptr);
  CAME_CHECK(source_ != nullptr);
  CAME_CHECK_GT(source_->num_entities(), 0) << "empty candidate source";
  if (config_.panel_width <= 0) {
    CAME_LOG(Warning) << "ScoreServerConfig::panel_width "
                      << config_.panel_width << " is not positive; using 1024";
    config_.panel_width = 1024;
  }
}

const FusedEmbeddingTable& ScoreServer::table() const {
  CAME_CHECK(table_ != nullptr) << "server is not backed by a fused table";
  return *table_;
}

const QuantizedTable& ScoreServer::quantized_table() const {
  CAME_CHECK(owned_qtable_ != nullptr)
      << "server is not scoring a quantized fused table";
  return *owned_qtable_;
}

tensor::Tensor ScoreServer::EncodeQueries(const std::vector<int64_t>& heads,
                                          const std::vector<int64_t>& rels) {
  CAME_CHECK_EQ(heads.size(), rels.size());
  CAME_CHECK(!heads.empty());
  tensor::Tensor q = encoder_(heads, rels);
  CAME_CHECK_EQ(q.ndim(), 2);
  CAME_CHECK_EQ(q.dim(0), static_cast<int64_t>(heads.size()));
  CAME_CHECK_EQ(q.dim(1), source_->dim()) << "query/table dim mismatch";
  return q;
}

Status ScoreServer::ValidateIds(const std::vector<int64_t>& heads,
                                const std::vector<int64_t>& rels) const {
  const int64_t n = source_->num_entities();
  for (size_t i = 0; i < heads.size(); ++i) {
    if (heads[i] < 0 || heads[i] >= n) {
      return Status::InvalidArgument(
          "head id " + std::to_string(heads[i]) + " outside [0, " +
          std::to_string(n) + ")");
    }
    if (config_.num_relations > 0 &&
        (rels[i] < 0 || rels[i] >= config_.num_relations)) {
      return Status::InvalidArgument(
          "relation id " + std::to_string(rels[i]) + " outside [0, " +
          std::to_string(config_.num_relations) + ")");
    }
  }
  return Status::OK();
}

Result<TopKResult> ScoreServer::TopK(int64_t head, int64_t rel, int64_t k,
                                     const TopKOptions& opts) {
  Result<std::vector<TopKResult>> batch = TopKBatch({head}, {rel}, k, opts);
  if (!batch.ok()) return batch.status();
  return std::move(batch.value()[0]);
}

Result<std::vector<TopKResult>> ScoreServer::TopKBatch(
    const std::vector<int64_t>& heads, const std::vector<int64_t>& rels,
    int64_t k, const TopKOptions& opts) {
  if (k <= 0)
    return Status::InvalidArgument("top-k requires k > 0, got " +
                                   std::to_string(k));
  if (heads.size() != rels.size())
    return Status::InvalidArgument(
        "head/relation batch size mismatch: " + std::to_string(heads.size()) +
        " vs " + std::to_string(rels.size()));
  if (heads.empty()) return std::vector<TopKResult>();
  CAME_RETURN_IF_ERROR(ValidateIds(heads, rels));

  OptionalSweepLock sweep_lock(config_.serialize_sweep ? &serial_mu_
                                                       : nullptr);
  const tensor::Tensor q = EncodeQueries(heads, rels);
  const int64_t b = q.dim(0);
  const int64_t d = q.dim(1);
  const int64_t n = source_->num_entities();

  std::vector<std::vector<Entry>> heaps(static_cast<size_t>(b));
  for (auto& h : heaps) h.reserve(static_cast<size_t>(std::min(k, n)));

  const int64_t panel = std::min(config_.panel_width, n);
  const ScoreDtype dtype = source_->dtype();
  // Query-side state for the quantized paths: int8 queries are encoded
  // once per batch as a two-digit (hi + residual) pair, so the query
  // contributes ~127x less error than the int8 candidate rows (a
  // non-finite query degrades to NaN scales → NaN scores → ranked
  // worst); bf16 panels decode into an fp32 scratch panel and reuse the
  // fp32 GEMM.
  std::vector<int8_t> q8_hi;
  std::vector<float> q8_hi_scales;
  std::vector<int8_t> q8_lo;
  std::vector<float> q8_lo_scales;
  if (dtype == ScoreDtype::kInt8) {
    q8_hi.resize(static_cast<size_t>(b * d));
    q8_hi_scales.resize(static_cast<size_t>(b));
    q8_lo.resize(static_cast<size_t>(b * d));
    q8_lo_scales.resize(static_cast<size_t>(b));
    tensor::qgemm::QuantizeRowsInt8ServingTwoDigit(
        q.data(), b, d, q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
        q8_lo_scales.data());
  }
  std::optional<tensor::pool::ScratchLease> decode;
  if (dtype == ScoreDtype::kBf16) decode.emplace(panel * d);

  // Pruning state: each query's L2 norm (of the row the GEMM actually
  // scores with — the fp32 row, or the int8 path's dequantized two-digit
  // vector) feeds the per-panel Cauchy–Schwarz bound.
  const bool prune = config_.prune;
  std::vector<double> qnorms;
  double qnorm_max = 0.0;
  if (prune) {
    qnorms.resize(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      const double qn =
          dtype == ScoreDtype::kInt8
              ? TwoDigitQueryNorm(
                    q8_hi.data() + i * d, q8_hi_scales[static_cast<size_t>(i)],
                    q8_lo.data() + i * d, q8_lo_scales[static_cast<size_t>(i)],
                    d)
              : static_cast<double>(
                    tensor::qgemm::RowNormUpperBoundFp32(q.data() + i * d, d));
      qnorms[static_cast<size_t>(i)] = qn;
      qnorm_max = std::max(qnorm_max, qn);
    }
  }

  // Panel schedule. With pruning on, panels are visited in descending
  // batch-bound order (best candidates first fill the heaps with strong
  // entries, so later weak panels prune); the tie-break on `begin` keeps
  // the order deterministic. Safe to reorder because eval::ScoredBefore
  // is a strict total order — the top-K *set* (and its sorted output) is
  // sweep-order independent.
  std::vector<PanelSeg> segs;
  segs.reserve(static_cast<size_t>((n + panel - 1) / std::max<int64_t>(
                                                         panel, 1)));
  for (int64_t p0 = 0; p0 < n;) {
    // Clamp to the candidate source's shard boundary; for the in-RAM
    // table PanelEnd is n and this is the plain blocked sweep.
    const int64_t pend =
        std::min(source_->PanelEnd(p0), p0 + config_.panel_width);
    PanelSeg seg;
    seg.begin = p0;
    seg.end = pend;
    if (prune) {
      seg.max_norm = source_->PanelMaxNorm(p0, pend);
      seg.max_bias = source_->PanelMaxBias(p0, pend);
      const double key = qnorm_max * static_cast<double>(seg.max_norm) +
                         static_cast<double>(seg.max_bias);
      seg.key = std::isnan(key) ? std::numeric_limits<double>::infinity()
                                : key;
    }
    segs.push_back(seg);
    p0 = pend;
  }
  if (prune) {
    std::sort(segs.begin(), segs.end(), [](const PanelSeg& a,
                                           const PanelSeg& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.begin < b.begin;
    });
  }

  tensor::pool::ScratchLease scores(b * panel);
  std::vector<uint8_t> skip(static_cast<size_t>(b), 0);
  int64_t panels_scored = 0;
  int64_t panels_skipped = 0;
  int64_t bound_rejects = 0;
  for (const PanelSeg& seg : segs) {
    const int64_t p0 = seg.begin;
    const int64_t pend = seg.end;
    const int64_t pw = pend - p0;
    // Prune pass: a query skips this panel once its heap holds k entries
    // whose worst member the panel's score bound cannot beat. The bound
    // over-approximates every panel score and seg.begin lower-bounds
    // every panel id, so (bound, begin) ranks at least as well as any
    // (score, id) the panel could produce under ScoredBefore — if even
    // that loses to the heap front, every real candidate does too.
    int64_t nskip = 0;
    if (prune) {
      for (int64_t i = 0; i < b; ++i) {
        const std::vector<Entry>& h = heaps[static_cast<size_t>(i)];
        bool s = false;
        if (static_cast<int64_t>(h.size()) == k) {
          const float bound = PanelScoreBound(qnorms[static_cast<size_t>(i)],
                                              seg.max_norm, seg.max_bias);
          s = !eval::ScoredBefore(bound, seg.begin, h.front().score,
                                  h.front().id);
        }
        skip[static_cast<size_t>(i)] = s ? 1 : 0;
        if (s) ++nskip;
      }
    } else {
      std::fill(skip.begin(), skip.end(), 0);
    }
    bound_rejects += nskip;
    if (nskip == b) {
      // Every query pruned the panel: no pin, no GEMM, and for a
      // shard-backed source no residency fault.
      ++panels_skipped;
      continue;
    }
    // Pin the panel's backing residency for the whole consume (GEMM +
    // bias + heap updates) so a concurrent sweep's eviction cannot
    // invalidate the pointers mid-use.
    PanelPin pin(source_, p0, pend);
    // q [B, d] x candidates[p0 .. pend) [pw, d]^T -> [B, pw]. Bitwise
    // equal to columns [p0, pend) of the full [B, N] score GEMM (fp32
    // and bf16 paths), or of the full int8 score GEMM (exact int32
    // accumulation makes panel width irrelevant there too).
    switch (dtype) {
      case ScoreDtype::kFp32:
        tensor::gemm::Gemm(q.data(), source_->Panel(p0, pend), scores.data(),
                           b, d, pw, /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
      case ScoreDtype::kInt8:
        tensor::qgemm::GemmInt8TwoDigit(
            q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
            q8_lo_scales.data(), source_->PanelInt8(p0, pend),
            source_->PanelScales(p0, pend), scores.data(), b, d, pw);
        break;
      case ScoreDtype::kBf16:
        tensor::qgemm::DecodeBf16(source_->PanelBf16(p0, pend), pw * d,
                                  decode->data());
        tensor::gemm::Gemm(q.data(), decode->data(), scores.data(), b, d, pw,
                           /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
    }
    const float* bias =
        source_->has_bias() ? source_->BiasPanel(p0, pend) : nullptr;
    ++panels_scored;
    ParallelFor(0, b, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        if (skip[static_cast<size_t>(i)] != 0) continue;
        const SkipCursor filtered =
            opts.filter != nullptr
                ? SkipCursor(opts.filter->Tails(heads[static_cast<size_t>(i)],
                                                rels[static_cast<size_t>(i)]))
                : SkipCursor();
        UpdateHeap(&heaps[static_cast<size_t>(i)], k, scores.data() + i * pw,
                   bias, p0, pw, filtered, opts.keep,
                   CursorOver(opts.exclude), CursorOver(opts.restrict_to));
      }
    });
  }

  std::vector<TopKResult> out(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    std::vector<Entry>& heap = heaps[static_cast<size_t>(i)];
    std::sort(heap.begin(), heap.end(), BetterEntry);
    TopKResult& r = out[static_cast<size_t>(i)];
    r.ids.reserve(heap.size());
    r.scores.reserve(heap.size());
    for (const Entry& e : heap) {
      r.ids.push_back(e.id);
      r.scores.push_back(e.score);
    }
  }
  stats_.queries_served.fetch_add(b, std::memory_order_relaxed);
  stats_.batches_executed.fetch_add(1, std::memory_order_relaxed);
  stats_.panels_scored.fetch_add(panels_scored, std::memory_order_relaxed);
  stats_.panels_skipped.fetch_add(panels_skipped, std::memory_order_relaxed);
  stats_.bound_rejects.fetch_add(bound_rejects, std::memory_order_relaxed);
  return out;
}

Result<double> ScoreServer::RankOf(int64_t head, int64_t rel, int64_t target,
                                   const TopKOptions& opts) {
  const int64_t n = source_->num_entities();
  if (target < 0 || target >= n)
    return Status::InvalidArgument("rank target " + std::to_string(target) +
                                   " outside [0, " + std::to_string(n) + ")");
  const std::vector<int64_t> heads = {head};
  const std::vector<int64_t> rels = {rel};
  CAME_RETURN_IF_ERROR(ValidateIds(heads, rels));

  OptionalSweepLock sweep_lock(config_.serialize_sweep ? &serial_mu_
                                                       : nullptr);
  const tensor::Tensor q = EncodeQueries(heads, rels);
  const int64_t d = q.dim(1);
  const bool has_bias = source_->has_bias();
  const bool prune = config_.prune;

  const std::span<const int64_t> filtered =
      opts.filter != nullptr ? opts.filter->Tails(head, rel)
                             : std::span<const int64_t>();

  const int64_t panel = std::min(config_.panel_width, n);
  const ScoreDtype dtype = source_->dtype();
  std::vector<int8_t> q8_hi;
  std::vector<float> q8_hi_scales;
  std::vector<int8_t> q8_lo;
  std::vector<float> q8_lo_scales;
  if (dtype == ScoreDtype::kInt8) {
    q8_hi.resize(static_cast<size_t>(d));
    q8_hi_scales.resize(1);
    q8_lo.resize(static_cast<size_t>(d));
    q8_lo_scales.resize(1);
    tensor::qgemm::QuantizeRowsInt8ServingTwoDigit(
        q.data(), 1, d, q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
        q8_lo_scales.data());
  }
  const double qnorm =
      !prune ? 0.0
      : dtype == ScoreDtype::kInt8
          ? TwoDigitQueryNorm(q8_hi.data(), q8_hi_scales[0], q8_lo.data(),
                              q8_lo_scales[0], d)
          : static_cast<double>(
                tensor::qgemm::RowNormUpperBoundFp32(q.data(), d));
  std::optional<tensor::pool::ScratchLease> decode;
  if (dtype == ScoreDtype::kBf16) decode.emplace(panel * d);

  tensor::pool::ScratchLease scores(panel);

  // The target's score first (the accumulator compares against it). A
  // 1-wide panel is bitwise identical to the same element of any wider
  // panel in every dtype: fp32/bf16 because the per-element
  // k-accumulation order does not depend on n, int8 because the dot is
  // exact integer arithmetic.
  float s_target;
  {
    // Pin across both the row and the bias (int8 also reads scales): the
    // second accessor call must not evict the first's mapping under a
    // concurrent sweep.
    PanelPin pin(source_, target, target + 1);
    switch (dtype) {
      case ScoreDtype::kFp32:
        tensor::gemm::Gemm(q.data(), source_->Panel(target, target + 1),
                           &s_target, 1, d, 1, /*trans_a=*/false,
                           /*trans_b=*/true, /*accumulate=*/false);
        break;
      case ScoreDtype::kInt8:
        tensor::qgemm::GemmInt8TwoDigit(
            q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
            q8_lo_scales.data(), source_->PanelInt8(target, target + 1),
            source_->PanelScales(target, target + 1), &s_target, 1, d, 1);
        break;
      case ScoreDtype::kBf16:
        tensor::qgemm::DecodeBf16(source_->PanelBf16(target, target + 1), d,
                                  decode->data());
        tensor::gemm::Gemm(q.data(), decode->data(), &s_target, 1, d, 1,
                           /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
    }
    if (has_bias) s_target += source_->BiasPanel(target, target + 1)[0];
  }

  eval::RankAccumulator acc(s_target, target, filtered);
  int64_t panels_scored = 0;
  int64_t panels_skipped = 0;
  int64_t bound_rejects = 0;
  if (prune && std::isnan(s_target)) {
    // A NaN target ranks worst by protocol and Accumulate is a no-op for
    // every candidate (nothing is "better" or "equal" to NaN), so the
    // whole sweep can be skipped: Rank(n) already computes the worst
    // rank from n and the filter alone. Bitwise identical by
    // construction — no scores feed the result. Gated on `prune` so the
    // prune-off configuration stays a faithful full-sweep baseline
    // (panels_skipped stays zero when pruning is disabled).
    for (int64_t p0 = 0; p0 < n;) {
      const int64_t pend =
          std::min(source_->PanelEnd(p0), p0 + config_.panel_width);
      ++panels_skipped;
      ++bound_rejects;
      p0 = pend;
    }
  } else {
    // Panel order is irrelevant here (s_target is fixed before the
    // sweep), so panels run in natural order. A panel is skipped when
    // its score bound is *strictly* below s_target: every candidate in
    // it then scores strictly worse (or NaN, which the accumulator
    // ignores) and contributes neither "better" nor "equal" counts. The
    // bound-equal case must still be scored — equal scores count half a
    // rank each. The target's own panel is never skipped (belt and
    // braces; its bound >= s_target anyway).
    for (int64_t p0 = 0; p0 < n;) {
      const int64_t pend =
          std::min(source_->PanelEnd(p0), p0 + config_.panel_width);
      const int64_t pw = pend - p0;
      if (prune && !(p0 <= target && target < pend)) {
        const float bound =
            PanelScoreBound(qnorm, source_->PanelMaxNorm(p0, pend),
                            source_->PanelMaxBias(p0, pend));
        if (bound < s_target) {
          ++panels_skipped;
          ++bound_rejects;
          p0 = pend;
          continue;
        }
      }
      PanelPin pin(source_, p0, pend);
      switch (dtype) {
        case ScoreDtype::kFp32:
          tensor::gemm::Gemm(q.data(), source_->Panel(p0, pend),
                             scores.data(), 1, d, pw, /*trans_a=*/false,
                             /*trans_b=*/true, /*accumulate=*/false);
          break;
        case ScoreDtype::kInt8:
          tensor::qgemm::GemmInt8TwoDigit(
              q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
              q8_lo_scales.data(), source_->PanelInt8(p0, pend),
              source_->PanelScales(p0, pend), scores.data(), 1, d, pw);
          break;
        case ScoreDtype::kBf16:
          tensor::qgemm::DecodeBf16(source_->PanelBf16(p0, pend), pw * d,
                                    decode->data());
          tensor::gemm::Gemm(q.data(), decode->data(), scores.data(), 1, d,
                             pw, /*trans_a=*/false, /*trans_b=*/true,
                             /*accumulate=*/false);
          break;
      }
      ++panels_scored;
      if (has_bias) {
        const float* bias = source_->BiasPanel(p0, pend);
        for (int64_t j = 0; j < pw; ++j) scores.data()[j] += bias[j];
      }
      acc.Accumulate(scores.data(), p0, pw);
      p0 = pend;
    }
  }
  stats_.queries_served.fetch_add(1, std::memory_order_relaxed);
  stats_.batches_executed.fetch_add(1, std::memory_order_relaxed);
  stats_.panels_scored.fetch_add(panels_scored, std::memory_order_relaxed);
  stats_.panels_skipped.fetch_add(panels_skipped, std::memory_order_relaxed);
  stats_.bound_rejects.fetch_add(bound_rejects, std::memory_order_relaxed);
  return acc.Rank(n);
}

ScoreServer::Stats ScoreServer::GetStats() const {
  Stats s;
  s.queries_served = stats_.queries_served.load(std::memory_order_relaxed);
  s.batches_executed =
      stats_.batches_executed.load(std::memory_order_relaxed);
  s.panels_scored = stats_.panels_scored.load(std::memory_order_relaxed);
  s.panels_skipped = stats_.panels_skipped.load(std::memory_order_relaxed);
  s.bound_rejects = stats_.bound_rejects.load(std::memory_order_relaxed);
  return s;
}

}  // namespace came::infer
