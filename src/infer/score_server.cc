#include "infer/score_server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "baselines/kgc_model.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "eval/ranking.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"
#include "tensor/storage_pool.h"

namespace came::infer {

namespace {

struct Entry {
  float score;
  int64_t id;
};

// Heap comparator: "better-ranked first" is the heap's less-than, so the
// heap front (the comparator-maximum) is the worst kept entry — the one a
// better candidate evicts.
bool BetterEntry(const Entry& a, const Entry& b) {
  return eval::ScoredBefore(a.score, a.id, b.score, b.id);
}

// Skip-set cursor over a sorted id list (known tails / explicit excludes).
// A default-constructed cursor is inactive (matches nothing); an engaged
// cursor walks the span. The span's storage must outlive the cursor.
class SkipCursor {
 public:
  SkipCursor() = default;
  explicit SkipCursor(std::span<const int64_t> ids)
      : active_(true), ids_(ids), it_(ids_.begin()) {}

  bool active() const { return active_; }

  void Seek(int64_t first_id) {
    if (!active_) return;
    it_ = std::lower_bound(ids_.begin(), ids_.end(), first_id);
  }

  bool Skip(int64_t id) {
    if (!active_) return false;
    while (it_ != ids_.end() && *it_ < id) ++it_;
    return it_ != ids_.end() && *it_ == id;
  }

 private:
  bool active_ = false;
  std::span<const int64_t> ids_;
  std::span<const int64_t>::iterator it_{};
};

SkipCursor CursorOver(const std::vector<int64_t>* ids) {
  return ids == nullptr ? SkipCursor() : SkipCursor(std::span(*ids));
}

// Feeds one panel of scores into the query's bounded heap. `bias` is
// panel-local (bias[j] belongs to entity begin + j), matching the
// CandidatePanelSource::BiasPanel contract.
void UpdateHeap(std::vector<Entry>* heap, int64_t k, const float* scores,
                const float* bias, int64_t begin, int64_t len,
                SkipCursor filter_cursor, int64_t keep,
                SkipCursor exclude_cursor, SkipCursor restrict_cursor) {
  filter_cursor.Seek(begin);
  exclude_cursor.Seek(begin);
  restrict_cursor.Seek(begin);
  for (int64_t j = 0; j < len; ++j) {
    const int64_t id = begin + j;
    if (restrict_cursor.active() && !restrict_cursor.Skip(id)) continue;
    const bool in_filter = filter_cursor.Skip(id);
    const bool in_exclude = exclude_cursor.Skip(id);
    if ((in_filter || in_exclude) && id != keep) continue;
    const float s = bias != nullptr ? scores[j] + bias[j] : scores[j];
    if (static_cast<int64_t>(heap->size()) < k) {
      heap->push_back({s, id});
      std::push_heap(heap->begin(), heap->end(), BetterEntry);
    } else if (BetterEntry({s, id}, heap->front())) {
      std::pop_heap(heap->begin(), heap->end(), BetterEntry);
      heap->back() = {s, id};
      std::push_heap(heap->begin(), heap->end(), BetterEntry);
    }
  }
}

}  // namespace

ScoreServer::ScoreServer(baselines::InnerProductKgcModel* model,
                         const FusedEmbeddingTable* table,
                         const ScoreServerConfig& config)
    : ScoreServer(
          [model](const std::vector<int64_t>& heads,
                  const std::vector<int64_t>& rels) {
            return model->ServingQuery(heads, rels);
          },
          table, config) {
  CAME_CHECK(model != nullptr);
}

ScoreServer::ScoreServer(QueryEncoder encoder,
                         const FusedEmbeddingTable* table,
                         const ScoreServerConfig& config)
    : encoder_(std::move(encoder)), table_(table), config_(config) {
  CAME_CHECK(encoder_ != nullptr);
  CAME_CHECK(table_ != nullptr);
  if (config_.dtype == ScoreDtype::kFp32) {
    owned_source_ = std::make_unique<FusedTablePanelSource>(table_);
  } else {
    // Quantize the candidate matrix once at construction; the sweep then
    // scores against the compact snapshot for the server's lifetime.
    Result<QuantizedTable> qt = QuantizedTable::Build(*table_, config_.dtype);
    CAME_CHECK(qt.ok()) << qt.status().ToString();
    owned_qtable_ = std::make_unique<QuantizedTable>(std::move(qt).value());
    owned_source_ =
        std::make_unique<QuantizedTablePanelSource>(owned_qtable_.get());
  }
  source_ = owned_source_.get();
  CAME_CHECK_GT(source_->num_entities(), 0) << "empty fused table";
  CAME_CHECK_GT(config_.panel_width, 0);
}

ScoreServer::ScoreServer(QueryEncoder encoder, CandidatePanelSource* source,
                         const ScoreServerConfig& config)
    : encoder_(std::move(encoder)), source_(source), config_(config) {
  CAME_CHECK(encoder_ != nullptr);
  CAME_CHECK(source_ != nullptr);
  CAME_CHECK_GT(source_->num_entities(), 0) << "empty candidate source";
  CAME_CHECK_GT(config_.panel_width, 0);
}

const FusedEmbeddingTable& ScoreServer::table() const {
  CAME_CHECK(table_ != nullptr) << "server is not backed by a fused table";
  return *table_;
}

const QuantizedTable& ScoreServer::quantized_table() const {
  CAME_CHECK(owned_qtable_ != nullptr)
      << "server is not scoring a quantized fused table";
  return *owned_qtable_;
}

tensor::Tensor ScoreServer::EncodeQueries(const std::vector<int64_t>& heads,
                                          const std::vector<int64_t>& rels) {
  CAME_CHECK_EQ(heads.size(), rels.size());
  CAME_CHECK(!heads.empty());
  tensor::Tensor q = encoder_(heads, rels);
  CAME_CHECK_EQ(q.ndim(), 2);
  CAME_CHECK_EQ(q.dim(0), static_cast<int64_t>(heads.size()));
  CAME_CHECK_EQ(q.dim(1), source_->dim()) << "query/table dim mismatch";
  return q;
}

TopKResult ScoreServer::TopK(int64_t head, int64_t rel, int64_t k,
                             const TopKOptions& opts) {
  return TopKBatch({head}, {rel}, k, opts)[0];
}

std::vector<TopKResult> ScoreServer::TopKBatch(
    const std::vector<int64_t>& heads, const std::vector<int64_t>& rels,
    int64_t k, const TopKOptions& opts) {
  CAME_CHECK_GT(k, 0);
  came::MutexLock lock(&mu_);
  const tensor::Tensor q = EncodeQueries(heads, rels);
  const int64_t b = q.dim(0);
  const int64_t d = q.dim(1);
  const int64_t n = source_->num_entities();

  std::vector<std::vector<Entry>> heaps(static_cast<size_t>(b));
  for (auto& h : heaps) h.reserve(static_cast<size_t>(std::min(k, n)));

  const int64_t panel = std::min(config_.panel_width, n);
  const ScoreDtype dtype = source_->dtype();
  // Query-side state for the quantized paths: int8 queries are encoded
  // once per batch as a two-digit (hi + residual) pair, so the query
  // contributes ~127x less error than the int8 candidate rows (a
  // non-finite query degrades to NaN scales → NaN scores → ranked
  // worst); bf16 panels decode into an fp32 scratch panel and reuse the
  // fp32 GEMM.
  std::vector<int8_t> q8_hi;
  std::vector<float> q8_hi_scales;
  std::vector<int8_t> q8_lo;
  std::vector<float> q8_lo_scales;
  if (dtype == ScoreDtype::kInt8) {
    q8_hi.resize(static_cast<size_t>(b * d));
    q8_hi_scales.resize(static_cast<size_t>(b));
    q8_lo.resize(static_cast<size_t>(b * d));
    q8_lo_scales.resize(static_cast<size_t>(b));
    tensor::qgemm::QuantizeRowsInt8ServingTwoDigit(
        q.data(), b, d, q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
        q8_lo_scales.data());
  }
  std::optional<tensor::pool::ScratchLease> decode;
  if (dtype == ScoreDtype::kBf16) decode.emplace(panel * d);

  tensor::pool::ScratchLease scores(b * panel);
  int64_t p0 = 0;
  while (p0 < n) {
    // Clamp to the candidate source's shard boundary; for the in-RAM
    // table PanelEnd is n and this is the plain blocked sweep.
    const int64_t pend = std::min(source_->PanelEnd(p0),
                                  p0 + config_.panel_width);
    const int64_t pw = pend - p0;
    // q [B, d] x candidates[p0 .. pend) [pw, d]^T -> [B, pw]. Bitwise
    // equal to columns [p0, pend) of the full [B, N] score GEMM (fp32
    // and bf16 paths), or of the full int8 score GEMM (exact int32
    // accumulation makes panel width irrelevant there too).
    switch (dtype) {
      case ScoreDtype::kFp32:
        tensor::gemm::Gemm(q.data(), source_->Panel(p0, pend), scores.data(),
                           b, d, pw, /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
      case ScoreDtype::kInt8:
        tensor::qgemm::GemmInt8TwoDigit(
            q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
            q8_lo_scales.data(), source_->PanelInt8(p0, pend),
            source_->PanelScales(p0, pend), scores.data(), b, d, pw);
        break;
      case ScoreDtype::kBf16:
        tensor::qgemm::DecodeBf16(source_->PanelBf16(p0, pend), pw * d,
                                  decode->data());
        tensor::gemm::Gemm(q.data(), decode->data(), scores.data(), b, d, pw,
                           /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
    }
    // After the GEMM consumed the panel pointer: the bias panel may
    // invalidate it per the CandidatePanelSource contract.
    const float* bias =
        source_->has_bias() ? source_->BiasPanel(p0, pend) : nullptr;
    ++stats_.panels_scored;
    ParallelFor(0, b, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const SkipCursor filtered =
            opts.filter != nullptr
                ? SkipCursor(opts.filter->Tails(heads[static_cast<size_t>(i)],
                                                rels[static_cast<size_t>(i)]))
                : SkipCursor();
        UpdateHeap(&heaps[static_cast<size_t>(i)], k, scores.data() + i * pw,
                   bias, p0, pw, filtered, opts.keep,
                   CursorOver(opts.exclude), CursorOver(opts.restrict_to));
      }
    });
    p0 = pend;
  }

  std::vector<TopKResult> out(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    std::vector<Entry>& heap = heaps[static_cast<size_t>(i)];
    std::sort(heap.begin(), heap.end(), BetterEntry);
    TopKResult& r = out[static_cast<size_t>(i)];
    r.ids.reserve(heap.size());
    r.scores.reserve(heap.size());
    for (const Entry& e : heap) {
      r.ids.push_back(e.id);
      r.scores.push_back(e.score);
    }
  }
  stats_.queries_served += b;
  ++stats_.batches_executed;
  return out;
}

double ScoreServer::RankOf(int64_t head, int64_t rel, int64_t target,
                           const TopKOptions& opts) {
  came::MutexLock lock(&mu_);
  const int64_t n = source_->num_entities();
  CAME_CHECK_GE(target, 0);
  CAME_CHECK_LT(target, n);
  const tensor::Tensor q = EncodeQueries({head}, {rel});
  const int64_t d = q.dim(1);
  const bool has_bias = source_->has_bias();

  const std::span<const int64_t> filtered =
      opts.filter != nullptr ? opts.filter->Tails(head, rel)
                             : std::span<const int64_t>();

  const int64_t panel = std::min(config_.panel_width, n);
  const ScoreDtype dtype = source_->dtype();
  std::vector<int8_t> q8_hi;
  std::vector<float> q8_hi_scales;
  std::vector<int8_t> q8_lo;
  std::vector<float> q8_lo_scales;
  if (dtype == ScoreDtype::kInt8) {
    q8_hi.resize(static_cast<size_t>(d));
    q8_hi_scales.resize(1);
    q8_lo.resize(static_cast<size_t>(d));
    q8_lo_scales.resize(1);
    tensor::qgemm::QuantizeRowsInt8ServingTwoDigit(
        q.data(), 1, d, q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
        q8_lo_scales.data());
  }
  std::optional<tensor::pool::ScratchLease> decode;
  if (dtype == ScoreDtype::kBf16) decode.emplace(panel * d);

  tensor::pool::ScratchLease scores(panel);

  // The target's score first (the accumulator compares against it). A
  // 1-wide panel is bitwise identical to the same element of any wider
  // panel in every dtype: fp32/bf16 because the per-element
  // k-accumulation order does not depend on n, int8 because the dot is
  // exact integer arithmetic.
  float s_target;
  switch (dtype) {
    case ScoreDtype::kFp32:
      tensor::gemm::Gemm(q.data(), source_->Panel(target, target + 1),
                         &s_target, 1, d, 1, /*trans_a=*/false,
                         /*trans_b=*/true, /*accumulate=*/false);
      break;
    case ScoreDtype::kInt8:
      tensor::qgemm::GemmInt8TwoDigit(
          q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
          q8_lo_scales.data(), source_->PanelInt8(target, target + 1),
          source_->PanelScales(target, target + 1), &s_target, 1, d, 1);
      break;
    case ScoreDtype::kBf16:
      tensor::qgemm::DecodeBf16(source_->PanelBf16(target, target + 1), d,
                                decode->data());
      tensor::gemm::Gemm(q.data(), decode->data(), &s_target, 1, d, 1,
                         /*trans_a=*/false, /*trans_b=*/true,
                         /*accumulate=*/false);
      break;
  }
  if (has_bias) s_target += source_->BiasPanel(target, target + 1)[0];

  eval::RankAccumulator acc(s_target, target, filtered);
  int64_t p0 = 0;
  while (p0 < n) {
    const int64_t pend = std::min(source_->PanelEnd(p0),
                                  p0 + config_.panel_width);
    const int64_t pw = pend - p0;
    switch (dtype) {
      case ScoreDtype::kFp32:
        tensor::gemm::Gemm(q.data(), source_->Panel(p0, pend), scores.data(),
                           1, d, pw, /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
      case ScoreDtype::kInt8:
        tensor::qgemm::GemmInt8TwoDigit(
            q8_hi.data(), q8_hi_scales.data(), q8_lo.data(),
            q8_lo_scales.data(), source_->PanelInt8(p0, pend),
            source_->PanelScales(p0, pend), scores.data(), 1, d, pw);
        break;
      case ScoreDtype::kBf16:
        tensor::qgemm::DecodeBf16(source_->PanelBf16(p0, pend), pw * d,
                                  decode->data());
        tensor::gemm::Gemm(q.data(), decode->data(), scores.data(), 1, d, pw,
                           /*trans_a=*/false, /*trans_b=*/true,
                           /*accumulate=*/false);
        break;
    }
    ++stats_.panels_scored;
    if (has_bias) {
      const float* bias = source_->BiasPanel(p0, pend);
      for (int64_t j = 0; j < pw; ++j) scores.data()[j] += bias[j];
    }
    acc.Accumulate(scores.data(), p0, pw);
    p0 = pend;
  }
  ++stats_.queries_served;
  ++stats_.batches_executed;
  return acc.Rank(n);
}

ScoreServer::Stats ScoreServer::GetStats() const {
  came::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace came::infer
