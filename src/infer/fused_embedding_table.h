#ifndef CAME_INFER_FUSED_EMBEDDING_TABLE_H_
#define CAME_INFER_FUSED_EMBEDDING_TABLE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "tensor/panel_bounds.h"
#include "tensor/tensor.h"

namespace came::baselines {
class KgcModel;
class InnerProductKgcModel;
}  // namespace came::baselines

namespace came::infer {

/// The query-independent entity-side state of an inner-product KGC model,
/// folded offline into contiguous matrices the serving layer scores
/// against with plain GEMM:
///
///   * candidates  [N, d]  — the candidate-entity matrix E, so that
///                           score(h, r, t) = <query(h, r), E[t]> + bias[t];
///   * bias        [N]     — the per-entity bias (empty if the model has
///                           none);
///   * folded_rows [N, d_f]— the model's query-independent encoder rows
///                           (CamE: the MMF fusion output per entity;
///                           empty for models with no foldable stage).
///                           Reinstalled into the model via
///                           SetFoldedEncoderCache, they make eval-mode
///                           query encoding skip the encoder stack with
///                           bitwise-identical results.
///
/// On disk the table is a versioned, CRC-checksummed binary (magic
/// "CAMEFET1", same section framing as the training checkpoint format):
/// every section carries its own CRC32, loads are bounds-checked against
/// the declared lengths, and saves go through the atomic
/// temp-write + fsync + rename path, so a torn or bit-flipped file is
/// reported as Corruption rather than served.
class FusedEmbeddingTable {
 public:
  /// Empty table (num_entities() == 0). Populate via Build or Load.
  FusedEmbeddingTable() = default;

  /// Direct construction from raw tensors (tests, custom encoders).
  /// `bias` and `folded_rows` may be empty tensors.
  FusedEmbeddingTable(std::string model_name, tensor::Tensor candidates,
                      tensor::Tensor bias, tensor::Tensor folded_rows);

  /// Folds `model`'s entity-side state. The model must be in eval mode;
  /// every forward involved runs under an enforced no-tape scope.
  static FusedEmbeddingTable Build(baselines::InnerProductKgcModel* model);

  Status Save(const std::string& path) const;
  static Status Load(const std::string& path, FusedEmbeddingTable* out);

  /// Installs folded_rows into `model` (no-op when this table carries
  /// none). After this, the model's eval-mode forwards gather the folded
  /// rows instead of re-running the encoder stack.
  void InstallFoldedRows(baselines::KgcModel* model) const;

  const std::string& model_name() const { return model_name_; }
  int64_t num_entities() const {
    return candidates_.numel() > 0 ? candidates_.dim(0) : 0;
  }
  int64_t dim() const {
    return candidates_.numel() > 0 ? candidates_.dim(1) : 0;
  }
  const tensor::Tensor& candidates() const { return candidates_; }
  bool has_bias() const { return bias_.numel() > 0; }
  const tensor::Tensor& bias() const { return bias_; }
  bool has_folded_rows() const { return folded_rows_.numel() > 0; }
  const tensor::Tensor& folded_rows() const { return folded_rows_; }

  /// Per-block score-bound metadata over candidates/bias, the input to
  /// the serving layer's exact panel pruning (tensor::PanelBoundTable).
  /// Always populated for a non-empty table: recomputed on construction,
  /// and round-tripped through the on-disk BNDS section (files written
  /// before the section existed load fine and keep the recomputed table).
  const tensor::PanelBoundTable& bounds() const { return bounds_; }

 private:
  std::string model_name_;
  tensor::Tensor candidates_;   // [N, d]
  tensor::Tensor bias_;         // [N] or empty
  tensor::Tensor folded_rows_;  // [N, d_f] or empty
  tensor::PanelBoundTable bounds_;
};

}  // namespace came::infer

#endif  // CAME_INFER_FUSED_EMBEDDING_TABLE_H_
