#ifndef CAME_INFER_NO_TAPE_H_
#define CAME_INFER_NO_TAPE_H_

#include <cstdint>

#include "autograd/variable.h"

namespace came::infer {

/// Scoped grad-free execution with an *enforced* zero-node invariant.
///
/// ag::NoGradGuard merely switches tape recording off; NoTapeGuard
/// additionally proves that nothing was recorded: the destructor
/// CHECK-fails if any tape node was created on this thread while the
/// guard was active. Every op inside the scope dispatches forward-only
/// through the op registry (no Node, no type-erased backward closure), so
/// an inference forward is assertably allocation-free on the autograd
/// side. Use it for every serving / evaluation forward; an op that somehow
/// records a node under the guard is a programming error, not a slow path.
///
/// Node construction never leaves the calling thread (kernels parallelise
/// below the op layer), so the thread-local counters the guard samples are
/// exact, and concurrent training on other threads cannot trip it.
class NoTapeGuard {
 public:
  NoTapeGuard();
  /// CHECK-fails if a tape node was recorded on this thread in-scope.
  ~NoTapeGuard();
  NoTapeGuard(const NoTapeGuard&) = delete;
  NoTapeGuard& operator=(const NoTapeGuard&) = delete;

  /// Ops dispatched forward-only on this thread since the guard opened.
  int64_t ScopedNoTapeDispatches() const;

 private:
  ag::NoGradGuard no_grad_;
  int64_t nodes_at_entry_;
  int64_t dispatches_at_entry_;
};

}  // namespace came::infer

#endif  // CAME_INFER_NO_TAPE_H_
