#include "infer/batching_front_end.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace came::infer {

BatchingFrontEnd::BatchingFrontEnd(ScoreServer* server, int64_t k,
                                   const TopKOptions& opts,
                                   const BatchingFrontEndConfig& config)
    : server_(server), k_(k), opts_(opts), config_(config) {
  CAME_CHECK(server_ != nullptr);
  CAME_CHECK_GT(k_, 0);
  CAME_CHECK_GT(config_.max_batch, 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchingFrontEnd::~BatchingFrontEnd() {
  {
    came::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

std::future<TopKResult> BatchingFrontEnd::Submit(int64_t head, int64_t rel) {
  std::future<TopKResult> future;
  {
    came::MutexLock lock(&mu_);
    CAME_CHECK(!stop_) << "Submit after shutdown";
    queue_.push_back({head, rel, std::promise<TopKResult>()});
    future = queue_.back().promise.get_future();
  }
  cv_.NotifyOne();
  return future;
}

void BatchingFrontEnd::WorkerLoop() {
  std::vector<Pending> batch;
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  for (;;) {
    {
      came::MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and fully drained
      // Take everything that has piled up while the previous batch ran,
      // capped at max_batch.
      const int64_t take = std::min<int64_t>(
          config_.max_batch, static_cast<int64_t>(queue_.size()));
      batch.clear();
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    heads.clear();
    rels.clear();
    for (const Pending& p : batch) {
      heads.push_back(p.head);
      rels.push_back(p.rel);
    }
    Result<std::vector<TopKResult>> results =
        server_->TopKBatch(heads, rels, k_, opts_);
    // Count the batch before fulfilling its promises: the moment a
    // client's future resolves, GetStats already covers its query.
    {
      came::MutexLock lock(&mu_);
      ++stats_.batches_executed;
      stats_.queries_served += static_cast<int64_t>(batch.size());
      stats_.max_coalesced = std::max(stats_.max_coalesced,
                                      static_cast<int64_t>(batch.size()));
    }
    if (!results.ok()) {
      // A rejected request (bad ids in this batch) fails every coalesced
      // client with the server's message; the worker keeps serving.
      for (Pending& p : batch) {
        p.promise.set_exception(std::make_exception_ptr(
            std::runtime_error(results.status().ToString())));
      }
      continue;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results.value()[i]));
    }
  }
}

BatchingFrontEnd::Stats BatchingFrontEnd::GetStats() const {
  came::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace came::infer
