#include "infer/score_dtype.h"

#include <cstdlib>

#include "common/logging.h"

namespace came::infer {

std::string ScoreDtypeName(ScoreDtype dtype) {
  switch (dtype) {
    case ScoreDtype::kFp32:
      return "fp32";
    case ScoreDtype::kInt8:
      return "int8";
    case ScoreDtype::kBf16:
      return "bf16";
  }
  return "unknown";
}

Result<ScoreDtype> ParseScoreDtype(const std::string& name) {
  if (name == "fp32") return ScoreDtype::kFp32;
  if (name == "int8") return ScoreDtype::kInt8;
  if (name == "bf16") return ScoreDtype::kBf16;
  return Status::InvalidArgument("unknown score dtype \"" + name +
                                 "\" (want fp32|int8|bf16)");
}

ScoreDtype ScoreDtypeFromEnv() {
  const char* env = std::getenv("CAME_SCORE_DTYPE");
  if (env == nullptr || *env == '\0') return ScoreDtype::kFp32;
  Result<ScoreDtype> parsed = ParseScoreDtype(env);
  if (!parsed.ok()) {
    CAME_LOG(Warning) << "ignoring invalid CAME_SCORE_DTYPE=\"" << env
                      << "\" (want fp32|int8|bf16); serving fp32";
    return ScoreDtype::kFp32;
  }
  return parsed.value();
}

}  // namespace came::infer
