#ifndef CAME_INFER_SCORE_SERVER_H_
#define CAME_INFER_SCORE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "infer/quantized_table.h"
#include "infer/score_dtype.h"
#include "kg/filter_index.h"
#include "tensor/tensor.h"

namespace came::baselines {
class InnerProductKgcModel;
}  // namespace came::baselines

namespace came::infer {

/// Encodes a batch of (head, relation) queries into a [B, d] query matrix.
/// Must be forward-only (no tape nodes) and eval-mode.
using QueryEncoder = std::function<tensor::Tensor(
    const std::vector<int64_t>& heads, const std::vector<int64_t>& rels)>;

struct ScoreServerConfig {
  /// Entity-panel width for the blocked score sweep. Scratch memory per
  /// batch is batch_size * panel_width floats — the full N-entity score
  /// vector is never materialised.
  int64_t panel_width = 1024;
  /// Candidate-matrix precision for fused-table servers. Defaults to
  /// CAME_SCORE_DTYPE (fp32 when unset), so exporting the variable flips
  /// every fused-table server in the process without a code change. A
  /// non-fp32 value makes the server quantize the table at construction
  /// and score through the matching qgemm path. Ignored by the
  /// CandidatePanelSource constructor, where the source's own dtype()
  /// governs (e.g. a quantized ShardStore).
  ScoreDtype dtype = ScoreDtypeFromEnv();
};

/// Top-K answer for one (h, r, ?) query, best-first under the serving
/// order (eval::ScoredBefore: score desc, NaN worst, id asc on ties).
struct TopKResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;
};

/// Per-query candidate filtering.
struct TopKOptions {
  /// When set, candidates in filter->Tails(head, rel) are skipped
  /// (filtered protocol), except `keep`.
  const kg::FilterIndex* filter = nullptr;
  /// Entity id exempt from filtering (the evaluation target), -1 = none.
  int64_t keep = -1;
  /// Extra candidate ids to skip (sorted ascending); not owned.
  const std::vector<int64_t>* exclude = nullptr;
  /// When set, only these candidate ids are eligible (sorted ascending,
  /// not owned) — type-aware shortlists like "rank diseases only". Unlike
  /// filter/exclude, `keep` does not override this restriction.
  const std::vector<int64_t>* restrict_to = nullptr;
};

/// Answers (h, r, ?) top-K queries against a CandidatePanelSource — an
/// in-RAM FusedEmbeddingTable or a ShardStore whose slabs page in and
/// out of a residency budget (beyond-RAM serving). The sweep clamps
/// every panel to the source's PanelEnd, so shard boundaries are
/// respected without the scoring loop knowing about shards.
///
/// Each batch runs one blocked SGEMM per entity panel
/// (q [B, d] x panel [P, d]^T), and the panel scores feed per-query
/// bounded heaps of size K directly — the full [B, N] score matrix never
/// exists. Panel scores are bitwise identical to the corresponding
/// columns of a full-width GEMM over the same serving arithmetic (the
/// per-element k-accumulation order is independent of the m/n blocking
/// and the panel width), so top-K results match a brute-force sort of
/// the full serving score vector exactly, ties included. The training
/// path's ScoreAllTails materialises the transposed candidate table and
/// multiplies untransposed — same math, different accumulation path — so
/// its scores may differ from serving scores in the last ulp.
///
/// Thread-safe: calls are serialised on an internal mutex; concurrency
/// comes from the GEMM / heap-update ParallelFor inside a batch (wider
/// batches parallelise better — see BatchingFrontEnd).
class ScoreServer {
 public:
  /// Serves `model` (used for query encoding only; entity-side state
  /// comes from `table`). Both must outlive the server; the model must
  /// stay in eval mode.
  ScoreServer(baselines::InnerProductKgcModel* model,
              const FusedEmbeddingTable* table,
              const ScoreServerConfig& config = {});
  /// Custom query encoder (tests, remote encoders).
  ScoreServer(QueryEncoder encoder, const FusedEmbeddingTable* table,
              const ScoreServerConfig& config = {});
  /// Serves candidates straight from `source` (e.g. a
  /// ShardStorePanelSource over a sealed beyond-RAM store). Not owned;
  /// must outlive the server.
  ScoreServer(QueryEncoder encoder, CandidatePanelSource* source,
              const ScoreServerConfig& config = {});

  /// Top-K for a single query. K is clamped to the number of eligible
  /// candidates (K > N returns them all, ranked).
  TopKResult TopK(int64_t head, int64_t rel, int64_t k,
                  const TopKOptions& opts = {}) CAME_EXCLUDES(mu_);

  /// Top-K for an aligned batch of queries (one GEMM per panel for the
  /// whole batch).
  std::vector<TopKResult> TopKBatch(const std::vector<int64_t>& heads,
                                    const std::vector<int64_t>& rels,
                                    int64_t k, const TopKOptions& opts = {})
      CAME_EXCLUDES(mu_);

  /// Filtered rank of `target` for (head, rel, ?), identical to the
  /// Evaluator's protocol (1 + #better + #equal/2, NaN target worst),
  /// computed over panels without materialising the score vector.
  /// Filtering uses opts.filter; `target` is always kept.
  double RankOf(int64_t head, int64_t rel, int64_t target,
                const TopKOptions& opts = {}) CAME_EXCLUDES(mu_);

  int64_t num_entities() const { return source_->num_entities(); }
  /// The precision the sweep actually scores in (the panel source's
  /// dtype — for fused-table servers this is config.dtype).
  ScoreDtype score_dtype() const { return source_->dtype(); }
  /// The fused table, when this server was built over one (CHECK-fails
  /// for shard-backed servers).
  const FusedEmbeddingTable& table() const;
  /// The quantized table a non-fp32 fused-table server scores against
  /// (CHECK-fails when score_dtype() is fp32 or the server is
  /// source-backed).
  const QuantizedTable& quantized_table() const;

  struct Stats {
    int64_t queries_served = 0;
    int64_t batches_executed = 0;
    int64_t panels_scored = 0;
  };
  Stats GetStats() const CAME_EXCLUDES(mu_);

 private:
  /// Encodes and validates the query matrix ([B, d]).
  tensor::Tensor EncodeQueries(const std::vector<int64_t>& heads,
                               const std::vector<int64_t>& rels)
      CAME_REQUIRES(mu_);

  QueryEncoder encoder_;
  const FusedEmbeddingTable* table_ = nullptr;  // null for shard-backed
  /// Owned quantized snapshot of `table_` when config.dtype != fp32.
  std::unique_ptr<QuantizedTable> owned_qtable_;
  std::unique_ptr<CandidatePanelSource> owned_source_;
  CandidatePanelSource* source_ = nullptr;
  ScoreServerConfig config_;
  /// Serialises the whole scoring sweep: the panel source's residency
  /// state (ShardStore LRU) and the stats are both behind it. EncodeQueries
  /// runs under it by contract even though it only reads immutable state.
  mutable came::Mutex mu_;
  Stats stats_ CAME_GUARDED_BY(mu_);
};

}  // namespace came::infer

#endif  // CAME_INFER_SCORE_SERVER_H_
