#ifndef CAME_INFER_SCORE_SERVER_H_
#define CAME_INFER_SCORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "infer/candidate_panels.h"
#include "infer/fused_embedding_table.h"
#include "infer/quantized_table.h"
#include "infer/score_dtype.h"
#include "kg/filter_index.h"
#include "tensor/tensor.h"

namespace came::baselines {
class InnerProductKgcModel;
}  // namespace came::baselines

namespace came::infer {

/// Encodes a batch of (head, relation) queries into a [B, d] query matrix.
/// Must be forward-only (no tape nodes) and eval-mode. With concurrent
/// server calls the encoder is invoked from multiple threads at once, so
/// it must be safe for concurrent invocation (the model-backed encoder
/// qualifies: an eval-mode ServingQuery with folded rows installed is a
/// read-only gather + GEMM).
using QueryEncoder = std::function<tensor::Tensor(
    const std::vector<int64_t>& heads, const std::vector<int64_t>& rels)>;

/// Default for ScoreServerConfig::prune, from CAME_SCORE_PRUNE
/// ("on"/"1"/"true" or "off"/"0"/"false"; unset or invalid means on).
bool ScorePruneFromEnv();

struct ScoreServerConfig {
  /// Entity-panel width for the blocked score sweep. Scratch memory per
  /// batch is batch_size * panel_width floats — the full N-entity score
  /// vector is never materialised. Non-positive values are clamped to
  /// 1024 with a warning (a misconfigured width should degrade, not
  /// crash the server).
  int64_t panel_width = 1024;
  /// Candidate-matrix precision for fused-table servers. Defaults to
  /// CAME_SCORE_DTYPE (fp32 when unset), so exporting the variable flips
  /// every fused-table server in the process without a code change. A
  /// non-fp32 value makes the server quantize the table at construction
  /// and score through the matching qgemm path. Ignored by the
  /// CandidatePanelSource constructor, where the source's own dtype()
  /// governs (e.g. a quantized ShardStore).
  ScoreDtype dtype = ScoreDtypeFromEnv();
  /// Exact panel-skip pruning: panels whose cached score upper bound
  /// (Cauchy–Schwarz: ||q|| * max_row_norm + max_bias) provably cannot
  /// beat a query's current K-th best are skipped, and panels are visited
  /// best-bound-first so the heaps fill with strong candidates early.
  /// Results are bitwise identical to the unpruned sweep (the bound is
  /// conservative and the serving order eval::ScoredBefore is a strict
  /// total order, so the top-K set is sweep-order independent). Defaults
  /// to CAME_SCORE_PRUNE (on when unset).
  bool prune = ScorePruneFromEnv();
  /// Serialise whole sweeps on an internal mutex, restoring the
  /// pre-concurrent behaviour (one sweep in flight at a time). Off by
  /// default: sweeps are read-only over the source and safe to run
  /// concurrently. The bench uses this as its baseline arm.
  bool serialize_sweep = false;
  /// Relation-id bound for request validation; rel ids outside
  /// [0, num_relations) are rejected with InvalidArgument. <= 0 disables
  /// the check (sources carry no relation count; the model-backed
  /// constructor fills it in from the model).
  int64_t num_relations = -1;
};

/// Top-K answer for one (h, r, ?) query, best-first under the serving
/// order (eval::ScoredBefore: score desc, NaN worst, id asc on ties).
struct TopKResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;
};

/// Per-query candidate filtering.
struct TopKOptions {
  /// When set, candidates in filter->Tails(head, rel) are skipped
  /// (filtered protocol), except `keep`.
  const kg::FilterIndex* filter = nullptr;
  /// Entity id exempt from filtering (the evaluation target), -1 = none.
  int64_t keep = -1;
  /// Extra candidate ids to skip (sorted ascending); not owned.
  const std::vector<int64_t>* exclude = nullptr;
  /// When set, only these candidate ids are eligible (sorted ascending,
  /// not owned) — type-aware shortlists like "rank diseases only". Unlike
  /// filter/exclude, `keep` does not override this restriction.
  const std::vector<int64_t>* restrict_to = nullptr;
};

/// Answers (h, r, ?) top-K queries against a CandidatePanelSource — an
/// in-RAM FusedEmbeddingTable or a ShardStore whose slabs page in and
/// out of a residency budget (beyond-RAM serving). The sweep clamps
/// every panel to the source's PanelEnd, so shard boundaries are
/// respected without the scoring loop knowing about shards.
///
/// Each batch runs one blocked SGEMM per entity panel
/// (q [B, d] x panel [P, d]^T), and the panel scores feed per-query
/// bounded heaps of size K directly — the full [B, N] score matrix never
/// exists. Panel scores are bitwise identical to the corresponding
/// columns of a full-width GEMM over the same serving arithmetic (the
/// per-element k-accumulation order is independent of the m/n blocking
/// and the panel width), so top-K results match a brute-force sort of
/// the full serving score vector exactly, ties included. The training
/// path's ScoreAllTails materialises the transposed candidate table and
/// multiplies untransposed — same math, different accumulation path — so
/// its scores may differ from serving scores in the last ulp.
///
/// Pruning (config.prune): the source's per-block bound metadata
/// (tensor::PanelBoundTable) gives each panel a conservative score upper
/// bound per query. Panels are visited in descending bound order; once a
/// query's heap holds K entries whose worst member the panel's bound
/// cannot beat under eval::ScoredBefore, the panel is skipped for that
/// query — and when every query in the batch skips it, the GEMM (and,
/// shard-backed, the mmap fault) is skipped entirely. Because the bound
/// over-approximates every candidate's score and ScoredBefore is a
/// strict total order (making the top-K set unique and sweep-order
/// independent), pruned results are bitwise identical to the unpruned
/// sweep; tools/check_serving_parity.py gates on that.
///
/// Thread-safe for concurrent readers: sweeps take no global lock
/// (config.serialize_sweep restores the old single-sweep behaviour).
/// Shard-backed sweeps hold a pin lease on a panel's slab while
/// consuming it, so a concurrent sweep's eviction cannot pull the
/// mapping out from under the GEMM; per-query scratch comes from the
/// thread-safe tensor::pool; stats are relaxed atomics.
class ScoreServer {
 public:
  /// Serves `model` (used for query encoding only; entity-side state
  /// comes from `table`). Both must outlive the server; the model must
  /// stay in eval mode. Fills config.num_relations from the model when
  /// unset.
  ScoreServer(baselines::InnerProductKgcModel* model,
              const FusedEmbeddingTable* table,
              const ScoreServerConfig& config = {});
  /// Custom query encoder (tests, remote encoders).
  ScoreServer(QueryEncoder encoder, const FusedEmbeddingTable* table,
              const ScoreServerConfig& config = {});
  /// Serves candidates straight from `source` (e.g. a
  /// ShardStorePanelSource over a sealed beyond-RAM store). Not owned;
  /// must outlive the server.
  ScoreServer(QueryEncoder encoder, CandidatePanelSource* source,
              const ScoreServerConfig& config = {});

  /// Top-K for a single query. K is clamped to the number of eligible
  /// candidates (K > N returns them all, ranked). InvalidArgument on
  /// k <= 0 or out-of-range head/rel ids (malformed requests are a
  /// server-boundary error, not a process-fatal one).
  Result<TopKResult> TopK(int64_t head, int64_t rel, int64_t k,
                          const TopKOptions& opts = {});

  /// Top-K for an aligned batch of queries (one GEMM per panel for the
  /// whole batch). An empty batch returns an empty vector.
  Result<std::vector<TopKResult>> TopKBatch(const std::vector<int64_t>& heads,
                                            const std::vector<int64_t>& rels,
                                            int64_t k,
                                            const TopKOptions& opts = {});

  /// Filtered rank of `target` for (head, rel, ?), identical to the
  /// Evaluator's protocol (1 + #better + #equal/2, NaN target worst),
  /// computed over panels without materialising the score vector.
  /// Filtering uses opts.filter; `target` is always kept. Pruning skips
  /// panels whose bound is strictly below the target's score — they can
  /// contribute neither "better" nor "equal" counts — with, again,
  /// bitwise-identical ranks.
  Result<double> RankOf(int64_t head, int64_t rel, int64_t target,
                        const TopKOptions& opts = {});

  int64_t num_entities() const { return source_->num_entities(); }
  /// The precision the sweep actually scores in (the panel source's
  /// dtype — for fused-table servers this is config.dtype).
  ScoreDtype score_dtype() const { return source_->dtype(); }
  /// The fused table, when this server was built over one (CHECK-fails
  /// for shard-backed servers).
  const FusedEmbeddingTable& table() const;
  /// The quantized table a non-fp32 fused-table server scores against
  /// (CHECK-fails when score_dtype() is fp32 or the server is
  /// source-backed).
  const QuantizedTable& quantized_table() const;

  struct Stats {
    int64_t queries_served = 0;
    int64_t batches_executed = 0;
    /// Panels whose GEMM actually ran (counted once per batch, however
    /// many queries consumed it).
    int64_t panels_scored = 0;
    /// Panels skipped outright — every query in the batch pruned them,
    /// so neither the GEMM nor the panel fetch (mmap fault) happened.
    int64_t panels_skipped = 0;
    /// Per-(query, panel) prune decisions, including queries that sat
    /// out a panel other queries still scored.
    int64_t bound_rejects = 0;
  };
  Stats GetStats() const;

 private:
  /// Relaxed-atomic mirror of Stats: sweeps from concurrent threads
  /// bump counters without synchronisation; GetStats snapshots.
  struct AtomicStats {
    std::atomic<int64_t> queries_served{0};
    std::atomic<int64_t> batches_executed{0};
    std::atomic<int64_t> panels_scored{0};
    std::atomic<int64_t> panels_skipped{0};
    std::atomic<int64_t> bound_rejects{0};
  };

  /// Encodes and validates the query matrix ([B, d]). Shape violations
  /// here are encoder-contract bugs and CHECK-fail.
  tensor::Tensor EncodeQueries(const std::vector<int64_t>& heads,
                               const std::vector<int64_t>& rels);
  /// Request validation shared by TopKBatch/RankOf: id-range errors are
  /// InvalidArgument, not a crash.
  Status ValidateIds(const std::vector<int64_t>& heads,
                     const std::vector<int64_t>& rels) const;

  QueryEncoder encoder_;
  const FusedEmbeddingTable* table_ = nullptr;  // null for shard-backed
  /// Owned quantized snapshot of `table_` when config.dtype != fp32.
  std::unique_ptr<QuantizedTable> owned_qtable_;
  std::unique_ptr<CandidatePanelSource> owned_source_;
  CandidatePanelSource* source_ = nullptr;
  ScoreServerConfig config_;
  /// Held for the whole sweep only when config.serialize_sweep — the
  /// opt-in single-sweep mode. Guards no fields (sweeps are read-only).
  mutable came::Mutex serial_mu_;
  AtomicStats stats_;
};

}  // namespace came::infer

#endif  // CAME_INFER_SCORE_SERVER_H_
