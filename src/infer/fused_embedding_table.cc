#include "infer/fused_embedding_table.h"

#include <cstring>
#include <utility>

#include "baselines/kgc_model.h"
#include "common/io.h"
#include "common/logging.h"

namespace came::infer {

namespace {

// File layout (version 1, little-endian):
//   magic   8 bytes "CAMEFET1"
//   version u32
//   count   u32                     -- number of sections (4 or 5)
//   sections, each:
//     id    u32 fourcc              -- META, CAND, BIAS, FOLD [, BNDS]
//     len   u64                     -- payload byte length
//     crc   u32                     -- CRC32 of the payload
//     payload
// Absent bias / folded rows are encoded as empty ({0}) tensors so the
// section framing is fixed shape. The trailing BNDS section (a
// tensor::PanelBoundTable payload for the serving layer's panel pruning)
// was added later; 4-section files still load — the bounds are then the
// ones recomputed from the candidate rows at construction.
constexpr char kMagic[8] = {'C', 'A', 'M', 'E', 'F', 'E', 'T', '1'};
constexpr uint32_t kVersion = 1;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kSectionMeta = FourCc('M', 'E', 'T', 'A');
constexpr uint32_t kSectionCandidates = FourCc('C', 'A', 'N', 'D');
constexpr uint32_t kSectionBias = FourCc('B', 'I', 'A', 'S');
constexpr uint32_t kSectionFolded = FourCc('F', 'O', 'L', 'D');
constexpr uint32_t kSectionBounds = FourCc('B', 'N', 'D', 'S');

constexpr uint64_t kMaxSectionBytes = 1ULL << 33;  // 8 GiB
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxNdim = 8;

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendTensor(std::string* buf, const tensor::Tensor& t) {
  AppendPod(buf, static_cast<uint32_t>(t.ndim()));
  for (int64_t d : t.shape()) AppendPod(buf, d);
  buf->append(reinterpret_cast<const char*>(t.data()),
              static_cast<size_t>(t.numel()) * sizeof(float));
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Status ReadRaw(void* out, size_t n) {
    if (n > size_ - pos_) {
      return Status::Corruption("fused table truncated at byte " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(T));
  }

  Status ReadTensor(tensor::Tensor* out) {
    uint32_t ndim = 0;
    CAME_RETURN_IF_ERROR(ReadPod(&ndim));
    if (ndim > kMaxNdim) {
      return Status::Corruption("tensor ndim out of range: " +
                                std::to_string(ndim));
    }
    tensor::Shape shape(ndim);
    for (auto& d : shape) {
      CAME_RETURN_IF_ERROR(ReadPod(&d));
      if (d < 0 || static_cast<uint64_t>(d) > kMaxSectionBytes) {
        return Status::Corruption("tensor dimension out of range");
      }
    }
    const int64_t numel = tensor::NumElements(shape);
    if (numel < 0 ||
        static_cast<uint64_t>(numel) * sizeof(float) > remaining()) {
      return Status::Corruption("tensor data exceeds section");
    }
    tensor::Tensor t(std::move(shape));
    CAME_RETURN_IF_ERROR(
        ReadRaw(t.data(), static_cast<size_t>(numel) * sizeof(float)));
    *out = std::move(t);
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendSection(std::string* file, uint32_t id, const std::string& payload) {
  AppendPod(file, id);
  AppendPod(file, static_cast<uint64_t>(payload.size()));
  AppendPod(file, io::Crc32(payload.data(), payload.size()));
  file->append(payload);
}

std::string EncodeTensorSection(const tensor::Tensor& t) {
  std::string buf;
  AppendTensor(&buf, t);
  return buf;
}

Status DecodeTensorSection(Reader* r, tensor::Tensor* out) {
  CAME_RETURN_IF_ERROR(r->ReadTensor(out));
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes in tensor section");
  }
  return Status::OK();
}

}  // namespace

FusedEmbeddingTable::FusedEmbeddingTable(std::string model_name,
                                         tensor::Tensor candidates,
                                         tensor::Tensor bias,
                                         tensor::Tensor folded_rows)
    : model_name_(std::move(model_name)),
      candidates_(std::move(candidates)),
      bias_(std::move(bias)),
      folded_rows_(std::move(folded_rows)) {
  CAME_CHECK_EQ(candidates_.ndim(), 2) << "candidates must be [N, d]";
  if (bias_.numel() > 0) {
    CAME_CHECK_EQ(bias_.ndim(), 1);
    CAME_CHECK_EQ(bias_.dim(0), candidates_.dim(0));
  }
  if (folded_rows_.numel() > 0) {
    CAME_CHECK_EQ(folded_rows_.ndim(), 2);
    CAME_CHECK_EQ(folded_rows_.dim(0), candidates_.dim(0));
  }
  if (candidates_.numel() > 0) {
    bounds_ = tensor::PanelBoundTable(candidates_.dim(0),
                                      tensor::kDefaultBoundBlockRows);
    tensor::AccountRowsFp32(&bounds_, candidates_.data(),
                            has_bias() ? bias_.data() : nullptr,
                            /*first_row=*/0, candidates_.dim(0),
                            candidates_.dim(1));
  }
}

FusedEmbeddingTable FusedEmbeddingTable::Build(
    baselines::InnerProductKgcModel* model) {
  CAME_CHECK(model != nullptr);
  CAME_CHECK(!model->training()) << "Build requires eval mode";
  // Clone the candidate matrix: the table is a frozen snapshot, and the
  // serving accessor aliases the live parameter buffer.
  return FusedEmbeddingTable(model->Name(),
                             model->ServingCandidates().Clone(),
                             model->ServingEntityBias().Clone(),
                             model->FoldEntityEncoders());
}

Status FusedEmbeddingTable::Save(const std::string& path) const {
  std::string meta;
  AppendPod(&meta, static_cast<uint32_t>(model_name_.size()));
  meta.append(model_name_);
  AppendPod(&meta, static_cast<int64_t>(num_entities()));
  AppendPod(&meta, static_cast<int64_t>(dim()));

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendPod(&file, kVersion);
  // Empty tables have no bounds to persist; they keep the legacy
  // 4-section framing.
  AppendPod(&file, static_cast<uint32_t>(bounds_.empty() ? 4 : 5));
  AppendSection(&file, kSectionMeta, meta);
  AppendSection(&file, kSectionCandidates, EncodeTensorSection(candidates_));
  AppendSection(&file, kSectionBias, EncodeTensorSection(bias_));
  AppendSection(&file, kSectionFolded, EncodeTensorSection(folded_rows_));
  if (!bounds_.empty()) {
    AppendSection(&file, kSectionBounds, bounds_.Encode());
  }
  return io::WriteFileAtomic(path, file.data(), file.size());
}

Status FusedEmbeddingTable::Load(const std::string& path,
                                 FusedEmbeddingTable* out) {
  CAME_CHECK(out != nullptr);
  std::string file;
  CAME_RETURN_IF_ERROR(io::ReadFile(path, &file));
  Reader r(file.data(), file.size());

  char magic[8];
  CAME_RETURN_IF_ERROR(r.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not a fused table (bad magic)");
  }
  uint32_t version = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&version));
  if (version == 2) {
    return Status::InvalidArgument(
        path + ": fused table version 2 is the quantized format; load it "
               "with QuantizedTable::Load");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported fused table version " +
                                   std::to_string(version));
  }
  uint32_t section_count = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&section_count));
  if (section_count != 4 && section_count != 5) {
    return Status::Corruption(path + ": expected 4 or 5 sections, found " +
                              std::to_string(section_count));
  }

  std::string model_name;
  int64_t meta_n = 0;
  int64_t meta_d = 0;
  tensor::Tensor candidates;
  tensor::Tensor bias;
  tensor::Tensor folded;
  tensor::PanelBoundTable stored_bounds;

  constexpr uint32_t kExpectedOrder[5] = {kSectionMeta, kSectionCandidates,
                                          kSectionBias, kSectionFolded,
                                          kSectionBounds};
  for (uint32_t idx = 0; idx < section_count; ++idx) {
    uint32_t id = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    CAME_RETURN_IF_ERROR(r.ReadPod(&id));
    CAME_RETURN_IF_ERROR(r.ReadPod(&len));
    CAME_RETURN_IF_ERROR(r.ReadPod(&crc));
    if (id != kExpectedOrder[idx]) {
      return Status::Corruption(path + ": unexpected section id at index " +
                                std::to_string(idx));
    }
    if (len > kMaxSectionBytes || len > r.remaining()) {
      return Status::Corruption(path + ": section length out of range");
    }
    std::string payload(len, 0);
    CAME_RETURN_IF_ERROR(r.ReadRaw(payload.data(), len));
    if (io::Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption(path + ": CRC mismatch in section " +
                                std::to_string(idx));
    }
    Reader pr(payload.data(), payload.size());
    switch (id) {
      case kSectionMeta: {
        uint32_t name_len = 0;
        CAME_RETURN_IF_ERROR(pr.ReadPod(&name_len));
        if (name_len > kMaxNameLen) {
          return Status::Corruption("model name length out of range");
        }
        model_name.assign(name_len, 0);
        CAME_RETURN_IF_ERROR(pr.ReadRaw(model_name.data(), name_len));
        CAME_RETURN_IF_ERROR(pr.ReadPod(&meta_n));
        CAME_RETURN_IF_ERROR(pr.ReadPod(&meta_d));
        if (pr.remaining() != 0) {
          return Status::Corruption("trailing bytes in meta section");
        }
        break;
      }
      case kSectionCandidates:
        CAME_RETURN_IF_ERROR(DecodeTensorSection(&pr, &candidates));
        break;
      case kSectionBias:
        CAME_RETURN_IF_ERROR(DecodeTensorSection(&pr, &bias));
        break;
      case kSectionFolded:
        CAME_RETURN_IF_ERROR(DecodeTensorSection(&pr, &folded));
        break;
      case kSectionBounds: {
        Result<tensor::PanelBoundTable> b =
            tensor::PanelBoundTable::Decode(payload.data(), payload.size());
        if (!b.ok()) return b.status();
        stored_bounds = std::move(b).value();
        break;
      }
      default:
        return Status::Corruption("unreachable section id");
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption(path + ": trailing bytes after last section");
  }

  // Cross-section validation: the meta header must agree with the tensors.
  if (candidates.ndim() != 2) {
    return Status::Corruption(path + ": candidates must be rank 2");
  }
  if (candidates.dim(0) != meta_n || candidates.dim(1) != meta_d) {
    return Status::Corruption(path + ": meta/candidate shape mismatch");
  }
  if (bias.numel() > 0 &&
      (bias.ndim() != 1 || bias.dim(0) != candidates.dim(0))) {
    return Status::Corruption(path + ": bias shape mismatch");
  }
  if (folded.numel() > 0 &&
      (folded.ndim() != 2 || folded.dim(0) != candidates.dim(0))) {
    return Status::Corruption(path + ": folded rows shape mismatch");
  }
  if (!stored_bounds.empty() && stored_bounds.rows() != candidates.dim(0)) {
    return Status::Corruption(path + ": bounds section covers " +
                              std::to_string(stored_bounds.rows()) +
                              " rows, candidates have " +
                              std::to_string(candidates.dim(0)));
  }

  *out = FusedEmbeddingTable(std::move(model_name), std::move(candidates),
                             std::move(bias), std::move(folded));
  // The construction above recomputes bounds from the rows; prefer the
  // persisted table when present so the file round-trips bit-for-bit.
  if (!stored_bounds.empty()) out->bounds_ = std::move(stored_bounds);
  return Status::OK();
}

void FusedEmbeddingTable::InstallFoldedRows(baselines::KgcModel* model) const {
  CAME_CHECK(model != nullptr);
  if (!has_folded_rows()) return;
  model->SetFoldedEncoderCache(folded_rows_.Clone());
}

}  // namespace came::infer
