#include "kg/vocab.h"

#include "common/logging.h"

namespace came::kg {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kGene:
      return "Gene";
    case EntityType::kCompound:
      return "Compound";
    case EntityType::kDisease:
      return "Disease";
    case EntityType::kSideEffect:
      return "SideEffect";
    case EntityType::kSymptom:
      return "Symptom";
    case EntityType::kAnatomy:
      return "Anatomy";
    case EntityType::kOther:
      return "Other";
  }
  return "Unknown";
}

int64_t Vocab::AddEntity(const std::string& name, EntityType type) {
  auto it = entity_ids_.find(name);
  if (it != entity_ids_.end()) return it->second;
  const int64_t id = num_entities();
  entity_ids_.emplace(name, id);
  entity_names_.push_back(name);
  entity_types_.push_back(type);
  return id;
}

int64_t Vocab::AddRelation(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  const int64_t id = num_relations();
  relation_ids_.emplace(name, id);
  relation_names_.push_back(name);
  return id;
}

int64_t Vocab::EntityId(const std::string& name) const {
  auto it = entity_ids_.find(name);
  return it == entity_ids_.end() ? -1 : it->second;
}

int64_t Vocab::RelationId(const std::string& name) const {
  auto it = relation_ids_.find(name);
  return it == relation_ids_.end() ? -1 : it->second;
}

const std::string& Vocab::EntityName(int64_t id) const {
  CAME_CHECK_GE(id, 0);
  CAME_CHECK_LT(id, num_entities());
  return entity_names_[static_cast<size_t>(id)];
}

const std::string& Vocab::RelationName(int64_t id) const {
  CAME_CHECK_GE(id, 0);
  CAME_CHECK_LT(id, num_relations());
  return relation_names_[static_cast<size_t>(id)];
}

EntityType Vocab::entity_type(int64_t id) const {
  CAME_CHECK_GE(id, 0);
  CAME_CHECK_LT(id, num_entities());
  return entity_types_[static_cast<size_t>(id)];
}

std::vector<int64_t> Vocab::EntitiesOfType(EntityType type) const {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < num_entities(); ++i) {
    if (entity_types_[static_cast<size_t>(i)] == type) out.push_back(i);
  }
  return out;
}

}  // namespace came::kg
