#ifndef CAME_KG_DATASET_H_
#define CAME_KG_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace came::kg {

/// A split multimodal BKG dataset (structural part — modality features
/// live in encoders::FeatureBank, keyed by entity id).
///
/// Relation id convention (paper Section IV-D): for every relation r in
/// [0, R) there is an inverse relation r + R, and each triple (h, r, t)
/// is augmented with (t, r + R, h). Models allocate 2R relation
/// embeddings; evaluation ranks tails only, covering head prediction via
/// the inverse triples.
struct Dataset {
  std::string name;
  Vocab vocab;
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;

  int64_t num_entities() const { return vocab.num_entities(); }
  /// Number of base (non-inverse) relations.
  int64_t num_relations() const { return vocab.num_relations(); }
  /// Relation count including inverses: models embed this many.
  int64_t num_relations_with_inverses() const {
    return 2 * vocab.num_relations();
  }
  int64_t InverseRelation(int64_t r) const {
    return r < num_relations() ? r + num_relations() : r - num_relations();
  }

  /// Training triples plus their inverses (the 1-to-N training set).
  std::vector<Triple> TrainWithInverses() const;
  /// All known triples (train+valid+test), no inverses.
  std::vector<Triple> AllTriples() const;

  /// Writes entities.tsv / relations.tsv / {train,valid,test}.tsv.
  Status SaveTsv(const std::string& dir) const;
  /// Loads a dataset saved by SaveTsv.
  static Result<Dataset> LoadTsv(const std::string& dir,
                                 const std::string& name);
};

/// Deterministically splits `triples` into 8:1:1 train/valid/test
/// (paper Section V-A) after a seeded shuffle.
void SplitTriples(std::vector<Triple> triples, Rng* rng,
                  std::vector<Triple>* train, std::vector<Triple>* valid,
                  std::vector<Triple>* test, double train_frac = 0.8,
                  double valid_frac = 0.1);

}  // namespace came::kg

#endif  // CAME_KG_DATASET_H_
