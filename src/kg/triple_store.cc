#include "kg/triple_store.h"

namespace came::kg {

bool TripleStore::Add(const Triple& t) {
  if (!index_.insert(t).second) return false;
  triples_.push_back(t);
  return true;
}

bool TripleStore::Contains(const Triple& t) const {
  return index_.count(t) > 0;
}

}  // namespace came::kg
