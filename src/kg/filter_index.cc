#include "kg/filter_index.h"

#include <algorithm>

#include "common/logging.h"

namespace came::kg {

FilterIndex::FilterIndex(int64_t num_entities, int64_t num_relations)
    : num_entities_(num_entities), num_relations_(num_relations) {
  CAME_CHECK_GT(num_entities, 0);
  CAME_CHECK_GT(num_relations, 0);
}

void FilterIndex::AddTriples(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) {
    CAME_CHECK_LT(t.rel, num_relations_) << "index base relations only";
    tails_[Key(t.head, t.rel)].push_back(t.tail);
    tails_[Key(t.tail, t.rel + num_relations_)].push_back(t.head);
  }
  // Dedup each posting list.
  for (auto& [_, v] : tails_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
}

const std::vector<int64_t>& FilterIndex::Tails(int64_t head,
                                               int64_t rel) const {
  auto it = tails_.find(Key(head, rel));
  return it == tails_.end() ? empty_ : it->second;
}

bool FilterIndex::Contains(int64_t head, int64_t rel, int64_t tail) const {
  const auto& v = Tails(head, rel);
  return std::binary_search(v.begin(), v.end(), tail);
}

}  // namespace came::kg
