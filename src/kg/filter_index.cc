#include "kg/filter_index.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace came::kg {

FilterIndex::FilterIndex(int64_t num_entities, int64_t num_relations)
    : num_entities_(num_entities), num_relations_(num_relations) {
  CAME_CHECK_GT(num_entities, 0);
  CAME_CHECK_GT(num_relations, 0);
  offsets_.push_back(0);
}

void FilterIndex::AddTriples(const std::vector<Triple>& triples) {
  // Expand the current CSR back into (key, tail) pairs, append the new
  // postings, and rebuild. AddTriples is a build-time call (per split);
  // queries dominate, so the layout is optimised for them.
  std::vector<std::pair<uint64_t, int64_t>> pairs;
  pairs.reserve(values_.size() + 2 * triples.size());
  for (size_t k = 0; k < keys_.size(); ++k) {
    for (int64_t i = offsets_[k]; i < offsets_[k + 1]; ++i) {
      pairs.emplace_back(keys_[k], values_[i]);
    }
  }
  for (const Triple& t : triples) {
    CAME_CHECK_LT(t.rel, num_relations_) << "index base relations only";
    pairs.emplace_back(Key(t.head, t.rel), t.tail);
    pairs.emplace_back(Key(t.tail, t.rel + num_relations_), t.head);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  keys_.clear();
  offsets_.assign(1, 0);
  values_.clear();
  values_.reserve(pairs.size());
  for (const auto& [key, tail] : pairs) {
    if (keys_.empty() || keys_.back() != key) {
      keys_.push_back(key);
      offsets_.push_back(offsets_.back());
    }
    values_.push_back(tail);
    ++offsets_.back();
  }
}

std::span<const int64_t> FilterIndex::Tails(int64_t head, int64_t rel) const {
  const uint64_t key = Key(head, rel);
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return {};
  const size_t k = static_cast<size_t>(it - keys_.begin());
  return {values_.data() + offsets_[k],
          static_cast<size_t>(offsets_[k + 1] - offsets_[k])};
}

std::span<const int64_t> FilterIndex::TailsInRange(int64_t head, int64_t rel,
                                                   int64_t begin,
                                                   int64_t end) const {
  const std::span<const int64_t> all = Tails(head, rel);
  const auto lo = std::lower_bound(all.begin(), all.end(), begin);
  const auto hi = std::lower_bound(lo, all.end(), end);
  return all.subspan(static_cast<size_t>(lo - all.begin()),
                     static_cast<size_t>(hi - lo));
}

bool FilterIndex::Contains(int64_t head, int64_t rel, int64_t tail) const {
  const std::span<const int64_t> v = Tails(head, rel);
  return std::binary_search(v.begin(), v.end(), tail);
}

}  // namespace came::kg
