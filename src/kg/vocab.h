#ifndef CAME_KG_VOCAB_H_
#define CAME_KG_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace came::kg {

/// Biological entity categories used by the generators, the per-relation
/// evaluation (Table IV), and the multimodal feature bank (only compounds
/// carry molecules, etc.).
enum class EntityType {
  kGene = 0,
  kCompound,
  kDisease,
  kSideEffect,
  kSymptom,
  kAnatomy,
  kOther,
};

const char* EntityTypeName(EntityType type);

/// Bidirectional string<->id mapping for entities (with types) and
/// relations. Ids are dense and assigned in insertion order.
class Vocab {
 public:
  /// Adds (or finds) an entity; returns its id.
  int64_t AddEntity(const std::string& name, EntityType type);
  /// Adds (or finds) a relation; returns its id.
  int64_t AddRelation(const std::string& name);

  /// Id lookup; -1 when absent.
  int64_t EntityId(const std::string& name) const;
  int64_t RelationId(const std::string& name) const;

  const std::string& EntityName(int64_t id) const;
  const std::string& RelationName(int64_t id) const;
  EntityType entity_type(int64_t id) const;

  int64_t num_entities() const {
    return static_cast<int64_t>(entity_names_.size());
  }
  int64_t num_relations() const {
    return static_cast<int64_t>(relation_names_.size());
  }

  /// All entity ids of one type.
  std::vector<int64_t> EntitiesOfType(EntityType type) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<EntityType> entity_types_;
  std::unordered_map<std::string, int64_t> entity_ids_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, int64_t> relation_ids_;
};

}  // namespace came::kg

#endif  // CAME_KG_VOCAB_H_
