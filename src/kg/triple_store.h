#ifndef CAME_KG_TRIPLE_STORE_H_
#define CAME_KG_TRIPLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace came::kg {

/// One (head, relation, tail) fact.
struct Triple {
  int64_t head;
  int64_t rel;
  int64_t tail;

  friend bool operator==(const Triple& a, const Triple& b) = default;
};

struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t v : {static_cast<uint64_t>(t.head),
                       static_cast<uint64_t>(t.rel),
                       static_cast<uint64_t>(t.tail)}) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Deduplicating triple container preserving insertion order.
class TripleStore {
 public:
  /// Returns false if the triple was already present.
  bool Add(const Triple& t);
  bool Contains(const Triple& t) const;
  int64_t size() const { return static_cast<int64_t>(triples_.size()); }
  const Triple& operator[](int64_t i) const {
    return triples_[static_cast<std::size_t>(i)];
  }
  const std::vector<Triple>& triples() const { return triples_; }

 private:
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> index_;
};

}  // namespace came::kg

#endif  // CAME_KG_TRIPLE_STORE_H_
