#ifndef CAME_KG_FILTER_INDEX_H_
#define CAME_KG_FILTER_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kg/triple_store.h"

namespace came::kg {

/// Maps (head, relation) -> all known tails, over original *and* inverse
/// relations. Used for:
///   * the filtered evaluation setting (mask known true triples other than
///     the one being ranked, following Bordes et al.), and
///   * building 1-to-N multi-label training targets.
///
/// Storage is a sorted CSR layout — one flat sorted key array, one offsets
/// array, one flat tail array — instead of a per-key hash map of vectors.
/// At DRKG scale the map version costs a heap allocation plus ~2x pointer
/// overhead per (head, rel) key; the CSR version is three contiguous
/// arrays, O(log #keys) lookup, and its posting lists are sorted ranges
/// that panel sweeps can subset with a binary search (TailsInRange).
class FilterIndex {
 public:
  /// `num_relations` counts base relations only; the index also stores
  /// (t, r + num_relations) -> h for every triple.
  FilterIndex(int64_t num_entities, int64_t num_relations);

  /// Indexes the triples (and their inverses). May be called repeatedly;
  /// each call merges into the index (rebuilding the CSR arrays).
  void AddTriples(const std::vector<Triple>& triples);

  /// Known tails for the (possibly inverse) relation, sorted ascending.
  /// Empty if none. The span is invalidated by the next AddTriples.
  std::span<const int64_t> Tails(int64_t head, int64_t rel) const;

  /// The subset of Tails(head, rel) falling in the id range [begin, end)
  /// — the shard-panel query: a panel sweep filters against only the
  /// postings that land inside the panel.
  std::span<const int64_t> TailsInRange(int64_t head, int64_t rel,
                                        int64_t begin, int64_t end) const;

  bool Contains(int64_t head, int64_t rel, int64_t tail) const;

  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations_with_inverses() const { return 2 * num_relations_; }
  /// Total stored postings across every (head, rel) key.
  int64_t num_postings() const {
    return static_cast<int64_t>(values_.size());
  }

 private:
  uint64_t Key(int64_t head, int64_t rel) const {
    return static_cast<uint64_t>(head) *
               static_cast<uint64_t>(2 * num_relations_) +
           static_cast<uint64_t>(rel);
  }

  int64_t num_entities_;
  int64_t num_relations_;
  // CSR over (head, rel) keys: keys_ sorted ascending; key k's postings
  // are values_[offsets_[k] .. offsets_[k+1]), each list sorted + unique.
  std::vector<uint64_t> keys_;
  std::vector<int64_t> offsets_;  // size keys_.size() + 1
  std::vector<int64_t> values_;
};

}  // namespace came::kg

#endif  // CAME_KG_FILTER_INDEX_H_
