#ifndef CAME_KG_FILTER_INDEX_H_
#define CAME_KG_FILTER_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kg/triple_store.h"

namespace came::kg {

/// Maps (head, relation) -> all known tails, over original *and* inverse
/// relations. Used for:
///   * the filtered evaluation setting (mask known true triples other than
///     the one being ranked, following Bordes et al.), and
///   * building 1-to-N multi-label training targets.
class FilterIndex {
 public:
  /// `num_relations` counts base relations only; the index also stores
  /// (t, r + num_relations) -> h for every triple.
  FilterIndex(int64_t num_entities, int64_t num_relations);

  /// Indexes the triples (and their inverses).
  void AddTriples(const std::vector<Triple>& triples);

  /// Known tails for the (possibly inverse) relation. Empty if none.
  const std::vector<int64_t>& Tails(int64_t head, int64_t rel) const;

  bool Contains(int64_t head, int64_t rel, int64_t tail) const;

  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations_with_inverses() const { return 2 * num_relations_; }

 private:
  uint64_t Key(int64_t head, int64_t rel) const {
    return static_cast<uint64_t>(head) *
               static_cast<uint64_t>(2 * num_relations_) +
           static_cast<uint64_t>(rel);
  }

  int64_t num_entities_;
  int64_t num_relations_;
  std::unordered_map<uint64_t, std::vector<int64_t>> tails_;
  std::vector<int64_t> empty_;
};

}  // namespace came::kg

#endif  // CAME_KG_FILTER_INDEX_H_
