#include "kg/dataset.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace came::kg {

std::vector<Triple> Dataset::TrainWithInverses() const {
  const int64_t offset = num_relations();
  std::vector<Triple> out;
  out.reserve(train.size() * 2);
  for (const Triple& t : train) {
    out.push_back(t);
    out.push_back({t.tail, t.rel + offset, t.head});
  }
  return out;
}

std::vector<Triple> Dataset::AllTriples() const {
  std::vector<Triple> out;
  out.reserve(train.size() + valid.size() + test.size());
  out.insert(out.end(), train.begin(), train.end());
  out.insert(out.end(), valid.begin(), valid.end());
  out.insert(out.end(), test.begin(), test.end());
  return out;
}

namespace {

Status WriteTriples(const std::string& path,
                    const std::vector<Triple>& triples) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  for (const Triple& t : triples) {
    out << t.head << '\t' << t.rel << '\t' << t.tail << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status ReadTriples(const std::string& path, std::vector<Triple>* triples) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    Triple t;
    if (!(ls >> t.head >> t.rel >> t.tail)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed triple");
    }
    triples->push_back(t);
  }
  return Status::OK();
}

}  // namespace

Status Dataset::SaveTsv(const std::string& dir) const {
  {
    std::ofstream out(dir + "/entities.tsv");
    if (!out) return Status::IOError("cannot open " + dir + "/entities.tsv");
    for (int64_t i = 0; i < vocab.num_entities(); ++i) {
      out << i << '\t' << vocab.EntityName(i) << '\t'
          << static_cast<int>(vocab.entity_type(i)) << '\n';
    }
  }
  {
    std::ofstream out(dir + "/relations.tsv");
    if (!out) return Status::IOError("cannot open " + dir + "/relations.tsv");
    for (int64_t i = 0; i < vocab.num_relations(); ++i) {
      out << i << '\t' << vocab.RelationName(i) << '\n';
    }
  }
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/train.tsv", train));
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/valid.tsv", valid));
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/test.tsv", test));
  return Status::OK();
}

Result<Dataset> Dataset::LoadTsv(const std::string& dir,
                                 const std::string& name) {
  Dataset ds;
  ds.name = name;
  {
    std::ifstream in(dir + "/entities.tsv");
    if (!in) return Status::IOError("cannot open " + dir + "/entities.tsv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      int64_t id;
      std::string ename;
      int type;
      if (!(ls >> id >> ename >> type)) {
        return Status::Corruption("malformed entity line: " + line);
      }
      const int64_t got = ds.vocab.AddEntity(ename, static_cast<EntityType>(type));
      if (got != id) return Status::Corruption("non-dense entity ids");
    }
  }
  {
    std::ifstream in(dir + "/relations.tsv");
    if (!in) return Status::IOError("cannot open " + dir + "/relations.tsv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      int64_t id;
      std::string rname;
      if (!(ls >> id >> rname)) {
        return Status::Corruption("malformed relation line: " + line);
      }
      const int64_t got = ds.vocab.AddRelation(rname);
      if (got != id) return Status::Corruption("non-dense relation ids");
    }
  }
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/train.tsv", &ds.train));
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/valid.tsv", &ds.valid));
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/test.tsv", &ds.test));
  return ds;
}

void SplitTriples(std::vector<Triple> triples, Rng* rng,
                  std::vector<Triple>* train, std::vector<Triple>* valid,
                  std::vector<Triple>* test, double train_frac,
                  double valid_frac) {
  CAME_CHECK(rng != nullptr);
  CAME_CHECK_GT(train_frac, 0.0);
  CAME_CHECK_LE(train_frac + valid_frac, 1.0);
  rng->Shuffle(&triples);
  const auto n = static_cast<int64_t>(triples.size());
  const auto n_train = static_cast<int64_t>(train_frac * n);
  const auto n_valid = static_cast<int64_t>(valid_frac * n);
  train->assign(triples.begin(), triples.begin() + n_train);
  valid->assign(triples.begin() + n_train,
                triples.begin() + n_train + n_valid);
  test->assign(triples.begin() + n_train + n_valid, triples.end());
}

}  // namespace came::kg
