#include "kg/dataset.h"

#include <fstream>

#include "common/flags.h"
#include "common/logging.h"

namespace came::kg {

std::vector<Triple> Dataset::TrainWithInverses() const {
  const int64_t offset = num_relations();
  std::vector<Triple> out;
  out.reserve(train.size() * 2);
  for (const Triple& t : train) {
    out.push_back(t);
    out.push_back({t.tail, t.rel + offset, t.head});
  }
  return out;
}

std::vector<Triple> Dataset::AllTriples() const {
  std::vector<Triple> out;
  out.reserve(train.size() + valid.size() + test.size());
  out.insert(out.end(), train.begin(), train.end());
  out.insert(out.end(), valid.begin(), valid.end());
  out.insert(out.end(), test.begin(), test.end());
  return out;
}

namespace {

Status WriteTriples(const std::string& path,
                    const std::vector<Triple>& triples) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  for (const Triple& t : triples) {
    out << t.head << '\t' << t.rel << '\t' << t.tail << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

// Splits a TSV line into exactly its tab-separated fields; a trailing
// '\r' (CRLF input) is stripped first.
std::vector<std::string> SplitTsv(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

Status MalformedAt(const std::string& path, int64_t lineno,
                   const std::string& why) {
  return Status::Corruption(path + ":" + std::to_string(lineno) + ": " + why);
}

// Parses a field through the checked-parse helper and range-checks it, so
// "12x", "", "9999999999999999999999" and ids past the vocab all fail
// with the offending line instead of silently mis-parsing.
Result<int64_t> ParseIdField(const std::string& field, int64_t limit,
                             const char* what) {
  Result<int64_t> parsed = flags::ParseInt(field);
  if (!parsed.ok()) {
    return Status::Corruption(std::string("non-numeric ") + what + " \"" +
                              field + "\"");
  }
  if (parsed.value() < 0 || parsed.value() >= limit) {
    return Status::Corruption(std::string(what) + " " + field +
                              " out of range [0, " + std::to_string(limit) +
                              ")");
  }
  return parsed.value();
}

Status ReadTriples(const std::string& path, int64_t num_entities,
                   int64_t num_relations, std::vector<Triple>* triples) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitTsv(line);
    if (fields.size() != 3) {
      return MalformedAt(path, lineno,
                         "expected 3 tab-separated fields, got " +
                             std::to_string(fields.size()));
    }
    Result<int64_t> head = ParseIdField(fields[0], num_entities, "head id");
    if (!head.ok()) return MalformedAt(path, lineno, head.status().message());
    Result<int64_t> rel = ParseIdField(fields[1], num_relations, "relation id");
    if (!rel.ok()) return MalformedAt(path, lineno, rel.status().message());
    Result<int64_t> tail = ParseIdField(fields[2], num_entities, "tail id");
    if (!tail.ok()) return MalformedAt(path, lineno, tail.status().message());
    triples->push_back({head.value(), rel.value(), tail.value()});
  }
  return Status::OK();
}

}  // namespace

Status Dataset::SaveTsv(const std::string& dir) const {
  {
    std::ofstream out(dir + "/entities.tsv");
    if (!out) return Status::IOError("cannot open " + dir + "/entities.tsv");
    for (int64_t i = 0; i < vocab.num_entities(); ++i) {
      out << i << '\t' << vocab.EntityName(i) << '\t'
          << static_cast<int>(vocab.entity_type(i)) << '\n';
    }
  }
  {
    std::ofstream out(dir + "/relations.tsv");
    if (!out) return Status::IOError("cannot open " + dir + "/relations.tsv");
    for (int64_t i = 0; i < vocab.num_relations(); ++i) {
      out << i << '\t' << vocab.RelationName(i) << '\n';
    }
  }
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/train.tsv", train));
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/valid.tsv", valid));
  CAME_RETURN_IF_ERROR(WriteTriples(dir + "/test.tsv", test));
  return Status::OK();
}

Result<Dataset> Dataset::LoadTsv(const std::string& dir,
                                 const std::string& name) {
  Dataset ds;
  ds.name = name;
  {
    const std::string path = dir + "/entities.tsv";
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::string line;
    int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const std::vector<std::string> fields = SplitTsv(line);
      if (fields.size() != 3) {
        return MalformedAt(path, lineno,
                           "expected 3 tab-separated fields, got " +
                               std::to_string(fields.size()));
      }
      const Result<int64_t> id = flags::ParseInt(fields[0]);
      if (!id.ok()) {
        return MalformedAt(path, lineno,
                           "non-numeric entity id \"" + fields[0] + "\"");
      }
      if (fields[1].empty()) {
        return MalformedAt(path, lineno, "empty entity name");
      }
      const Result<int64_t> type = flags::ParseInt(fields[2]);
      if (!type.ok() || type.value() < 0 ||
          type.value() > static_cast<int64_t>(EntityType::kOther)) {
        return MalformedAt(path, lineno,
                           "invalid entity type \"" + fields[2] + "\"");
      }
      if (ds.vocab.EntityId(fields[1]) >= 0) {
        return MalformedAt(path, lineno,
                           "duplicate entity name \"" + fields[1] + "\"");
      }
      const int64_t got = ds.vocab.AddEntity(
          fields[1], static_cast<EntityType>(type.value()));
      if (got != id.value()) {
        return MalformedAt(path, lineno,
                           "non-dense entity ids (expected " +
                               std::to_string(got) + ", file says " +
                               fields[0] + ")");
      }
    }
  }
  {
    const std::string path = dir + "/relations.tsv";
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::string line;
    int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const std::vector<std::string> fields = SplitTsv(line);
      if (fields.size() != 2) {
        return MalformedAt(path, lineno,
                           "expected 2 tab-separated fields, got " +
                               std::to_string(fields.size()));
      }
      const Result<int64_t> id = flags::ParseInt(fields[0]);
      if (!id.ok()) {
        return MalformedAt(path, lineno,
                           "non-numeric relation id \"" + fields[0] + "\"");
      }
      if (fields[1].empty()) {
        return MalformedAt(path, lineno, "empty relation name");
      }
      if (ds.vocab.RelationId(fields[1]) >= 0) {
        return MalformedAt(path, lineno,
                           "duplicate relation name \"" + fields[1] + "\"");
      }
      const int64_t got = ds.vocab.AddRelation(fields[1]);
      if (got != id.value()) {
        return MalformedAt(path, lineno,
                           "non-dense relation ids (expected " +
                               std::to_string(got) + ", file says " +
                               fields[0] + ")");
      }
    }
  }
  if (ds.vocab.num_entities() == 0) {
    return Status::Corruption(dir + "/entities.tsv: no entities");
  }
  if (ds.vocab.num_relations() == 0) {
    return Status::Corruption(dir + "/relations.tsv: no relations");
  }
  const int64_t ne = ds.vocab.num_entities();
  const int64_t nr = ds.vocab.num_relations();
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/train.tsv", ne, nr, &ds.train));
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/valid.tsv", ne, nr, &ds.valid));
  CAME_RETURN_IF_ERROR(ReadTriples(dir + "/test.tsv", ne, nr, &ds.test));
  return ds;
}

void SplitTriples(std::vector<Triple> triples, Rng* rng,
                  std::vector<Triple>* train, std::vector<Triple>* valid,
                  std::vector<Triple>* test, double train_frac,
                  double valid_frac) {
  CAME_CHECK(rng != nullptr);
  CAME_CHECK_GT(train_frac, 0.0);
  CAME_CHECK_LE(train_frac + valid_frac, 1.0);
  rng->Shuffle(&triples);
  const auto n = static_cast<int64_t>(triples.size());
  const auto n_train = static_cast<int64_t>(train_frac * n);
  const auto n_valid = static_cast<int64_t>(valid_frac * n);
  train->assign(triples.begin(), triples.begin() + n_train);
  valid->assign(triples.begin() + n_train,
                triples.begin() + n_train + n_valid);
  test->assign(triples.begin() + n_train + n_valid, triples.end());
}

}  // namespace came::kg
