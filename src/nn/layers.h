#ifndef CAME_NN_LAYERS_H_
#define CAME_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/random.h"
#include "nn/module.h"

namespace came::nn {

/// Fully connected layer: y = x W^T + b with x of shape [B, in].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  ag::Var Forward(const ag::Var& x) const;

  const ag::Var& weight() const { return weight_; }

 private:
  ag::Var weight_;  // [out, in]
  ag::Var bias_;    // [out] or undefined
};

/// Embedding table with gather lookup (dense scatter-add gradients).
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
            double init_stddev = 0.0);  // 0 -> Xavier

  /// Rows for the given indices: [B, dim].
  ag::Var Forward(const std::vector<int64_t>& indices) const;
  /// The full table as a Var (for 1-to-N scoring against all entities).
  const ag::Var& table() const { return table_; }
  int64_t num_embeddings() const { return table_.dim(0); }
  int64_t dim() const { return table_.dim(1); }

 private:
  ag::Var table_;  // [N, dim]
};

/// 2-D convolution layer (stride 1, configurable zero padding).
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t pad, Rng* rng);

  ag::Var Forward(const ag::Var& x) const;
  int64_t pad() const { return pad_; }

 private:
  ag::Var weight_;  // [F, C, k, k]
  ag::Var bias_;    // [F]
  int64_t pad_;
};

/// LayerNorm over the trailing dimension with affine transform.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  ag::Var Forward(const ag::Var& x) const;

 private:
  ag::Var gamma_;
  ag::Var beta_;
};

/// Inverted dropout; active only in training mode.
class Dropout : public Module {
 public:
  Dropout(float p, Rng* rng);

  ag::Var Forward(const ag::Var& x) const;

 private:
  float p_;
  Rng* rng_;
};

}  // namespace came::nn

#endif  // CAME_NN_LAYERS_H_
