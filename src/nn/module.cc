#include "nn/module.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/io.h"
#include "common/logging.h"

namespace came::nn {

std::vector<ag::Var> Module::Parameters() const {
  std::vector<ag::Var> out;
  for (const auto& [_, p] : NamedParameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, ag::Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, ag::Var>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (const auto& [cname, p] : child->NamedParameters()) {
      out.emplace_back(name + "." + cname, p);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& [_, p] : NamedParameters()) n += p.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [_, child] : children_) child->SetTraining(training);
  OnSetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& [_, p] : NamedParameters()) {
    ag::Var v = p;
    v.ZeroGrad();
  }
}

ag::Var Module::RegisterParameter(const std::string& name,
                                  tensor::Tensor init) {
  for (const auto& [existing, _] : params_) {
    CAME_CHECK_NE(existing, name) << "duplicate parameter";
  }
  ag::Var v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::RegisterSubmodule(const std::string& name, Module* child) {
  CAME_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

std::vector<tensor::Tensor> Module::SnapshotParameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [_, p] : NamedParameters()) {
    out.push_back(p.value().Clone());
  }
  return out;
}

void Module::RestoreParameters(const std::vector<tensor::Tensor>& snapshot) {
  auto named = NamedParameters();
  CAME_CHECK_EQ(named.size(), snapshot.size());
  for (size_t i = 0; i < named.size(); ++i) {
    ag::Var p = named[i].second;
    CAME_CHECK(tensor::SameShape(p.shape(), snapshot[i].shape()))
        << named[i].first;
    std::copy(snapshot[i].data(), snapshot[i].data() + snapshot[i].numel(),
              p.mutable_value().data());
  }
}

Status Module::LoadParameterValues(
    const std::vector<std::pair<std::string, tensor::Tensor>>& named_values) {
  auto named = NamedParameters();
  if (named_values.size() != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch (given " +
        std::to_string(named_values.size()) + ", module " +
        std::to_string(named.size()) + ")");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named_values[i].first != named[i].first) {
      return Status::InvalidArgument("parameter name mismatch: given " +
                                     named_values[i].first +
                                     ", module expects " + named[i].first);
    }
    if (!tensor::SameShape(named_values[i].second.shape(),
                           named[i].second.shape())) {
      return Status::InvalidArgument("shape mismatch for " + named[i].first);
    }
  }
  for (size_t i = 0; i < named.size(); ++i) {
    const tensor::Tensor& src = named_values[i].second;
    ag::Var p = named[i].second;
    std::copy(src.data(), src.data() + src.numel(),
              p.mutable_value().data());
  }
  return Status::OK();
}

namespace {
constexpr uint32_t kMagic = 0x43414d45;  // "CAME"
}  // namespace

Status Module::SaveParameters(const std::string& path) const {
  // Serialise into memory, then publish with a single atomic replacement:
  // a torn save (crash, ENOSPC) leaves any previous file intact.
  std::string buf;
  auto append = [&buf](const void* p, size_t n) {
    buf.append(static_cast<const char*>(p), n);
  };
  const auto named = NamedParameters();
  const uint32_t magic = kMagic;
  const uint64_t count = named.size();
  append(&magic, sizeof(magic));
  append(&count, sizeof(count));
  for (const auto& [name, p] : named) {
    const uint64_t name_len = name.size();
    append(&name_len, sizeof(name_len));
    append(name.data(), name_len);
    const uint64_t ndim = p.shape().size();
    append(&ndim, sizeof(ndim));
    for (int64_t d : p.shape()) append(&d, sizeof(d));
    append(p.value().data(), static_cast<size_t>(p.numel()) * sizeof(float));
  }
  return io::WriteFileAtomic(path, buf.data(), buf.size());
}

Status Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::Corruption(path + ": not a CamE parameter file");
  }
  if (count > (1u << 20)) return Status::Corruption("bad parameter count");
  // Decode the whole file into memory first; the module is only touched by
  // the final LoadParameterValues, so a truncated or mismatched file
  // cannot leave it half-loaded.
  std::vector<std::pair<std::string, tensor::Tensor>> decoded;
  decoded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) return Status::Corruption("bad name length");
    std::string name(name_len, 0);
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in || ndim > 8) return Status::Corruption("bad ndim");
    tensor::Shape shape(ndim);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!in) return Status::Corruption("truncated shape for " + name);
    int64_t numel = 1;
    for (int64_t d : shape) {
      if (d < 0 || (d > 0 && numel > (int64_t{1} << 40) / d)) {
        return Status::Corruption("bad dimension for " + name);
      }
      numel *= d;
    }
    tensor::Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) return Status::Corruption("truncated data for " + name);
    decoded.emplace_back(std::move(name), std::move(t));
  }
  return LoadParameterValues(decoded);
}

}  // namespace came::nn
