#include "nn/module.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/logging.h"

namespace came::nn {

std::vector<ag::Var> Module::Parameters() const {
  std::vector<ag::Var> out;
  for (const auto& [_, p] : NamedParameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, ag::Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, ag::Var>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (const auto& [cname, p] : child->NamedParameters()) {
      out.emplace_back(name + "." + cname, p);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& [_, p] : NamedParameters()) n += p.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [_, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& [_, p] : NamedParameters()) {
    ag::Var v = p;
    v.ZeroGrad();
  }
}

ag::Var Module::RegisterParameter(const std::string& name,
                                  tensor::Tensor init) {
  for (const auto& [existing, _] : params_) {
    CAME_CHECK_NE(existing, name) << "duplicate parameter";
  }
  ag::Var v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::RegisterSubmodule(const std::string& name, Module* child) {
  CAME_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

std::vector<tensor::Tensor> Module::SnapshotParameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [_, p] : NamedParameters()) {
    out.push_back(p.value().Clone());
  }
  return out;
}

void Module::RestoreParameters(const std::vector<tensor::Tensor>& snapshot) {
  auto named = NamedParameters();
  CAME_CHECK_EQ(named.size(), snapshot.size());
  for (size_t i = 0; i < named.size(); ++i) {
    ag::Var p = named[i].second;
    CAME_CHECK(tensor::SameShape(p.shape(), snapshot[i].shape()))
        << named[i].first;
    std::copy(snapshot[i].data(), snapshot[i].data() + snapshot[i].numel(),
              p.mutable_value().data());
  }
}

namespace {
constexpr uint32_t kMagic = 0x43414d45;  // "CAME"
}  // namespace

Status Module::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  const auto named = NamedParameters();
  const uint32_t magic = kMagic;
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, p] : named) {
    const uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t ndim = p.shape().size();
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : p.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::Corruption(path + ": not a CamE parameter file");
  }
  auto named = NamedParameters();
  if (count != named.size()) {
    return Status::InvalidArgument(
        path + ": parameter count mismatch (file " + std::to_string(count) +
        ", module " + std::to_string(named.size()) + ")");
  }
  for (auto& [expected_name, p] : named) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) return Status::Corruption("bad name length");
    std::string name(name_len, 0);
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != expected_name) {
      return Status::InvalidArgument("parameter name mismatch: file has " +
                                     name + ", module expects " +
                                     expected_name);
    }
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in || ndim > 8) return Status::Corruption("bad ndim");
    tensor::Shape shape(ndim);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!tensor::SameShape(shape, p.shape())) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    ag::Var v = p;
    in.read(reinterpret_cast<char*>(v.mutable_value().data()),
            static_cast<std::streamsize>(v.numel() * sizeof(float)));
    if (!in) return Status::Corruption("truncated data for " + name);
  }
  return Status::OK();
}

}  // namespace came::nn
