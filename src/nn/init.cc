#include "nn/init.h"

#include <cmath>

#include "common/logging.h"

namespace came::nn {

namespace {
void FanInOut(const tensor::Shape& shape, double* fan_in, double* fan_out) {
  CAME_CHECK(!shape.empty());
  if (shape.size() == 1) {
    *fan_in = static_cast<double>(shape[0]);
    *fan_out = static_cast<double>(shape[0]);
    return;
  }
  // Treat leading dims beyond the trailing two as receptive field (conv).
  double receptive = 1.0;
  for (size_t d = 2; d < shape.size(); ++d) {
    receptive *= static_cast<double>(shape[d]);
  }
  *fan_out = static_cast<double>(shape[0]) * receptive;
  *fan_in = static_cast<double>(shape[1]) * receptive;
}
}  // namespace

tensor::Tensor XavierNormal(tensor::Shape shape, Rng* rng, double gain) {
  double fan_in;
  double fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  const double stddev = gain * std::sqrt(2.0 / (fan_in + fan_out));
  return NormalInit(std::move(shape), rng, stddev);
}

tensor::Tensor XavierUniform(tensor::Shape shape, Rng* rng, double gain) {
  double fan_in;
  double fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  const double bound = gain * std::sqrt(6.0 / (fan_in + fan_out));
  return UniformInit(std::move(shape), rng, -bound, bound);
}

tensor::Tensor EmbeddingInit(tensor::Shape shape, Rng* rng) {
  CAME_CHECK_EQ(shape.size(), 2u);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(shape[1]));
  return NormalInit(std::move(shape), rng, stddev);
}

tensor::Tensor NormalInit(tensor::Shape shape, Rng* rng, double stddev) {
  // fully-written: the sampling loop stores every element
  tensor::Tensor t = tensor::Tensor::Uninitialized(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

tensor::Tensor UniformInit(tensor::Shape shape, Rng* rng, double lo,
                           double hi) {
  // fully-written: the sampling loop stores every element
  tensor::Tensor t = tensor::Tensor::Uninitialized(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

}  // namespace came::nn
