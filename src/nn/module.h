#ifndef CAME_NN_MODULE_H_
#define CAME_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace came::nn {

/// Base class for neural network components. Concrete modules register
/// their trainable parameters and child modules in their constructor; the
/// registry supports recursive parameter collection for optimizers,
/// counting, and (de)serialisation-style traversal.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<ag::Var> Parameters() const;
  /// Parameters with their dotted path names ("mmf.w1", ...).
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;
  /// Total scalar parameter count.
  int64_t NumParameters() const;

  /// Training/eval mode (affects dropout etc.), propagated to children.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes gradients of every parameter.
  void ZeroGrad();

  /// Snapshot of all parameter values (deep copies), in NamedParameters
  /// order. Used for best-on-validation checkpointing.
  std::vector<tensor::Tensor> SnapshotParameters() const;
  /// Restores values captured by SnapshotParameters (shape-checked).
  void RestoreParameters(const std::vector<tensor::Tensor>& snapshot);

  /// Restores parameter values from (name, tensor) pairs in
  /// NamedParameters order. Unlike RestoreParameters this is a fallible
  /// load of external state: names and shapes are validated up front and
  /// no parameter is touched unless everything matches.
  Status LoadParameterValues(
      const std::vector<std::pair<std::string, tensor::Tensor>>& named_values);

  /// Binary serialisation of named parameters (name, shape, float data).
  /// The file is written atomically (temp + fsync + rename), so a crash
  /// mid-save can never corrupt a previous save under the same path.
  Status SaveParameters(const std::string& path) const;
  /// Loads parameters saved by SaveParameters; names and shapes must
  /// match this module exactly.
  Status LoadParameters(const std::string& path);

 protected:
  Module() = default;

  /// Registers a trainable parameter; returns the Var handle the module
  /// stores and uses in its forward pass.
  ag::Var RegisterParameter(const std::string& name, tensor::Tensor init);

  /// Registers a child module (not owned).
  void RegisterSubmodule(const std::string& name, Module* child);

  /// Hook invoked at the end of every SetTraining call (after the flag is
  /// set and children are updated). Modules that keep mode-dependent
  /// derived state — e.g. CamE's folded-encoder cache, which is only
  /// valid while parameters are frozen — override this to invalidate it
  /// when the mode flips back to training.
  virtual void OnSetTraining(bool training) { (void)training; }

 private:
  std::vector<std::pair<std::string, ag::Var>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace came::nn

#endif  // CAME_NN_MODULE_H_
