#include "nn/layers.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : weight_(RegisterParameter(
          "weight", XavierNormal({out_features, in_features}, rng))) {
  if (bias) {
    bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
  }
}

ag::Var Linear::Forward(const ag::Var& x) const {
  ag::Var out = ag::MatMul(x, ag::Transpose(weight_));
  if (bias_.defined()) out = ag::Add(out, bias_);
  return out;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
                     double init_stddev)
    : table_(RegisterParameter(
          "table", init_stddev > 0.0
                       ? NormalInit({num_embeddings, dim}, rng, init_stddev)
                       : XavierNormal({num_embeddings, dim}, rng))) {}

ag::Var Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ag::Gather(table_, indices);
}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t pad, Rng* rng)
    : weight_(RegisterParameter(
          "weight",
          XavierNormal({out_channels, in_channels, kernel, kernel}, rng))),
      bias_(RegisterParameter("bias", tensor::Tensor::Zeros({out_channels}))),
      pad_(pad) {}

ag::Var Conv2d::Forward(const ag::Var& x) const {
  return ag::Conv2d(x, weight_, bias_, pad_);
}

LayerNorm::LayerNorm(int64_t dim)
    : gamma_(RegisterParameter("gamma", tensor::Tensor::Full({dim}, 1.0f))),
      beta_(RegisterParameter("beta", tensor::Tensor::Zeros({dim}))) {}

ag::Var LayerNorm::Forward(const ag::Var& x) const {
  return ag::LayerNorm(x, gamma_, beta_);
}

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  CAME_CHECK_GE(p, 0.0f);
  CAME_CHECK_LT(p, 1.0f);
}

ag::Var Dropout::Forward(const ag::Var& x) const {
  return ag::Dropout(x, p_, rng_, training());
}

}  // namespace came::nn
