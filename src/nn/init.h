#ifndef CAME_NN_INIT_H_
#define CAME_NN_INIT_H_

#include "common/random.h"
#include "tensor/tensor.h"

namespace came::nn {

/// Xavier/Glorot normal initialisation (the paper initialises all learnable
/// parameters this way, Section V-B). fan_in/fan_out are inferred from the
/// trailing two dims (or the full extent for 1-D tensors).
tensor::Tensor XavierNormal(tensor::Shape shape, Rng* rng, double gain = 1.0);

/// Xavier/Glorot uniform initialisation.
tensor::Tensor XavierUniform(tensor::Shape shape, Rng* rng, double gain = 1.0);

/// i.i.d. normal entries.
tensor::Tensor NormalInit(tensor::Shape shape, Rng* rng, double stddev);

/// Init for embedding tables [N, d]: N(0, 1/sqrt(d)). Xavier would shrink
/// with the table height N, leaving distance-based scores degenerate.
tensor::Tensor EmbeddingInit(tensor::Shape shape, Rng* rng);

/// i.i.d. uniform entries in [lo, hi).
tensor::Tensor UniformInit(tensor::Shape shape, Rng* rng, double lo,
                           double hi);

}  // namespace came::nn

#endif  // CAME_NN_INIT_H_
