#include "autograd/variable.h"

#include <unordered_set>

#include "autograd/tape_audit.h"
#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace came::ag {

namespace {
thread_local bool g_grad_mode = true;
thread_local int64_t g_tape_nodes_recorded = 0;
thread_local int64_t g_no_tape_dispatches = 0;
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

int64_t TapeNodesRecordedThisThread() { return g_tape_nodes_recorded; }
int64_t NoTapeDispatchesThisThread() { return g_no_tape_dispatches; }

namespace internal {
void CountTapeNodeRecorded() { ++g_tape_nodes_recorded; }
void CountNoTapeDispatch() { ++g_no_tape_dispatches; }
}  // namespace internal

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

namespace internal {

void VarState::AccumulateGrad(const Tensor& g) {
  CAME_CHECK(tensor::SameShape(g.shape(), value.shape()))
      << "grad shape " << tensor::ShapeToString(g.shape()) << " vs value "
      << tensor::ShapeToString(value.shape())
      << audit::detail::CurrentBackwardContext();
  if (!has_grad) {
    grad = g.Clone();
    has_grad = true;
  } else {
    tensor::Axpy(1.0f, g, &grad);
  }
}

}  // namespace internal

Var::Var(Tensor value, bool requires_grad)
    : state_(std::make_shared<internal::VarState>()) {
  state_->value = std::move(value);
  state_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  CAME_CHECK(defined());
  return state_->value;
}

Tensor& Var::mutable_value() {
  CAME_CHECK(defined());
  return state_->value;
}

bool Var::requires_grad() const { return defined() && state_->requires_grad; }

Tensor Var::grad() const {
  CAME_CHECK(defined());
  if (!state_->has_grad) return Tensor::Zeros(state_->value.shape());
  return state_->grad;
}

Tensor& Var::mutable_grad() {
  CAME_CHECK(defined());
  CAME_CHECK(state_->has_grad) << "mutable_grad() before any backward pass";
  return state_->grad;
}

bool Var::has_grad() const { return defined() && state_->has_grad; }

void Var::ZeroGrad() {
  CAME_CHECK(defined());
  state_->has_grad = false;
  state_->grad = Tensor();
}

Var Var::Detach() const {
  CAME_CHECK(defined());
  return Var(state_->value, /*requires_grad=*/false);
}

Var Var::FromState(std::shared_ptr<internal::VarState> state) {
  Var v;
  v.state_ = std::move(state);
  return v;
}

void Var::Backward() {
  CAME_CHECK(defined());
  CAME_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";

  // Topological order over producer nodes (iterative post-order DFS).
  // Shared ownership keeps every node alive until the sweep finishes even
  // though the sweep itself severs tape edges.
  std::vector<std::shared_ptr<internal::Node>> order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    std::shared_ptr<internal::Node> node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (state_->producer) {
    visited.insert(state_->producer.get());
    stack.push_back({state_->producer, 0});
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      const std::shared_ptr<internal::Node>& child =
          f.node->inputs[f.next_input]->producer;
      ++f.next_input;
      if (child != nullptr && !visited.count(child.get())) {
        visited.insert(child.get());
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  // Opt-in structural/numeric auditing (CAME_TAPE_AUDIT). At kOff the
  // auditor costs one branch per node; the sweep below is otherwise
  // unchanged.
  audit::detail::BackwardAuditor auditor(state_);
  if (auditor.enabled()) auditor.BeforeSweep();

  state_->AccumulateGrad(Tensor::Full(state_->value.shape(), 1.0f));

  // Post-order lists children first; iterate reversed so each node sees
  // its output gradient fully accumulated before propagating. Edge
  // severing happens in a separate pass: clearing inputs mid-sweep would
  // destroy interior VarStates before their producing node runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = it->get();
    std::shared_ptr<internal::VarState> out = node->output.lock();
    if (out != nullptr && out->has_grad && node->backward) {
      if (auditor.enabled()) {
        auditor.BeginNode(node);
        node->backward(out->grad);
        auditor.EndNode(node);
      } else {
        node->backward(out->grad);
      }
    }
  }
  if (auditor.enabled()) auditor.AfterSweep();
  // Consume the tape: free interior activations and make double-backward
  // a no-op rather than a silent double-count.
  for (const auto& node : order) {
    if (auto out = node->output.lock()) out->producer.reset();
    node->backward = nullptr;
    node->inputs.clear();
  }
}

Var Const(Tensor value) { return Var(std::move(value), false); }

}  // namespace came::ag
