#ifndef CAME_AUTOGRAD_GRADCHECK_H_
#define CAME_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace came::ag {

/// Compares analytic gradients against central finite differences.
///
/// `fn` must map the given leaf Vars to a scalar Var, re-runnable with
/// perturbed leaf values (the checker mutates leaf tensors in place and
/// re-invokes `fn`). Returns the max absolute difference between the
/// analytic and numeric gradients across all leaves.
double GradCheck(const std::function<Var(const std::vector<Var>&)>& fn,
                 std::vector<Var> leaves, double epsilon = 1e-3);

}  // namespace came::ag

#endif  // CAME_AUTOGRAD_GRADCHECK_H_
