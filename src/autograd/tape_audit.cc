#include "autograd/tape_audit.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "autograd/op_registry.h"
#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace came::ag::audit {

namespace {

using ag::internal::Node;
using ag::internal::VarState;
using tensor::Shape;
using tensor::Tensor;

std::atomic<int> g_level_override{-1};

int ParseLevelFromEnv() {
  const char* env = std::getenv("CAME_TAPE_AUDIT");
  if (env == nullptr || *env == '\0') return static_cast<int>(AuditLevel::kOff);
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
    return static_cast<int>(AuditLevel::kOff);
  }
  if (std::strcmp(env, "shape") == 0) {
    return static_cast<int>(AuditLevel::kShape);
  }
  if (std::strcmp(env, "full") == 0) {
    return static_cast<int>(AuditLevel::kFull);
  }
  CAME_LOG(Warning) << "ignoring invalid CAME_TAPE_AUDIT=\"" << env
                    << "\" (expected off|shape|full); audit stays off";
  return static_cast<int>(AuditLevel::kOff);
}

/// The backward closure currently executing under an active auditor, used
/// to attribute CHECK failures raised inside op closures. Backward runs on
/// one thread; thread_local keeps concurrent Backwards independent.
thread_local const Node* tls_current_node = nullptr;

/// Everything reachable from one root: nodes in forward (post-)order and
/// the de-duplicated set of VarStates they touch. Collection itself
/// CHECK-fails on ownership cycles and expired interior outputs — a tape
/// with either would mis-propagate (or leak) before any shape bug shows.
struct TapeView {
  const Node* root_producer = nullptr;
  std::vector<const Node*> nodes;          // post-order: children first
  std::vector<const VarState*> states;     // unique, root included
};

std::string PathToNode(const Node* root, const Node* target);

const char* StateLabel(const VarState* s) {
  return s->producer == nullptr ? "leaf" : "interior";
}

/// Name of the op producing `s`, or "leaf"/"constant" for tape inputs.
std::string ProducerName(const VarState* s) {
  if (s->producer == nullptr) {
    return s->requires_grad ? "leaf parameter" : "constant leaf";
  }
  return "op '" + OpName(s->producer->op_id) + "'";
}

TapeView CollectTape(const std::shared_ptr<VarState>& root,
                     const char* when) {
  TapeView view;
  std::unordered_set<const VarState*> seen_states;
  auto add_state = [&](const VarState* s) {
    if (s != nullptr && seen_states.insert(s).second) {
      view.states.push_back(s);
    }
  };
  add_state(root.get());
  view.root_producer = root->producer.get();
  if (view.root_producer == nullptr) return view;

  // Iterative DFS with white/gray/black colouring: a gray node reached
  // again is a back edge, i.e. an ownership cycle that shared_ptr would
  // never free and Backward would propagate through incorrectly.
  enum class Color { kGray, kBlack };
  std::unordered_map<const Node*, Color> color;
  struct Frame {
    const Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  color[view.root_producer] = Color::kGray;
  stack.push_back({view.root_producer, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      const VarState* in = f.node->inputs[f.next_input].get();
      ++f.next_input;
      add_state(in);
      const Node* child = in->producer.get();
      if (child == nullptr) continue;
      auto it = color.find(child);
      if (it == color.end()) {
        color[child] = Color::kGray;
        stack.push_back({child, 0});
      } else {
        CAME_CHECK(it->second != Color::kGray)
            << "TapeAudit[" << when << "]: ownership cycle through op '"
            << OpName(child->op_id) << "' (tape: "
            << PathToNode(view.root_producer, f.node)
            << ") — the tape must be an acyclic DAG or Backward() "
            << "double-counts and the nodes leak";
      }
    } else {
      auto out = f.node->output.lock();
      CAME_CHECK(out != nullptr)
          << "TapeAudit[" << when << "]: interior output of op '"
          << OpName(f.node->op_id)
          << "' expired while the tape still references the node — its "
          << "gradient would be dropped silently";
      add_state(out.get());
      color[f.node] = Color::kBlack;
      view.nodes.push_back(f.node);
      stack.pop_back();
    }
  }
  return view;
}

/// Op-name chain from `target` up to the tape root, e.g.
/// "Mul <- SumAll <- <root>". Best-effort (first path found).
std::string PathToNode(const Node* root, const Node* target) {
  if (root == nullptr || target == nullptr) return "<detached>";
  // DFS from root following input edges, recording parents.
  std::unordered_map<const Node*, const Node*> parent;
  std::vector<const Node*> stack{root};
  parent[root] = nullptr;
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n == target) break;
    for (const auto& in : n->inputs) {
      const Node* child = in->producer.get();
      if (child != nullptr && parent.emplace(child, n).second) {
        stack.push_back(child);
      }
    }
  }
  if (parent.find(target) == parent.end()) return OpName(target->op_id);
  std::ostringstream path;
  int hops = 0;
  for (const Node* n = target; n != nullptr; n = parent[n]) {
    if (hops > 0) path << " <- ";
    if (++hops > 12) {
      path << "...";
      break;
    }
    path << OpName(n->op_id);
  }
  return path.str();
}

/// Index of the first non-finite element, or -1 if all finite.
int64_t FirstNonFinite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return i;
  }
  return -1;
}

std::string Fmt(float v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Grad/value shape agreement for every state that has a gradient. An
/// AccumulateGrad-bypassing backward (direct `state->grad = ...`) is the
/// only way to get here with a mismatch — exactly the bug class this
/// catches, since AccumulateGrad itself CHECKs the accumulate path.
void CheckGradShapes(const TapeView& view, const char* when) {
  for (const VarState* s : view.states) {
    if (!s->has_grad) continue;
    CAME_CHECK(tensor::SameShape(s->grad.shape(), s->value.shape()))
        << "TapeAudit[" << when << "]: gradient shape "
        << tensor::ShapeToString(s->grad.shape()) << " does not match value "
        << tensor::ShapeToString(s->value.shape()) << " on the "
        << StateLabel(s) << " output of " << ProducerName(s)
        << (s->producer
                ? " (tape: " +
                      PathToNode(view.root_producer, s->producer.get()) + ")"
                : std::string());
  }
}

/// Output shape of every NumPy-broadcasting op must equal the broadcast of
/// its two input shapes (catches forward-shape bugs in new binary ops).
void CheckBroadcastShapes(const TapeView& view, const char* when) {
  for (const Node* n : view.nodes) {
    if (n->op_id < 0) continue;
    const OpInfo info = OpRegistry::Instance().Get(n->op_id);
    if (info.broadcast != BroadcastSpec::kNumpy || n->inputs.size() != 2) {
      continue;
    }
    auto out = n->output.lock();
    if (out == nullptr) continue;
    const Shape expect = tensor::BroadcastShape(n->inputs[0]->value.shape(),
                                                n->inputs[1]->value.shape());
    CAME_CHECK(tensor::SameShape(out->value.shape(), expect))
        << "TapeAudit[" << when << "]: op '" << info.name
        << "' output shape " << tensor::ShapeToString(out->value.shape())
        << " is not the broadcast "
        << tensor::ShapeToString(expect) << " of its inputs (tape: "
        << PathToNode(view.root_producer, n) << ")";
  }
}

/// Gradient buffers must be private: a gradient shared between two
/// VarStates — or aliasing any forward value — means an in-place update
/// through one handle silently corrupts the other (the PR 2 ClipGradNorm
/// bug class). Forward values MAY legitimately alias (Detach shares the
/// value buffer), so only gradient buffers are constrained.
void CheckGradAliasing(const TapeView& view, const char* when) {
  std::unordered_map<const float*, const VarState*> grad_owner;
  for (const VarState* s : view.states) {
    if (!s->has_grad || s->grad.numel() == 0) continue;
    auto [it, inserted] = grad_owner.emplace(s->grad.data(), s);
    CAME_CHECK(inserted)
        << "TapeAudit[" << when << "]: the gradient buffers of "
        << ProducerName(it->second) << " and " << ProducerName(s)
        << " alias the same storage — accumulation through one corrupts "
        << "the other";
  }
  for (const VarState* s : view.states) {
    if (s->value.numel() == 0) continue;
    auto it = grad_owner.find(s->value.data());
    if (it == grad_owner.end()) continue;
    CAME_CHECK(false)
        << "TapeAudit[" << when << "]: the gradient buffer of "
        << ProducerName(it->second) << " aliases the forward value of "
        << ProducerName(s)
        << " — gradient accumulation would mutate a saved activation";
  }
}

/// Non-finite provenance over forward values: post-order guarantees a
/// node's producing inputs were checked first, so the first failing node
/// is the one that INTRODUCED the NaN/Inf (or consumed a non-finite leaf,
/// which is reported instead).
void CheckValuesFinite(const TapeView& view, const char* when) {
  for (const Node* n : view.nodes) {
    auto out = n->output.lock();
    if (out == nullptr) continue;
    const int64_t bad = FirstNonFinite(out->value);
    if (bad < 0) continue;
    for (const auto& in : n->inputs) {
      if (in->producer == nullptr && FirstNonFinite(in->value) >= 0) {
        CAME_CHECK(false)
            << "TapeAudit[" << when << "]: " << ProducerName(in.get())
            << " of shape " << tensor::ShapeToString(in->value.shape())
            << " feeds non-finite values into op '" << OpName(n->op_id)
            << "' (tape: " << PathToNode(view.root_producer, n) << ")";
      }
    }
    CAME_CHECK(false)
        << "TapeAudit[" << when << "]: op '" << OpName(n->op_id)
        << "' produced the first non-finite value ("
        << Fmt(out->value.data()[bad]) << " at flat index " << bad
        << " of " << tensor::ShapeToString(out->value.shape())
        << ") from finite inputs (tape: "
        << PathToNode(view.root_producer, n) << ")";
  }
}

/// Non-finite gradients, attributed to the state they sit on. The sweep
/// hook (BackwardAuditor::EndNode) catches the producing closure exactly;
/// this whole-tape variant is the backstop for standalone AuditTape calls.
void CheckGradsFinite(const TapeView& view, const char* when) {
  for (const VarState* s : view.states) {
    if (!s->has_grad) continue;
    const int64_t bad = FirstNonFinite(s->grad);
    CAME_CHECK(bad < 0)
        << "TapeAudit[" << when << "]: non-finite gradient ("
        << Fmt(s->grad.data()[bad]) << " at flat index " << bad
        << ") accumulated on the output of " << ProducerName(s)
        << (s->producer
                ? " (tape: " +
                      PathToNode(view.root_producer, s->producer.get()) + ")"
                : std::string());
  }
}

void RunAudit(const std::shared_ptr<VarState>& root, AuditLevel level,
              const char* when) {
  if (level == AuditLevel::kOff || root == nullptr) return;
  const TapeView view = CollectTape(root, when);
  CheckGradShapes(view, when);
  CheckBroadcastShapes(view, when);
  CheckGradAliasing(view, when);
  if (level == AuditLevel::kFull) {
    CheckValuesFinite(view, when);
    CheckGradsFinite(view, when);
  }
}

}  // namespace

AuditLevel TapeAuditLevel() {
  const int forced = g_level_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<AuditLevel>(forced);
  static const int env_level = ParseLevelFromEnv();
  return static_cast<AuditLevel>(env_level);
}

void SetTapeAuditLevel(AuditLevel level) {
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void AuditTape(const Var& root, const char* when) {
  CAME_CHECK(root.defined());
  RunAudit(root.state(), TapeAuditLevel(), when);
}

std::string DumpTape(const Var& root) {
  CAME_CHECK(root.defined());
  const TapeView view = CollectTape(root.state(), "dump");
  std::ostringstream os;
  for (size_t i = 0; i < view.nodes.size(); ++i) {
    const Node* n = view.nodes[i];
    os << i << ": " << OpName(n->op_id) << "(";
    for (size_t j = 0; j < n->inputs.size(); ++j) {
      if (j > 0) os << ", ";
      os << tensor::ShapeToString(n->inputs[j]->value.shape());
    }
    os << ")";
    if (auto out = n->output.lock()) {
      os << " -> " << tensor::ShapeToString(out->value.shape());
      if (out->has_grad) os << " [grad]";
    }
    os << "\n";
  }
  return os.str();
}

namespace detail {

BackwardAuditor::BackwardAuditor(std::shared_ptr<ag::internal::VarState> root)
    : level_(TapeAuditLevel()), root_(std::move(root)) {}

BackwardAuditor::~BackwardAuditor() { tls_current_node = nullptr; }

void BackwardAuditor::BeforeSweep() {
  RunAudit(root_, level_, "pre-backward");
}

void BackwardAuditor::BeginNode(const ag::internal::Node* node) {
  if (!enabled()) return;
  tls_current_node = node;
}

void BackwardAuditor::EndNode(const ag::internal::Node* node) {
  if (!enabled()) return;
  tls_current_node = nullptr;
  auto out = node->output.lock();
  const float* out_grad_buf =
      (out != nullptr && out->has_grad && out->grad.numel() > 0)
          ? out->grad.data()
          : nullptr;
  for (const auto& in : node->inputs) {
    if (!in->has_grad) continue;
    CAME_CHECK(tensor::SameShape(in->grad.shape(), in->value.shape()))
        << "TapeAudit[backward]: op '" << OpName(node->op_id)
        << "' produced a gradient of shape "
        << tensor::ShapeToString(in->grad.shape())
        << " for an input of shape "
        << tensor::ShapeToString(in->value.shape()) << " (tape: "
        << PathToNode(root_->producer.get(), node) << ")";
    if (in->grad.numel() > 0) {
      const float* buf = in->grad.data();
      CAME_CHECK(buf != out_grad_buf)
          << "TapeAudit[backward]: op '" << OpName(node->op_id)
          << "' made an input gradient alias its output gradient buffer";
      CAME_CHECK(buf != in->value.data() &&
                 (out == nullptr || buf != out->value.data()))
          << "TapeAudit[backward]: op '" << OpName(node->op_id)
          << "' made an input gradient alias a forward value buffer";
    }
    if (level_ == AuditLevel::kFull) {
      const int64_t bad = FirstNonFinite(in->grad);
      CAME_CHECK(bad < 0)
          << "TapeAudit[backward]: op '" << OpName(node->op_id)
          << "' is the first tape node whose backward left a non-finite "
          << "gradient (" << Fmt(in->grad.data()[bad]) << " at flat index "
          << bad << " of " << tensor::ShapeToString(in->grad.shape())
          << ") on the output of " << ProducerName(in.get()) << " (tape: "
          << PathToNode(root_->producer.get(), node) << ")";
    }
  }
}

void BackwardAuditor::AfterSweep() {
  RunAudit(root_, level_, "post-backward");
}

std::string CurrentBackwardContext() {
  if (tls_current_node == nullptr) return std::string();
  return " [in backward of op '" + OpName(tls_current_node->op_id) + "']";
}

}  // namespace detail
}  // namespace came::ag::audit
