#include "autograd/op_registry.h"

#include "common/logging.h"

namespace came::ag {

OpRegistry& OpRegistry::Instance() {
  // Leaked intentionally: op registration from function-local statics may
  // race static destruction at process exit otherwise.
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

int OpRegistry::Register(const std::string& name, BroadcastSpec broadcast) {
  CAME_CHECK(!name.empty()) << "op name must be non-empty";
  came::MutexLock lock(&mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    CAME_CHECK(ops_[static_cast<size_t>(it->second)].broadcast == broadcast)
        << "op '" << name << "' re-registered with a different broadcast spec";
    return it->second;
  }
  const int id = static_cast<int>(ops_.size());
  CAME_CHECK_LT(id, kMaxOps) << "op registry dispatch-counter table full";
  ops_.push_back(OpInfo{name, broadcast});
  by_name_.emplace(name, id);
  return id;
}

void OpRegistry::CountNoTapeDispatch(int id) {
  const size_t slot =
      (id >= 0 && id < kMaxOps) ? static_cast<size_t>(id) + 1 : 0;
  no_tape_dispatches_[slot].fetch_add(1, std::memory_order_relaxed);
}

int64_t OpRegistry::NoTapeDispatches(int id) const {
  const size_t slot =
      (id >= 0 && id < kMaxOps) ? static_cast<size_t>(id) + 1 : 0;
  return no_tape_dispatches_[slot].load(std::memory_order_relaxed);
}

int OpRegistry::Find(const std::string& name) const {
  came::MutexLock lock(&mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

OpInfo OpRegistry::Get(int id) const {
  came::MutexLock lock(&mu_);
  CAME_CHECK(id >= 0 && id < static_cast<int>(ops_.size()))
      << "unknown op id " << id;
  return ops_[static_cast<size_t>(id)];
}

int OpRegistry::size() const {
  came::MutexLock lock(&mu_);
  return static_cast<int>(ops_.size());
}

std::vector<OpInfo> OpRegistry::Snapshot() const {
  came::MutexLock lock(&mu_);
  return ops_;
}

std::string OpName(int id) {
  OpRegistry& registry = OpRegistry::Instance();
  if (id < 0 || id >= registry.size()) return "<unregistered>";
  return registry.Get(id).name;
}

}  // namespace came::ag
