#ifndef CAME_AUTOGRAD_TAPE_AUDIT_H_
#define CAME_AUTOGRAD_TAPE_AUDIT_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace came::ag::audit {

/// How much tape checking runs around every Backward() call (and through
/// AuditTape()). Selected by CAME_TAPE_AUDIT={off,shape,full}; default off.
enum class AuditLevel {
  /// No checks. Backward pays one branch per node; forward is unchanged.
  kOff = 0,
  /// Structural checks: ownership cycles, expired interior outputs,
  /// grad/value shape agreement (catches un-reduced broadcast gradients),
  /// broadcast output shapes, and gradient-buffer aliasing (two VarStates
  /// sharing one gradient buffer, or a gradient aliasing a forward value —
  /// the ClipGradNorm mutate-through-alias bug class).
  kShape = 1,
  /// kShape plus non-finite provenance: scans every forward value and every
  /// gradient, attributing the FIRST NaN/Inf to the tape node that produced
  /// it instead of a downstream symptom. Costs one extra pass over every
  /// buffer on the tape per Backward().
  kFull = 2,
};

/// Effective audit level: the SetTapeAuditLevel() override if set,
/// otherwise CAME_TAPE_AUDIT parsed once on first query.
AuditLevel TapeAuditLevel();

/// Overrides the environment (tests, embedders). Pass-through of the
/// previous override is not kept; call with the old value to restore.
void SetTapeAuditLevel(AuditLevel level);

/// Walks the live tape reachable from `root` and CHECK-fails with an
/// op-name + tape-path diagnostic on the first violation found at the
/// current audit level. `when` labels the failure message (e.g.
/// "pre-backward"). No-op at kOff. Callable at any point while the tape is
/// alive (before Backward() consumes it).
void AuditTape(const Var& root, const char* when);

/// Human-readable rendering of the tape reachable from `root`: one line per
/// node in forward (post-)order with op name and input -> output shapes.
/// Debugging aid; works at any audit level.
std::string DumpTape(const Var& root);

namespace detail {

/// Drives the per-node audit hooks inside Var::Backward(). All methods are
/// no-ops when the audit level is kOff; the only cost paid on the hot path
/// is the enabled() branch.
class BackwardAuditor {
 public:
  explicit BackwardAuditor(std::shared_ptr<ag::internal::VarState> root);
  ~BackwardAuditor();

  bool enabled() const { return level_ != AuditLevel::kOff; }

  /// Structural audit of the whole tape before the sweep seeds gradients.
  void BeforeSweep();
  /// Marks `node` as the running backward closure so CHECK failures raised
  /// inside it (e.g. AccumulateGrad shape mismatches) carry its op name.
  void BeginNode(const ag::internal::Node* node);
  /// Audits the gradients `node`'s backward just produced: shapes, buffer
  /// aliasing against the node's values, and (kFull) finiteness. Catching
  /// the first offending node here is what gives non-finite gradients a
  /// provenance instead of a downstream symptom.
  void EndNode(const ag::internal::Node* node);
  /// Whole-tape audit after the sweep, before the tape is consumed.
  void AfterSweep();

 private:
  AuditLevel level_;
  std::shared_ptr<ag::internal::VarState> root_;
};

/// Suffix naming the backward closure currently running under an active
/// BackwardAuditor (" [in backward of op 'X']"); empty otherwise. Appended
/// to AccumulateGrad CHECK failures so shape bugs name their op.
std::string CurrentBackwardContext();

}  // namespace detail
}  // namespace came::ag::audit

#endif  // CAME_AUTOGRAD_TAPE_AUDIT_H_
