#ifndef CAME_AUTOGRAD_VARIABLE_H_
#define CAME_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace came::ag {

using tensor::Shape;
using tensor::Tensor;

namespace internal {
struct Node;

/// Shared state behind a Var handle: the forward value, the (lazily
/// allocated) gradient accumulator, and the producing op node.
struct VarState {
  Tensor value;
  Tensor grad;          // valid iff has_grad
  bool requires_grad = false;
  bool has_grad = false;
  std::shared_ptr<Node> producer;  // null for leaves

  void AccumulateGrad(const Tensor& g);
};

/// One recorded op on the tape. `backward` reads the output gradient and
/// accumulates into the inputs' gradients. Ownership: VarState owns its
/// producer Node; a Node owns its input VarStates but holds its output
/// weakly, so the tape is an acyclic ownership DAG rooted at live Vars.
struct Node {
  /// OpRegistry id of the op that recorded this node (-1 when recorded
  /// outside the op library). Resolved back to a name by the tape auditor.
  int op_id = -1;
  std::vector<std::shared_ptr<VarState>> inputs;
  std::weak_ptr<VarState> output;
  std::function<void(const Tensor& grad_out)> backward;
};
}  // namespace internal

/// Differentiable tensor handle. Cheap to copy (shared state). Ops over
/// Vars (see autograd/ops.h) record a dynamic tape; `Backward()` on a
/// scalar result propagates gradients to every reachable leaf with
/// `requires_grad`.
class Var {
 public:
  /// Undefined handle.
  Var() = default;
  /// Wraps a tensor; `requires_grad` marks a trainable leaf.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return state_ != nullptr; }
  const Tensor& value() const;
  /// Mutable access to the forward value (parameter updates).
  Tensor& mutable_value();
  const Shape& shape() const { return value().shape(); }
  int64_t dim(int64_t i) const { return value().dim(i); }
  int64_t numel() const { return value().numel(); }

  bool requires_grad() const;
  /// Gradient tensor; zeros if backward has not reached this Var. Callers
  /// must treat the result as a value: whether it aliases the stored
  /// accumulator or is a fresh tensor is unspecified. To mutate the stored
  /// gradient, go through mutable_grad().
  Tensor grad() const;
  /// Mutable access to the stored gradient accumulator itself (optimizer
  /// hooks such as gradient clipping). CHECK-fails unless has_grad().
  Tensor& mutable_grad();
  bool has_grad() const;
  void ZeroGrad();

  /// A leaf Var sharing this value but cut from the tape (no gradient
  /// flows through the result).
  Var Detach() const;

  /// Runs reverse-mode accumulation from this scalar (numel()==1) Var.
  /// Consumes the tape: a second Backward over the same graph is a no-op
  /// for interior nodes.
  void Backward();

  // Internal: used by the op library.
  const std::shared_ptr<internal::VarState>& state() const { return state_; }
  static Var FromState(std::shared_ptr<internal::VarState> state);

 private:
  std::shared_ptr<internal::VarState> state_;
};

/// Convenience: constant (non-trainable) leaf.
Var Const(Tensor value);

/// Whether ops currently record the tape (true by default).
bool GradModeEnabled();

// -- tape telemetry ----------------------------------------------------------
// Ops record tape nodes on the thread that invokes them (kernels may
// parallelise *below* the op layer, but node construction never moves off
// the calling thread), so plain thread-local counters are exact. Sample
// before/after an interval and subtract; both counters are monotonic for
// the life of the thread.

/// Tape nodes recorded by ops on this thread.
int64_t TapeNodesRecordedThisThread();
/// Op calls on this thread that dispatched forward-only (grad mode off, or
/// no input required grad) and therefore allocated no tape node and no
/// type-erased backward closure.
int64_t NoTapeDispatchesThisThread();

namespace internal {
/// Counter bumps used by the op library (autograd/ops.cc).
void CountTapeNodeRecorded();
void CountNoTapeDispatch();
}  // namespace internal

/// RAII scope that disables tape recording — use for evaluation/inference
/// so forward passes allocate no graph.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace came::ag

#endif  // CAME_AUTOGRAD_VARIABLE_H_
