#ifndef CAME_AUTOGRAD_OPS_H_
#define CAME_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"

namespace came::ag {

// All ops are pure: they return a fresh Var and (when grad mode is on and
// any input requires grad) record a tape node. Broadcasting follows NumPy
// right-aligned semantics; gradients of broadcast operands are reduced
// back to their shape.
//
// Every op here registers itself (name + broadcast contract) in the
// OpRegistry (autograd/op_registry.h) and stamps its id on the recorded
// node, so the tape auditor (autograd/tape_audit.h, CAME_TAPE_AUDIT) can
// name the offending op in its diagnostics. New ops must follow suit —
// tools/check_op_coverage.py fails the lint suite for any op declared
// here without a registration and a gradcheck case.

// -- elementwise binary ------------------------------------------------------
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// -- elementwise unary -------------------------------------------------------
Var Neg(const Var& v);
Var Exp(const Var& v);
Var Log(const Var& v);
Var Sqrt(const Var& v);
Var Square(const Var& v);
Var Sigmoid(const Var& v);
Var Tanh(const Var& v);
Var Relu(const Var& v);
Var Scale(const Var& v, float s);
Var AddScalar(const Var& v, float s);
/// log(sigmoid(x)), numerically stable.
Var LogSigmoid(const Var& v);
Var Cos(const Var& v);
Var Sin(const Var& v);
Var Abs(const Var& v);

// -- linear algebra ----------------------------------------------------------
Var MatMul(const Var& a, const Var& b);
/// [B, m, k] x [B, k, n] -> [B, m, n].
Var BatchMatMul(const Var& a, const Var& b);
Var Transpose(const Var& v);       // 2-D
Var BatchTranspose(const Var& v);  // swap trailing dims of 3-D

// -- shape -------------------------------------------------------------------
Var Reshape(const Var& v, Shape new_shape);
Var Concat(const std::vector<Var>& parts, int64_t dim);
Var Slice(const Var& v, int64_t dim, int64_t start, int64_t len);

// -- reductions / normalisation ----------------------------------------------
Var SumAll(const Var& v);
Var MeanAll(const Var& v);
Var SumAlong(const Var& v, int64_t dim, bool keepdim);
Var MeanAlong(const Var& v, int64_t dim, bool keepdim);
Var SoftmaxAlong(const Var& v, int64_t dim);
/// LayerNorm over the last dimension with affine parameters gamma/beta
/// (shape = last dim). eps stabilises the variance.
Var LayerNorm(const Var& v, const Var& gamma, const Var& beta,
              float eps = 1e-5f);
/// LayerNorm over the last dimension without affine parameters (used by the
/// EX exchanging-fusion threshold in Eq. 10/11).
Var LayerNormNoAffine(const Var& v, float eps = 1e-5f);

// -- indexed -----------------------------------------------------------------
/// out[i] = matrix[indices[i]]; matrix is [N, d], result [B, d].
Var Gather(const Var& matrix, const std::vector<int64_t>& indices);
/// out[indices[i]] += src[i]; result [num_rows, d].
Var Scatter(const Var& src, const std::vector<int64_t>& indices,
            int64_t num_rows);

// -- selection ---------------------------------------------------------------
/// Elementwise select with a constant mask (no gradient through mask):
/// out = mask ? a : b.
Var WhereConst(const Tensor& mask, const Var& a, const Var& b);

// -- neural net primitives ---------------------------------------------------
/// 2-D convolution, stride 1, zero padding `pad`.
/// input [B, C, H, W], weight [F, C, kh, kw], bias [F] (optional: pass an
/// undefined Var to skip). Output [B, F, H', W'].
Var Conv2d(const Var& input, const Var& weight, const Var& bias, int64_t pad);
/// Inverted dropout; identity when !training or p == 0.
Var Dropout(const Var& v, float p, Rng* rng, bool training);

// -- fused attention ---------------------------------------------------------
/// Fused co-attention application (the TCA inner loop):
///   M[i][j] = a[i] * b[j] * inv_tau      (per batch row)
///   S       = softmax over i (per column j)
///   out[j]  = sum_i x[i] * S[i][j]
/// x, a, b are [B, d]; inv_tau is a scalar Var [1]; result is [B, d].
/// Mathematically identical to the composed BatchMatMul/Softmax pipeline
/// but with one saved buffer and a hand-derived backward, avoiding ~10
/// [B, d, d] intermediates per call.
Var CoAttentionApply(const Var& x, const Var& a, const Var& b,
                     const Var& inv_tau);

// -- losses ------------------------------------------------------------------
/// Mean binary cross entropy with logits (numerically stable); `targets`
/// is a constant tensor of the same shape.
Var BceWithLogitsMean(const Var& logits, const Tensor& targets);

}  // namespace came::ag

#endif  // CAME_AUTOGRAD_OPS_H_
