#ifndef CAME_AUTOGRAD_OP_REGISTRY_H_
#define CAME_AUTOGRAD_OP_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace came::ag {

/// Gradient contract between an op's output shape and its input shapes.
enum class BroadcastSpec {
  /// Input and output shapes are related by op-specific rules; the backward
  /// pass must produce gradients already shaped like each input.
  kNone,
  /// NumPy right-aligned broadcasting: the output shape is the broadcast of
  /// the two input shapes and the backward pass must REDUCE gradients back
  /// to each operand's shape before accumulating.
  kNumpy,
};

/// Static metadata for one differentiable op.
struct OpInfo {
  std::string name;
  BroadcastSpec broadcast = BroadcastSpec::kNone;
};

/// Process-wide registry of differentiable ops. Every op in autograd/ops.cc
/// registers itself on first use and stamps its id into the tape nodes it
/// records, which turns the tape from a bag of opaque closures into an
/// introspectable DAG: the tape auditor (autograd/tape_audit.h) resolves
/// node ids back to op names for diagnostics, and tools/check_op_coverage.py
/// cross-checks the registered set against ops.h and the gradcheck suite.
///
/// Registration is idempotent by name and thread-safe; ids are dense and
/// stable for the lifetime of the process.
class OpRegistry {
 public:
  static OpRegistry& Instance();

  /// Registers `name` (or returns its existing id). The broadcast spec of
  /// the first registration wins; re-registering with a conflicting spec
  /// CHECK-fails, catching copy-paste bugs between op implementations.
  int Register(const std::string& name,
               BroadcastSpec broadcast = BroadcastSpec::kNone)
      CAME_EXCLUDES(mu_);

  /// Id for `name`, or -1 if never registered.
  int Find(const std::string& name) const CAME_EXCLUDES(mu_);

  /// Copy of the metadata for `id`; CHECK-fails on out-of-range ids.
  OpInfo Get(int id) const CAME_EXCLUDES(mu_);

  int size() const CAME_EXCLUDES(mu_);

  /// Snapshot of every registered op, in registration order.
  std::vector<OpInfo> Snapshot() const CAME_EXCLUDES(mu_);

  /// Records one forward-only dispatch of `id` (grad mode off or no input
  /// requiring grad — the op executed without allocating a tape node).
  /// Lock-free: a relaxed atomic bump, safe from any thread, so the hot
  /// inference path never touches the registry mutex. Out-of-range ids
  /// (e.g. -1) are counted into a shared "unregistered" slot.
  void CountNoTapeDispatch(int id);
  /// Total forward-only dispatches recorded for `id` across all threads.
  int64_t NoTapeDispatches(int id) const;

  /// Maximum number of distinct ops the dispatch counters track; the 39
  /// registered ops sit far below it, and Register CHECK-fails before the
  /// table could overflow.
  static constexpr int kMaxOps = 256;

 private:
  OpRegistry() = default;

  /// Guards the name/metadata tables; the dispatch counters below are
  /// deliberately outside it (relaxed atomics on the hot inference path).
  mutable came::Mutex mu_;
  std::vector<OpInfo> ops_ CAME_GUARDED_BY(mu_);
  std::unordered_map<std::string, int> by_name_ CAME_GUARDED_BY(mu_);
  /// Index 0 counts unregistered ids; op `id` lives at `id + 1`.
  std::atomic<int64_t> no_tape_dispatches_[kMaxOps + 1] = {};
};

/// Resolves a tape node's op id to a printable name. Returns
/// "<unregistered>" for ids the registry does not know (e.g. -1, the
/// default for nodes recorded outside the op library).
std::string OpName(int id);

}  // namespace came::ag

#endif  // CAME_AUTOGRAD_OP_REGISTRY_H_
