#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "autograd/op_registry.h"
#include "common/fast_math.h"
#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace came::ag {

namespace {

namespace ts = came::tensor;
using internal::Node;
using internal::VarState;

bool NeedsGrad(const Var& v) { return v.defined() && v.requires_grad(); }

/// Registers `name` in the process-wide OpRegistry (idempotent); every op
/// below calls this once via a function-local static and stamps the id on
/// the tape nodes it records, keeping the tape introspectable for the
/// auditor (autograd/tape_audit.h) and the op-coverage linter.
int RegisterOp(const char* name,
               BroadcastSpec broadcast = BroadcastSpec::kNone) {
  return OpRegistry::Instance().Register(name, broadcast);
}

/// Creates the result Var, recording a tape node when needed. `backward`
/// receives the output gradient; it must accumulate into the captured
/// input states (guarding each on requires_grad).
///
/// `backward` is a deduced callable, not a std::function: on the
/// forward-only path (grad mode off, or no input requiring grad) the
/// closure is dropped without ever being type-erased, so an inference
/// forward pays no tape node, no std::function heap allocation, and no
/// refcount churn beyond the captures the caller already built.
template <typename BackwardFn>
Var MakeResult(int op_id, Tensor value, const std::vector<Var>& inputs,
               BackwardFn&& backward) {
  bool any = false;
  if (GradModeEnabled()) {
    for (const auto& v : inputs) any = any || NeedsGrad(v);
  }
  if (!any) {
    internal::CountNoTapeDispatch();
    OpRegistry::Instance().CountNoTapeDispatch(op_id);
    return Const(std::move(value));
  }
  auto node = std::make_shared<Node>();
  node->op_id = op_id;
  node->inputs.reserve(inputs.size());
  for (const auto& v : inputs) node->inputs.push_back(v.state());
  auto out = std::make_shared<VarState>();
  out->value = std::move(value);
  out->requires_grad = true;
  out->producer = node;
  node->output = out;
  node->backward = std::forward<BackwardFn>(backward);
  internal::CountTapeNodeRecorded();
  return Var::FromState(out);
}

using StatePtr = std::shared_ptr<VarState>;

void AccumReduced(const StatePtr& s, const Tensor& g) {
  if (!s->requires_grad) return;
  s->AccumulateGrad(ts::ReduceToShape(g, s->value.shape()));
}

void Accum(const StatePtr& s, const Tensor& g) {
  if (!s->requires_grad) return;
  s->AccumulateGrad(g);
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise binary
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("Add", BroadcastSpec::kNumpy);
  Tensor out = ts::Add(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs](const Tensor& g) {
    AccumReduced(as, g);
    AccumReduced(bs, g);
  });
}

Var Sub(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("Sub", BroadcastSpec::kNumpy);
  Tensor out = ts::Sub(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs](const Tensor& g) {
    AccumReduced(as, g);
    AccumReduced(bs, ts::Neg(g));
  });
}

Var Mul(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("Mul", BroadcastSpec::kNumpy);
  Tensor out = ts::Mul(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  Tensor av = a.value();
  Tensor bv = b.value();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs, av, bv](const Tensor& g) {
    AccumReduced(as, ts::Mul(g, bv));
    AccumReduced(bs, ts::Mul(g, av));
  });
}

Var Div(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("Div", BroadcastSpec::kNumpy);
  Tensor out = ts::Div(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  Tensor av = a.value();
  Tensor bv = b.value();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs, av, bv](const Tensor& g) {
    AccumReduced(as, ts::Div(g, bv));
    // db = -g * a / b^2
    AccumReduced(bs, ts::Neg(ts::Div(ts::Mul(g, av), ts::Square(bv))));
  });
}

// ---------------------------------------------------------------------------
// Elementwise unary
// ---------------------------------------------------------------------------

Var Neg(const Var& v) {
  static const int kOp = RegisterOp("Neg");
  auto s = v.state();
  return MakeResult(kOp, ts::Neg(v.value()), {v},
                    [s](const Tensor& g) { Accum(s, ts::Neg(g)); });
}

Var Exp(const Var& v) {
  static const int kOp = RegisterOp("Exp");
  Tensor out = ts::Exp(v.value());
  auto s = v.state();
  Tensor saved = out;
  return MakeResult(kOp, std::move(out), {v}, [s, saved](const Tensor& g) {
    Accum(s, ts::Mul(g, saved));
  });
}

Var Log(const Var& v) {
  static const int kOp = RegisterOp("Log");
  auto s = v.state();
  Tensor x = v.value();
  return MakeResult(kOp, ts::Log(v.value()), {v}, [s, x](const Tensor& g) {
    Accum(s, ts::Div(g, x));
  });
}

Var Sqrt(const Var& v) {
  static const int kOp = RegisterOp("Sqrt");
  Tensor out = ts::Sqrt(v.value());
  auto s = v.state();
  Tensor saved = out;
  return MakeResult(kOp, std::move(out), {v}, [s, saved](const Tensor& g) {
    // d sqrt(x) = 1 / (2 sqrt(x))
    Accum(s, ts::Div(g, ts::Scale(saved, 2.0f)));
  });
}

Var Square(const Var& v) {
  static const int kOp = RegisterOp("Square");
  auto s = v.state();
  Tensor x = v.value();
  return MakeResult(kOp, ts::Square(v.value()), {v}, [s, x](const Tensor& g) {
    Accum(s, ts::Mul(g, ts::Scale(x, 2.0f)));
  });
}

Var Sigmoid(const Var& v) {
  static const int kOp = RegisterOp("Sigmoid");
  Tensor out = ts::Sigmoid(v.value());
  auto s = v.state();
  Tensor y = out;
  return MakeResult(kOp, std::move(out), {v}, [s, y](const Tensor& g) {
    // y' = y (1 - y)
    Tensor one_minus = ts::AddScalar(ts::Neg(y), 1.0f);
    Accum(s, ts::Mul(g, ts::Mul(y, one_minus)));
  });
}

Var Tanh(const Var& v) {
  static const int kOp = RegisterOp("Tanh");
  Tensor out = ts::Tanh(v.value());
  auto s = v.state();
  Tensor y = out;
  return MakeResult(kOp, std::move(out), {v}, [s, y](const Tensor& g) {
    Tensor d = ts::AddScalar(ts::Neg(ts::Square(y)), 1.0f);
    Accum(s, ts::Mul(g, d));
  });
}

Var Relu(const Var& v) {
  static const int kOp = RegisterOp("Relu");
  Tensor out = ts::Relu(v.value());
  auto s = v.state();
  Tensor x = v.value();
  return MakeResult(kOp, std::move(out), {v}, [s, x](const Tensor& g) {
    // fully-written: ternary loop below stores every element of d
    Tensor d = Tensor::Uninitialized(g.shape());
    const float* px = x.data();
    const float* pg = g.data();
    float* pd = d.data();
    for (int64_t i = 0; i < d.numel(); ++i) pd[i] = px[i] > 0 ? pg[i] : 0.0f;
    Accum(s, d);
  });
}

Var Scale(const Var& v, float k) {
  static const int kOp = RegisterOp("Scale");
  auto s = v.state();
  return MakeResult(kOp, ts::Scale(v.value(), k), {v}, [s, k](const Tensor& g) {
    Accum(s, ts::Scale(g, k));
  });
}

Var AddScalar(const Var& v, float k) {
  static const int kOp = RegisterOp("AddScalar");
  auto s = v.state();
  return MakeResult(kOp, ts::AddScalar(v.value(), k), {v},
                    [s](const Tensor& g) { Accum(s, g); });
}

Var LogSigmoid(const Var& v) {
  static const int kOp = RegisterOp("LogSigmoid");
  // log sigmoid(x) = min(x, 0) - log(1 + exp(-|x|))
  Tensor x = v.value();
  // fully-written: the loop below stores every element of out
  Tensor out = Tensor::Uninitialized(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float xi = x.data()[i];
    out.data()[i] = std::min(xi, 0.0f) -
                    std::log1p(std::exp(-std::fabs(xi)));
  }
  auto s = v.state();
  return MakeResult(kOp, std::move(out), {v}, [s, x](const Tensor& g) {
    // d/dx log sigmoid(x) = sigmoid(-x)
    Accum(s, ts::Mul(g, ts::Sigmoid(ts::Neg(x))));
  });
}

namespace {
Tensor MapTensor(const Tensor& t, float (*f)(float)) {
  // fully-written: f is applied to (and stored at) every element
  Tensor out = Tensor::Uninitialized(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) out.data()[i] = f(t.data()[i]);
  return out;
}
}  // namespace

Var Cos(const Var& v) {
  static const int kOp = RegisterOp("Cos");
  Tensor x = v.value();
  auto s = v.state();
  return MakeResult(kOp, MapTensor(x, [](float a) { return std::cos(a); }), {v},
                    [s, x](const Tensor& g) {
                      Accum(s, ts::Mul(g, ts::Neg(MapTensor(x, [](float a) {
                                         return std::sin(a);
                                       }))));
                    });
}

Var Sin(const Var& v) {
  static const int kOp = RegisterOp("Sin");
  Tensor x = v.value();
  auto s = v.state();
  return MakeResult(kOp, MapTensor(x, [](float a) { return std::sin(a); }), {v},
                    [s, x](const Tensor& g) {
                      Accum(s, ts::Mul(g, MapTensor(x, [](float a) {
                                         return std::cos(a);
                                       })));
                    });
}

Var Abs(const Var& v) {
  static const int kOp = RegisterOp("Abs");
  Tensor x = v.value();
  auto s = v.state();
  return MakeResult(kOp, ts::Abs(x), {v}, [s, x](const Tensor& g) {
    // fully-written: the sign-flip loop stores every element of d
    Tensor d = Tensor::Uninitialized(g.shape());
    for (int64_t i = 0; i < d.numel(); ++i) {
      d.data()[i] = x.data()[i] >= 0 ? g.data()[i] : -g.data()[i];
    }
    Accum(s, d);
  });
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Var MatMul(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("MatMul");
  Tensor out = ts::MatMul(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  Tensor av = a.value();
  Tensor bv = b.value();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs, av, bv](const Tensor& g) {
    if (as->requires_grad) {
      as->AccumulateGrad(ts::MatMul(g, bv, false, /*trans_b=*/true));
    }
    if (bs->requires_grad) {
      bs->AccumulateGrad(ts::MatMul(av, g, /*trans_a=*/true, false));
    }
  });
}

Var BatchMatMul(const Var& a, const Var& b) {
  static const int kOp = RegisterOp("BatchMatMul");
  Tensor out = ts::BatchMatMul(a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  Tensor av = a.value();
  Tensor bv = b.value();
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs, av, bv](const Tensor& g) {
    if (as->requires_grad) {
      as->AccumulateGrad(ts::BatchMatMul(g, bv, false, /*trans_b=*/true));
    }
    if (bs->requires_grad) {
      bs->AccumulateGrad(ts::BatchMatMul(av, g, /*trans_a=*/true, false));
    }
  });
}

Var Transpose(const Var& v) {
  static const int kOp = RegisterOp("Transpose");
  auto s = v.state();
  return MakeResult(kOp, ts::Transpose2D(v.value()), {v}, [s](const Tensor& g) {
    Accum(s, ts::Transpose2D(g));
  });
}

Var BatchTranspose(const Var& v) {
  static const int kOp = RegisterOp("BatchTranspose");
  auto s = v.state();
  return MakeResult(kOp, ts::BatchTranspose(v.value()), {v}, [s](const Tensor& g) {
    Accum(s, ts::BatchTranspose(g));
  });
}

// ---------------------------------------------------------------------------
// Shape
// ---------------------------------------------------------------------------

Var Reshape(const Var& v, Shape new_shape) {
  static const int kOp = RegisterOp("Reshape");
  auto s = v.state();
  Shape old_shape = v.shape();
  // Clone to keep value buffers private to each Var on the tape.
  Tensor out = v.value().Clone().Reshape(std::move(new_shape));
  return MakeResult(kOp, std::move(out), {v}, [s, old_shape](const Tensor& g) {
    Accum(s, g.Clone().Reshape(old_shape));
  });
}

Var Concat(const std::vector<Var>& parts, int64_t dim) {
  static const int kOp = RegisterOp("Concat");
  CAME_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p.value());
  Tensor out = ts::Concat(values, dim);
  const int64_t nd = parts[0].value().ndim();
  const int64_t dim_pos = dim < 0 ? dim + nd : dim;

  std::vector<StatePtr> states;
  std::vector<int64_t> extents;
  for (const auto& p : parts) {
    states.push_back(p.state());
    extents.push_back(p.value().dim(dim_pos));
  }
  return MakeResult(kOp, std::move(out), parts,
                    [states, extents, dim_pos](const Tensor& g) {
                      int64_t offset = 0;
                      for (size_t i = 0; i < states.size(); ++i) {
                        if (states[i]->requires_grad) {
                          states[i]->AccumulateGrad(
                              ts::SliceAlong(g, dim_pos, offset, extents[i]));
                        }
                        offset += extents[i];
                      }
                    });
}

Var Slice(const Var& v, int64_t dim, int64_t start, int64_t len) {
  static const int kOp = RegisterOp("Slice");
  const int64_t nd = v.value().ndim();
  const int64_t dim_pos = dim < 0 ? dim + nd : dim;
  Tensor out = ts::SliceAlong(v.value(), dim_pos, start, len);
  auto s = v.state();
  Shape in_shape = v.shape();
  return MakeResult(kOp, std::move(out), {v},
                    [s, in_shape, dim_pos, start, len](const Tensor& g) {
                      if (!s->requires_grad) return;
                      Tensor full = Tensor::Zeros(in_shape);
                      // Write g into the sliced region.
                      int64_t outer = 1;
                      int64_t inner = 1;
                      const int64_t axis = in_shape[static_cast<size_t>(dim_pos)];
                      for (int64_t d = 0; d < dim_pos; ++d) {
                        outer *= in_shape[static_cast<size_t>(d)];
                      }
                      for (size_t d = static_cast<size_t>(dim_pos) + 1;
                           d < in_shape.size(); ++d) {
                        inner *= in_shape[d];
                      }
                      for (int64_t o = 0; o < outer; ++o) {
                        const float* src = g.data() + o * len * inner;
                        float* dst =
                            full.data() + (o * axis + start) * inner;
                        std::copy(src, src + len * inner, dst);
                      }
                      s->AccumulateGrad(full);
                    });
}

// ---------------------------------------------------------------------------
// Reductions / normalisation
// ---------------------------------------------------------------------------

Var SumAll(const Var& v) {
  static const int kOp = RegisterOp("SumAll");
  auto s = v.state();
  Shape in_shape = v.shape();
  return MakeResult(kOp, ts::SumAll(v.value()), {v},
                    [s, in_shape](const Tensor& g) {
                      Accum(s, Tensor::Full(in_shape, g.data()[0]));
                    });
}

Var MeanAll(const Var& v) {
  static const int kOp = RegisterOp("MeanAll");
  const float inv = 1.0f / static_cast<float>(v.numel());
  auto s = v.state();
  Shape in_shape = v.shape();
  Tensor out = Tensor::Scalar(ts::SumAllScalar(v.value()) * inv);
  return MakeResult(kOp, std::move(out), {v}, [s, in_shape, inv](const Tensor& g) {
    Accum(s, Tensor::Full(in_shape, g.data()[0] * inv));
  });
}

Var SumAlong(const Var& v, int64_t dim, bool keepdim) {
  static const int kOp = RegisterOp("SumAlong");
  const int64_t nd = v.value().ndim();
  const int64_t dim_pos = dim < 0 ? dim + nd : dim;
  Tensor out = ts::SumAlong(v.value(), dim_pos, keepdim);
  auto s = v.state();
  Shape in_shape = v.shape();
  return MakeResult(kOp, std::move(out), {v},
                    [s, in_shape, dim_pos](const Tensor& g) {
                      if (!s->requires_grad) return;
                      // Broadcast g back along the reduced axis.
                      Shape keep = in_shape;
                      keep[static_cast<size_t>(dim_pos)] = 1;
                      Tensor gk = g.Clone().Reshape(keep);
                      s->AccumulateGrad(
                          ts::Add(Tensor::Zeros(in_shape), gk));
                    });
}

Var MeanAlong(const Var& v, int64_t dim, bool keepdim) {
  // Composite op (Scale of SumAlong): records no node of its own, but is
  // registered so the registry reflects the full public op surface.
  static const int kOp = RegisterOp("MeanAlong");
  (void)kOp;
  const int64_t nd = v.value().ndim();
  const int64_t dim_pos = dim < 0 ? dim + nd : dim;
  const float inv =
      1.0f / static_cast<float>(v.value().dim(dim_pos));
  return Scale(SumAlong(v, dim, keepdim), inv);
}

Var SoftmaxAlong(const Var& v, int64_t dim) {
  static const int kOp = RegisterOp("SoftmaxAlong");
  const int64_t nd = v.value().ndim();
  const int64_t dim_pos = dim < 0 ? dim + nd : dim;
  Tensor out = ts::SoftmaxAlong(v.value(), dim_pos);
  auto s = v.state();
  Tensor y = out;
  return MakeResult(kOp, std::move(out), {v}, [s, y, dim_pos](const Tensor& g) {
    if (!s->requires_grad) return;
    // dx = y * (g - sum(g*y, dim))
    Tensor gy = ts::Mul(g, y);
    Tensor sum = ts::SumAlong(gy, dim_pos, /*keepdim=*/true);
    s->AccumulateGrad(ts::Mul(y, ts::Sub(g, sum)));
  });
}

namespace {

// Shared LayerNorm implementation; gamma/beta may be undefined Vars.
// `op_id` is the registered id of the public wrapper being recorded.
Var LayerNormImpl(int op_id, const Var& v, const Var& gamma, const Var& beta,
                  float eps) {
  const Tensor& x = v.value();
  const int64_t nd = x.ndim();
  CAME_CHECK_GE(nd, 1);
  const int64_t d = x.dim(nd - 1);
  const int64_t rows = x.numel() / d;
  const bool affine = gamma.defined();
  if (affine) {
    CAME_CHECK_EQ(gamma.numel(), d);
    CAME_CHECK_EQ(beta.numel(), d);
  }

  // The per-row pass below writes every element of all three buffers.
  Tensor xhat = Tensor::Uninitialized(x.shape());      // fully-written: per row
  Tensor inv_sigma = Tensor::Uninitialized(Shape{rows});  // fully-written: per row
  Tensor out = Tensor::Uninitialized(x.shape());       // fully-written: per row
  const float* px = x.data();
  float* ph = xhat.data();
  float* po = out.data();
  const float* pg = affine ? gamma.value().data() : nullptr;
  const float* pb = affine ? beta.value().data() : nullptr;
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * d;
    double mean = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = row[j] - mean;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    inv_sigma.data()[r] = inv;
    for (int64_t j = 0; j < d; ++j) {
      const float h = (row[j] - static_cast<float>(mean)) * inv;
      ph[r * d + j] = h;
      po[r * d + j] = affine ? h * pg[j] + pb[j] : h;
    }
  }

  auto xs = v.state();
  auto gs = affine ? gamma.state() : nullptr;
  auto bs = affine ? beta.state() : nullptr;
  std::vector<Var> inputs = {v};
  if (affine) {
    inputs.push_back(gamma);
    inputs.push_back(beta);
  }
  Tensor gamma_v = affine ? gamma.value() : Tensor();
  return MakeResult(
      op_id, std::move(out), inputs,
      [xs, gs, bs, xhat, inv_sigma, gamma_v, rows, d,
       affine](const Tensor& g) {
        const float* pgo = g.data();
        const float* ph = xhat.data();
        const float* pgm = affine ? gamma_v.data() : nullptr;
        if (affine && gs->requires_grad) {
          // Accumulates over rows with += — zeroed allocation.
          Tensor dgamma(gamma_v.shape());
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t j = 0; j < d; ++j) {
              dgamma.data()[j] += pgo[r * d + j] * ph[r * d + j];
            }
          }
          gs->AccumulateGrad(dgamma);
        }
        if (affine && bs->requires_grad) {
          Tensor dbeta(gamma_v.shape());
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t j = 0; j < d; ++j) {
              dbeta.data()[j] += pgo[r * d + j];
            }
          }
          bs->AccumulateGrad(dbeta);
        }
        if (xs->requires_grad) {
          // fully-written: the per-row loop stores every element of dx
          Tensor dx = Tensor::Uninitialized(xs->value.shape());
          for (int64_t r = 0; r < rows; ++r) {
            // ghat = g * gamma (or g); dx = (ghat - mean(ghat)
            //        - xhat * mean(ghat*xhat)) * inv_sigma
            double m1 = 0.0;
            double m2 = 0.0;
            for (int64_t j = 0; j < d; ++j) {
              const float gh =
                  affine ? pgo[r * d + j] * pgm[j] : pgo[r * d + j];
              m1 += gh;
              m2 += gh * ph[r * d + j];
            }
            m1 /= static_cast<double>(d);
            m2 /= static_cast<double>(d);
            const float inv = inv_sigma.data()[r];
            for (int64_t j = 0; j < d; ++j) {
              const float gh =
                  affine ? pgo[r * d + j] * pgm[j] : pgo[r * d + j];
              dx.data()[r * d + j] =
                  (gh - static_cast<float>(m1) -
                   ph[r * d + j] * static_cast<float>(m2)) *
                  inv;
            }
          }
          xs->AccumulateGrad(dx);
        }
      });
}

}  // namespace

Var LayerNorm(const Var& v, const Var& gamma, const Var& beta, float eps) {
  static const int kOp = RegisterOp("LayerNorm");
  CAME_CHECK(gamma.defined());
  CAME_CHECK(beta.defined());
  return LayerNormImpl(kOp, v, gamma, beta, eps);
}

Var LayerNormNoAffine(const Var& v, float eps) {
  static const int kOp = RegisterOp("LayerNormNoAffine");
  return LayerNormImpl(kOp, v, Var(), Var(), eps);
}

// ---------------------------------------------------------------------------
// Indexed
// ---------------------------------------------------------------------------

Var Gather(const Var& matrix, const std::vector<int64_t>& indices) {
  static const int kOp = RegisterOp("Gather");
  Tensor out = ts::GatherRows(matrix.value(), indices);
  auto s = matrix.state();
  const int64_t rows = matrix.value().dim(0);
  return MakeResult(kOp, std::move(out), {matrix},
                    [s, indices, rows](const Tensor& g) {
                      if (!s->requires_grad) return;
                      s->AccumulateGrad(ts::ScatterAddRows(g, indices, rows));
                    });
}

Var Scatter(const Var& src, const std::vector<int64_t>& indices,
            int64_t num_rows) {
  static const int kOp = RegisterOp("Scatter");
  Tensor out = ts::ScatterAddRows(src.value(), indices, num_rows);
  auto s = src.state();
  return MakeResult(kOp, std::move(out), {src}, [s, indices](const Tensor& g) {
    if (!s->requires_grad) return;
    s->AccumulateGrad(ts::GatherRows(g, indices));
  });
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

Var WhereConst(const Tensor& mask, const Var& a, const Var& b) {
  static const int kOp = RegisterOp("WhereConst");
  Tensor out = ts::Where(mask, a.value(), b.value());
  auto as = a.state();
  auto bs = b.state();
  Tensor m = mask;
  return MakeResult(kOp, std::move(out), {a, b}, [as, bs, m](const Tensor& g) {
    Tensor zeros = Tensor::Zeros(g.shape());
    if (as->requires_grad) as->AccumulateGrad(ts::Where(m, g, zeros));
    if (bs->requires_grad) bs->AccumulateGrad(ts::Where(m, zeros, g));
  });
}

// ---------------------------------------------------------------------------
// Neural net primitives
// ---------------------------------------------------------------------------

Var Conv2d(const Var& input, const Var& weight, const Var& bias, int64_t pad) {
  static const int kOp = RegisterOp("Conv2d");
  const Tensor& x = input.value();
  const Tensor& w = weight.value();
  CAME_CHECK_EQ(x.ndim(), 4);
  CAME_CHECK_EQ(w.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t cin = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t wdt = x.dim(3);
  const int64_t filters = w.dim(0);
  CAME_CHECK_EQ(w.dim(1), cin);
  const int64_t kh = w.dim(2);
  const int64_t kw = w.dim(3);
  const int64_t out_h = h + 2 * pad - kh + 1;
  const int64_t out_w = wdt + 2 * pad - kw + 1;

  Tensor cols = ts::Im2Col(x, kh, kw, pad);  // [B, cin*kh*kw, L]
  Tensor w2d = w.Reshape(Shape{filters, cin * kh * kw});
  // fully-written: out[b] = w2d x cols[b] on raw slices; every slab is
  // overwritten by the accumulate=false GEMM below.
  Tensor out = Tensor::Uninitialized(Shape{batch, filters, out_h, out_w});
  const int64_t l = out_h * out_w;
  const int64_t col_stride = cin * kh * kw * l;
  for (int64_t b = 0; b < batch; ++b) {
    ts::MatMulRaw(w2d.data(), cols.data() + b * col_stride,
                  out.data() + b * filters * l, filters, cin * kh * kw, l,
                  false, false, /*accumulate=*/false);
  }
  const bool has_bias = bias.defined();
  if (has_bias) {
    CAME_CHECK_EQ(bias.numel(), filters);
    const float* pb = bias.value().data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t f = 0; f < filters; ++f) {
        float* dst = out.data() + (b * filters + f) * l;
        for (int64_t i = 0; i < l; ++i) dst[i] += pb[f];
      }
    }
  }

  auto xs = input.state();
  auto ws = weight.state();
  auto bs = has_bias ? bias.state() : nullptr;
  std::vector<Var> inputs = {input, weight};
  if (has_bias) inputs.push_back(bias);
  Tensor saved_cols = cols;
  Tensor saved_w2d = w2d;
  return MakeResult(kOp, 
      std::move(out), inputs,
      [xs, ws, bs, saved_cols, saved_w2d, batch, cin, h, wdt, filters, kh, kw,
       pad, l, col_stride, has_bias](const Tensor& g) {
        // g: [B, F, out_h, out_w] -> per batch [F, L]
        if (has_bias && bs->requires_grad) {
          Tensor dbias(Shape{filters});
          for (int64_t b = 0; b < batch; ++b) {
            for (int64_t f = 0; f < filters; ++f) {
              const float* src = g.data() + (b * filters + f) * l;
              float acc = 0.0f;
              for (int64_t i = 0; i < l; ++i) acc += src[i];
              dbias.data()[f] += acc;
            }
          }
          bs->AccumulateGrad(dbias);
        }
        // dw2d accumulates across the batch (accumulate=true GEMM), so it
        // must start zeroed.
        // fully-written: dcols is overwritten slab-by-slab below.
        Tensor dw2d(Shape{filters, cin * kh * kw});
        Tensor dcols = Tensor::Uninitialized(Shape{batch, cin * kh * kw, l});
        for (int64_t b = 0; b < batch; ++b) {
          const float* gb = g.data() + b * filters * l;
          const float* cb = saved_cols.data() + b * col_stride;
          if (ws->requires_grad) {
            // dW += g_b x cols_b^T
            ts::MatMulRaw(gb, cb, dw2d.data(), filters, l, cin * kh * kw,
                          false, /*trans_b=*/true, /*accumulate=*/true);
          }
          if (xs->requires_grad) {
            // dcols_b = W^T x g_b
            ts::MatMulRaw(saved_w2d.data(), gb,
                          dcols.data() + b * col_stride, cin * kh * kw,
                          filters, l, /*trans_a=*/true, false,
                          /*accumulate=*/false);
          }
        }
        if (ws->requires_grad) {
          ws->AccumulateGrad(dw2d.Reshape(Shape{filters, cin, kh, kw}));
        }
        if (xs->requires_grad) {
          xs->AccumulateGrad(ts::Col2Im(dcols, batch, cin, h, wdt, kh, kw, pad));
        }
      });
}

Var Dropout(const Var& v, float p, Rng* rng, bool training) {
  static const int kOp = RegisterOp("Dropout");
  if (!training || p <= 0.0f) return v;  // identity: no node recorded
  CAME_CHECK_LT(p, 1.0f);
  CAME_CHECK(rng != nullptr);
  const float scale = 1.0f / (1.0f - p);
  // fully-written: the Bernoulli loop stores every mask element
  Tensor mask = Tensor::Uninitialized(v.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  Tensor out = ts::Mul(v.value(), mask);
  auto s = v.state();
  return MakeResult(kOp, std::move(out), {v}, [s, mask](const Tensor& g) {
    Accum(s, ts::Mul(g, mask));
  });
}

// ---------------------------------------------------------------------------
// Fused attention
// ---------------------------------------------------------------------------

Var CoAttentionApply(const Var& x, const Var& a, const Var& b,
                     const Var& inv_tau) {
  static const int kOp = RegisterOp("CoAttentionApply");
  const Tensor& xv = x.value();
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  CAME_CHECK_EQ(xv.ndim(), 2);
  CAME_CHECK(ts::SameShape(xv.shape(), av.shape()));
  CAME_CHECK(ts::SameShape(xv.shape(), bv.shape()));
  CAME_CHECK_EQ(inv_tau.numel(), 1);
  const int64_t batch = xv.dim(0);
  const int64_t d = xv.dim(1);
  const float u = inv_tau.value().data()[0];

  // The softmax is stored TRANSPOSED — st[j][i] = S[i][j] — so both the
  // forward column pass and the backward pass touch contiguous memory.
  // fully-written: the per-row forward pass stores every st column
  Tensor softmax_t = Tensor::Uninitialized(Shape{batch, d, d});
  Tensor out = Tensor::Uninitialized(Shape{batch, d});
  for (int64_t r = 0; r < batch; ++r) {
    const float* ar = av.data() + r * d;
    const float* br = bv.data() + r * d;
    const float* xr = xv.data() + r * d;
    float* st = softmax_t.data() + r * d * d;
    float* o = out.data() + r * d;
    for (int64_t j = 0; j < d; ++j) {
      // Column j of M: softmax over i of a[i] * (b[j] * u).
      const float bj = br[j] * u;
      float* srow = st + j * d;
      float m = ar[0] * bj;
      for (int64_t i = 1; i < d; ++i) m = std::max(m, ar[i] * bj);
      float denom = 0.0f;
      for (int64_t i = 0; i < d; ++i) {
        const float e = FastExp(ar[i] * bj - m);
        srow[i] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      float acc = 0.0f;
      for (int64_t i = 0; i < d; ++i) {
        srow[i] *= inv;
        acc += xr[i] * srow[i];
      }
      o[j] = acc;
    }
  }

  auto xs = x.state();
  auto as = a.state();
  auto bs = b.state();
  auto us = inv_tau.state();
  Tensor x_saved = xv;
  Tensor a_saved = av;
  Tensor b_saved = bv;
  Tensor s_saved = softmax_t;
  Tensor o_saved = out;
  return MakeResult(kOp, 
      std::move(out), {x, a, b, inv_tau},
      [xs, as, bs, us, x_saved, a_saved, b_saved, s_saved, o_saved, batch, d,
       u](const Tensor& g) {
        // All three accumulate with += across j — zeroed allocations.
        Tensor dx(Shape{batch, d});
        Tensor da(Shape{batch, d});
        Tensor db(Shape{batch, d});
        double du_total = 0.0;
        const bool need_x = xs->requires_grad;
        const bool need_a = as->requires_grad;
        const bool need_b = bs->requires_grad;
        const bool need_u = us->requires_grad;
        for (int64_t r = 0; r < batch; ++r) {
          const float* ar = a_saved.data() + r * d;
          const float* br = b_saved.data() + r * d;
          const float* xr = x_saved.data() + r * d;
          const float* st = s_saved.data() + r * d * d;
          const float* o = o_saved.data() + r * d;
          const float* gr = g.data() + r * d;
          float* dxr = dx.data() + r * d;
          float* dar = da.data() + r * d;
          float* dbr = db.data() + r * d;
          for (int64_t j = 0; j < d; ++j) {
            const float gj = gr[j];
            const float oj = o[j];
            const float* srow = st + j * d;
            float dbj = 0.0f;
            float duj = 0.0f;
            for (int64_t i = 0; i < d; ++i) {
              const float sij = srow[i];
              if (need_x) dxr[i] += gj * sij;
              // dM[i][j] = S[i][j] * g[j] * (x[i] - o[j]);
              // M[i][j] = a[i] * b[j] * u.
              const float dm = sij * gj * (xr[i] - oj);
              const float dm_ai = dm * ar[i];
              if (need_a) dar[i] += dm * br[j] * u;
              dbj += dm_ai;
              duj += dm_ai;
            }
            if (need_b) dbr[j] += dbj * u;
            if (need_u) du_total += static_cast<double>(duj) * br[j];
          }
        }
        if (need_x) xs->AccumulateGrad(dx);
        if (need_a) as->AccumulateGrad(da);
        if (need_b) bs->AccumulateGrad(db);
        if (need_u) {
          us->AccumulateGrad(Tensor::Scalar(static_cast<float>(du_total)));
        }
      });
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

Var BceWithLogitsMean(const Var& logits, const Tensor& targets) {
  static const int kOp = RegisterOp("BceWithLogitsMean");
  const Tensor& x = logits.value();
  CAME_CHECK(ts::SameShape(x.shape(), targets.shape()));
  const int64_t n = x.numel();
  // loss_i = max(x,0) - x*t + log(1 + exp(-|x|))
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float xi = x.data()[i];
    const float ti = targets.data()[i];
    acc += std::max(xi, 0.0f) - xi * ti +
           std::log1p(std::exp(-std::fabs(xi)));
  }
  Tensor out = Tensor::Scalar(static_cast<float>(acc / n));
  auto s = logits.state();
  Tensor x_saved = x;
  Tensor t_saved = targets;
  return MakeResult(kOp, std::move(out), {logits},
                    [s, x_saved, t_saved, n](const Tensor& g) {
                      if (!s->requires_grad) return;
                      // d/dx = (sigmoid(x) - t) / n
                      Tensor d = ts::Sub(ts::Sigmoid(x_saved), t_saved);
                      s->AccumulateGrad(
                          ts::Scale(d, g.data()[0] / static_cast<float>(n)));
                    });
}

}  // namespace came::ag
