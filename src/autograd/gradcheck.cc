#include "autograd/gradcheck.h"

#include <cmath>

#include "common/logging.h"

namespace came::ag {

double GradCheck(const std::function<Var(const std::vector<Var>&)>& fn,
                 std::vector<Var> leaves, double epsilon) {
  // Analytic pass.
  for (auto& leaf : leaves) leaf.ZeroGrad();
  Var loss = fn(leaves);
  CAME_CHECK_EQ(loss.numel(), 1);
  loss.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) analytic.push_back(leaf.grad().Clone());

  double max_diff = 0.0;
  for (size_t li = 0; li < leaves.size(); ++li) {
    if (!leaves[li].requires_grad()) continue;
    Tensor& value = leaves[li].mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + static_cast<float>(epsilon);
      const float plus = fn(leaves).value().data()[0];
      value.data()[i] = original - static_cast<float>(epsilon);
      const float minus = fn(leaves).value().data()[0];
      value.data()[i] = original;
      const double numeric =
          (static_cast<double>(plus) - minus) / (2.0 * epsilon);
      const double diff = std::fabs(numeric - analytic[li].data()[i]);
      max_diff = std::max(max_diff, diff);
    }
  }
  return max_diff;
}

}  // namespace came::ag
