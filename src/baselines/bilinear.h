#ifndef CAME_BASELINES_BILINEAR_H_
#define CAME_BASELINES_BILINEAR_H_

#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// DistMult (Yang et al., 2015): score = <h o r, t>.
class DistMult : public InnerProductKgcModel {
 public:
  DistMult(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "DistMult"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }

 private:
  ag::Var entities_;
  ag::Var relations_;
};

/// ComplEx (Trouillon et al., 2016): score = Re<h o r, conj(t)> over
/// complex embeddings stored as [real ; imaginary] halves. The score is
/// bilinear in t, so it reduces to an inner product with the query
/// q = [Re(h o r) ; Im(h o r)].
class ComplEx : public InnerProductKgcModel {
 public:
  /// `dim` is the total stored width (2x the complex dimension); must be
  /// even.
  ComplEx(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "ComplEx"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }

 private:
  int64_t half_;
  ag::Var entities_;   // [N, 2*half]: [re ; im]
  ag::Var relations_;  // [2R, 2*half]
};

}  // namespace came::baselines

#endif  // CAME_BASELINES_BILINEAR_H_
