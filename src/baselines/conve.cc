#include "baselines/conve.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::baselines {

ag::Var Stack2d(const std::vector<ag::Var>& vectors, int64_t reshape_h) {
  CAME_CHECK(!vectors.empty());
  const int64_t batch = vectors[0].dim(0);
  const int64_t dim = vectors[0].dim(1);
  CAME_CHECK_EQ(dim % reshape_h, 0)
      << "dim " << dim << " not divisible by reshape_h " << reshape_h;
  const int64_t w = dim / reshape_h;
  std::vector<ag::Var> channels;
  channels.reserve(vectors.size());
  for (const auto& v : vectors) {
    CAME_CHECK_EQ(v.dim(1), dim);
    channels.push_back(ag::Reshape(v, {batch, 1, reshape_h, w}));
  }
  return channels.size() == 1 ? channels[0] : ag::Concat(channels, 1);
}

ConvE::ConvE(const ModelContext& context, const ConvDecoderConfig& config)
    : InnerProductKgcModel(context, config.dim, /*entity_bias=*/true),
      config_(config) {
  entities_ = RegisterParameter(
      "entities",
      nn::EmbeddingInit({context.num_entities, config.dim}, &rng_));
  relations_ = RegisterParameter(
      "relations",
      nn::EmbeddingInit({context.num_relations, config.dim}, &rng_));
  conv_ = std::make_unique<nn::Conv2d>(2, config.filters, config.kernel,
                                       /*pad=*/config.kernel / 2, &rng_);
  RegisterSubmodule("conv", conv_.get());
  // Stacked image is [B, 2, 2*reshape_h, w] after vertical stacking of the
  // two reshaped inputs -> here channel stacking keeps h = reshape_h.
  const int64_t w = config.dim / config.reshape_h;
  const int64_t flat = config.filters * config.reshape_h * w;
  fc_ = std::make_unique<nn::Linear>(flat, config.dim, &rng_);
  RegisterSubmodule("fc", fc_.get());
  norm_ = std::make_unique<nn::LayerNorm>(config.dim);
  RegisterSubmodule("norm", norm_.get());
  dropout_ = std::make_unique<nn::Dropout>(config.dropout, &rng_);
  RegisterSubmodule("dropout", dropout_.get());
}

ag::Var ConvE::Query(const std::vector<int64_t>& heads,
                     const std::vector<int64_t>& rels) {
  const int64_t batch = static_cast<int64_t>(heads.size());
  ag::Var h = ag::Gather(entities_, heads);
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var image = Stack2d({h, r}, config_.reshape_h);
  ag::Var conv = ag::Relu(conv_->Forward(image));
  ag::Var flat = ag::Reshape(conv, {batch, conv.numel() / batch});
  ag::Var q = fc_->Forward(dropout_->Forward(flat));
  return ag::Relu(norm_->Forward(q));
}

}  // namespace came::baselines
