#ifndef CAME_BASELINES_MODEL_ZOO_H_
#define CAME_BASELINES_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/compgcn.h"
#include "baselines/conve.h"
#include "baselines/kgc_model.h"
#include "core/came_model.h"
#include "train/trainer.h"

namespace came::baselines {

/// Shared construction options for the whole model zoo.
struct ZooOptions {
  int64_t dim = 64;
  ConvDecoderConfig conv;        // ConvE / MKGformer decoder settings
  core::CamEConfig came;         // CamE settings (incl. ablations)
  CompGcn::Config compgcn;
  uint64_t seed = 1;
};

/// All model names, in the paper's Table III order (unimodal block, then
/// multimodal block, then CamE).
std::vector<std::string> AllModelNames();

/// Extra models from the paper's related-work discussion (TransH, TransD)
/// that are not part of the Table III baseline set but are available via
/// CreateModel.
std::vector<std::string> ExtendedModelNames();

/// Instantiates a model by its Table III name ("TransE", "DistMult",
/// "ComplEx", "ConvE", "CompGCN", "RotatE", "a-RotatE", "DualE",
/// "PairRE", "IKRL", "MTAKGR", "TransAE", "MKGformer", "CamE").
/// CHECK-fails on unknown names; multimodal models CHECK that
/// context.features is set.
std::unique_ptr<KgcModel> CreateModel(const std::string& name,
                                      const ModelContext& context,
                                      const ZooOptions& options);

/// True for the multimodal block of Table III.
bool IsMultimodal(const std::string& name);

/// Per-model adjustments to a base training config (margin for distance
/// models, zero margin for bilinear ones, etc.).
train::TrainConfig RecommendedTrainConfig(const std::string& name,
                                          train::TrainConfig base);

}  // namespace came::baselines

#endif  // CAME_BASELINES_MODEL_ZOO_H_
