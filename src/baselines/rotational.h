#ifndef CAME_BASELINES_ROTATIONAL_H_
#define CAME_BASELINES_ROTATIONAL_H_

#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// RotatE (Sun et al., 2019): relations are rotations in complex space,
/// score = -||h o r - t||^2 with |r_i| = 1 (relations parameterised by
/// phases). `self_adversarial` switches between the paper's RotatE
/// (uniform negatives) and a-RotatE (self-adversarial negatives).
class RotatE : public KgcModel {
 public:
  RotatE(const ModelContext& context, int64_t dim, bool self_adversarial);

  std::string Name() const override {
    return self_adversarial_ ? "a-RotatE" : "RotatE";
  }
  TrainingRegime regime() const override {
    return self_adversarial_ ? TrainingRegime::kSelfAdversarial
                             : TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

 private:
  /// h rotated by r: [B, 2*half] ([re ; im] halves).
  ag::Var Rotate(const std::vector<int64_t>& heads,
                 const std::vector<int64_t>& rels);

  bool self_adversarial_;
  int64_t half_;
  ag::Var entities_;  // [N, 2*half]
  ag::Var phases_;    // [2R, half]
};

/// DualE (Cao et al., 2021): entities and relations are dual quaternions;
/// the head is transformed by the relation's (real-part-normalised) dual
/// quaternion via the dual Hamilton product, and scored against the tail
/// by inner product.
class DualE : public InnerProductKgcModel {
 public:
  /// `dim` must be divisible by 8 (two quaternion banks of dim/8 blocks).
  DualE(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "DualE"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }

 private:
  int64_t block_;  // dim / 8
  ag::Var entities_;
  ag::Var relations_;
};

}  // namespace came::baselines

#endif  // CAME_BASELINES_ROTATIONAL_H_
