#ifndef CAME_BASELINES_TRANSLATIONAL_H_
#define CAME_BASELINES_TRANSLATIONAL_H_

#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// TransE (Bordes et al., 2013): score(h,r,t) = -||h + r - t||^2.
/// Scoring against all tails uses the quadratic expansion
/// ||a - t||^2 = ||a||^2 - 2 a.t + ||t||^2 with a = h + r, so evaluation
/// is two GEMMs rather than an N-fold loop.
class TransE : public KgcModel {
 public:
  TransE(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "TransE"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

  const ag::Var& entity_table() const { return entities_; }

 private:
  ag::Var Translate(const std::vector<int64_t>& heads,
                    const std::vector<int64_t>& rels);
  ag::Var entities_;   // [N, d]
  ag::Var relations_;  // [2R, d]
};

/// PairRE (Chao et al., 2021): score = -||h o r_H - t o r_T||^2 with two
/// relation vectors r_H, r_T.
class PairRe : public KgcModel {
 public:
  PairRe(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "PairRE"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kSelfAdversarial;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

 private:
  ag::Var entities_;       // [N, d]
  ag::Var rel_head_;       // [2R, d]
  ag::Var rel_tail_;       // [2R, d]
};

/// Shared quadratic expansion: scores = -(||a||^2 - 2 a E^T + ||E||^2)
/// rows for a [B, d] against table [N, d].
ag::Var NegativeSquaredDistanceToAll(const ag::Var& a, const ag::Var& table);
/// Aligned variant: -||a - b||^2 per row.
ag::Var NegativeSquaredDistance(const ag::Var& a, const ag::Var& b);

/// L1 variants (RotatE's original metric): -||a - E||_1 per candidate.
/// Materialises a [B, N, d] intermediate; used with modest B*N*d only.
ag::Var NegativeL1DistanceToAll(const ag::Var& a, const ag::Var& table);
ag::Var NegativeL1Distance(const ag::Var& a, const ag::Var& b);

}  // namespace came::baselines

#endif  // CAME_BASELINES_TRANSLATIONAL_H_
