#ifndef CAME_BASELINES_KGC_MODEL_H_
#define CAME_BASELINES_KGC_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "encoders/feature_bank.h"
#include "kg/triple_store.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace came::baselines {

/// How a model is trained (mirrors each paper's original regime).
enum class TrainingRegime {
  kOneToN,           // BCE against all entities (ConvE / CamE style)
  kNegativeSampling, // margin ranking with uniform negatives (TransE style)
  kSelfAdversarial,  // RotatE-style self-adversarial weighting
};

/// Construction context shared by every model.
struct ModelContext {
  int64_t num_entities = 0;
  /// Relation count including inverse relations (2R).
  int64_t num_relations = 0;
  /// Frozen multimodal features; null for unimodal models.
  const encoders::FeatureBank* features = nullptr;
  /// Training triples (base relations only); required by graph-convolution
  /// models (CompGCN) that message-pass over the training graph.
  const std::vector<kg::Triple>* train_triples = nullptr;
  uint64_t seed = 1;
};

/// Abstract KG completion model. Scores are "higher is better" for every
/// implementation (distance models return negated distances).
class KgcModel : public nn::Module {
 public:
  ~KgcModel() override = default;

  virtual std::string Name() const = 0;
  virtual TrainingRegime regime() const = 0;

  /// Scores of the aligned triples (heads[i], rels[i], tails[i]): [B].
  virtual ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                               const std::vector<int64_t>& rels,
                               const std::vector<int64_t>& tails) = 0;

  /// Scores of (heads[i], rels[i], t) for every entity t: [B, N].
  virtual ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                                const std::vector<int64_t>& rels) = 0;

  /// Extra loss term added by the trainer (e.g. TransAE's reconstruction
  /// loss). Undefined Var (the default) means none. Entity ids are the
  /// batch the loss should cover.
  virtual ag::Var AuxiliaryLoss(const std::vector<int64_t>& entities) {
    (void)entities;
    return ag::Var();
  }

  int64_t num_entities() const { return context_.num_entities; }
  int64_t num_relations() const { return context_.num_relations; }

  /// The model's single Rng stream (parameter init at construction,
  /// dropout masks during training). Exposed so the checkpoint subsystem
  /// can capture and restore it for bitwise-identical resume.
  Rng* mutable_rng() { return &rng_; }

  // --- Offline encoder folding (serving) ---------------------------------
  //
  // Some models run a query-independent per-entity encoder stack inside
  // every forward (CamE's MMF fusion of frozen modality features). For
  // inference those rows are a pure function of the parameters, so they
  // can be evaluated once for all N entities and reinstalled as a lookup
  // table. The default implementation reports "nothing foldable".

  /// Evaluates the query-independent per-entity encoder rows for every
  /// entity ([N, d] — per-row, so batch-size invariant and bitwise equal
  /// to the rows an un-folded forward computes). Returns an empty tensor
  /// when the model has no foldable stage. Must be called in eval mode.
  virtual tensor::Tensor FoldEntityEncoders() { return tensor::Tensor(); }

  /// Installs rows produced by FoldEntityEncoders (possibly loaded from
  /// disk); eval-mode forwards then gather from the cache instead of
  /// re-running the encoder stack. An empty tensor clears the cache, and
  /// switching back to training mode invalidates it automatically. No-op
  /// for models without a foldable stage.
  virtual void SetFoldedEncoderCache(tensor::Tensor rows) { (void)rows; }

  /// True when a folded-encoder cache is installed and in use.
  virtual bool HasFoldedEncoderCache() const { return false; }

 protected:
  explicit KgcModel(const ModelContext& context)
      : context_(context), rng_(context.seed) {}

  ModelContext context_;
  /// Every concrete model draws init and dropout randomness from this one
  /// stream (seeded with context.seed), keeping the full set of training
  /// Rng streams enumerable for checkpointing.
  Rng rng_;
};

/// Helper base for models whose score is an inner product
/// <Query(h, r), E[t]> (+ per-entity bias): both scoring methods derive
/// from a single `Query` implementation.
class InnerProductKgcModel : public KgcModel {
 public:
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

  // --- Serving API -------------------------------------------------------
  // Raw-tensor views of the inner-product factorisation
  //   score(h, r, t) = <Query(h, r), Candidates()[t]> + bias[t]
  // used by the inference layer (FusedEmbeddingTable / ScoreServer) to
  // score panels with plain GEMM, bypassing autograd entirely. All three
  // require eval mode and run under an enforced no-tape scope.

  /// [B, d] query matrix for the batch (forward-only, no tape nodes).
  tensor::Tensor ServingQuery(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels);
  /// [N, d] candidate-entity matrix (aliases the parameter buffer).
  tensor::Tensor ServingCandidates();
  /// [N] per-entity bias, or an empty tensor when the model has none.
  tensor::Tensor ServingEntityBias();

 protected:
  InnerProductKgcModel(const ModelContext& context, int64_t query_dim,
                       bool entity_bias);

  /// [B, query_dim] query vectors.
  virtual ag::Var Query(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) = 0;
  /// [N, query_dim] candidate-entity table the query is matched against.
  virtual ag::Var CandidateTable() = 0;

  ag::Var bias_;  // [N] or undefined
};

/// Frozen per-entity modality features as constant Vars (shared helper for
/// the multimodal models).
ag::Var GatherConstRows(const tensor::Tensor& table,
                        const std::vector<int64_t>& indices);

}  // namespace came::baselines

#endif  // CAME_BASELINES_KGC_MODEL_H_
