#ifndef CAME_BASELINES_TRANSLATIONAL_EXTENSIONS_H_
#define CAME_BASELINES_TRANSLATIONAL_EXTENSIONS_H_

#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

// The projection-based TransE descendants the paper's related-work section
// discusses (TransH, TransD — Wang et al. 2014, Ji et al. 2015). They are
// not part of the paper's Table III baseline set, so they live outside
// AllModelNames() in ExtendedModelNames(); CreateModel() builds them all
// the same.

/// TransH: entities are projected onto a relation-specific hyperplane with
/// unit normal w_r before translation:
///   h_perp = h - (w_r . h) w_r,   score = -||h_perp + d_r - t_perp||^2.
class TransH : public KgcModel {
 public:
  TransH(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "TransH"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

 private:
  /// Relation normals, L2-normalised on the fly: [B, d].
  ag::Var UnitNormals(const std::vector<int64_t>& rels);
  ag::Var entities_;   // [N, d]
  ag::Var translate_;  // d_r: [2R, d]
  ag::Var normals_;    // w_r: [2R, d] (normalised in forward)
};

/// TransR: a full relation-specific projection matrix M_r maps entities
/// into the relation space before translation:
///   score = -||M_r h + r - M_r t||^2.
/// M_r is stored as [2R, d*d]; ScoreAllTails projects the whole entity
/// table per query row (O(B N d^2) — evaluation-sized workloads only).
class TransR : public KgcModel {
 public:
  TransR(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "TransR"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

 private:
  /// Projects row-aligned entity vectors [B, d] by their relation's M_r.
  ag::Var ProjectByRelation(const ag::Var& e,
                            const std::vector<int64_t>& rels);

  int64_t dim_;
  ag::Var entities_;     // [N, d]
  ag::Var relations_;    // [2R, d]
  ag::Var projections_;  // M_r: [2R, d*d]
};

/// TransD: dynamic mapping via projection vectors
///   h_perp = h + (h_p . h) r_p,   t_perp = t + (t_p . t) r_p,
///   score = -||h_perp + r - t_perp||^2.
class TransD : public KgcModel {
 public:
  TransD(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "TransD"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

 private:
  ag::Var Project(const ag::Var& e, const ag::Var& e_p, const ag::Var& r_p);
  ag::Var entities_;         // [N, d]
  ag::Var entity_proj_;      // e_p: [N, d]
  ag::Var relations_;        // r: [2R, d]
  ag::Var relation_proj_;    // r_p: [2R, d]
};

}  // namespace came::baselines

#endif  // CAME_BASELINES_TRANSLATIONAL_EXTENSIONS_H_
