#include "baselines/mkgformer_lite.h"

#include <cmath>

#include "common/logging.h"
#include "nn/init.h"

namespace came::baselines {

MkgformerLite::MkgformerLite(const ModelContext& context,
                             const ConvDecoderConfig& config)
    : InnerProductKgcModel(context, config.dim, /*entity_bias=*/true),
      config_(config) {
  CAME_CHECK(context.features != nullptr);
  entities_ = RegisterParameter(
      "entities",
      nn::EmbeddingInit({context.num_entities, config.dim}, &rng_));
  relations_ = RegisterParameter(
      "relations",
      nn::EmbeddingInit({context.num_relations, config.dim}, &rng_));
  const int64_t dt = context.features->dim_t();
  const int64_t dm = context.features->dim_m();
  proj_text_ = std::make_unique<nn::Linear>(dt, config.dim, &rng_);
  proj_vis_ = std::make_unique<nn::Linear>(dm, config.dim, &rng_);
  w_query_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  w_key_text_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  w_key_vis_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  w_value_text_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  w_value_vis_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  corr_a_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  corr_b_ = std::make_unique<nn::Linear>(config.dim, config.dim, &rng_);
  RegisterSubmodule("proj_text", proj_text_.get());
  RegisterSubmodule("proj_vis", proj_vis_.get());
  RegisterSubmodule("w_query", w_query_.get());
  RegisterSubmodule("w_key_text", w_key_text_.get());
  RegisterSubmodule("w_key_vis", w_key_vis_.get());
  RegisterSubmodule("w_value_text", w_value_text_.get());
  RegisterSubmodule("w_value_vis", w_value_vis_.get());
  RegisterSubmodule("corr_a", corr_a_.get());
  RegisterSubmodule("corr_b", corr_b_.get());

  conv_ = std::make_unique<nn::Conv2d>(3, config.filters, config.kernel,
                                       config.kernel / 2, &rng_);
  RegisterSubmodule("conv", conv_.get());
  const int64_t w = config.dim / config.reshape_h;
  fc_ = std::make_unique<nn::Linear>(config.filters * config.reshape_h * w,
                                     config.dim, &rng_);
  RegisterSubmodule("fc", fc_.get());
  norm_ = std::make_unique<nn::LayerNorm>(config.dim);
  RegisterSubmodule("norm", norm_.get());
  dropout_ = std::make_unique<nn::Dropout>(config.dropout, &rng_);
  RegisterSubmodule("dropout", dropout_.get());
}

ag::Var MkgformerLite::MEncoder(const std::vector<int64_t>& heads) {
  const encoders::FeatureBank& bank = *context_.features;
  ag::Var text =
      proj_text_->Forward(GatherConstRows(bank.text_features(), heads));
  ag::Var vis =
      proj_vis_->Forward(GatherConstRows(bank.molecule_features(), heads));

  // Prefix-guided interaction: text-derived query attends over the two
  // modal tokens {text, visual}.
  ag::Var q = w_query_->Forward(text);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.dim));
  ag::Var logit_t = ag::Scale(
      ag::SumAlong(ag::Mul(q, w_key_text_->Forward(text)), 1, true), scale);
  ag::Var logit_v = ag::Scale(
      ag::SumAlong(ag::Mul(q, w_key_vis_->Forward(vis)), 1, true), scale);
  ag::Var attn = ag::SoftmaxAlong(ag::Concat({logit_t, logit_v}, 1), 1);
  ag::Var a_t = ag::Slice(attn, 1, 0, 1);  // [B,1]
  ag::Var a_v = ag::Slice(attn, 1, 1, 1);
  ag::Var mixed = ag::Add(ag::Mul(w_value_text_->Forward(text), a_t),
                          ag::Mul(w_value_vis_->Forward(vis), a_v));

  // Correlation-aware fusion: gate by estimated text/visual correlation.
  ag::Var corr = ag::Sigmoid(ag::SumAlong(
      ag::Mul(corr_a_->Forward(text), corr_b_->Forward(vis)), 1, true));
  ag::Var one_minus = ag::AddScalar(ag::Neg(corr), 1.0f);
  return ag::Add(ag::Mul(mixed, corr), ag::Mul(text, one_minus));
}

ag::Var MkgformerLite::Query(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels) {
  const int64_t batch = static_cast<int64_t>(heads.size());
  ag::Var fused = MEncoder(heads);
  ag::Var h = ag::Gather(entities_, heads);
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var image = Stack2d({fused, h, r}, config_.reshape_h);
  ag::Var conv = ag::Relu(conv_->Forward(image));
  ag::Var flat = ag::Reshape(conv, {batch, conv.numel() / batch});
  ag::Var out = fc_->Forward(dropout_->Forward(flat));
  return ag::Relu(norm_->Forward(out));
}

}  // namespace came::baselines
