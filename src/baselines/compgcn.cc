#include "baselines/compgcn.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::baselines {

CompGcn::CompGcn(const ModelContext& context, const Config& config)
    : KgcModel(context), config_(config) {
  CAME_CHECK(context.train_triples != nullptr)
      << "CompGCN needs the training graph";
  entity_embedding_ = RegisterParameter(
      "entities",
      nn::EmbeddingInit({context.num_entities, config.dim}, &rng_));
  relation_embedding_ = RegisterParameter(
      "relations",
      nn::EmbeddingInit({context.num_relations, config.dim}, &rng_));
  self_loop_rel_ = RegisterParameter(
      "self_loop_rel", nn::XavierNormal({1, config.dim}, &rng_));
  for (int l = 0; l < config.num_layers; ++l) {
    auto suffix = std::to_string(l);
    w_original_.push_back(std::make_unique<nn::Linear>(config.dim, config.dim,
                                                       &rng_, /*bias=*/false));
    w_inverse_.push_back(std::make_unique<nn::Linear>(config.dim, config.dim,
                                                      &rng_, /*bias=*/false));
    w_self_.push_back(std::make_unique<nn::Linear>(config.dim, config.dim,
                                                   &rng_, /*bias=*/false));
    w_relation_.push_back(std::make_unique<nn::Linear>(
        config.dim, config.dim, &rng_, /*bias=*/false));
    RegisterSubmodule("w_original_" + suffix, w_original_.back().get());
    RegisterSubmodule("w_inverse_" + suffix, w_inverse_.back().get());
    RegisterSubmodule("w_self_" + suffix, w_self_.back().get());
    RegisterSubmodule("w_relation_" + suffix, w_relation_.back().get());
  }
  dropout_ = std::make_unique<nn::Dropout>(config.dropout, &rng_);
  RegisterSubmodule("dropout", dropout_.get());

  // Build direction-split edge lists. Messages flow edge-source -> target.
  const int64_t base_relations = context.num_relations / 2;
  std::vector<float> in_degree(static_cast<size_t>(context.num_entities),
                               1.0f);  // +1 self loop
  for (const kg::Triple& t : *context.train_triples) {
    CAME_CHECK_LT(t.rel, base_relations);
    fwd_src_.push_back(t.head);
    fwd_dst_.push_back(t.tail);
    fwd_rel_.push_back(t.rel);
    inv_src_.push_back(t.tail);
    inv_dst_.push_back(t.head);
    inv_rel_.push_back(t.rel + base_relations);
    in_degree[static_cast<size_t>(t.tail)] += 1.0f;
    in_degree[static_cast<size_t>(t.head)] += 1.0f;
  }
  inv_degree_ = tensor::Tensor({context.num_entities, 1});
  for (int64_t i = 0; i < context.num_entities; ++i) {
    inv_degree_.data()[i] = 1.0f / in_degree[static_cast<size_t>(i)];
  }
}

CompGcn::Convolved CompGcn::RunGcn() {
  ag::Var h = entity_embedding_;
  ag::Var r = relation_embedding_;
  const int64_t n = num_entities();
  for (int l = 0; l < config_.num_layers; ++l) {
    const size_t lu = static_cast<size_t>(l);
    // phi(u, rel) = e_u - e_rel per edge, then direction-specific W and
    // mean aggregation into the target.
    ag::Var msg_fwd = w_original_[lu]->Forward(
        ag::Sub(ag::Gather(h, fwd_src_), ag::Gather(r, fwd_rel_)));
    ag::Var msg_inv = w_inverse_[lu]->Forward(
        ag::Sub(ag::Gather(h, inv_src_), ag::Gather(r, inv_rel_)));
    ag::Var agg = ag::Add(ag::Scatter(msg_fwd, fwd_dst_, n),
                          ag::Scatter(msg_inv, inv_dst_, n));
    ag::Var self = w_self_[lu]->Forward(ag::Sub(h, self_loop_rel_));
    ag::Var combined =
        ag::Mul(ag::Add(agg, self), ag::Const(inv_degree_));
    h = dropout_->Forward(ag::Tanh(combined));
    r = w_relation_[lu]->Forward(r);
  }
  return {h, r};
}

ag::Var CompGcn::ConvolvedEntities() { return RunGcn().entities; }

ag::Var CompGcn::ScoreTriples(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels,
                              const std::vector<int64_t>& tails) {
  Convolved g = RunGcn();
  ag::Var q = ag::Mul(ag::Gather(g.entities, heads),
                      ag::Gather(g.relations, rels));
  return ag::SumAlong(ag::Mul(q, ag::Gather(g.entities, tails)), 1, false);
}

ag::Var CompGcn::ScoreAllTails(const std::vector<int64_t>& heads,
                               const std::vector<int64_t>& rels) {
  Convolved g = RunGcn();
  ag::Var q = ag::Mul(ag::Gather(g.entities, heads),
                      ag::Gather(g.relations, rels));
  return ag::MatMul(q, ag::Transpose(g.entities));
}

}  // namespace came::baselines
