#include "baselines/model_zoo.h"

#include "baselines/bilinear.h"
#include "baselines/compgcn.h"
#include "baselines/mkgformer_lite.h"
#include "baselines/multimodal_baselines.h"
#include "baselines/rotational.h"
#include "baselines/translational.h"
#include "baselines/translational_extensions.h"
#include "common/logging.h"

namespace came::baselines {

std::vector<std::string> AllModelNames() {
  return {"TransE",   "DistMult", "ComplEx", "ConvE",  "CompGCN",
          "RotatE",   "a-RotatE", "DualE",   "PairRE", "IKRL",
          "MTAKGR",   "TransAE",  "MKGformer", "CamE"};
}

std::vector<std::string> ExtendedModelNames() {
  return {"TransH", "TransR", "TransD"};
}

bool IsMultimodal(const std::string& name) {
  return name == "IKRL" || name == "MTAKGR" || name == "TransAE" ||
         name == "MKGformer" || name == "CamE";
}

std::unique_ptr<KgcModel> CreateModel(const std::string& name,
                                      const ModelContext& context,
                                      const ZooOptions& options) {
  if (IsMultimodal(name)) {
    CAME_CHECK(context.features != nullptr)
        << name << " needs multimodal features";
  }
  if (name == "TransE") {
    return std::make_unique<TransE>(context, options.dim);
  }
  if (name == "TransH") {
    return std::make_unique<TransH>(context, options.dim);
  }
  if (name == "TransR") {
    return std::make_unique<TransR>(context, options.dim);
  }
  if (name == "TransD") {
    return std::make_unique<TransD>(context, options.dim);
  }
  if (name == "DistMult") {
    return std::make_unique<DistMult>(context, options.dim);
  }
  if (name == "ComplEx") {
    return std::make_unique<ComplEx>(context, options.dim);
  }
  if (name == "ConvE") {
    ConvDecoderConfig conv = options.conv;
    conv.dim = options.dim;
    return std::make_unique<ConvE>(context, conv);
  }
  if (name == "CompGCN") {
    CompGcn::Config cfg = options.compgcn;
    cfg.dim = options.dim;
    return std::make_unique<CompGcn>(context, cfg);
  }
  if (name == "RotatE") {
    return std::make_unique<RotatE>(context, options.dim,
                                    /*self_adversarial=*/false);
  }
  if (name == "a-RotatE") {
    return std::make_unique<RotatE>(context, options.dim,
                                    /*self_adversarial=*/true);
  }
  if (name == "DualE") {
    return std::make_unique<DualE>(context, options.dim);
  }
  if (name == "PairRE") {
    return std::make_unique<PairRe>(context, options.dim);
  }
  if (name == "IKRL") {
    return std::make_unique<Ikrl>(context, options.dim);
  }
  if (name == "MTAKGR") {
    return std::make_unique<Mtakgr>(context, options.dim);
  }
  if (name == "TransAE") {
    return std::make_unique<TransAe>(context, options.dim);
  }
  if (name == "MKGformer") {
    ConvDecoderConfig conv = options.conv;
    conv.dim = options.dim;
    return std::make_unique<MkgformerLite>(context, conv);
  }
  if (name == "CamE") {
    core::CamEConfig cfg = options.came;
    cfg.embed_dim = options.dim;
    return std::make_unique<core::CamE>(context, cfg);
  }
  CAME_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

train::TrainConfig RecommendedTrainConfig(const std::string& name,
                                          train::TrainConfig base) {
  // Distance models need a positive margin gamma in the logsigmoid loss;
  // bilinear/inner-product scores are already centred around zero.
  if (name == "DistMult" || name == "ComplEx" || name == "DualE") {
    base.margin = 0.0f;
  }
  // Margins were grid-searched on the validation split (the paper
  // prescribes grid search, Section V-B; EXPERIMENTS.md records ours).
  if (name == "TransE" || name == "TransH" || name == "TransR" ||
      name == "TransD" || name == "IKRL" || name == "MTAKGR" ||
      name == "TransAE") {
    base.margin = 2.0f;
  }
  if (name == "RotatE" || name == "a-RotatE") {
    base.margin = 2.0f;  // L1 metric; grid {2, 6, 12}
  }
  if (name == "PairRE") {
    base.margin = 1.0f;  // squared-L2 metric; grid {1, 2, 4, 6}
  }
  return base;
}

}  // namespace came::baselines
