#include "baselines/bilinear.h"

#include "common/logging.h"
#include "nn/init.h"

namespace came::baselines {

DistMult::DistMult(const ModelContext& context, int64_t dim)
    : InnerProductKgcModel(context, dim, /*entity_bias=*/false) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var DistMult::Query(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) {
  return ag::Mul(ag::Gather(entities_, heads), ag::Gather(relations_, rels));
}

ComplEx::ComplEx(const ModelContext& context, int64_t dim)
    : InnerProductKgcModel(context, dim, /*entity_bias=*/false),
      half_(dim / 2) {
  CAME_CHECK_EQ(dim % 2, 0) << "ComplEx needs an even stored dimension";
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var ComplEx::Query(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels) {
  ag::Var h = ag::Gather(entities_, heads);
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var h_re = ag::Slice(h, 1, 0, half_);
  ag::Var h_im = ag::Slice(h, 1, half_, half_);
  ag::Var r_re = ag::Slice(r, 1, 0, half_);
  ag::Var r_im = ag::Slice(r, 1, half_, half_);
  // Re<h o r, conj t> = (h_re r_re - h_im r_im).t_re
  //                   + (h_re r_im + h_im r_re).t_im
  ag::Var q_re = ag::Sub(ag::Mul(h_re, r_re), ag::Mul(h_im, r_im));
  ag::Var q_im = ag::Add(ag::Mul(h_re, r_im), ag::Mul(h_im, r_re));
  return ag::Concat({q_re, q_im}, 1);
}

}  // namespace came::baselines
