#ifndef CAME_BASELINES_COMPGCN_H_
#define CAME_BASELINES_COMPGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// CompGCN (Vashishth et al., 2020) with subtraction composition.
///
/// Each layer aggregates phi(e_u, e_r) = e_u - e_r over incoming edges,
/// with direction-specific weights (original / inverse / self-loop), and
/// linearly transforms relation embeddings alongside. The decoder is
/// DistMult over the convolved representations; training is 1-to-N.
/// Message passing runs over the *training* graph (context.train_triples).
class CompGcn : public KgcModel {
 public:
  struct Config {
    int64_t dim = 64;
    int num_layers = 1;
    float dropout = 0.1f;
  };

  CompGcn(const ModelContext& context, const Config& config);

  std::string Name() const override { return "CompGCN"; }
  TrainingRegime regime() const override { return TrainingRegime::kOneToN; }

  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;

  /// Convolved entity representations [N, dim] (also usable as pretrained
  /// structural features h_s for CamE).
  ag::Var ConvolvedEntities();

 private:
  struct Convolved {
    ag::Var entities;   // [N, dim]
    ag::Var relations;  // [2R, dim]
  };
  Convolved RunGcn();

  Config config_;
  ag::Var entity_embedding_;
  ag::Var relation_embedding_;
  std::vector<std::unique_ptr<nn::Linear>> w_original_;
  std::vector<std::unique_ptr<nn::Linear>> w_inverse_;
  std::vector<std::unique_ptr<nn::Linear>> w_self_;
  std::vector<std::unique_ptr<nn::Linear>> w_relation_;
  std::unique_ptr<nn::Dropout> dropout_;
  ag::Var self_loop_rel_;  // [1, dim]

  // Edge lists split by direction; computed once from train_triples.
  std::vector<int64_t> fwd_src_, fwd_dst_, fwd_rel_;
  std::vector<int64_t> inv_src_, inv_dst_, inv_rel_;
  tensor::Tensor inv_degree_;  // [N, 1] 1/(in-degree+1)
};

}  // namespace came::baselines

#endif  // CAME_BASELINES_COMPGCN_H_
