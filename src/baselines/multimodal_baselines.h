#ifndef CAME_BASELINES_MULTIMODAL_BASELINES_H_
#define CAME_BASELINES_MULTIMODAL_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// Shared machinery for the translation-based multimodal baselines: a
/// structural embedding table plus a projected frozen-feature table, with
/// the four crossed TransE energies
///   E = E_ss + E_ff + E_sf + E_fs,  E_xy = ||h_x + r - t_y||^2
/// (IKRL Eq. 4-7; MTAKGR uses the same crossed sub-energy scheme).
class CrossModalTransE : public KgcModel {
 public:
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }

 protected:
  /// `feature_table` is the frozen modality matrix [N, feat_dim] this
  /// baseline projects into the entity space.
  CrossModalTransE(const ModelContext& context, int64_t dim,
                   tensor::Tensor feature_table, const std::string& prefix);

  /// Projected modality embeddings for the given entities: [B, dim].
  ag::Var ModalEmbedding(const std::vector<int64_t>& entities);
  /// Projected modality embeddings for all entities: [N, dim].
  ag::Var ModalTable();
  ag::Var entities_;      // [N, dim] structural
  ag::Var relations_;     // [2R, dim]
  tensor::Tensor features_;  // frozen [N, feat]
  std::unique_ptr<nn::Linear> feature_proj_;
};

/// IKRL (Xie et al., 2017): image + structure crossed TransE. The "image"
/// modality here is the molecular feature (or text when the dataset has
/// no molecules — OMAHA-MM), matching how the paper feeds pre-trained
/// feature vectors to all multimodal baselines.
class Ikrl : public CrossModalTransE {
 public:
  Ikrl(const ModelContext& context, int64_t dim);
  std::string Name() const override { return "IKRL"; }
};

/// MTAKGR (Mousselly-Sergieh et al., 2018): multimodal (molecule + text
/// concatenated) crossed TransE energies.
class Mtakgr : public CrossModalTransE {
 public:
  Mtakgr(const ModelContext& context, int64_t dim);
  std::string Name() const override { return "MTAKGR"; }
};

/// TransAE (Wang et al., 2019): a multimodal autoencoder produces entity
/// representations; the encoder hidden state is the TransE entity vector
/// and a reconstruction loss is added to the ranking loss.
class TransAe : public KgcModel {
 public:
  TransAe(const ModelContext& context, int64_t dim);

  std::string Name() const override { return "TransAE"; }
  TrainingRegime regime() const override {
    return TrainingRegime::kNegativeSampling;
  }
  ag::Var ScoreTriples(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels,
                       const std::vector<int64_t>& tails) override;
  ag::Var ScoreAllTails(const std::vector<int64_t>& heads,
                        const std::vector<int64_t>& rels) override;
  ag::Var AuxiliaryLoss(const std::vector<int64_t>& entities) override;

 private:
  /// Encoder over the frozen features of the given entities: [B, dim].
  ag::Var Encode(const std::vector<int64_t>& entities);
  ag::Var EncodeAll();
  tensor::Tensor features_;  // frozen [N, feat] (molecule ++ text)
  ag::Var relations_;
  std::unique_ptr<nn::Linear> enc1_;
  std::unique_ptr<nn::Linear> enc2_;
  std::unique_ptr<nn::Linear> dec1_;
  std::unique_ptr<nn::Linear> dec2_;
};

/// Concatenated [molecule ; text] feature matrix (helper shared by the
/// multimodal baselines and benches).
tensor::Tensor ConcatModalFeatures(const encoders::FeatureBank& bank);

}  // namespace came::baselines

#endif  // CAME_BASELINES_MULTIMODAL_BASELINES_H_
