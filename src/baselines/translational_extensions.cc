#include "baselines/translational_extensions.h"

#include "baselines/translational.h"
#include "nn/init.h"

namespace came::baselines {

TransH::TransH(const ModelContext& context, int64_t dim)
    : KgcModel(context) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  translate_ = RegisterParameter(
      "translate", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  normals_ = RegisterParameter(
      "normals", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var TransH::UnitNormals(const std::vector<int64_t>& rels) {
  ag::Var w = ag::Gather(normals_, rels);  // [B, d]
  ag::Var norm = ag::Sqrt(ag::AddScalar(
      ag::SumAlong(ag::Square(w), 1, /*keepdim=*/true), 1e-8f));
  return ag::Div(w, norm);
}

namespace {
// e - (w . e) w for row-aligned [B, d] inputs.
ag::Var ProjectToHyperplane(const ag::Var& e, const ag::Var& w) {
  ag::Var dot = ag::SumAlong(ag::Mul(w, e), 1, /*keepdim=*/true);  // [B,1]
  return ag::Sub(e, ag::Mul(dot, w));
}
}  // namespace

ag::Var TransH::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  ag::Var w = UnitNormals(rels);
  ag::Var h_perp = ProjectToHyperplane(ag::Gather(entities_, heads), w);
  ag::Var t_perp = ProjectToHyperplane(ag::Gather(entities_, tails), w);
  return NegativeSquaredDistance(
      ag::Add(h_perp, ag::Gather(translate_, rels)), t_perp);
}

ag::Var TransH::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  // ||a - t_perp||^2 with a = h_perp + d_r and
  // t_perp = t - (w.t) w:
  //   a.t_perp     = a.t - (w.t)(a.w)
  //   ||t_perp||^2 = ||t||^2 - (w.t)^2        (w is unit)
  ag::Var w = UnitNormals(rels);                                    // [B,d]
  ag::Var a = ag::Add(
      ProjectToHyperplane(ag::Gather(entities_, heads), w),
      ag::Gather(translate_, rels));                                // [B,d]
  ag::Var a2 = ag::SumAlong(ag::Square(a), 1, /*keepdim=*/true);    // [B,1]
  ag::Var at = ag::MatMul(a, ag::Transpose(entities_));             // [B,N]
  ag::Var wt = ag::MatMul(w, ag::Transpose(entities_));             // [B,N]
  ag::Var aw = ag::SumAlong(ag::Mul(a, w), 1, /*keepdim=*/true);    // [B,1]
  ag::Var t2 = ag::SumAlong(ag::Square(entities_), 1, false);       // [N]
  ag::Var a_dot_tperp = ag::Sub(at, ag::Mul(wt, aw));
  ag::Var tperp2 = ag::Sub(ag::Add(ag::Const(tensor::Tensor::Zeros(
                                       {1, num_entities()})),
                                   t2),
                           ag::Square(wt));
  return ag::Neg(ag::Add(
      ag::Sub(a2, ag::Scale(a_dot_tperp, 2.0f)), tperp2));
}

TransD::TransD(const ModelContext& context, int64_t dim)
    : KgcModel(context) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  entity_proj_ = RegisterParameter(
      "entity_proj", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  relation_proj_ = RegisterParameter(
      "relation_proj",
      nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var TransD::Project(const ag::Var& e, const ag::Var& e_p,
                        const ag::Var& r_p) {
  ag::Var dot = ag::SumAlong(ag::Mul(e_p, e), 1, /*keepdim=*/true);  // [B,1]
  return ag::Add(e, ag::Mul(dot, r_p));
}

ag::Var TransD::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  ag::Var r_p = ag::Gather(relation_proj_, rels);
  ag::Var h_perp = Project(ag::Gather(entities_, heads),
                           ag::Gather(entity_proj_, heads), r_p);
  ag::Var t_perp = Project(ag::Gather(entities_, tails),
                           ag::Gather(entity_proj_, tails), r_p);
  return NegativeSquaredDistance(
      ag::Add(h_perp, ag::Gather(relations_, rels)), t_perp);
}

ag::Var TransD::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  // t_perp = t + s_t r_p with the per-entity scalar s_t = t_p . t:
  //   ||a - t_perp||^2 = ||a||^2 - 2 a.t - 2 s_t (a.r_p)
  //                    + ||t||^2 + 2 s_t (t.r_p) + s_t^2 ||r_p||^2.
  ag::Var r_p = ag::Gather(relation_proj_, rels);                    // [B,d]
  ag::Var a = ag::Add(Project(ag::Gather(entities_, heads),
                              ag::Gather(entity_proj_, heads), r_p),
                      ag::Gather(relations_, rels));                 // [B,d]
  ag::Var s = ag::SumAlong(ag::Mul(entity_proj_, entities_), 1,
                           /*keepdim=*/false);                       // [N]
  ag::Var a2 = ag::SumAlong(ag::Square(a), 1, /*keepdim=*/true);     // [B,1]
  ag::Var at = ag::MatMul(a, ag::Transpose(entities_));              // [B,N]
  ag::Var arp = ag::SumAlong(ag::Mul(a, r_p), 1, /*keepdim=*/true);  // [B,1]
  ag::Var trp = ag::MatMul(r_p, ag::Transpose(entities_));           // [B,N]
  ag::Var rp2 = ag::SumAlong(ag::Square(r_p), 1, /*keepdim=*/true);  // [B,1]
  ag::Var t2 = ag::SumAlong(ag::Square(entities_), 1, false);        // [N]

  ag::Var dist2 = ag::Sub(a2, ag::Scale(at, 2.0f));
  dist2 = ag::Sub(dist2, ag::Scale(ag::Mul(arp, s), 2.0f));
  dist2 = ag::Add(dist2, t2);
  dist2 = ag::Add(dist2, ag::Scale(ag::Mul(trp, s), 2.0f));
  dist2 = ag::Add(dist2, ag::Mul(rp2, ag::Square(s)));
  return ag::Neg(dist2);
}

}  // namespace came::baselines

namespace came::baselines {

TransR::TransR(const ModelContext& context, int64_t dim)
    : KgcModel(context), dim_(dim) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  // Initialise each M_r near the identity (the TransE-compatible start
  // the TransR paper recommends).
  tensor::Tensor proj({context.num_relations, dim * dim});
  for (int64_t r = 0; r < context.num_relations; ++r) {
    for (int64_t i = 0; i < dim; ++i) {
      for (int64_t j = 0; j < dim; ++j) {
        proj.data()[(r * dim + i) * dim + j] =
            (i == j ? 1.0f : 0.0f) +
            static_cast<float>(rng_.Normal(0.0, 0.02));
      }
    }
  }
  projections_ = RegisterParameter("projections", std::move(proj));
}

ag::Var TransR::ProjectByRelation(const ag::Var& e,
                                  const std::vector<int64_t>& rels) {
  const int64_t b = e.dim(0);
  // [B, 1, d] x [B, d, d] -> [B, 1, d].
  ag::Var m = ag::Reshape(ag::Gather(projections_, rels), {b, dim_, dim_});
  return ag::Reshape(
      ag::BatchMatMul(ag::Reshape(e, {b, 1, dim_}), m), {b, dim_});
}

ag::Var TransR::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  ag::Var h = ProjectByRelation(ag::Gather(entities_, heads), rels);
  ag::Var t = ProjectByRelation(ag::Gather(entities_, tails), rels);
  return NegativeSquaredDistance(ag::Add(h, ag::Gather(relations_, rels)), t);
}

ag::Var TransR::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  // Per query row: project the entity table by that row's M_r, then use
  // the quadratic expansion against the projected table.
  ag::Var a = ag::Add(ProjectByRelation(ag::Gather(entities_, heads), rels),
                      ag::Gather(relations_, rels));  // [B, d]
  std::vector<ag::Var> rows;
  rows.reserve(heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    ag::Var m = ag::Reshape(
        ag::Gather(projections_, {rels[i]}), {dim_, dim_});
    ag::Var table = ag::MatMul(entities_, m);  // [N, d]
    ag::Var ai = ag::Slice(a, 0, static_cast<int64_t>(i), 1);  // [1, d]
    rows.push_back(NegativeSquaredDistanceToAll(ai, table));   // [1, N]
  }
  return rows.size() == 1 ? rows[0] : ag::Concat(rows, 0);
}

}  // namespace came::baselines
