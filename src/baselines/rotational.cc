#include "baselines/rotational.h"

#include <array>

#include "baselines/translational.h"
#include "common/logging.h"
#include "nn/init.h"

namespace came::baselines {

RotatE::RotatE(const ModelContext& context, int64_t dim,
               bool self_adversarial)
    : KgcModel(context),
      self_adversarial_(self_adversarial),
      half_(dim / 2) {
  CAME_CHECK_EQ(dim % 2, 0);
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  // Phases initialised uniformly in [-pi, pi].
  phases_ = RegisterParameter(
      "phases", nn::UniformInit({context.num_relations, half_}, &rng_,
                                -3.14159265, 3.14159265));
}

ag::Var RotatE::Rotate(const std::vector<int64_t>& heads,
                       const std::vector<int64_t>& rels) {
  ag::Var h = ag::Gather(entities_, heads);
  ag::Var h_re = ag::Slice(h, 1, 0, half_);
  ag::Var h_im = ag::Slice(h, 1, half_, half_);
  ag::Var theta = ag::Gather(phases_, rels);
  // Unit-modulus rotation: r = (cos(theta), sin(theta)).
  ag::Var cos_t = ag::Cos(theta);
  ag::Var sin_t = ag::Sin(theta);
  ag::Var out_re = ag::Sub(ag::Mul(h_re, cos_t), ag::Mul(h_im, sin_t));
  ag::Var out_im = ag::Add(ag::Mul(h_re, sin_t), ag::Mul(h_im, cos_t));
  return ag::Concat({out_re, out_im}, 1);
}

ag::Var RotatE::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  // RotatE's original metric is L1 (Sun et al., Eq. score = gamma - ||.||_1).
  return NegativeL1Distance(Rotate(heads, rels),
                            ag::Gather(entities_, tails));
}

ag::Var RotatE::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  return NegativeL1DistanceToAll(Rotate(heads, rels), entities_);
}

DualE::DualE(const ModelContext& context, int64_t dim)
    : InnerProductKgcModel(context, dim, /*entity_bias=*/false),
      block_(dim / 8) {
  CAME_CHECK_EQ(dim % 8, 0) << "DualE needs dim divisible by 8";
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

namespace {

using Quat = std::array<ag::Var, 4>;

// Blockwise quaternion Hamilton product.
Quat Hamilton(const Quat& x, const Quat& y) {
  Quat r;
  r[0] = ag::Sub(ag::Sub(ag::Mul(x[0], y[0]), ag::Mul(x[1], y[1])),
                 ag::Add(ag::Mul(x[2], y[2]), ag::Mul(x[3], y[3])));
  r[1] = ag::Add(ag::Add(ag::Mul(x[0], y[1]), ag::Mul(x[1], y[0])),
                 ag::Sub(ag::Mul(x[2], y[3]), ag::Mul(x[3], y[2])));
  r[2] = ag::Add(ag::Sub(ag::Mul(x[0], y[2]), ag::Mul(x[1], y[3])),
                 ag::Add(ag::Mul(x[2], y[0]), ag::Mul(x[3], y[1])));
  r[3] = ag::Add(ag::Add(ag::Mul(x[0], y[3]), ag::Mul(x[1], y[2])),
                 ag::Sub(ag::Mul(x[3], y[0]), ag::Mul(x[2], y[1])));
  return r;
}

Quat SliceQuat(const ag::Var& v, int64_t block, int64_t offset) {
  Quat q;
  for (int i = 0; i < 4; ++i) {
    q[static_cast<size_t>(i)] =
        ag::Slice(v, 1, offset + i * block, block);
  }
  return q;
}

// Normalises a quaternion bank to unit norm per block position.
Quat NormaliseQuat(const Quat& q) {
  ag::Var n2 = ag::AddScalar(
      ag::Add(ag::Add(ag::Square(q[0]), ag::Square(q[1])),
              ag::Add(ag::Square(q[2]), ag::Square(q[3]))),
      1e-8f);
  ag::Var inv = ag::Div(ag::Const(tensor::Tensor::Full(n2.shape(), 1.0f)),
                        ag::Sqrt(n2));
  Quat out;
  for (int i = 0; i < 4; ++i) {
    out[static_cast<size_t>(i)] = ag::Mul(q[static_cast<size_t>(i)], inv);
  }
  return out;
}

}  // namespace

ag::Var DualE::Query(const std::vector<int64_t>& heads,
                     const std::vector<int64_t>& rels) {
  ag::Var h = ag::Gather(entities_, heads);
  ag::Var r = ag::Gather(relations_, rels);
  // Layout: [a1 a2 a3 a4 | b1 b2 b3 b4] with each block of width block_.
  Quat ha = SliceQuat(h, block_, 0);
  Quat hb = SliceQuat(h, block_, 4 * block_);
  Quat rc = NormaliseQuat(SliceQuat(r, block_, 0));
  Quat rd = SliceQuat(r, block_, 4 * block_);
  // (ha + eps hb) x (rc + eps rd) = ha rc + eps (ha rd + hb rc).
  Quat real = Hamilton(ha, rc);
  Quat dual1 = Hamilton(ha, rd);
  Quat dual2 = Hamilton(hb, rc);
  std::vector<ag::Var> parts;
  for (int i = 0; i < 4; ++i) parts.push_back(real[static_cast<size_t>(i)]);
  for (int i = 0; i < 4; ++i) {
    parts.push_back(ag::Add(dual1[static_cast<size_t>(i)],
                            dual2[static_cast<size_t>(i)]));
  }
  return ag::Concat(parts, 1);
}

}  // namespace came::baselines
