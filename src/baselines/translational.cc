#include "baselines/translational.h"

#include "nn/init.h"

namespace came::baselines {

ag::Var NegativeSquaredDistanceToAll(const ag::Var& a, const ag::Var& table) {
  // -(||a||^2 - 2 a.E + ||E||^2) broadcast over [B, N].
  ag::Var a2 = ag::SumAlong(ag::Square(a), 1, /*keepdim=*/true);      // [B,1]
  ag::Var cross = ag::MatMul(a, ag::Transpose(table));                // [B,N]
  ag::Var e2 = ag::SumAlong(ag::Square(table), 1, /*keepdim=*/false); // [N]
  return ag::Neg(ag::Add(ag::Sub(a2, ag::Scale(cross, 2.0f)), e2));
}

ag::Var NegativeSquaredDistance(const ag::Var& a, const ag::Var& b) {
  return ag::Neg(
      ag::SumAlong(ag::Square(ag::Sub(a, b)), 1, /*keepdim=*/false));
}

ag::Var NegativeL1DistanceToAll(const ag::Var& a, const ag::Var& table) {
  const int64_t b = a.dim(0);
  const int64_t d = a.dim(1);
  const int64_t n = table.dim(0);
  ag::Var diff = ag::Sub(ag::Reshape(a, {b, 1, d}),
                         ag::Reshape(table, {1, n, d}));  // [B,N,d]
  return ag::Neg(ag::SumAlong(ag::Abs(diff), 2, /*keepdim=*/false));
}

ag::Var NegativeL1Distance(const ag::Var& a, const ag::Var& b) {
  return ag::Neg(
      ag::SumAlong(ag::Abs(ag::Sub(a, b)), 1, /*keepdim=*/false));
}

TransE::TransE(const ModelContext& context, int64_t dim)
    : KgcModel(context) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var TransE::Translate(const std::vector<int64_t>& heads,
                          const std::vector<int64_t>& rels) {
  return ag::Add(ag::Gather(entities_, heads), ag::Gather(relations_, rels));
}

ag::Var TransE::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  return NegativeSquaredDistance(Translate(heads, rels),
                                 ag::Gather(entities_, tails));
}

ag::Var TransE::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  return NegativeSquaredDistanceToAll(Translate(heads, rels), entities_);
}

PairRe::PairRe(const ModelContext& context, int64_t dim)
    : KgcModel(context) {
  entities_ = RegisterParameter(
      "entities", nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  rel_head_ = RegisterParameter(
      "rel_head", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  rel_tail_ = RegisterParameter(
      "rel_tail", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
}

ag::Var PairRe::ScoreTriples(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& rels,
                             const std::vector<int64_t>& tails) {
  ag::Var a = ag::Mul(ag::Gather(entities_, heads),
                      ag::Gather(rel_head_, rels));
  ag::Var b = ag::Mul(ag::Gather(entities_, tails),
                      ag::Gather(rel_tail_, rels));
  return NegativeSquaredDistance(a, b);
}

ag::Var PairRe::ScoreAllTails(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels) {
  // score(t) = -|| a - rT o t ||^2
  //          = -(||a||^2 - 2 (a o rT).t + (rT^2).(t^2)).
  ag::Var a = ag::Mul(ag::Gather(entities_, heads),
                      ag::Gather(rel_head_, rels));                  // [B,d]
  ag::Var rt = ag::Gather(rel_tail_, rels);                          // [B,d]
  ag::Var a2 = ag::SumAlong(ag::Square(a), 1, /*keepdim=*/true);     // [B,1]
  ag::Var cross =
      ag::MatMul(ag::Mul(a, rt), ag::Transpose(entities_));          // [B,N]
  ag::Var quad = ag::MatMul(ag::Square(rt),
                            ag::Transpose(ag::Square(entities_)));   // [B,N]
  return ag::Neg(
      ag::Add(ag::Sub(a2, ag::Scale(cross, 2.0f)), quad));
}

}  // namespace came::baselines
