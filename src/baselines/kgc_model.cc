#include "baselines/kgc_model.h"

#include "common/logging.h"
#include "infer/no_tape.h"
#include "tensor/tensor_ops.h"

namespace came::baselines {

InnerProductKgcModel::InnerProductKgcModel(const ModelContext& context,
                                           int64_t query_dim, bool entity_bias)
    : KgcModel(context) {
  (void)query_dim;
  if (entity_bias) {
    bias_ = RegisterParameter("entity_bias",
                              tensor::Tensor::Zeros({context.num_entities}));
  }
}

ag::Var InnerProductKgcModel::ScoreTriples(const std::vector<int64_t>& heads,
                                           const std::vector<int64_t>& rels,
                                           const std::vector<int64_t>& tails) {
  ag::Var q = Query(heads, rels);                    // [B, d]
  ag::Var t = ag::Gather(CandidateTable(), tails);   // [B, d]
  ag::Var scores = ag::SumAlong(ag::Mul(q, t), 1, /*keepdim=*/false);  // [B]
  if (bias_.defined()) {
    ag::Var tail_bias = ag::Reshape(
        ag::Gather(ag::Reshape(bias_, {num_entities(), 1}), tails),
        {static_cast<int64_t>(tails.size())});
    scores = ag::Add(scores, tail_bias);
  }
  return scores;
}

ag::Var InnerProductKgcModel::ScoreAllTails(const std::vector<int64_t>& heads,
                                            const std::vector<int64_t>& rels) {
  ag::Var q = Query(heads, rels);                         // [B, d]
  ag::Var scores = ag::MatMul(q, ag::Transpose(CandidateTable()));  // [B, N]
  if (bias_.defined()) scores = ag::Add(scores, bias_);
  return scores;
}

tensor::Tensor InnerProductKgcModel::ServingQuery(
    const std::vector<int64_t>& heads, const std::vector<int64_t>& rels) {
  CAME_CHECK(!training()) << "ServingQuery requires eval mode";
  infer::NoTapeGuard guard;
  return Query(heads, rels).value();
}

tensor::Tensor InnerProductKgcModel::ServingCandidates() {
  CAME_CHECK(!training()) << "ServingCandidates requires eval mode";
  infer::NoTapeGuard guard;
  return CandidateTable().value();
}

tensor::Tensor InnerProductKgcModel::ServingEntityBias() {
  if (!bias_.defined()) return tensor::Tensor();
  return bias_.value();
}

ag::Var GatherConstRows(const tensor::Tensor& table,
                        const std::vector<int64_t>& indices) {
  return ag::Const(tensor::GatherRows(table, indices));
}

}  // namespace came::baselines
