#include "baselines/multimodal_baselines.h"

#include "baselines/translational.h"
#include "common/logging.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::baselines {

tensor::Tensor ConcatModalFeatures(const encoders::FeatureBank& bank) {
  return tensor::Concat({bank.molecule_features(), bank.text_features()}, 1);
}

CrossModalTransE::CrossModalTransE(const ModelContext& context, int64_t dim,
                                   tensor::Tensor feature_table,
                                   const std::string& prefix)
    : KgcModel(context), features_(std::move(feature_table)) {
  CAME_CHECK_EQ(features_.dim(0), context.num_entities);
  entities_ = RegisterParameter(
      prefix + "_entities",
      nn::EmbeddingInit({context.num_entities, dim}, &rng_));
  relations_ = RegisterParameter(
      prefix + "_relations",
      nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  feature_proj_ =
      std::make_unique<nn::Linear>(features_.dim(1), dim, &rng_);
  RegisterSubmodule(prefix + "_feature_proj", feature_proj_.get());
}

ag::Var CrossModalTransE::ModalEmbedding(
    const std::vector<int64_t>& entities) {
  return ag::Tanh(
      feature_proj_->Forward(GatherConstRows(features_, entities)));
}

ag::Var CrossModalTransE::ModalTable() {
  return ag::Tanh(feature_proj_->Forward(ag::Const(features_)));
}

ag::Var CrossModalTransE::ScoreTriples(const std::vector<int64_t>& heads,
                                       const std::vector<int64_t>& rels,
                                       const std::vector<int64_t>& tails) {
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var hs = ag::Gather(entities_, heads);
  ag::Var hf = ModalEmbedding(heads);
  ag::Var ts_ = ag::Gather(entities_, tails);
  ag::Var tf = ModalEmbedding(tails);
  ag::Var score = NegativeSquaredDistance(ag::Add(hs, r), ts_);
  score = ag::Add(score, NegativeSquaredDistance(ag::Add(hf, r), tf));
  score = ag::Add(score, NegativeSquaredDistance(ag::Add(hs, r), tf));
  score = ag::Add(score, NegativeSquaredDistance(ag::Add(hf, r), ts_));
  return ag::Scale(score, 0.25f);
}

ag::Var CrossModalTransE::ScoreAllTails(const std::vector<int64_t>& heads,
                                        const std::vector<int64_t>& rels) {
  ag::Var r = ag::Gather(relations_, rels);
  ag::Var hs = ag::Add(ag::Gather(entities_, heads), r);
  ag::Var hf = ag::Add(ModalEmbedding(heads), r);
  ag::Var tbl_f = ModalTable();
  ag::Var score = NegativeSquaredDistanceToAll(hs, entities_);
  score = ag::Add(score, NegativeSquaredDistanceToAll(hf, tbl_f));
  score = ag::Add(score, NegativeSquaredDistanceToAll(hs, tbl_f));
  score = ag::Add(score, NegativeSquaredDistanceToAll(hf, entities_));
  return ag::Scale(score, 0.25f);
}

namespace {
tensor::Tensor IkrlFeatureTable(const ModelContext& context) {
  CAME_CHECK(context.features != nullptr);
  // IKRL's modality is the "image": molecules when the dataset has them,
  // text otherwise (OMAHA-MM) — matching the paper's baseline setup.
  bool any_molecule = false;
  for (int64_t e = 0; e < context.features->num_entities(); ++e) {
    if (context.features->has_molecule(e)) {
      any_molecule = true;
      break;
    }
  }
  return any_molecule ? context.features->molecule_features()
                      : context.features->text_features();
}
}  // namespace

Ikrl::Ikrl(const ModelContext& context, int64_t dim)
    : CrossModalTransE(context, dim, IkrlFeatureTable(context), "ikrl") {}

Mtakgr::Mtakgr(const ModelContext& context, int64_t dim)
    : CrossModalTransE(context, dim,
                       ConcatModalFeatures(*context.features), "mtakgr") {}

TransAe::TransAe(const ModelContext& context, int64_t dim)
    : KgcModel(context) {
  CAME_CHECK(context.features != nullptr);
  features_ = ConcatModalFeatures(*context.features);
  relations_ = RegisterParameter(
      "relations", nn::EmbeddingInit({context.num_relations, dim}, &rng_));
  const int64_t feat = features_.dim(1);
  const int64_t hidden = std::max<int64_t>(dim, feat / 2);
  enc1_ = std::make_unique<nn::Linear>(feat, hidden, &rng_);
  enc2_ = std::make_unique<nn::Linear>(hidden, dim, &rng_);
  dec1_ = std::make_unique<nn::Linear>(dim, hidden, &rng_);
  dec2_ = std::make_unique<nn::Linear>(hidden, feat, &rng_);
  RegisterSubmodule("enc1", enc1_.get());
  RegisterSubmodule("enc2", enc2_.get());
  RegisterSubmodule("dec1", dec1_.get());
  RegisterSubmodule("dec2", dec2_.get());
}

ag::Var TransAe::Encode(const std::vector<int64_t>& entities) {
  ag::Var x = GatherConstRows(features_, entities);
  return ag::Tanh(enc2_->Forward(ag::Relu(enc1_->Forward(x))));
}

ag::Var TransAe::EncodeAll() {
  return ag::Tanh(enc2_->Forward(ag::Relu(enc1_->Forward(ag::Const(features_)))));
}

ag::Var TransAe::ScoreTriples(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& rels,
                              const std::vector<int64_t>& tails) {
  ag::Var a = ag::Add(Encode(heads), ag::Gather(relations_, rels));
  return NegativeSquaredDistance(a, Encode(tails));
}

ag::Var TransAe::ScoreAllTails(const std::vector<int64_t>& heads,
                               const std::vector<int64_t>& rels) {
  ag::Var a = ag::Add(Encode(heads), ag::Gather(relations_, rels));
  return NegativeSquaredDistanceToAll(a, EncodeAll());
}

ag::Var TransAe::AuxiliaryLoss(const std::vector<int64_t>& entities) {
  ag::Var z = Encode(entities);
  ag::Var recon = dec2_->Forward(ag::Relu(dec1_->Forward(z)));
  ag::Var target = GatherConstRows(features_, entities);
  return ag::MeanAll(ag::Square(ag::Sub(recon, target)));
}

}  // namespace came::baselines
