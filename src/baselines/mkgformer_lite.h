#ifndef CAME_BASELINES_MKGFORMER_LITE_H_
#define CAME_BASELINES_MKGFORMER_LITE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/conve.h"
#include "baselines/kgc_model.h"

namespace came::baselines {

/// MKGformer "M-Encoder" core (Chen et al., SIGIR 2022), reproduced the
/// way the paper reproduces it (Section V-C): the Prefix-guided
/// Interaction module (text queries attend over the modal token set) and
/// the Correlation-aware Fusion module (a learned text/visual correlation
/// gate), feeding a convolutional link-prediction decoder. The visual
/// stream is the molecular feature (text features stand in on datasets
/// without molecules).
class MkgformerLite : public InnerProductKgcModel {
 public:
  MkgformerLite(const ModelContext& context, const ConvDecoderConfig& config);

  std::string Name() const override { return "MKGformer"; }
  TrainingRegime regime() const override { return TrainingRegime::kOneToN; }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }

 private:
  /// Fused multimodal vector per head entity: [B, dim].
  ag::Var MEncoder(const std::vector<int64_t>& heads);

  ConvDecoderConfig config_;
  ag::Var entities_;
  ag::Var relations_;
  // Prefix-guided interaction.
  std::unique_ptr<nn::Linear> proj_text_;
  std::unique_ptr<nn::Linear> proj_vis_;
  std::unique_ptr<nn::Linear> w_query_;
  std::unique_ptr<nn::Linear> w_key_text_;
  std::unique_ptr<nn::Linear> w_key_vis_;
  std::unique_ptr<nn::Linear> w_value_text_;
  std::unique_ptr<nn::Linear> w_value_vis_;
  // Correlation-aware fusion.
  std::unique_ptr<nn::Linear> corr_a_;
  std::unique_ptr<nn::Linear> corr_b_;
  // Decoder.
  std::unique_ptr<nn::Conv2d> conv_;
  std::unique_ptr<nn::Linear> fc_;
  std::unique_ptr<nn::LayerNorm> norm_;
  std::unique_ptr<nn::Dropout> dropout_;
};

}  // namespace came::baselines

#endif  // CAME_BASELINES_MKGFORMER_LITE_H_
