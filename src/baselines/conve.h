#ifndef CAME_BASELINES_CONVE_H_
#define CAME_BASELINES_CONVE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/kgc_model.h"

namespace came::baselines {

/// Configuration shared by the convolutional decoders (ConvE and the
/// conv branches of MKGformer-lite / CamE).
struct ConvDecoderConfig {
  int64_t dim = 64;        // entity/relation embedding width
  int64_t filters = 32;    // conv output channels
  int64_t kernel = 3;      // square kernel (paper uses 9x9 at full scale)
  int64_t reshape_h = 8;   // 2-D reshape height; width = dim / reshape_h
  float dropout = 0.2f;
};

/// ConvE (Dettmers et al., 2018): stacks the reshaped head and relation
/// embeddings into a 2-channel image, convolves, and projects back to the
/// embedding space; trained 1-to-N with BCE.
class ConvE : public InnerProductKgcModel {
 public:
  ConvE(const ModelContext& context, const ConvDecoderConfig& config);

  std::string Name() const override { return "ConvE"; }
  TrainingRegime regime() const override { return TrainingRegime::kOneToN; }

 protected:
  ag::Var Query(const std::vector<int64_t>& heads,
                const std::vector<int64_t>& rels) override;
  ag::Var CandidateTable() override { return entities_; }

 private:
  ConvDecoderConfig config_;
  ag::Var entities_;
  ag::Var relations_;
  std::unique_ptr<nn::Conv2d> conv_;
  std::unique_ptr<nn::Linear> fc_;
  std::unique_ptr<nn::LayerNorm> norm_;
  std::unique_ptr<nn::Dropout> dropout_;
};

/// Reshapes each [B, dim] vector into [B, 1, reshape_h, dim/reshape_h]
/// and stacks the list along the channel axis. Shared by every conv-based
/// decoder in the repo (the paper's `stack2d` / star operator).
ag::Var Stack2d(const std::vector<ag::Var>& vectors, int64_t reshape_h);

}  // namespace came::baselines

#endif  // CAME_BASELINES_CONVE_H_
