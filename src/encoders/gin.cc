#include "encoders/gin.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/logging.h"
#include "nn/init.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace came::encoders {

namespace {
constexpr int64_t kMaskToken = datagen::kNumElements;

// Directed edge lists (both directions) from a molecule's bonds.
void EdgeLists(const datagen::Molecule& mol, std::vector<int64_t>* srcs,
               std::vector<int64_t>* dsts) {
  srcs->clear();
  dsts->clear();
  for (const auto& [a, b] : mol.bonds) {
    srcs->push_back(a);
    dsts->push_back(b);
    srcs->push_back(b);
    dsts->push_back(a);
  }
}
}  // namespace

GinEncoder::GinEncoder(const Config& config) : config_(config), rng_(config.seed) {
  atom_embedding_ = RegisterParameter(
      "atom_embedding",
      nn::XavierNormal({datagen::kNumElements + 1, config_.hidden_dim}, &rng_));
  for (int l = 0; l < config_.num_layers; ++l) {
    mlp1_.push_back(std::make_unique<nn::Linear>(config_.hidden_dim,
                                                 config_.hidden_dim, &rng_));
    mlp2_.push_back(std::make_unique<nn::Linear>(config_.hidden_dim,
                                                 config_.hidden_dim, &rng_));
    RegisterSubmodule("mlp1_" + std::to_string(l), mlp1_.back().get());
    RegisterSubmodule("mlp2_" + std::to_string(l), mlp2_.back().get());
    eps_.push_back(RegisterParameter("eps_" + std::to_string(l),
                                     tensor::Tensor::Zeros({1})));
  }
  out_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim,
                                           config_.out_dim, &rng_);
  RegisterSubmodule("out_proj", out_proj_.get());
  mask_head_ = std::make_unique<nn::Linear>(config_.out_dim,
                                            datagen::kNumElements, &rng_);
  RegisterSubmodule("mask_head", mask_head_.get());
}

ag::Var GinEncoder::RunLayers(const ag::Var& node_feats,
                              const std::vector<int64_t>& srcs,
                              const std::vector<int64_t>& dsts,
                              int64_t n) const {
  ag::Var h = node_feats;
  for (size_t l = 0; l < mlp1_.size(); ++l) {
    ag::Var aggregated;
    if (!srcs.empty()) {
      // sum_{u in N(v)} h_u via gather (edge sources) + scatter (targets)
      aggregated = ag::Scatter(ag::Gather(h, srcs), dsts, n);
    } else {
      aggregated = ag::Const(tensor::Tensor::Zeros(h.shape()));
    }
    ag::Var self = ag::Mul(h, ag::AddScalar(eps_[l], 1.0f));
    ag::Var combined = ag::Add(self, aggregated);
    h = mlp2_[l]->Forward(ag::Relu(mlp1_[l]->Forward(combined)));
    h = ag::Relu(h);
  }
  return out_proj_->Forward(h);
}

ag::Var GinEncoder::NodeStates(const datagen::Molecule& mol) const {
  CAME_CHECK(mol.IsValid());
  std::vector<int64_t> atoms(mol.atoms.begin(), mol.atoms.end());
  std::vector<int64_t> srcs;
  std::vector<int64_t> dsts;
  EdgeLists(mol, &srcs, &dsts);
  ag::Var feats = ag::Gather(atom_embedding_, atoms);
  return RunLayers(feats, srcs, dsts, mol.num_atoms());
}

tensor::Tensor GinEncoder::Encode(const datagen::Molecule& mol) const {
  ag::NoGradGuard guard;
  ag::Var nodes = NodeStates(mol);
  ag::Var pooled = ag::MeanAlong(nodes, 0, /*keepdim=*/false);
  tensor::Tensor out = ag::Tanh(pooled).value().Clone();
  // L2-normalise so inner products act as cosine similarity (molecule
  // size would otherwise dominate the feature norm).
  double norm2 = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    norm2 += static_cast<double>(out.data()[i]) * out.data()[i];
  }
  if (norm2 > 1e-12) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (int64_t i = 0; i < out.numel(); ++i) out.data()[i] *= inv;
  }
  return out;
}

float GinEncoder::Pretrain(const std::vector<datagen::Molecule>& molecules,
                           int epochs, float lr, double mask_fraction) {
  CAME_CHECK(!molecules.empty());
  optim::Adam opt(Parameters(), lr);
  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    int64_t count = 0;
    for (const auto& mol : molecules) {
      if (mol.atoms.empty()) continue;
      const int64_t n = mol.num_atoms();
      // Choose masked positions.
      std::vector<int64_t> atoms(mol.atoms.begin(), mol.atoms.end());
      std::vector<int64_t> masked_pos;
      for (int64_t i = 0; i < n; ++i) {
        if (rng_.Bernoulli(mask_fraction)) masked_pos.push_back(i);
      }
      if (masked_pos.empty()) {
        masked_pos.push_back(
            static_cast<int64_t>(rng_.UniformU64(static_cast<uint64_t>(n))));
      }
      std::vector<int64_t> corrupted = atoms;
      for (int64_t p : masked_pos) corrupted[static_cast<size_t>(p)] = kMaskToken;

      std::vector<int64_t> srcs;
      std::vector<int64_t> dsts;
      EdgeLists(mol, &srcs, &dsts);
      ag::Var feats = ag::Gather(atom_embedding_, corrupted);
      ag::Var nodes = RunLayers(feats, srcs, dsts, n);
      ag::Var logits = mask_head_->Forward(ag::Gather(nodes, masked_pos));
      // Cross entropy over element classes.
      ag::Var logp = ag::Log(ag::AddScalar(
          ag::SoftmaxAlong(logits, 1), 1e-8f));
      tensor::Tensor onehot(
          tensor::Shape{static_cast<int64_t>(masked_pos.size()),
                        datagen::kNumElements});
      for (size_t i = 0; i < masked_pos.size(); ++i) {
        onehot.data()[static_cast<int64_t>(i) * datagen::kNumElements +
                      atoms[static_cast<size_t>(masked_pos[i])]] = 1.0f;
      }
      ag::Var loss = ag::Scale(
          ag::SumAll(ag::Mul(logp, ag::Const(onehot))),
          -1.0f / static_cast<float>(masked_pos.size()));
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
      epoch_loss += loss.value().data()[0];
      ++count;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / std::max<int64_t>(1, count));
  }
  return last_epoch_loss;
}

}  // namespace came::encoders
