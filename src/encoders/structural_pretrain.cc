#include "encoders/structural_pretrain.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace came::encoders {

namespace {

// Margin ranking step on one (positive, negative) pair of triples sharing
// head and relation; L2 distance, hand-rolled subgradient update.
void MarginStep(float* eh, float* r, float* et_pos, float* et_neg,
                int64_t dim, float margin, float lr) {
  // d(x) = ||h + r - t||^2
  float d_pos = 0.0f;
  float d_neg = 0.0f;
  for (int64_t j = 0; j < dim; ++j) {
    const float dp = eh[j] + r[j] - et_pos[j];
    const float dn = eh[j] + r[j] - et_neg[j];
    d_pos += dp * dp;
    d_neg += dn * dn;
  }
  if (d_pos + margin <= d_neg) return;  // margin satisfied
  for (int64_t j = 0; j < dim; ++j) {
    const float dp = eh[j] + r[j] - et_pos[j];
    const float dn = eh[j] + r[j] - et_neg[j];
    // d(loss)/d(h) = 2(dp - dn), etc.
    const float gh = 2.0f * (dp - dn);
    eh[j] -= lr * gh;
    r[j] -= lr * gh;
    et_pos[j] -= lr * (-2.0f * dp);
    et_neg[j] -= lr * (2.0f * dn);
  }
}

void NormaliseRows(tensor::Tensor* m) {
  const int64_t rows = m->dim(0);
  const int64_t dim = m->dim(1);
  for (int64_t i = 0; i < rows; ++i) {
    float* row = m->data() + i * dim;
    double norm2 = 0.0;
    for (int64_t j = 0; j < dim; ++j) norm2 += static_cast<double>(row[j]) * row[j];
    if (norm2 > 1e-12) {
      const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
      for (int64_t j = 0; j < dim; ++j) row[j] *= inv;
    }
  }
}

}  // namespace

tensor::Tensor PretrainStructuralEmbeddings(
    const kg::Dataset& dataset, const StructuralPretrainConfig& config) {
  const int64_t n = dataset.num_entities();
  const int64_t r = dataset.num_relations_with_inverses();
  CAME_CHECK_GT(n, 0);
  Rng rng(config.seed);

  tensor::Tensor entities({n, config.dim});
  tensor::Tensor relations({r, config.dim});
  const float bound = static_cast<float>(6.0 / std::sqrt(config.dim));
  for (int64_t i = 0; i < entities.numel(); ++i) {
    entities.data()[i] = static_cast<float>(rng.Uniform(-bound, bound));
  }
  for (int64_t i = 0; i < relations.numel(); ++i) {
    relations.data()[i] = static_cast<float>(rng.Uniform(-bound, bound));
  }

  const std::vector<kg::Triple> train = dataset.TrainWithInverses();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    NormaliseRows(&entities);
    for (const kg::Triple& t : train) {
      for (int k = 0; k < config.negatives; ++k) {
        const int64_t neg = static_cast<int64_t>(
            rng.UniformU64(static_cast<uint64_t>(n)));
        MarginStep(entities.data() + t.head * config.dim,
                   relations.data() + t.rel * config.dim,
                   entities.data() + t.tail * config.dim,
                   entities.data() + neg * config.dim, config.dim,
                   config.margin, config.lr);
      }
    }
  }
  NormaliseRows(&entities);
  return entities;
}

}  // namespace came::encoders
