#ifndef CAME_ENCODERS_STRUCTURAL_PRETRAIN_H_
#define CAME_ENCODERS_STRUCTURAL_PRETRAIN_H_

#include <cstdint>

#include "kg/dataset.h"
#include "tensor/tensor.h"

namespace came::encoders {

/// Lightweight structural-embedding pre-trainer. The paper obtains the
/// structured-knowledge modality h_s from CompGCN; this module provides a
/// fast self-contained TransE pre-training pass (hand-rolled SGD, no
/// autograd tape) that serves the same role: a frozen per-entity vector
/// summarising graph neighbourhood structure. For the full CompGCN
/// pipeline use baselines::CompGcn and export its entity table instead.
struct StructuralPretrainConfig {
  int64_t dim = 32;
  int epochs = 15;
  float lr = 0.05f;
  float margin = 1.0f;
  int negatives = 4;
  uint64_t seed = 13;
};

/// Trains TransE on `dataset.train` and returns the entity embedding
/// matrix [num_entities, dim], rows L2-normalised.
tensor::Tensor PretrainStructuralEmbeddings(
    const kg::Dataset& dataset, const StructuralPretrainConfig& config);

}  // namespace came::encoders

#endif  // CAME_ENCODERS_STRUCTURAL_PRETRAIN_H_
