#include "encoders/text_encoder.h"

#include <cctype>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace came::encoders {

namespace {

uint64_t Fnv1a(const char* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

void CountNgrams(const std::string& text, int nmin, int nmax, int weight,
                 int64_t hash_dim, float* counts) {
  const int64_t len = static_cast<int64_t>(text.size());
  for (int n = nmin; n <= nmax; ++n) {
    for (int64_t i = 0; i + n <= len; ++i) {
      const uint64_t h = Fnv1a(text.data() + i, static_cast<size_t>(n));
      counts[h % static_cast<uint64_t>(hash_dim)] +=
          static_cast<float>(weight);
    }
  }
}

}  // namespace

TextEncoder::TextEncoder(const Config& config) : config_(config) {
  Rng rng(config.seed);
  projection_ =
      nn::XavierNormal({config_.hash_dim, config_.out_dim}, &rng, 2.0);
}

tensor::Tensor TextEncoder::HashedNgrams(
    const datagen::EntityText& text) const {
  tensor::Tensor bag(tensor::Shape{config_.hash_dim});
  // Built via insert/push_back rather than operator+ chaining: GCC 12's
  // -Wrestrict mis-fires on the inlined temporary concat (GCC PR105329).
  std::string name = Lower(text.name);
  name.insert(name.begin(), '^');
  name.push_back('$');
  CountNgrams(name, config_.ngram_min, config_.ngram_max,
              config_.name_weight, config_.hash_dim, bag.data());
  CountNgrams(Lower(text.description), config_.ngram_min, config_.ngram_max,
              /*weight=*/1, config_.hash_dim, bag.data());
  // L2 normalise.
  double norm2 = 0.0;
  for (int64_t i = 0; i < bag.numel(); ++i) {
    norm2 += static_cast<double>(bag.data()[i]) * bag.data()[i];
  }
  if (norm2 > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (int64_t i = 0; i < bag.numel(); ++i) bag.data()[i] *= inv;
  }
  return bag;
}

tensor::Tensor TextEncoder::Encode(const datagen::EntityText& text) const {
  tensor::Tensor bag = HashedNgrams(text).Reshape({1, config_.hash_dim});
  tensor::Tensor projected = tensor::MatMul(bag, projection_);
  return tensor::Tanh(tensor::Scale(projected, 4.0f))
      .Reshape({config_.out_dim});
}

}  // namespace came::encoders
