#ifndef CAME_ENCODERS_GIN_H_
#define CAME_ENCODERS_GIN_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"
#include "datagen/molecule.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace came::encoders {

/// Graph Isomorphism Network encoder for molecular graphs — stands in for
/// the pre-trained GIN of Hu et al. (ICLR 2020) that the paper uses to
/// featurise molecules.
///
/// Layers compute h_v' = MLP((1 + eps) h_v + sum_{u in N(v)} h_u); the
/// graph embedding is the mean over final node states. `Pretrain` runs the
/// same self-supervision as the paper's source: random node attributes are
/// masked and the network predicts the masked element type. After
/// pre-training the encoder is frozen and `Encode` produces the fixed
/// molecular feature h_m consumed by the multimodal models.
class GinEncoder : public nn::Module {
 public:
  struct Config {
    int64_t hidden_dim = 32;
    int64_t out_dim = 32;
    int num_layers = 3;
    uint64_t seed = 7;
  };

  explicit GinEncoder(const Config& config);

  /// Differentiable forward over one molecule: [num_atoms, out_dim] node
  /// states after the final layer.
  ag::Var NodeStates(const datagen::Molecule& mol) const;

  /// Frozen featurisation: mean-pooled graph embedding [out_dim].
  tensor::Tensor Encode(const datagen::Molecule& mol) const;

  /// Masked-attribute self-supervised pre-training. Masks `mask_fraction`
  /// of atoms per molecule (at least one) and minimises cross-entropy of
  /// the predicted element. Returns the final epoch's mean loss.
  float Pretrain(const std::vector<datagen::Molecule>& molecules, int epochs,
                 float lr, double mask_fraction = 0.15);

  int64_t out_dim() const { return config_.out_dim; }

 private:
  // Runs the message-passing stack over explicit node features.
  ag::Var RunLayers(const ag::Var& node_feats,
                    const std::vector<int64_t>& srcs,
                    const std::vector<int64_t>& dsts, int64_t n) const;

  Config config_;
  Rng rng_;
  ag::Var atom_embedding_;  // [kNumElements + 1, hidden]; last row = [MASK]
  std::vector<std::unique_ptr<nn::Linear>> mlp1_;
  std::vector<std::unique_ptr<nn::Linear>> mlp2_;
  std::vector<ag::Var> eps_;  // learnable epsilon per layer
  std::unique_ptr<nn::Linear> out_proj_;
  std::unique_ptr<nn::Linear> mask_head_;  // element classifier
};

}  // namespace came::encoders

#endif  // CAME_ENCODERS_GIN_H_
