#ifndef CAME_ENCODERS_TEXT_ENCODER_H_
#define CAME_ENCODERS_TEXT_ENCODER_H_

#include <cstdint>
#include <string>

#include "datagen/textgen.h"
#include "tensor/tensor.h"

namespace came::encoders {

/// Character n-gram text encoder — stands in for the CharacterBERT /
/// Chinese-BERT embeddings the paper feeds CamE (Section III).
///
/// Names are wrapped in boundary markers ('^name$') so prefixes and
/// suffixes ("Sulfa...", "...cillin") produce distinctive n-grams — the
/// word-piece-level signal the paper's case study relies on. N-gram counts
/// are feature-hashed into a fixed-width bag, L2-normalised, then passed
/// through a frozen random projection + tanh, mimicking a pre-trained
/// encoder whose weights we do not train.
class TextEncoder {
 public:
  struct Config {
    int64_t out_dim = 32;
    int64_t hash_dim = 512;
    int ngram_min = 2;
    int ngram_max = 4;
    /// Name n-grams are counted this many times relative to description
    /// n-grams (names carry the family affix).
    int name_weight = 3;
    uint64_t seed = 11;
  };

  explicit TextEncoder(const Config& config);

  /// Fixed-dimensional embedding of an entity's name + description.
  tensor::Tensor Encode(const datagen::EntityText& text) const;

  /// The hashed bag-of-n-grams before projection (exposed for tests).
  tensor::Tensor HashedNgrams(const datagen::EntityText& text) const;

  int64_t out_dim() const { return config_.out_dim; }

 private:
  Config config_;
  tensor::Tensor projection_;  // [hash_dim, out_dim], frozen
};

}  // namespace came::encoders

#endif  // CAME_ENCODERS_TEXT_ENCODER_H_
