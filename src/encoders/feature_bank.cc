#include "encoders/feature_bank.h"

#include <algorithm>

#include "common/logging.h"

namespace came::encoders {

FeatureBank::FeatureBank(int64_t num_entities, int64_t dim_m, int64_t dim_t)
    : mol_({num_entities, dim_m}),
      text_({num_entities, dim_t}),
      mol_mask_(static_cast<size_t>(num_entities), false) {}

void FeatureBank::SetMolecule(int64_t entity, const tensor::Tensor& feature) {
  CAME_CHECK_EQ(feature.numel(), dim_m());
  std::copy(feature.data(), feature.data() + dim_m(),
            mol_.data() + entity * dim_m());
  mol_mask_[static_cast<size_t>(entity)] = true;
}

void FeatureBank::SetText(int64_t entity, const tensor::Tensor& feature) {
  CAME_CHECK_EQ(feature.numel(), dim_t());
  std::copy(feature.data(), feature.data() + dim_t(),
            text_.data() + entity * dim_t());
}

void FeatureBank::SetStructural(tensor::Tensor features) {
  CAME_CHECK_EQ(features.dim(0), num_entities());
  structural_ = std::move(features);
}

FeatureBank BuildFeatureBank(const datagen::GeneratedBkg& bkg,
                             const FeatureBankConfig& config) {
  const int64_t n = bkg.dataset.num_entities();
  FeatureBank bank(n, config.gin.out_dim, config.text.out_dim);

  // Text features for every entity.
  TextEncoder text_encoder(config.text);
  for (int64_t e = 0; e < n; ++e) {
    bank.SetText(e, text_encoder.Encode(bkg.texts[static_cast<size_t>(e)]));
  }

  // Molecule features (if the dataset carries molecules).
  if (bkg.has_molecules) {
    GinEncoder gin(config.gin);
    std::vector<datagen::Molecule> sample;
    for (const auto& mol : bkg.molecules) {
      if (mol.atoms.empty()) continue;
      sample.push_back(mol);
      if (static_cast<int64_t>(sample.size()) >= config.gin_pretrain_sample) {
        break;
      }
    }
    if (!sample.empty() && config.gin_pretrain_epochs > 0) {
      gin.Pretrain(sample, config.gin_pretrain_epochs,
                   config.gin_pretrain_lr);
    }
    gin.SetTraining(false);
    for (int64_t e = 0; e < n; ++e) {
      const auto& mol = bkg.molecules[static_cast<size_t>(e)];
      if (mol.atoms.empty()) continue;
      bank.SetMolecule(e, gin.Encode(mol));
    }
  }

  if (config.pretrain_structural) {
    bank.SetStructural(
        PretrainStructuralEmbeddings(bkg.dataset, config.structural));
  }
  return bank;
}

}  // namespace came::encoders
