#ifndef CAME_ENCODERS_FEATURE_BANK_H_
#define CAME_ENCODERS_FEATURE_BANK_H_

#include <cstdint>
#include <vector>

#include "datagen/bkg_generator.h"
#include "encoders/gin.h"
#include "encoders/structural_pretrain.h"
#include "encoders/text_encoder.h"
#include "tensor/tensor.h"

namespace came::encoders {

/// Frozen per-entity multimodal features: the h_m (molecule), h_t (text)
/// and h_s (structural, optional) inputs of CamE and the multimodal
/// baselines. Rows of entities without a modality are zero and flagged in
/// the corresponding mask.
class FeatureBank {
 public:
  /// Empty placeholder bank (1 entity); assign a real bank over it.
  FeatureBank() : FeatureBank(1, 1, 1) {}
  FeatureBank(int64_t num_entities, int64_t dim_m, int64_t dim_t);

  const tensor::Tensor& molecule_features() const { return mol_; }
  const tensor::Tensor& text_features() const { return text_; }
  /// Pre-trained structural embeddings; undefined (numel 0) unless built
  /// with pretrain_structural=true.
  const tensor::Tensor& structural_features() const { return structural_; }

  bool has_molecule(int64_t entity) const {
    return mol_mask_[static_cast<size_t>(entity)];
  }
  bool has_structural() const { return structural_.numel() > 0; }

  int64_t num_entities() const { return mol_.dim(0); }
  int64_t dim_m() const { return mol_.dim(1); }
  int64_t dim_t() const { return text_.dim(1); }

  void SetMolecule(int64_t entity, const tensor::Tensor& feature);
  void SetText(int64_t entity, const tensor::Tensor& feature);
  void SetStructural(tensor::Tensor features);

 private:
  tensor::Tensor mol_;         // [N, dim_m]
  tensor::Tensor text_;        // [N, dim_t]
  tensor::Tensor structural_;  // [N, dim_s] or empty
  std::vector<bool> mol_mask_;
};

/// End-to-end feature construction for a generated BKG: pre-trains the GIN
/// on the dataset's molecules (masked-attribute task), encodes every
/// entity's text, and optionally pre-trains structural embeddings.
struct FeatureBankConfig {
  GinEncoder::Config gin;
  TextEncoder::Config text;
  int gin_pretrain_epochs = 2;
  float gin_pretrain_lr = 1e-3f;
  int64_t gin_pretrain_sample = 200;  // molecules used for pre-training
  bool pretrain_structural = false;
  StructuralPretrainConfig structural;
};

FeatureBank BuildFeatureBank(const datagen::GeneratedBkg& bkg,
                             const FeatureBankConfig& config);

}  // namespace came::encoders

#endif  // CAME_ENCODERS_FEATURE_BANK_H_
