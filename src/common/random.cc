#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace came {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  CAME_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CAME_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int64_t Rng::Zipf(int64_t n, double alpha) {
  CAME_CHECK_GT(n, 0);
  if (alpha <= 0.0) return static_cast<int64_t>(UniformU64(n));
  // O(1) inversion of the continuous truncated power law p(x) ~ x^-alpha
  // on [1, n+1); floor(x)-1 approximates a Zipf index for any alpha > 0.
  const double u = UniformDouble();
  const double b = static_cast<double>(n) + 1.0;
  double x;
  if (std::fabs(alpha - 1.0) < 1e-9) {
    x = std::pow(b, u);
  } else {
    const double one_minus = 1.0 - alpha;
    x = std::pow(u * (std::pow(b, one_minus) - 1.0) + 1.0, 1.0 / one_minus);
  }
  int64_t k = static_cast<int64_t>(x) - 1;
  if (k < 0) k = 0;
  if (k >= n) k = n - 1;
  return k;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  CAME_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CAME_CHECK_GE(w, 0.0);
    total += w;
  }
  CAME_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::GetState() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace came
