#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace came {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          (void)std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() { out_.reserve(1024); }

void JsonWriter::Indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  CAME_CHECK(!done_) << "value after the root closed";
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Scope::kObject) {
    CAME_CHECK(key_pending_) << "object value without a Key()";
    key_pending_ = false;
    return;  // Key() already emitted the comma/indent and "k":
  }
  if (has_items_.back()) out_ += ',';
  Indent();
  has_items_.back() = true;
}

void JsonWriter::Key(const std::string& k) {
  CAME_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "Key() outside an object";
  CAME_CHECK(!key_pending_) << "two Key() calls in a row";
  if (has_items_.back()) out_ += ',';
  Indent();
  has_items_.back() = true;
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\": ";
  key_pending_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  CAME_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  CAME_CHECK(!key_pending_) << "Key() with no value";
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += '}';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  CAME_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += ']';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[64];
    (void)std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

const std::string& JsonWriter::Str() const {
  CAME_CHECK(done_ && stack_.empty()) << "JSON document not closed";
  return out_;
}

bool JsonWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    CAME_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  f << Str() << '\n';
  return f.good();
}

}  // namespace came
