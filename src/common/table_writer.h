#ifndef CAME_COMMON_TABLE_WRITER_H_
#define CAME_COMMON_TABLE_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace came {

/// Accumulates rows and renders them as an aligned ASCII table (the format
/// the benches print so their output reads like the paper's tables) and/or
/// as CSV for downstream plotting.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);

  /// Aligned, boxed ASCII rendering.
  std::string ToAscii() const;

  /// Comma-separated rendering (header + rows).
  std::string ToCsv() const;

  /// Writes the CSV form to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace came

#endif  // CAME_COMMON_TABLE_WRITER_H_
