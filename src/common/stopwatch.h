#ifndef CAME_COMMON_STOPWATCH_H_
#define CAME_COMMON_STOPWATCH_H_

#include <chrono>

namespace came {

/// Wall-clock stopwatch for the convergence (Fig 8) and scalability (Fig 9)
/// experiments and for general timing in benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace came

#endif  // CAME_COMMON_STOPWATCH_H_
