#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace came::io {

namespace {

// Nibble-driven CRC-32: a 16-entry table is cache-friendly and the
// checkpoint payloads are small enough that throughput is irrelevant.
constexpr uint32_t kCrcNibble[16] = {
    0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac, 0x76dc4190, 0x6b6b51f4,
    0x4db26158, 0x5005713c, 0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
    0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};

struct FailpointState {
  Failpoint fp;
  uint64_t bytes_seen = 0;  // cumulative across writers while installed
  bool crashed = false;     // kCrashAfterBytes tripped
};

FailpointState g_failpoint;

bool FailpointActive() {
  return g_failpoint.fp.kind != FailpointKind::kNone;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0xf];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0xf];
  }
  return ~crc;
}

ScopedFailpoint::ScopedFailpoint(Failpoint fp) {
  CAME_CHECK(!FailpointActive()) << "failpoint scopes do not nest";
  g_failpoint = FailpointState{fp, 0, false};
}

ScopedFailpoint::~ScopedFailpoint() { g_failpoint = FailpointState{}; }

FileWriter::~FileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileWriter::Open(const std::string& path) {
  CAME_CHECK(fd_ < 0) << "FileWriter already open";
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  bytes_written_ = 0;
  return Status::OK();
}

Status FileWriter::Append(const void* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("FileWriter not open");
  size_t to_write = n;
  Status injected = Status::OK();
  if (FailpointActive()) {
    if (g_failpoint.crashed) {
      return Status::IOError("injected crash: process is dead");
    }
    const uint64_t budget = g_failpoint.fp.at_bytes;
    const uint64_t seen = g_failpoint.bytes_seen;
    if (seen + n > budget) {
      const size_t partial = budget > seen ? static_cast<size_t>(budget - seen)
                                           : 0;
      switch (g_failpoint.fp.kind) {
        case FailpointKind::kShortWrite:
          to_write = partial;
          injected = Status::IOError("injected short write on " + path_);
          break;
        case FailpointKind::kEnospc:
          to_write = 0;
          injected = Status::IOError("injected ENOSPC on " + path_);
          break;
        case FailpointKind::kCrashAfterBytes:
          to_write = partial;
          g_failpoint.crashed = true;
          injected = Status::IOError("injected crash while writing " + path_);
          break;
        case FailpointKind::kNone:
          break;
      }
    }
    g_failpoint.bytes_seen = seen + to_write;
  }
  const auto* p = static_cast<const uint8_t*>(data);
  while (to_write > 0) {
    const ssize_t w = ::write(fd_, p, to_write);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write " + path_ + ": " + std::strerror(errno));
    }
    p += w;
    to_write -= static_cast<size_t>(w);
    bytes_written_ += static_cast<uint64_t>(w);
  }
  return injected;
}

Status FileWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("FileWriter not open");
  if (FailpointActive() && g_failpoint.crashed) {
    return Status::IOError("injected crash: process is dead");
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FileWriter::Close() {
  if (fd_ < 0) return Status::FailedPrecondition("FileWriter not open");
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IOError("close " + path_ + ": " + std::strerror(errno));
  }
  if (FailpointActive() && g_failpoint.crashed) {
    return Status::IOError("injected crash: process is dead");
  }
  return Status::OK();
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

Status AtomicFileWriter::Open() { return writer_.Open(tmp_path_); }

Status AtomicFileWriter::Append(const void* data, size_t n) {
  return writer_.Append(data, n);
}

Status AtomicFileWriter::Commit() {
  CAME_CHECK(!committed_) << "Commit called twice";
  CAME_RETURN_IF_ERROR(writer_.Sync());
  CAME_RETURN_IF_ERROR(writer_.Close());
  if (FailpointActive() && g_failpoint.crashed) {
    return Status::IOError("injected crash before rename of " + tmp_path_);
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename " + tmp_path_ + " -> " + path_ + ": " +
                           std::strerror(errno));
  }
  committed_ = true;
  // Make the rename itself durable: fsync the containing directory.
  const size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

void AtomicFileWriter::Abort() {
  if (committed_) return;
  if (writer_.is_open()) {
    // Best-effort: Abort already runs on an error path (or in a
    // destructor), so a close failure is logged, not propagated.
    writer_.Close().LogIfError("AtomicFileWriter::Abort");
  }
  ::unlink(tmp_path_.c_str());
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t n) {
  AtomicFileWriter w(path);
  CAME_RETURN_IF_ERROR(w.Open());
  CAME_RETURN_IF_ERROR(w.Append(data, n));
  return w.Commit();
}

Status ReadFile(const std::string& path, std::string* out) {
  CAME_CHECK(out != nullptr);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::IOError("read " + path + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace came::io
