#ifndef CAME_COMMON_FLAGS_H_
#define CAME_COMMON_FLAGS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace came::flags {

// Checked numeric parsing for CLI flags and config files, replacing the
// atoi/atof idiom that silently turns "abc" into 0 and "10x" into 10. The
// whole string must parse: empty input, non-numeric input, trailing
// garbage, and out-of-range values are all rejected.

/// Parses a (possibly signed) decimal integer.
Result<int64_t> ParseInt(const std::string& text);
/// Parses an unsigned decimal integer (rejects a leading '-').
Result<uint64_t> ParseUint(const std::string& text);
/// Parses a floating-point number (rejects NaN/inf spellings).
Result<double> ParseDouble(const std::string& text);

// CLI front-end wrappers: parse the value of `--flag` or exit(2) with
//   flag --<flag>: <reason>, got "<text>"
// on stderr. `min`/`max` are inclusive bounds (e.g. IntFlag(v, "topk", 1)
// rejects --topk 0 and --topk -3 instead of printing nothing).

int64_t IntFlag(const std::string& text, const std::string& flag,
                int64_t min = INT64_MIN, int64_t max = INT64_MAX);
uint64_t UintFlag(const std::string& text, const std::string& flag,
                  uint64_t min = 0, uint64_t max = UINT64_MAX);
double DoubleFlag(const std::string& text, const std::string& flag,
                  double min, double max);
/// DoubleFlag with no bounds.
double DoubleFlag(const std::string& text, const std::string& flag);

}  // namespace came::flags

#endif  // CAME_COMMON_FLAGS_H_
