#ifndef CAME_COMMON_MUTEX_H_
#define CAME_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace came {

/// Annotated wrapper over std::mutex — the only mutex type allowed in src/
/// (enforced by tools/lint_project.py). The wrapper buys two things a raw
/// std::mutex cannot provide:
///
///  1. Clang Thread Safety Analysis: fields declared CAME_GUARDED_BY(mu_)
///     and methods declared CAME_REQUIRES(mu_) are checked at compile time
///     under -Wthread-safety (CMake -DCAME_THREAD_SAFETY=ON).
///  2. A debug lock-order validator (CAME_DEADLOCK_CHECK=1, or
///     SetDeadlockCheckEnabled): every acquisition records "held -> taken"
///     edges in a process-wide order graph; acquiring A while holding B
///     after some thread ever acquired B while holding A aborts with both
///     acquisition stacks, turning a someday-deadlock into a
///     deterministic failure on the first inverted acquisition.
class CAME_LOCKABLE Mutex {
 public:
  Mutex() = default;
  /// Drops this mutex's edges from the order graph (addresses recycle).
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CAME_ACQUIRE();
  void Unlock() CAME_RELEASE();
  /// True (and held) on success; never blocks. A successful TryLock still
  /// records order edges — a try-lock taken in inverted order is a real
  /// inversion whenever it succeeds.
  bool TryLock() CAME_TRY_ACQUIRE(true);

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for came::Mutex; the direct replacement for
/// std::lock_guard/std::unique_lock in annotated code.
class CAME_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CAME_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CAME_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with came::Mutex. No predicate overload on
/// purpose: annotated callers spell the guard as an explicit
/// `while (!cond) cv.Wait(&mu);` loop so the condition's guarded reads sit
/// in the annotated function body where the analysis can see them (a
/// lambda predicate would be analysed as an unlocked context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks; re-acquires before returning.
  /// Spurious wakeups happen — always wait in a condition loop.
  void Wait(Mutex* mu) CAME_REQUIRES(mu);
  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

/// Runtime toggle for the lock-order validator. Default comes from the
/// CAME_DEADLOCK_CHECK environment variable (unset/0 = off), resolved on
/// first use; tests flip it explicitly so death tests work regardless of
/// what the parent process already resolved.
void SetDeadlockCheckEnabled(bool enabled);
bool DeadlockCheckEnabled();

}  // namespace came

#endif  // CAME_COMMON_MUTEX_H_
