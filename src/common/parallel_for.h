#ifndef CAME_COMMON_PARALLEL_FOR_H_
#define CAME_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace came {

/// Worker-pool size used by ParallelFor. Resolved lazily on first use from
/// the CAME_NUM_THREADS environment variable; unset, empty or invalid
/// values fall back to std::thread::hardware_concurrency(). Always >= 1.
int NumThreads();

/// Overrides the pool size at runtime (re-creating the persistent pool).
/// Intended for benchmarks and tests that compare thread counts; must not
/// be called while a ParallelFor is in flight. Clamped to >= 1.
void SetNumThreads(int n);

/// Invokes `fn(lo, hi)` over disjoint contiguous subranges that exactly
/// cover [begin, end). The partition is *static*: chunk boundaries depend
/// only on (begin, end, grain) — never on the thread count — so any kernel
/// whose chunks write disjoint outputs and carry no state across chunk
/// boundaries produces bitwise-identical results at every CAME_NUM_THREADS
/// setting, including 1.
///
/// Runs serially on the calling thread (no pool involvement) when the pool
/// has one thread, when the range fits in a single grain, or when called
/// from inside another ParallelFor chunk (nested parallelism degrades to
/// serial rather than deadlocking the pool).
///
/// The first exception thrown by `fn` on any worker is captured and
/// rethrown on the calling thread after all chunks finish.
///
/// `grain` is the maximum number of indices per chunk (clamped to >= 1);
/// callers pick it so one chunk amortises dispatch overhead (~tens of
/// microseconds of work).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace came

#endif  // CAME_COMMON_PARALLEL_FOR_H_
