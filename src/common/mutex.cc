#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define CAME_HAVE_BACKTRACE 1
#endif
#endif

namespace came {
namespace {

// ---- lock-order validator ------------------------------------------------
//
// Directed graph over mutex addresses: edge (A -> B) means "some thread
// acquired B while holding A". The first acquisition that would add an
// edge whose reverse already exists is an ordering inversion — the classic
// ABBA deadlock needs exactly that pair to happen concurrently, so the
// validator reports it deterministically even when the timing never
// actually deadlocks. Per-thread held stacks are thread_local; the graph
// itself is guarded by a raw std::mutex (the validator cannot be built on
// came::Mutex without recursing into itself — this file is the one place
// src/ may use std::mutex directly, and lint_project.py allowlists it).

constexpr int kMaxStackFrames = 24;

struct CapturedStack {
  void* frames[kMaxStackFrames];
  int depth = 0;
};

void CaptureStack(CapturedStack* out) {
#if defined(CAME_HAVE_BACKTRACE)
  out->depth = backtrace(out->frames, kMaxStackFrames);
#else
  out->depth = 0;
#endif
}

void PrintStack(const char* label, const CapturedStack& stack) {
  (void)std::fprintf(stderr, "%s\n", label);
#if defined(CAME_HAVE_BACKTRACE)
  if (stack.depth > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(stack.frames), stack.depth,
                         /*fd=*/2);
    return;
  }
#endif
  (void)std::fprintf(stderr, "  <no backtrace available>\n");
  (void)stack;
}

struct OrderGraph {
  std::mutex mu;  // raw by necessity: the validator cannot lock itself
  // (held, taken) -> stack captured when the edge was first recorded.
  std::map<std::pair<const void*, const void*>, CapturedStack> edges;
};

OrderGraph& Graph() {
  // Leaked: mutexes (and their destructor hooks) may run during static
  // teardown in arbitrary order.
  static OrderGraph* g = new OrderGraph;
  return *g;
}

// The per-thread held-lock stack must stay usable for the *entire* thread
// lifetime, including the __call_tls_dtors phase: thread_local objects
// elsewhere (e.g. the storage pool's ThreadCache) lock a came::Mutex from
// their destructors, which runs after any non-trivially-destructible
// thread_local here would already be dead. A POD with a fixed-size array
// registers no TLS destructor, so it can never be used-after-freed.
constexpr int kMaxHeldLocks = 64;

struct HeldList {
  int n;
  const void* items[kMaxHeldLocks];
};

HeldList& HeldStack() {
  thread_local HeldList held;  // POD: zero-initialised, no TLS dtor
  return held;
}

// -1 = not yet resolved from the environment; 0/1 = off/on.
std::atomic<int> g_deadlock_mode{-1};

[[noreturn]] void ReportInversion(const void* taken, const void* held,
                                  const CapturedStack& prior) {
  CapturedStack current;
  CaptureStack(&current);
  (void)std::fprintf(stderr,
               "came::Mutex lock-order inversion: acquiring mutex %p while "
               "holding %p, but %p was previously acquired while holding "
               "%p.\n",
               taken, held, held, taken);
  PrintStack("Prior acquisition (reverse order) at:", prior);
  PrintStack("Current acquisition at:", current);
  std::abort();
}

void OnAcquired(const void* m) {
  HeldList& held = HeldStack();
  if (held.n > 0) {
    OrderGraph& g = Graph();
    std::lock_guard<std::mutex> lock(g.mu);
    for (int i = 0; i < held.n; ++i) {
      const void* h = held.items[i];
      if (h == m) continue;
      auto reverse = g.edges.find({m, h});
      if (reverse != g.edges.end()) ReportInversion(m, h, reverse->second);
      auto [it, inserted] = g.edges.try_emplace({h, m});
      if (inserted) CaptureStack(&it->second);
    }
  }
  // Beyond kMaxHeldLocks simultaneously-held locks the extra entries are
  // not tracked (their release scan simply finds nothing); real nesting in
  // this tree is <4 deep.
  if (held.n < kMaxHeldLocks) held.items[held.n++] = m;
}

void OnReleased(const void* m) {
  HeldList& held = HeldStack();
  for (int i = held.n - 1; i >= 0; --i) {
    if (held.items[i] != m) continue;
    for (int j = i; j + 1 < held.n; ++j) held.items[j] = held.items[j + 1];
    --held.n;
    return;
  }
}

}  // namespace

bool DeadlockCheckEnabled() {
  int mode = g_deadlock_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("CAME_DEADLOCK_CHECK");
    mode = (env != nullptr && env[0] == '1' && env[1] == '\0') ? 1 : 0;
    g_deadlock_mode.store(mode, std::memory_order_relaxed);
  }
  return mode != 0;
}

void SetDeadlockCheckEnabled(bool enabled) {
  g_deadlock_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Mutex::~Mutex() {
  if (!DeadlockCheckEnabled()) return;
  OrderGraph& g = Graph();
  std::lock_guard<std::mutex> lock(g.mu);
  for (auto it = g.edges.begin(); it != g.edges.end();) {
    if (it->first.first == this || it->first.second == this) {
      it = g.edges.erase(it);
    } else {
      ++it;
    }
  }
}

void Mutex::Lock() {
  mu_.lock();
  if (DeadlockCheckEnabled()) OnAcquired(this);
}

void Mutex::Unlock() {
  if (DeadlockCheckEnabled()) OnReleased(this);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  if (DeadlockCheckEnabled()) OnAcquired(this);
  return true;
}

void CondVar::Wait(Mutex* mu) {
  // The wait releases and re-acquires *mu; mirror that in the validator's
  // held stack so edges recorded while blocked do not involve *mu, and the
  // re-acquisition is order-checked like any other.
  if (DeadlockCheckEnabled()) OnReleased(mu);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  if (DeadlockCheckEnabled()) OnAcquired(mu);
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace came
