#include "common/table_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace came {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  CAME_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double v, int precision) {
  char buf[64];
  (void)std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
    return os.str();
  };
  std::string separator = "+";
  for (size_t w : widths) separator += std::string(w + 2, '-') + "+";
  separator += "\n";

  std::string out = separator + render_row(header_) + separator;
  for (const auto& row : rows_) out += render_row(row);
  out += separator;
  return out;
}

std::string TableWriter::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

Status TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << ToCsv();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace came
