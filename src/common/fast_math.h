#ifndef CAME_COMMON_FAST_MATH_H_
#define CAME_COMMON_FAST_MATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace came {

/// Fast exp(x) for attention softmax kernels: exp2-based with a cubic
/// minimax polynomial for the fractional part (~1e-4 relative error).
/// Used only where the result feeds a normalised softmax, so the small
/// relative error cancels; generic tensor ops keep std::exp.
///
/// NaN propagates (a diverging attention logit must surface as NaN
/// downstream, not as garbage); -inf underflows to 0 and +inf saturates
/// to the finite exp(87) cap like any other out-of-range argument.
inline float FastExp(float x) {
  if (std::isnan(x)) return x;  // std::floor(NaN) -> NaN, and casting that
                                // to int32_t below would be UB
  if (x < -87.0f) return 0.0f;
  if (x > 87.0f) x = 87.0f;
  const float t = x * 1.4426950408889634f;  // x * log2(e)
  const float fi = std::floor(t);
  const float f = t - fi;
  // 2^f on [0, 1).
  const float p =
      1.0f + f * (0.69583282f + f * (0.22606716f + f * 0.07809985f));
  const int32_t i = (static_cast<int32_t>(fi) + 127) << 23;
  float scale;
  std::memcpy(&scale, &i, sizeof(scale));
  return scale * p;
}

}  // namespace came

#endif  // CAME_COMMON_FAST_MATH_H_
