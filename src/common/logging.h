#ifndef CAME_COMMON_LOGGING_H_
#define CAME_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace came {
namespace internal {

/// Collects a fatal-error message and aborts the process on destruction.
/// Used only by the CAME_CHECK* macros below; never instantiate directly.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailStream();

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for CAME_LOG output (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line);
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace came

/// Fatal assertion for programming errors (shape mismatches, violated
/// invariants). Streams extra context: CAME_CHECK(a == b) << "while ...";
#define CAME_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else /* NOLINT */                                                      \
    ::came::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define CAME_CHECK_EQ(a, b) CAME_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CAME_CHECK_NE(a, b) CAME_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CAME_CHECK_LT(a, b) CAME_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CAME_CHECK_LE(a, b) CAME_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CAME_CHECK_GT(a, b) CAME_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CAME_CHECK_GE(a, b) CAME_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#define CAME_LOG(level)                                      \
  ::came::internal::LogStream(::came::LogLevel::k##level, __FILE__, __LINE__)

#endif  // CAME_COMMON_LOGGING_H_
