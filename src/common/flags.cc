#include "common/flags.h"

#include <cerrno>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace came::flags {

namespace {

// strtoll/strtod silently skip leading whitespace and accept hex / inf /
// nan spellings; a flag value should be a plain decimal literal, so gate
// the first character before handing over.
bool AcceptableStart(const std::string& text, bool allow_sign) {
  if (text.empty()) return false;
  const char c = text[0];
  if (std::isdigit(static_cast<unsigned char>(c))) return true;
  if (allow_sign && (c == '-' || c == '+') && text.size() > 1) return true;
  if (!allow_sign && c == '+' && text.size() > 1) return true;
  return c == '.' && allow_sign;  // only reachable from ParseDouble
}

}  // namespace

Result<int64_t> ParseInt(const std::string& text) {
  if (!AcceptableStart(text, /*allow_sign=*/true) ||
      (text[0] == '.')) {
    return Status::InvalidArgument("not a decimal integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("trailing characters after number");
  }
  if (errno == ERANGE) return Status::InvalidArgument("out of range");
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint(const std::string& text) {
  if (!AcceptableStart(text, /*allow_sign=*/false)) {
    return Status::InvalidArgument("not an unsigned decimal integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("trailing characters after number");
  }
  if (errno == ERANGE) return Status::InvalidArgument("out of range");
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(const std::string& text) {
  if (!AcceptableStart(text, /*allow_sign=*/true)) {
    return Status::InvalidArgument("not a number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("trailing characters after number");
  }
  if (errno == ERANGE) return Status::InvalidArgument("out of range");
  if (v != v) return Status::InvalidArgument("not a number");
  return v;
}

namespace {

[[noreturn]] void Die(const std::string& flag, const std::string& reason,
                      const std::string& text) {
  (void)std::fprintf(stderr, "flag --%s: %s, got \"%s\"\n", flag.c_str(),
               reason.c_str(), text.c_str());
  std::exit(2);
}

}  // namespace

int64_t IntFlag(const std::string& text, const std::string& flag,
                int64_t min, int64_t max) {
  Result<int64_t> r = ParseInt(text);
  if (!r.ok()) Die(flag, r.status().message(), text);
  if (r.value() < min || r.value() > max) {
    Die(flag,
        "value out of range [" + std::to_string(min) + ", " +
            std::to_string(max) + "]",
        text);
  }
  return r.value();
}

uint64_t UintFlag(const std::string& text, const std::string& flag,
                  uint64_t min, uint64_t max) {
  Result<uint64_t> r = ParseUint(text);
  if (!r.ok()) Die(flag, r.status().message(), text);
  if (r.value() < min || r.value() > max) {
    Die(flag,
        "value out of range [" + std::to_string(min) + ", " +
            std::to_string(max) + "]",
        text);
  }
  return r.value();
}

double DoubleFlag(const std::string& text, const std::string& flag,
                  double min, double max) {
  Result<double> r = ParseDouble(text);
  if (!r.ok()) Die(flag, r.status().message(), text);
  if (r.value() < min || r.value() > max) {
    Die(flag,
        "value out of range [" + std::to_string(min) + ", " +
            std::to_string(max) + "]",
        text);
  }
  return r.value();
}

double DoubleFlag(const std::string& text, const std::string& flag) {
  return DoubleFlag(text, flag, -std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
}

}  // namespace came::flags
