#ifndef CAME_COMMON_IO_H_
#define CAME_COMMON_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace came::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding every
/// checkpoint section. Pass the previous return value as `crc` to extend a
/// running checksum over multiple buffers.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// Injectable write failures for crash-safety tests. A failpoint applies
/// process-wide to every FileWriter; production code never installs one.
enum class FailpointKind {
  kNone = 0,
  /// The write that crosses `at_bytes` persists only the bytes up to the
  /// threshold, then reports an I/O error (a torn write, e.g. EIO mid-way).
  kShortWrite,
  /// Writes past `at_bytes` fail without persisting anything (ENOSPC).
  kEnospc,
  /// Simulated process death: bytes up to `at_bytes` persist, then every
  /// subsequent operation on any writer — Append, Sync, Close, and an
  /// AtomicFileWriter's Commit/rename — fails. Whatever reached the
  /// filesystem stays there, exactly like a real crash.
  kCrashAfterBytes,
};

struct Failpoint {
  FailpointKind kind = FailpointKind::kNone;
  /// Cumulative byte threshold across all writers while the failpoint is
  /// installed.
  uint64_t at_bytes = 0;
};

/// Installs `fp` for the lifetime of the scope (tests only; not
/// thread-safe against concurrent writers). Scopes do not nest.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(Failpoint fp);
  ~ScopedFailpoint();
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;
};

/// Sequential unbuffered writer over a POSIX fd. Every byte it persists is
/// metered against the active failpoint, so fault-injection tests can kill
/// a write at any offset.
class FileWriter {
 public:
  FileWriter() = default;
  /// Closes the fd if still open (errors are lost; call Close() to see
  /// them).
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Creates/truncates `path` for writing.
  Status Open(const std::string& path);
  Status Append(const void* data, size_t n);
  /// fsync(2) — the data is durable after this returns OK.
  Status Sync();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Crash-safe whole-file replacement: writes to `<path>.tmp.<pid>`, then
/// Commit() does fsync + rename + directory fsync. At every instant `path`
/// either keeps its previous contents or holds the complete new ones —
/// never a torn mix. Destroying an uncommitted writer removes the temp.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  Status Open();
  Status Append(const void* data, size_t n);
  /// Durably publishes the new contents under the final path.
  Status Commit();
  /// Drops the temp file; the final path is untouched. Idempotent.
  void Abort();

 private:
  std::string path_;
  std::string tmp_path_;
  FileWriter writer_;
  bool committed_ = false;
};

/// One-shot atomic replacement of `path` with `data`.
Status WriteFileAtomic(const std::string& path, const void* data, size_t n);

/// Reads the whole file into `out` (replacing its contents).
Status ReadFile(const std::string& path, std::string* out);

}  // namespace came::io

#endif  // CAME_COMMON_IO_H_
