#include "common/status.h"

#include "common/logging.h"

namespace came {

void Status::LogIfError(const char* context) const {
  if (ok()) return;
  CAME_LOG(Warning) << context << ": " << ToString();
}

std::string Status::ToString() const {
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case Code::kNotFound:
      return "NotFound: " + message_;
    case Code::kIOError:
      return "IOError: " + message_;
    case Code::kCorruption:
      return "Corruption: " + message_;
    case Code::kFailedPrecondition:
      return "FailedPrecondition: " + message_;
  }
  return "Unknown";
}

}  // namespace came
