#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace came {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

CheckFailStream::CheckFailStream(const char* file, int line,
                                 const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailStream::~CheckFailStream() {
  (void)std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)std::fflush(stderr);
  std::abort();
}

LogStream::LogStream(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_log_level)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogStream::~LogStream() {
  if (enabled_) {
    (void)std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace came
