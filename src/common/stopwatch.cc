#include "common/stopwatch.h"  // IWYU pragma: keep (header-only class)
