#ifndef CAME_COMMON_JSON_WRITER_H_
#define CAME_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace came {

/// Minimal streaming JSON emitter for machine-readable bench/eval output.
/// Caller drives the structure (objects/arrays/keys); the writer handles
/// commas, indentation, string escaping, and float formatting. Invalid
/// sequences (e.g. a value with no pending key inside an object) are
/// CHECK-failures, not silent garbage.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("shape"); w.BeginArray(); w.Int(512); w.Int(512); w.EndArray();
///   w.Key("gflops"); w.Double(61.9);
///   w.EndObject();
///   w.WriteFile("BENCH_micro_ops.json");
class JsonWriter {
 public:
  JsonWriter();

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Next value becomes this key's value. Only valid inside an object.
  void Key(const std::string& k);

  void String(const std::string& v);
  void Int(int64_t v);
  /// Non-finite doubles are emitted as null (JSON has no NaN/inf).
  void Double(double v);
  void Bool(bool v);
  void Null();

  /// The document so far. Valid once every Begin* has been closed.
  const std::string& Str() const;
  /// Writes Str() (plus trailing newline) to `path`. Returns false and
  /// logs on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void Indent();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// JSON string escaping for ", \, and control characters.
std::string JsonEscape(const std::string& s);

}  // namespace came

#endif  // CAME_COMMON_JSON_WRITER_H_
