#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace came {

namespace {

// Set while a thread is executing a ParallelFor chunk; nested ParallelFor
// calls (e.g. MatMul inside a parallel BatchMatMul) see it and run serially
// instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

int ResolveDefaultThreads() {
  const char* env = std::getenv("CAME_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    const Result<int64_t> v = flags::ParseInt(env);
    if (v.ok() && v.value() >= 1) {
      return static_cast<int>(std::min<int64_t>(v.value(), 256));
    }
    CAME_LOG(Warning) << "ignoring invalid CAME_NUM_THREADS=\"" << env
                      << "\"; using hardware_concurrency";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Persistent pool of nthreads-1 parked workers (the caller of Run is the
/// remaining thread and participates in the work). One task is active at a
/// time; concurrent top-level Run calls serialise on run_mu_. Chunk claims
/// go through the task mutex — chunks are sized to amortise far more work
/// than a lock acquisition, and the generation check under the same lock
/// makes a late-waking worker provably unable to touch a newer task.
///
/// Lock order: run_mu_ before mu_ (Run/Resize take run_mu_ first, then mu_
/// for task state). Workers only ever take mu_.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    // Leaked intentionally: workers may outlive static destruction order.
    static WorkerPool* pool = new WorkerPool(ResolveDefaultThreads());
    return *pool;
  }

  /// Lock-free: read from hot kernel paths (and from inside chunks, where
  /// blocking on run_mu_ would deadlock against the Run holding it).
  int threads() const { return nthreads_.load(std::memory_order_relaxed); }

  void Resize(int n) CAME_EXCLUDES(run_mu_) {
    n = std::max(1, n);
    MutexLock run_lock(&run_mu_);
    if (n == nthreads_.load(std::memory_order_relaxed)) return;
    StopWorkers();
    nthreads_.store(n, std::memory_order_relaxed);
    StartWorkers();
  }

  /// Executes chunk_fn(0..num_chunks-1), each chunk exactly once, across
  /// the pool plus the calling thread. Rethrows the first chunk exception.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn)
      CAME_EXCLUDES(run_mu_, mu_) {
    MutexLock run_lock(&run_mu_);
    uint64_t generation;
    {
      MutexLock lock(&mu_);
      chunk_fn_ = &chunk_fn;
      num_chunks_ = num_chunks;
      next_chunk_ = 0;
      remaining_ = num_chunks;
      error_ = nullptr;
      generation = ++generation_;
    }
    cv_work_.NotifyAll();
    WorkChunks(generation);
    std::exception_ptr error;
    {
      MutexLock lock(&mu_);
      while (remaining_ != 0) cv_done_.Wait(&mu_);
      chunk_fn_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  explicit WorkerPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
    MutexLock run_lock(&run_mu_);
    StartWorkers();
  }

  void StartWorkers() CAME_REQUIRES(run_mu_) {
    {
      MutexLock lock(&mu_);
      shutdown_ = false;
    }
    const int n = nthreads_.load(std::memory_order_relaxed);
    for (int i = 1; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() CAME_REQUIRES(run_mu_) {
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
    }
    cv_work_.NotifyAll();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void WorkerLoop() CAME_EXCLUDES(mu_) {
    uint64_t seen_generation = 0;
    while (true) {
      {
        MutexLock lock(&mu_);
        while (!shutdown_ && generation_ == seen_generation) {
          cv_work_.Wait(&mu_);
        }
        if (shutdown_) return;
        seen_generation = generation_;
      }
      WorkChunks(seen_generation);
    }
  }

  /// Claims and executes chunks of the task identified by `generation`.
  /// Returns when that task has no unclaimed chunks left (or was already
  /// superseded — possible only for a worker whose wake-up raced the end
  /// of the task, which then claims nothing).
  void WorkChunks(uint64_t generation) CAME_EXCLUDES(mu_) {
    while (true) {
      const std::function<void(int64_t)>* fn = nullptr;
      int64_t c = 0;
      {
        MutexLock lock(&mu_);
        if (generation_ != generation || next_chunk_ >= num_chunks_) return;
        c = next_chunk_++;
        fn = chunk_fn_;
      }
      tls_in_parallel_region = true;
      try {
        (*fn)(c);
      } catch (...) {
        MutexLock lock(&mu_);
        if (!error_) error_ = std::current_exception();
      }
      tls_in_parallel_region = false;
      MutexLock lock(&mu_);
      if (--remaining_ == 0) cv_done_.NotifyAll();
    }
  }

  // Serialises top-level Run/Resize callers; guards the worker threads.
  Mutex run_mu_;
  std::vector<std::thread> workers_ CAME_GUARDED_BY(run_mu_);

  // Guards the task state below. Taken after run_mu_ when both are held.
  Mutex mu_ CAME_ACQUIRED_AFTER(run_mu_);
  CondVar cv_work_;
  CondVar cv_done_;
  uint64_t generation_ CAME_GUARDED_BY(mu_) = 0;
  const std::function<void(int64_t)>* chunk_fn_ CAME_GUARDED_BY(mu_) =
      nullptr;
  int64_t num_chunks_ CAME_GUARDED_BY(mu_) = 0;
  int64_t next_chunk_ CAME_GUARDED_BY(mu_) = 0;
  int64_t remaining_ CAME_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ CAME_GUARDED_BY(mu_);
  bool shutdown_ CAME_GUARDED_BY(mu_) = false;

  // Written only under run_mu_ (Resize); read lock-free from threads().
  std::atomic<int> nthreads_;
};

}  // namespace

int NumThreads() { return WorkerPool::Instance().threads(); }

void SetNumThreads(int n) { WorkerPool::Instance().Resize(n); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1 || tls_in_parallel_region ||
      WorkerPool::Instance().threads() == 1) {
    // Serial path walks the exact same chunk grid the pool would, keeping
    // the partition (and thus fn's call sequence) invariant to the thread
    // count rather than merely equivalent for stateless kernels.
    for (int64_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }
  WorkerPool::Instance().Run(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = std::min(end, lo + grain);
    fn(lo, hi);
  });
}

}  // namespace came
