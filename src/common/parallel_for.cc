#include "common/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace came {

namespace {

// Set while a thread is executing a ParallelFor chunk; nested ParallelFor
// calls (e.g. MatMul inside a parallel BatchMatMul) see it and run serially
// instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

int ResolveDefaultThreads() {
  const char* env = std::getenv("CAME_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1) {
      return static_cast<int>(std::min<long>(v, 256));
    }
    CAME_LOG(Warning) << "ignoring invalid CAME_NUM_THREADS=\"" << env
                      << "\"; using hardware_concurrency";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Persistent pool of nthreads-1 parked workers (the caller of Run is the
/// remaining thread and participates in the work). One task is active at a
/// time; concurrent top-level Run calls serialise on run_mu_. Chunk claims
/// go through the task mutex — chunks are sized to amortise far more work
/// than a lock acquisition, and the generation check under the same lock
/// makes a late-waking worker provably unable to touch a newer task.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    // Leaked intentionally: workers may outlive static destruction order.
    static WorkerPool* pool = new WorkerPool(ResolveDefaultThreads());
    return *pool;
  }

  int threads() const { return nthreads_; }

  void Resize(int n) {
    n = std::max(1, n);
    std::lock_guard<std::mutex> run_lock(run_mu_);
    if (n == nthreads_) return;
    StopWorkers();
    nthreads_ = n;
    StartWorkers();
  }

  /// Executes chunk_fn(0..num_chunks-1), each chunk exactly once, across
  /// the pool plus the calling thread. Rethrows the first chunk exception.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunk_fn_ = &chunk_fn;
      num_chunks_ = num_chunks;
      next_chunk_ = 0;
      remaining_ = num_chunks;
      error_ = nullptr;
      generation = ++generation_;
    }
    cv_work_.notify_all();
    WorkChunks(generation);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    chunk_fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  explicit WorkerPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
    StartWorkers();
  }

  void StartWorkers() {
    shutdown_ = false;
    for (int i = 1; i < nthreads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      WorkChunks(seen_generation);
    }
  }

  /// Claims and executes chunks of the task identified by `generation`.
  /// Returns when that task has no unclaimed chunks left (or was already
  /// superseded — possible only for a worker whose wake-up raced the end
  /// of the task, which then claims nothing).
  void WorkChunks(uint64_t generation) {
    while (true) {
      const std::function<void(int64_t)>* fn = nullptr;
      int64_t c = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (generation_ != generation || next_chunk_ >= num_chunks_) return;
        c = next_chunk_++;
        fn = chunk_fn_;
      }
      tls_in_parallel_region = true;
      try {
        (*fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      tls_in_parallel_region = false;
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }

  // Serialises top-level Run/Resize callers.
  std::mutex run_mu_;

  // Guards the task state below.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  const std::function<void(int64_t)>* chunk_fn_ = nullptr;
  int64_t num_chunks_ = 0;
  int64_t next_chunk_ = 0;
  int64_t remaining_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;

  int nthreads_;
  std::vector<std::thread> workers_;
};

}  // namespace

int NumThreads() { return WorkerPool::Instance().threads(); }

void SetNumThreads(int n) { WorkerPool::Instance().Resize(n); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1 || tls_in_parallel_region ||
      WorkerPool::Instance().threads() == 1) {
    // Serial path walks the exact same chunk grid the pool would, keeping
    // the partition (and thus fn's call sequence) invariant to the thread
    // count rather than merely equivalent for stateless kernels.
    for (int64_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }
  WorkerPool::Instance().Run(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = std::min(end, lo + grain);
    fn(lo, hi);
  });
}

}  // namespace came
