#ifndef CAME_COMMON_RANDOM_H_
#define CAME_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace came {

/// Deterministic, seedable PRNG used throughout the project so every
/// experiment is reproducible run-to-run. xoshiro256** core with helpers
/// for the distributions the codebase needs.
class Rng {
 public:
  /// Complete serialisable generator state: the four xoshiro256** words
  /// plus the Box-Muller spare. Restoring it continues the stream exactly
  /// where GetState() left off — Normal() parity included — which the
  /// checkpoint subsystem relies on for bitwise-identical resume.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  explicit Rng(uint64_t seed);

  State GetState() const;
  void SetState(const State& state);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();
  /// Uniform in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform float in [0, 1).
  double UniformDouble();
  /// Uniform float in [lo, hi).
  double Uniform(double lo, double hi);
  /// Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev);
  /// Bernoulli trial.
  bool Bernoulli(double p);
  /// Zipf-like index in [0, n): P(i) ~ 1/(i+1)^alpha. Used by the synthetic
  /// BKG generator to produce long-tail degree distributions (Fig 4).
  int64_t Zipf(int64_t n, double alpha);
  /// Sample an index from unnormalised non-negative weights.
  int64_t Categorical(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }
  /// Derive an independent child generator (for per-module streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace came

#endif  // CAME_COMMON_RANDOM_H_
