#ifndef CAME_COMMON_THREAD_ANNOTATIONS_H_
#define CAME_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros. Under clang with
/// `-Wthread-safety` (CMake option CAME_THREAD_SAFETY) these turn locking
/// contracts into compile errors: a `CAME_GUARDED_BY(mu_)` field touched
/// without `mu_` held, a `CAME_REQUIRES(mu_)` method called unlocked, or a
/// lock acquired in a scope annotated `CAME_EXCLUDES` all fail the build.
/// Under every other compiler the macros expand to nothing, so annotated
/// code stays portable.
///
/// Annotate with the wrapper types from common/mutex.h (`came::Mutex`,
/// `came::MutexLock`, `came::CondVar`) — raw `std::mutex` is invisible to
/// the analysis and is banned in src/ by tools/lint_project.py.

#if defined(__clang__) && defined(__has_attribute)
#define CAME_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define CAME_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define CAME_CAPABILITY(x) CAME_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Convenience form of CAME_CAPABILITY for mutex-like types.
#define CAME_LOCKABLE CAME_THREAD_ANNOTATION_ATTRIBUTE_(capability("mutex"))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define CAME_SCOPED_CAPABILITY \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define CAME_GUARDED_BY(x) CAME_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define CAME_PT_GUARDED_BY(x) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define CAME_REQUIRES(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (e.g. a
/// public method that locks them itself — catches self-deadlock).
#define CAME_EXCLUDES(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define CAME_ACQUIRE(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no longer held on return).
#define CAME_RELEASE(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function attempts to acquire; holds the capability iff it returned
/// `result` (e.g. CAME_TRY_ACQUIRE(true) for a bool TryLock).
#define CAME_TRY_ACQUIRE(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the capability protecting its result.
#define CAME_RETURN_CAPABILITY(x) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Declares a required acquisition order: this capability must be taken
/// after `...` (purely documentation for the analysis; the runtime
/// CAME_DEADLOCK_CHECK validator enforces order dynamically).
#define CAME_ACQUIRED_AFTER(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))
#define CAME_ACQUIRED_BEFORE(...) \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

/// Escape hatch: body is exempt from the analysis. Every use needs a
/// comment justifying why the contract cannot be expressed.
#define CAME_NO_THREAD_SAFETY_ANALYSIS \
  CAME_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // CAME_COMMON_THREAD_ANNOTATIONS_H_
