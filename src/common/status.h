#ifndef CAME_COMMON_STATUS_H_
#define CAME_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace came {

/// Outcome of an operation that can fail on user input (file I/O, parsing,
/// malformed configuration). Programming errors use CAME_CHECK instead.
/// Mirrors the RocksDB `Status` idiom: cheap to copy when OK, carries a
/// code + message otherwise.
///
/// The class itself is [[nodiscard]]: every function returning a Status by
/// value makes the caller handle or propagate it — a silently dropped
/// error is a compile warning (an error under CAME_WERROR/CI). Call sites
/// that genuinely cannot act on a failure state that explicitly with
/// LogIfError (never a bare `(void)` cast — tools/lint_project.py rejects
/// those).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kFailedPrecondition,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Human-readable form, e.g. "InvalidArgument: bad shape".
  [[nodiscard]] std::string ToString() const;

  /// Explicit terminal handler for best-effort operations (benchmark
  /// output, optional artefact dumps): logs non-OK statuses at Warning
  /// with `context` and deliberately continues. Using this instead of a
  /// `(void)` cast keeps "this error is survivable" an auditable decision.
  void LogIfError(const char* context) const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Value-or-error return type for fallible constructors/factories.
/// [[nodiscard]] for the same reason as Status: discarding one discards
/// the error path.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional for ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace came

/// Propagate a non-OK Status from the current function.
#define CAME_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::came::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // CAME_COMMON_STATUS_H_
