#ifndef CAME_TRAIN_GRID_SEARCH_H_
#define CAME_TRAIN_GRID_SEARCH_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/kgc_model.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came::train {

/// Hyperparameter grid search on the validation split — the paper's
/// model-selection protocol ("We utilize grid search on the valid set to
/// get the best hyperparameters", Section V-B).
///
/// For every candidate config a fresh model is built by `factory`,
/// trained with best-validation checkpointing, and scored by validation
/// Hits@10; the winner's trained model is returned along with the full
/// trial log.
struct GridSearchResult {
  TrainConfig best_config;
  eval::Metrics best_valid;
  std::unique_ptr<baselines::KgcModel> best_model;
  std::vector<std::pair<TrainConfig, eval::Metrics>> trials;
};

using ModelFactory =
    std::function<std::unique_ptr<baselines::KgcModel>()>;

GridSearchResult GridSearch(const ModelFactory& factory,
                            const kg::Dataset& dataset,
                            const eval::Evaluator& evaluator,
                            const std::vector<TrainConfig>& candidates,
                            int64_t valid_sample = -1);

/// Convenience: the given base config swept over a margin grid (the
/// hyperparameter that differs most across model families here).
std::vector<TrainConfig> MarginGrid(const TrainConfig& base,
                                    const std::vector<float>& margins);

}  // namespace came::train

#endif  // CAME_TRAIN_GRID_SEARCH_H_
