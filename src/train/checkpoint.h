#ifndef CAME_TRAIN_CHECKPOINT_H_
#define CAME_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "eval/metrics.h"
#include "tensor/tensor.h"

namespace came::train {

/// In-memory image of everything a training run needs to resume
/// bitwise-identically: model parameters, Adam state, every Rng stream,
/// and the trainer's progress (epoch counter + best-validation state).
/// The Trainer assembles/applies it; Write/ReadCheckpoint give it a
/// durable on-disk form (see DESIGN.md §8 for the binary layout).
struct CheckpointState {
  /// Model parameters in Module::NamedParameters order.
  std::vector<std::pair<std::string, tensor::Tensor>> params;

  /// Adam state, aligned with `params`.
  int64_t adam_step = 0;
  std::vector<tensor::Tensor> adam_m;
  std::vector<tensor::Tensor> adam_v;

  /// Every Rng stream the training loop consumes, in Trainer order:
  /// shuffle rng, negative-sampler rng, model rng (dropout masks).
  std::vector<Rng::State> rng_streams;

  /// Trainer progress.
  int64_t epochs_run = 0;
  bool has_best = false;
  eval::Metrics best;
  /// Best-on-validation parameter snapshot, aligned with `params`; empty
  /// when has_best is false.
  std::vector<tensor::Tensor> best_snapshot;
};

/// Serialises `state` under `path` via write-to-temp + fsync + rename:
/// after a crash at any instant, `path` holds either the previous
/// checkpoint in full or the new one in full. Every section carries a
/// CRC32 so torn or bit-flipped files are rejected on load.
Status WriteCheckpoint(const std::string& path, const CheckpointState& state);

/// Parses a checkpoint written by WriteCheckpoint. Verifies the magic,
/// version, per-section CRCs and all structural bounds; any mismatch
/// yields a non-OK Status and leaves `*out` unspecified but valid.
Status ReadCheckpoint(const std::string& path, CheckpointState* out);

}  // namespace came::train

#endif  // CAME_TRAIN_CHECKPOINT_H_
