#ifndef CAME_TRAIN_CONVERGENCE_H_
#define CAME_TRAIN_CONVERGENCE_H_

#include <vector>

#include "eval/evaluator.h"
#include "train/trainer.h"

namespace came::train {

/// One sample of the Fig 8 convergence curves: test MRR at a wall-clock
/// training time.
struct ConvergencePoint {
  int epoch = 0;
  double seconds = 0.0;
  double mrr = 0.0;  // percentage
  float loss = 0.0f;
};

/// Trains `model` for `config.epochs`, evaluating on a fixed random
/// subset of `eval_triples` (size `eval_sample`, mirroring the paper's
/// 10k-test-triples protocol) every `eval_every` epochs. Returns the
/// recorded curve; evaluation time is excluded from the reported training
/// seconds.
std::vector<ConvergencePoint> TrainWithConvergence(
    baselines::KgcModel* model, const kg::Dataset& dataset,
    const TrainConfig& config, const eval::Evaluator& evaluator,
    const std::vector<kg::Triple>& eval_triples, int64_t eval_sample,
    int eval_every = 1);

}  // namespace came::train

#endif  // CAME_TRAIN_CONVERGENCE_H_
