#include "train/convergence.h"

#include "common/stopwatch.h"

namespace came::train {

std::vector<ConvergencePoint> TrainWithConvergence(
    baselines::KgcModel* model, const kg::Dataset& dataset,
    const TrainConfig& config, const eval::Evaluator& evaluator,
    const std::vector<kg::Triple>& eval_triples, int64_t eval_sample,
    int eval_every) {
  Trainer trainer(model, dataset, config);
  std::vector<ConvergencePoint> curve;
  double eval_overhead = 0.0;

  eval::EvalConfig eval_config;
  eval_config.max_triples = eval_sample;

  for (int e = 0; e < config.epochs; ++e) {
    const float loss = trainer.RunEpoch();
    if ((e + 1) % eval_every != 0 && e + 1 != config.epochs) continue;
    const double train_seconds = trainer.elapsed_seconds() - eval_overhead;
    Stopwatch eval_watch;
    const eval::Metrics m = evaluator.Evaluate(model, eval_triples,
                                               eval_config);
    eval_overhead += eval_watch.ElapsedSeconds();
    curve.push_back({e + 1, train_seconds, m.Mrr(), loss});
  }
  return curve;
}

}  // namespace came::train
