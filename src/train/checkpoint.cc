#include "train/checkpoint.h"

#include <cstring>

#include "common/io.h"
#include "common/logging.h"

namespace came::train {

namespace {

// File layout (version 1, little-endian):
//   magic   8 bytes "CAMECKP1"
//   version u32
//   count   u32                     -- number of sections (always 4)
//   sections, each:
//     id    u32 fourcc              -- MODL, OPTM, RNGS, TRNR in order
//     len   u64                     -- payload byte length
//     crc   u32                     -- CRC32 of the payload
//     payload
//   (no trailing bytes)
constexpr char kMagic[8] = {'C', 'A', 'M', 'E', 'C', 'K', 'P', '1'};
constexpr uint32_t kVersion = 1;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kSectionModel = FourCc('M', 'O', 'D', 'L');
constexpr uint32_t kSectionOptim = FourCc('O', 'P', 'T', 'M');
constexpr uint32_t kSectionRngs = FourCc('R', 'N', 'G', 'S');
constexpr uint32_t kSectionTrainer = FourCc('T', 'R', 'N', 'R');

// Structural sanity bounds: generous for any real model, tight enough
// that a bit-flipped length field cannot drive a huge allocation.
constexpr uint64_t kMaxSectionBytes = 1ULL << 33;  // 8 GiB
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxNdim = 8;
constexpr uint64_t kMaxTensors = 1ULL << 20;

// --- little-endian append helpers --------------------------------------

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendTensor(std::string* buf, const tensor::Tensor& t) {
  AppendPod(buf, static_cast<uint32_t>(t.ndim()));
  for (int64_t d : t.shape()) AppendPod(buf, d);
  buf->append(reinterpret_cast<const char*>(t.data()),
              static_cast<size_t>(t.numel()) * sizeof(float));
}

// --- bounds-checked reader ----------------------------------------------

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Status ReadRaw(void* out, size_t n) {
    if (n > size_ - pos_) {
      return Status::Corruption("checkpoint truncated at byte " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(T));
  }

  Status ReadTensor(tensor::Tensor* out) {
    uint32_t ndim = 0;
    CAME_RETURN_IF_ERROR(ReadPod(&ndim));
    if (ndim > kMaxNdim) {
      return Status::Corruption("tensor ndim out of range: " +
                                std::to_string(ndim));
    }
    tensor::Shape shape(ndim);
    for (auto& d : shape) {
      CAME_RETURN_IF_ERROR(ReadPod(&d));
      if (d < 0 || static_cast<uint64_t>(d) > kMaxSectionBytes) {
        return Status::Corruption("tensor dimension out of range");
      }
    }
    const int64_t numel = tensor::NumElements(shape);
    if (numel < 0 ||
        static_cast<uint64_t>(numel) * sizeof(float) > remaining()) {
      return Status::Corruption("tensor data exceeds section");
    }
    tensor::Tensor t(std::move(shape));
    CAME_RETURN_IF_ERROR(
        ReadRaw(t.data(), static_cast<size_t>(numel) * sizeof(float)));
    *out = std::move(t);
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- section payloads ----------------------------------------------------

std::string EncodeModelSection(const CheckpointState& s) {
  std::string buf;
  AppendPod(&buf, static_cast<uint64_t>(s.params.size()));
  for (const auto& [name, t] : s.params) {
    AppendPod(&buf, static_cast<uint32_t>(name.size()));
    buf.append(name);
    AppendTensor(&buf, t);
  }
  return buf;
}

Status DecodeModelSection(Reader* r, CheckpointState* s) {
  uint64_t count = 0;
  CAME_RETURN_IF_ERROR(r->ReadPod(&count));
  if (count > kMaxTensors) {
    return Status::Corruption("parameter count out of range");
  }
  s->params.clear();
  s->params.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    CAME_RETURN_IF_ERROR(r->ReadPod(&name_len));
    if (name_len > kMaxNameLen) {
      return Status::Corruption("parameter name length out of range");
    }
    std::string name(name_len, 0);
    CAME_RETURN_IF_ERROR(r->ReadRaw(name.data(), name_len));
    tensor::Tensor t;
    CAME_RETURN_IF_ERROR(r->ReadTensor(&t));
    s->params.emplace_back(std::move(name), std::move(t));
  }
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes in model section");
  }
  return Status::OK();
}

std::string EncodeOptimSection(const CheckpointState& s) {
  std::string buf;
  AppendPod(&buf, s.adam_step);
  AppendPod(&buf, static_cast<uint64_t>(s.adam_m.size()));
  for (const auto& t : s.adam_m) AppendTensor(&buf, t);
  for (const auto& t : s.adam_v) AppendTensor(&buf, t);
  return buf;
}

Status DecodeOptimSection(Reader* r, CheckpointState* s) {
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->adam_step));
  if (s->adam_step < 0) {
    return Status::Corruption("negative Adam step count");
  }
  uint64_t count = 0;
  CAME_RETURN_IF_ERROR(r->ReadPod(&count));
  if (count > kMaxTensors) {
    return Status::Corruption("Adam moment count out of range");
  }
  s->adam_m.assign(count, tensor::Tensor());
  s->adam_v.assign(count, tensor::Tensor());
  for (auto& t : s->adam_m) CAME_RETURN_IF_ERROR(r->ReadTensor(&t));
  for (auto& t : s->adam_v) CAME_RETURN_IF_ERROR(r->ReadTensor(&t));
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes in optimizer section");
  }
  return Status::OK();
}

std::string EncodeRngSection(const CheckpointState& s) {
  std::string buf;
  AppendPod(&buf, static_cast<uint64_t>(s.rng_streams.size()));
  for (const Rng::State& st : s.rng_streams) {
    for (uint64_t w : st.s) AppendPod(&buf, w);
    AppendPod(&buf, static_cast<uint8_t>(st.has_cached_normal ? 1 : 0));
    AppendPod(&buf, st.cached_normal);
  }
  return buf;
}

Status DecodeRngSection(Reader* r, CheckpointState* s) {
  uint64_t count = 0;
  CAME_RETURN_IF_ERROR(r->ReadPod(&count));
  if (count > 1024) {
    return Status::Corruption("rng stream count out of range");
  }
  s->rng_streams.assign(count, Rng::State{});
  for (Rng::State& st : s->rng_streams) {
    for (uint64_t& w : st.s) CAME_RETURN_IF_ERROR(r->ReadPod(&w));
    uint8_t flag = 0;
    CAME_RETURN_IF_ERROR(r->ReadPod(&flag));
    if (flag > 1) return Status::Corruption("bad rng cache flag");
    st.has_cached_normal = flag == 1;
    CAME_RETURN_IF_ERROR(r->ReadPod(&st.cached_normal));
  }
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes in rng section");
  }
  return Status::OK();
}

std::string EncodeTrainerSection(const CheckpointState& s) {
  std::string buf;
  AppendPod(&buf, s.epochs_run);
  AppendPod(&buf, static_cast<uint8_t>(s.has_best ? 1 : 0));
  AppendPod(&buf, s.best.rank_sum);
  AppendPod(&buf, s.best.reciprocal_sum);
  AppendPod(&buf, s.best.hits1);
  AppendPod(&buf, s.best.hits3);
  AppendPod(&buf, s.best.hits10);
  AppendPod(&buf, s.best.count);
  AppendPod(&buf, static_cast<uint64_t>(s.best_snapshot.size()));
  for (const auto& t : s.best_snapshot) AppendTensor(&buf, t);
  return buf;
}

Status DecodeTrainerSection(Reader* r, CheckpointState* s) {
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->epochs_run));
  if (s->epochs_run < 0) {
    return Status::Corruption("negative epoch counter");
  }
  uint8_t has_best = 0;
  CAME_RETURN_IF_ERROR(r->ReadPod(&has_best));
  if (has_best > 1) return Status::Corruption("bad has_best flag");
  s->has_best = has_best == 1;
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.rank_sum));
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.reciprocal_sum));
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.hits1));
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.hits3));
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.hits10));
  CAME_RETURN_IF_ERROR(r->ReadPod(&s->best.count));
  uint64_t count = 0;
  CAME_RETURN_IF_ERROR(r->ReadPod(&count));
  if (count > kMaxTensors) {
    return Status::Corruption("snapshot tensor count out of range");
  }
  s->best_snapshot.assign(count, tensor::Tensor());
  for (auto& t : s->best_snapshot) CAME_RETURN_IF_ERROR(r->ReadTensor(&t));
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes in trainer section");
  }
  return Status::OK();
}

void AppendSection(std::string* file, uint32_t id, const std::string& payload) {
  AppendPod(file, id);
  AppendPod(file, static_cast<uint64_t>(payload.size()));
  AppendPod(file, io::Crc32(payload.data(), payload.size()));
  file->append(payload);
}

}  // namespace

Status WriteCheckpoint(const std::string& path, const CheckpointState& state) {
  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendPod(&file, kVersion);
  AppendPod(&file, static_cast<uint32_t>(4));
  AppendSection(&file, kSectionModel, EncodeModelSection(state));
  AppendSection(&file, kSectionOptim, EncodeOptimSection(state));
  AppendSection(&file, kSectionRngs, EncodeRngSection(state));
  AppendSection(&file, kSectionTrainer, EncodeTrainerSection(state));
  return io::WriteFileAtomic(path, file.data(), file.size());
}

Status ReadCheckpoint(const std::string& path, CheckpointState* out) {
  CAME_CHECK(out != nullptr);
  std::string file;
  CAME_RETURN_IF_ERROR(io::ReadFile(path, &file));
  Reader r(file.data(), file.size());

  char magic[8];
  CAME_RETURN_IF_ERROR(r.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not a CamE checkpoint (bad magic)");
  }
  uint32_t version = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&version));
  if (version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported checkpoint version " +
                                   std::to_string(version));
  }
  uint32_t section_count = 0;
  CAME_RETURN_IF_ERROR(r.ReadPod(&section_count));
  if (section_count != 4) {
    return Status::Corruption(path + ": expected 4 sections, found " +
                              std::to_string(section_count));
  }

  constexpr uint32_t kExpectedOrder[4] = {kSectionModel, kSectionOptim,
                                          kSectionRngs, kSectionTrainer};
  for (uint32_t idx = 0; idx < 4; ++idx) {
    uint32_t id = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    CAME_RETURN_IF_ERROR(r.ReadPod(&id));
    CAME_RETURN_IF_ERROR(r.ReadPod(&len));
    CAME_RETURN_IF_ERROR(r.ReadPod(&crc));
    if (id != kExpectedOrder[idx]) {
      return Status::Corruption(path + ": unexpected section id at index " +
                                std::to_string(idx));
    }
    if (len > kMaxSectionBytes || len > r.remaining()) {
      return Status::Corruption(path + ": section length out of range");
    }
    std::string payload(len, 0);
    CAME_RETURN_IF_ERROR(r.ReadRaw(payload.data(), len));
    if (io::Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption(path + ": CRC mismatch in section " +
                                std::to_string(idx));
    }
    Reader pr(payload.data(), payload.size());
    switch (id) {
      case kSectionModel:
        CAME_RETURN_IF_ERROR(DecodeModelSection(&pr, out));
        break;
      case kSectionOptim:
        CAME_RETURN_IF_ERROR(DecodeOptimSection(&pr, out));
        break;
      case kSectionRngs:
        CAME_RETURN_IF_ERROR(DecodeRngSection(&pr, out));
        break;
      case kSectionTrainer:
        CAME_RETURN_IF_ERROR(DecodeTrainerSection(&pr, out));
        break;
      default:
        return Status::Corruption("unreachable section id");
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption(path + ": trailing bytes after last section");
  }
  return Status::OK();
}

}  // namespace came::train
