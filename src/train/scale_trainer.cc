#include "train/scale_trainer.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "eval/ranking.h"
#include "tensor/gemm.h"

namespace came::train {

namespace {

constexpr char kParamsMagic[8] = {'C', 'A', 'M', 'E', 'S', 'C', 'L', '1'};

/// Numerically stable logistic loss: -log sigmoid(s) for label 1,
/// -log(1 - sigmoid(s)) for label 0.
double LogisticLoss(double s, double label) {
  return std::max(s, 0.0) - s * label + std::log1p(std::exp(-std::abs(s)));
}

double Sigmoid(double s) {
  if (s >= 0.0) return 1.0 / (1.0 + std::exp(-s));
  const double e = std::exp(s);
  return e / (1.0 + e);
}

/// Index of `row` inside sorted-unique `rows`.
size_t RowSlot(const std::vector<int64_t>& rows, int64_t row) {
  const auto it = std::lower_bound(rows.begin(), rows.end(), row);
  return static_cast<size_t>(it - rows.begin());
}

Status MalformedTriple(const std::string& path, int64_t lineno,
                       const std::string& why) {
  return Status::Corruption(path + ":" + std::to_string(lineno) + ": " + why);
}

}  // namespace

Status TsvTripleSource::Reset() {
  if (in_.is_open()) in_.close();
  in_.clear();
  in_.open(path_);
  if (!in_) return Status::NotFound("cannot open " + path_);
  lineno_ = 0;
  return Status::OK();
}

Result<bool> TsvTripleSource::Next(kg::Triple* t) {
  std::string line;
  if (!std::getline(in_, line)) {
    if (in_.bad()) return Status::IOError("read failed on " + path_);
    return false;
  }
  ++lineno_;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const size_t tab1 = line.find('\t');
  const size_t tab2 = tab1 == std::string::npos ? std::string::npos
                                                : line.find('\t', tab1 + 1);
  if (tab2 == std::string::npos ||
      line.find('\t', tab2 + 1) != std::string::npos) {
    return MalformedTriple(path_, lineno_, "expected 3 tab-separated fields");
  }
  const int64_t limits[3] = {num_entities_, num_relations_, num_entities_};
  const std::string fields[3] = {
      line.substr(0, tab1), line.substr(tab1 + 1, tab2 - tab1 - 1),
      line.substr(tab2 + 1)};
  int64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    const Result<int64_t> parsed = flags::ParseInt(fields[i]);
    if (!parsed.ok()) {
      return MalformedTriple(path_, lineno_,
                             "non-numeric id '" + fields[i] + "'");
    }
    ids[i] = parsed.value();
    if (ids[i] < 0 || ids[i] >= limits[i]) {
      return MalformedTriple(path_, lineno_,
                             "id " + fields[i] + " out of range");
    }
  }
  *t = kg::Triple{ids[0], ids[1], ids[2]};
  return true;
}

Result<ScaleTrainer> ScaleTrainer::Create(int64_t num_entities,
                                          int64_t num_relations,
                                          const ScaleTrainConfig& config) {
  if (num_entities <= 0 || num_relations <= 0) {
    return Status::InvalidArgument("need positive entity/relation counts");
  }
  if (config.dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (config.negatives < 0) {
    return Status::InvalidArgument("negatives must be non-negative");
  }
  if (config.lr <= 0.0 || config.eps <= 0.0) {
    return Status::InvalidArgument("lr and eps must be positive");
  }
  if (config.beta1 < 0.0 || config.beta1 >= 1.0 || config.beta2 < 0.0 ||
      config.beta2 >= 1.0) {
    return Status::InvalidArgument("betas must lie in [0, 1)");
  }
  if (config.eval_panel_rows <= 0 || config.eval_query_batch <= 0) {
    return Status::InvalidArgument("eval panel/batch sizes must be positive");
  }

  ScaleTrainer trainer;
  trainer.num_entities_ = num_entities;
  trainer.num_relations_ = num_relations;
  trainer.config_ = config;
  trainer.rng_ = Rng(config.seed);

  // Entity-family tables shard per the config; relation tables are tiny
  // by comparison and always live in one slab.
  const bool on_disk = !config.store_dir.empty();
  if (on_disk) {
    if (::mkdir(config.store_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create " + config.store_dir);
    }
  }
  const tensor::ShardStoreOptions ent_opts = {
      .rows_per_shard = config.rows_per_shard,
      .max_resident_shards = config.max_resident_shards,
  };
  const auto make = [&](const char* name, int64_t rows,
                        bool shard) -> Result<tensor::ShardStore> {
    if (!on_disk) return tensor::ShardStore::InRam(rows, config.dim);
    return tensor::ShardStore::Create(
        config.store_dir + "/" + name, rows, config.dim,
        shard ? ent_opts : tensor::ShardStoreOptions{});
  };
  struct Table {
    tensor::ShardStore* store;
    const char* name;
    int64_t rows;
    bool shard;
  };
  const Table tables[] = {
      {&trainer.entities_, "ent", num_entities, true},
      {&trainer.ent_m_, "ent_m", num_entities, true},
      {&trainer.ent_v_, "ent_v", num_entities, true},
      {&trainer.relations_, "rel", num_relations, false},
      {&trainer.rel_m_, "rel_m", num_relations, false},
      {&trainer.rel_v_, "rel_v", num_relations, false},
  };
  for (const Table& t : tables) {
    Result<tensor::ShardStore> made = make(t.name, t.rows, t.shard);
    if (!made.ok()) return made.status();
    *t.store = std::move(made).value();
  }

  // Sequential row-order init from a dedicated stream: what a row gets
  // depends only on (seed, draw order), never on the shard geometry.
  // Moments stay at the stores' zero fill.
  Rng init_rng(config.seed ^ 0x5ca1e7ab1eULL);
  const auto fill = [&](tensor::ShardStore* store) {
    for (int64_t row = 0; row < store->rows(); ++row) {
      float* w = store->MutableRow(row);
      for (int64_t k = 0; k < config.dim; ++k) {
        w[k] = static_cast<float>(
            init_rng.Uniform(-config.init_scale, config.init_scale));
      }
    }
  };
  fill(&trainer.entities_);
  fill(&trainer.relations_);
  return trainer;
}

Result<double> ScaleTrainer::TrainEpoch(TripleSource* source) {
  CAME_RETURN_IF_ERROR(source->Reset());
  double total_loss = 0.0;
  int64_t total_samples = 0;
  std::vector<Sample> batch;
  batch.reserve(static_cast<size_t>(config_.batch_size) *
                static_cast<size_t>(1 + config_.negatives));
  bool done = false;
  while (!done) {
    batch.clear();
    for (int64_t i = 0; i < config_.batch_size; ++i) {
      kg::Triple t;
      Result<bool> got = source->Next(&t);
      if (!got.ok()) return got.status();
      if (!got.value()) {
        done = true;
        break;
      }
      CAME_CHECK_LT(t.head, num_entities_);
      CAME_CHECK_LT(t.rel, num_relations_);
      CAME_CHECK_LT(t.tail, num_entities_);
      batch.push_back(Sample{t.head, t.rel, t.tail, 1.0f});
      // Negative tails drawn sequentially from the trainer stream: the
      // sample list is a pure function of (data order, seed).
      for (int64_t k = 0; k < config_.negatives; ++k) {
        const auto corrupt = static_cast<int64_t>(
            rng_.UniformU64(static_cast<uint64_t>(num_entities_)));
        batch.push_back(Sample{t.head, t.rel, corrupt, 0.0f});
      }
    }
    if (batch.empty()) break;
    total_loss += TrainBatch(batch);
    total_samples += static_cast<int64_t>(batch.size());
  }
  if (total_samples == 0) {
    return Status::InvalidArgument("triple source produced no triples");
  }
  return total_loss / static_cast<double>(total_samples);
}

double ScaleTrainer::TrainBatch(const std::vector<Sample>& samples) {
  const int64_t d = config_.dim;
  const size_t n = samples.size();

  // Sorted-unique touched rows: the gather, scatter, and Adam phases all
  // walk these in ascending order, so shard faults happen in a coherent
  // sweep and the arithmetic order is layout-independent.
  std::vector<int64_t> e_rows;
  std::vector<int64_t> r_rows;
  e_rows.reserve(n * 2);
  r_rows.reserve(n);
  for (const Sample& s : samples) {
    e_rows.push_back(s.head);
    e_rows.push_back(s.tail);
    r_rows.push_back(s.rel);
  }
  std::sort(e_rows.begin(), e_rows.end());
  e_rows.erase(std::unique(e_rows.begin(), e_rows.end()), e_rows.end());
  std::sort(r_rows.begin(), r_rows.end());
  r_rows.erase(std::unique(r_rows.begin(), r_rows.end()), r_rows.end());

  // Gather into scratch copies: ShardStore pointers can be invalidated by
  // eviction, so compute never touches the mapping directly.
  std::vector<float> e_scratch(e_rows.size() * static_cast<size_t>(d));
  std::vector<float> r_scratch(r_rows.size() * static_cast<size_t>(d));
  for (size_t i = 0; i < e_rows.size(); ++i) {
    std::memcpy(&e_scratch[i * static_cast<size_t>(d)], entities_.Row(e_rows[i]),
                sizeof(float) * static_cast<size_t>(d));
  }
  for (size_t i = 0; i < r_rows.size(); ++i) {
    std::memcpy(&r_scratch[i * static_cast<size_t>(d)],
                relations_.Row(r_rows[i]),
                sizeof(float) * static_cast<size_t>(d));
  }

  // Per-sample forward/backward. Each iteration writes its own slots
  // only, so the result is identical at any thread count.
  std::vector<double> losses(n);
  std::vector<double> gs(n);
  ParallelFor(0, static_cast<int64_t>(n), 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const Sample& s = samples[static_cast<size_t>(i)];
      const float* eh =
          &e_scratch[RowSlot(e_rows, s.head) * static_cast<size_t>(d)];
      const float* et =
          &e_scratch[RowSlot(e_rows, s.tail) * static_cast<size_t>(d)];
      const float* rr =
          &r_scratch[RowSlot(r_rows, s.rel) * static_cast<size_t>(d)];
      double score = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        score += static_cast<double>(eh[k]) * static_cast<double>(rr[k]) *
                 static_cast<double>(et[k]);
      }
      losses[static_cast<size_t>(i)] =
          LogisticLoss(score, static_cast<double>(s.label));
      gs[static_cast<size_t>(i)] =
          Sigmoid(score) - static_cast<double>(s.label);
    }
  });

  double batch_loss = 0.0;
  for (double l : losses) batch_loss += l;

  // Sequential scatter in sample order: unique rows may appear in many
  // samples, so accumulation order is pinned here, not left to threads.
  std::vector<double> e_grad(e_scratch.size(), 0.0);
  std::vector<double> r_grad(r_scratch.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    const Sample& s = samples[i];
    const size_t hi = RowSlot(e_rows, s.head) * static_cast<size_t>(d);
    const size_t ti = RowSlot(e_rows, s.tail) * static_cast<size_t>(d);
    const size_t ri = RowSlot(r_rows, s.rel) * static_cast<size_t>(d);
    const double g = gs[i];
    for (int64_t k = 0; k < d; ++k) {
      const auto uk = static_cast<size_t>(k);
      const double eh = e_scratch[hi + uk];
      const double et = e_scratch[ti + uk];
      const double rr = r_scratch[ri + uk];
      e_grad[hi + uk] += g * rr * et;
      e_grad[ti + uk] += g * rr * eh;
      r_grad[ri + uk] += g * eh * et;
    }
  }

  // Sparse Adam over the touched rows, ascending — one coherent pass per
  // table. The three stores have independent residency, so holding one
  // pointer from each at a time is safe.
  ++step_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  const auto adam_row = [&](tensor::ShardStore* w_store,
                            tensor::ShardStore* m_store,
                            tensor::ShardStore* v_store, int64_t row,
                            const double* grad) {
    float* w = w_store->MutableRow(row);
    float* m = m_store->MutableRow(row);
    float* v = v_store->MutableRow(row);
    for (int64_t k = 0; k < d; ++k) {
      const auto uk = static_cast<size_t>(k);
      const double g = grad[uk];
      const double mk =
          config_.beta1 * static_cast<double>(m[uk]) + (1.0 - config_.beta1) * g;
      const double vk = config_.beta2 * static_cast<double>(v[uk]) +
                        (1.0 - config_.beta2) * g * g;
      m[uk] = static_cast<float>(mk);
      v[uk] = static_cast<float>(vk);
      const double update =
          config_.lr * (mk / bc1) / (std::sqrt(vk / bc2) + config_.eps);
      w[uk] = static_cast<float>(static_cast<double>(w[uk]) - update);
    }
  };
  for (size_t i = 0; i < e_rows.size(); ++i) {
    adam_row(&entities_, &ent_m_, &ent_v_, e_rows[i],
             &e_grad[i * static_cast<size_t>(d)]);
  }
  for (size_t i = 0; i < r_rows.size(); ++i) {
    adam_row(&relations_, &rel_m_, &rel_v_, r_rows[i],
             &r_grad[i * static_cast<size_t>(d)]);
  }
  return batch_loss;
}

Result<eval::Metrics> ScaleTrainer::EvaluateFiltered(
    TripleSource* queries, const kg::FilterIndex& filter) {
  CAME_RETURN_IF_ERROR(queries->Reset());
  const int64_t d = config_.dim;
  const int64_t qb = config_.eval_query_batch;
  eval::Metrics metrics;

  std::vector<kg::Triple> batch;
  std::vector<float> qmat;       // [Q, d] — eh ∘ r per query
  std::vector<float> tail_row(static_cast<size_t>(d));
  std::vector<float> scores;     // [Q, panel_width]
  bool done = false;
  while (!done) {
    batch.clear();
    for (int64_t i = 0; i < qb; ++i) {
      kg::Triple t;
      Result<bool> got = queries->Next(&t);
      if (!got.ok()) return got.status();
      if (!got.value()) {
        done = true;
        break;
      }
      CAME_CHECK_LT(t.head, num_entities_);
      CAME_CHECK_LT(t.rel, num_relations_);
      CAME_CHECK_LT(t.tail, num_entities_);
      batch.push_back(t);
    }
    if (batch.empty()) break;
    const auto nq = static_cast<int64_t>(batch.size());

    // Build query vectors + target scores from row copies. Order within
    // each query matters: only one pointer into a given store is live at
    // a time (the second entity Row() may evict the first's slab).
    qmat.assign(static_cast<size_t>(nq) * static_cast<size_t>(d), 0.0f);
    std::vector<eval::RankAccumulator> accs;
    accs.reserve(static_cast<size_t>(nq));
    for (int64_t i = 0; i < nq; ++i) {
      const kg::Triple& q = batch[static_cast<size_t>(i)];
      float* qrow = &qmat[static_cast<size_t>(i) * static_cast<size_t>(d)];
      std::memcpy(qrow, entities_.Row(q.head),
                  sizeof(float) * static_cast<size_t>(d));
      std::memcpy(tail_row.data(), entities_.Row(q.tail),
                  sizeof(float) * static_cast<size_t>(d));
      const float* rr = relations_.Row(q.rel);
      float target_score = 0.0f;
      for (int64_t k = 0; k < d; ++k) {
        qrow[k] *= rr[k];
        target_score += qrow[k] * tail_row[static_cast<size_t>(k)];
      }
      accs.emplace_back(target_score, q.tail, filter.Tails(q.head, q.rel));
    }

    // Shard-panel sweep: one GEMM per panel, scores fed straight into the
    // streaming accumulators; the [Q, N] score matrix never exists.
    int64_t row0 = 0;
    while (row0 < num_entities_) {
      const int64_t pend = std::min(entities_.ShardEnd(row0),
                                    row0 + config_.eval_panel_rows);
      const int64_t pw = pend - row0;
      const float* panel = entities_.PanelRows(row0, pend);
      scores.assign(static_cast<size_t>(nq) * static_cast<size_t>(pw), 0.0f);
      tensor::gemm::Gemm(qmat.data(), panel, scores.data(), nq, d, pw,
                 /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
      ParallelFor(0, nq, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          accs[static_cast<size_t>(i)].Accumulate(
              &scores[static_cast<size_t>(i) * static_cast<size_t>(pw)], row0,
              pw);
        }
      });
      row0 = pend;
    }
    for (int64_t i = 0; i < nq; ++i) {
      metrics.AddRank(accs[static_cast<size_t>(i)].Rank(num_entities_));
    }
  }
  return metrics;
}

Status ScaleTrainer::SaveParams(const std::string& path) {
  io::AtomicFileWriter writer(path);
  CAME_RETURN_IF_ERROR(writer.Open());
  uint32_t crc = 0;
  const auto append = [&](const void* data, size_t bytes) -> Status {
    crc = io::Crc32(data, bytes, crc);
    return writer.Append(data, bytes);
  };
  const auto stream_store = [&](tensor::ShardStore& store) -> Status {
    int64_t row0 = 0;
    while (row0 < store.rows()) {
      const int64_t pend = store.ShardEnd(row0);
      const float* panel = store.PanelRows(row0, pend);
      CAME_RETURN_IF_ERROR(
          append(panel, sizeof(float) * static_cast<size_t>(pend - row0) *
                            static_cast<size_t>(store.dim())));
      row0 = pend;
    }
    return Status::OK();
  };

  Status st = writer.Append(kParamsMagic, sizeof(kParamsMagic));
  const uint64_t header[3] = {static_cast<uint64_t>(num_entities_),
                              static_cast<uint64_t>(num_relations_),
                              static_cast<uint64_t>(config_.dim)};
  if (st.ok()) st = append(header, sizeof(header));
  if (st.ok()) st = stream_store(entities_);
  if (st.ok()) st = stream_store(relations_);
  if (st.ok()) st = writer.Append(&crc, sizeof(crc));
  if (!st.ok()) {
    writer.Abort();
    return st;
  }
  return writer.Commit();
}

uint32_t ScaleTrainer::ParamsCrc() {
  const uint32_t pair[2] = {entities_.ContentCrc32(),
                            relations_.ContentCrc32()};
  return io::Crc32(pair, sizeof(pair), 0);
}

}  // namespace came::train
