#ifndef CAME_TRAIN_NEGATIVE_SAMPLER_H_
#define CAME_TRAIN_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "kg/filter_index.h"

namespace came::train {

/// Uniform tail-corruption sampler under the filtered setting (Bordes et
/// al.): sampled negatives are rejected while they are known true tails of
/// (head, rel). Head corruption is covered by inverse relations.
class NegativeSampler {
 public:
  /// `filter` indexes the training triples; may be null for unfiltered
  /// sampling.
  NegativeSampler(const kg::FilterIndex* filter, int64_t num_entities,
                  uint64_t seed);

  /// Appends `k` negative tails for (head, rel) to `out` — existing
  /// contents are preserved, never cleared, so a caller can accumulate
  /// the negatives of a whole batch into one vector (as the trainer
  /// does). Callers wanting a fresh batch must clear `out` themselves.
  /// Each draw rejection-samples up to 16 times against the filter; a
  /// hub entity whose known tails cover almost the whole entity set can
  /// exhaust the retries, in which case the last draw is kept even if it
  /// is a known true tail (bounded work beats an unbounded loop).
  void AppendSamples(int64_t head, int64_t rel, int64_t k,
                     std::vector<int64_t>* out);

  /// Generator state accessors for checkpoint/resume: restoring the state
  /// continues the negative stream exactly where it left off.
  Rng::State rng_state() const { return rng_.GetState(); }
  void set_rng_state(const Rng::State& state) { rng_.SetState(state); }

 private:
  const kg::FilterIndex* filter_;
  int64_t num_entities_;
  Rng rng_;
};

}  // namespace came::train

#endif  // CAME_TRAIN_NEGATIVE_SAMPLER_H_
