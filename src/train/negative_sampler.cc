#include "train/negative_sampler.h"

#include "common/logging.h"

namespace came::train {

NegativeSampler::NegativeSampler(const kg::FilterIndex* filter,
                                 int64_t num_entities, uint64_t seed)
    : filter_(filter), num_entities_(num_entities), rng_(seed) {
  CAME_CHECK_GT(num_entities, 0);
}

void NegativeSampler::AppendSamples(int64_t head, int64_t rel, int64_t k,
                                    std::vector<int64_t>* out) {
  for (int64_t i = 0; i < k; ++i) {
    int64_t candidate = 0;
    // Rejection sampling with a bounded number of retries; in the worst
    // case (a hub connected to nearly everything) fall back to the last
    // draw rather than loop forever.
    for (int attempt = 0; attempt < 16; ++attempt) {
      candidate = static_cast<int64_t>(
          rng_.UniformU64(static_cast<uint64_t>(num_entities_)));
      if (filter_ == nullptr || !filter_->Contains(head, rel, candidate)) {
        break;
      }
    }
    out->push_back(candidate);
  }
}

}  // namespace came::train
