#ifndef CAME_TRAIN_TRAINER_H_
#define CAME_TRAIN_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/kgc_model.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"
#include "kg/dataset.h"
#include "kg/filter_index.h"
#include "optim/optimizer.h"
#include "train/negative_sampler.h"

namespace came::train {

/// Hyperparameters for one training run. The regime is chosen by the
/// model (KgcModel::regime()); regime-specific fields are ignored by the
/// other regimes.
struct TrainConfig {
  int epochs = 20;
  int64_t batch_size = 256;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;
  uint64_t seed = 123;

  // 1-to-N regime.
  float label_smoothing = 0.1f;

  // Negative-sampling regimes.
  int negatives = 32;
  /// Margin gamma of the logsigmoid losses (0 for bilinear models).
  float margin = 6.0f;
  /// Self-adversarial temperature alpha.
  float adv_temperature = 1.0f;

  /// When non-empty, the trainer writes a full checkpoint here every
  /// `checkpoint_every` epochs (atomically — a crash leaves the previous
  /// checkpoint intact). A failed save is logged and training continues.
  std::string checkpoint_path;
  int checkpoint_every = 1;
};

struct EpochStats {
  int epoch = 0;
  float loss = 0.0f;
  /// Wall-clock seconds since training started.
  double seconds_elapsed = 0.0;
};

/// Drives one model through its training regime on a dataset. Training
/// triples are augmented with inverses; the 1-to-N labels and the
/// filtered negative sampler use an index over the training split only.
class Trainer {
 public:
  Trainer(baselines::KgcModel* model, const kg::Dataset& dataset,
          const TrainConfig& config);

  using EpochCallback = std::function<void(const EpochStats&)>;

  /// Trains until config.epochs total epochs have run (a freshly
  /// constructed trainer runs all of them; a resumed one only the
  /// remainder); invokes `cb` after each.
  void Train(const EpochCallback& cb = nullptr);

  /// Runs a single epoch and returns its mean batch loss.
  float RunEpoch();

  /// The paper's model-selection protocol (Section V-B): trains
  /// config.epochs epochs, evaluates validation MRR every `eval_every`
  /// epochs (on up to `valid_sample` triples; -1 = all), keeps the
  /// best-MRR parameter snapshot (Hits@10 breaks exact ties) and
  /// restores it when training ends. Returns the best validation
  /// metrics.
  eval::Metrics TrainWithBestValidation(const eval::Evaluator& evaluator,
                                        int eval_every = 5,
                                        int64_t valid_sample = -1,
                                        const EpochCallback& cb = nullptr);

  /// Serialises the complete training state — model parameters, Adam
  /// moments + step, all three Rng streams, epoch counter and the
  /// best-validation state — atomically under `path`. A crash at any
  /// point leaves either the previous checkpoint or the new one, never a
  /// torn file.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores state saved by SaveCheckpoint into this trainer and its
  /// model. Everything is validated (parameter names/shapes, optimizer
  /// shapes, stream count, section checksums) before any mutation, so a
  /// failed Resume leaves the trainer untouched. After a successful
  /// Resume, continuing with Train()/TrainWithBestValidation() is
  /// bitwise-identical to a run that never stopped.
  Status Resume(const std::string& path);

  double elapsed_seconds() const { return stopwatch_.ElapsedSeconds(); }
  int epochs_run() const { return epochs_run_; }

 private:
  float OneToNEpoch();
  float NegativeSamplingEpoch(bool self_adversarial);

  /// Writes the periodic checkpoint configured by
  /// TrainConfig::checkpoint_path, if due this epoch.
  void MaybeCheckpoint() const;

  /// The triple visited at position `i` of the current epoch.
  const kg::Triple& EpochTriple(size_t i) const {
    return train_[order_[i]];
  }

  baselines::KgcModel* model_;
  const kg::Dataset& dataset_;
  TrainConfig config_;
  /// Training triples with inverses, in pristine generation order. Epoch
  /// ordering lives in `order_`: each epoch shuffles a fresh identity
  /// permutation, so the visit order is a pure function of the Rng state
  /// at epoch start — the property that makes checkpoint/resume
  /// bitwise-identical to an uninterrupted run.
  std::vector<kg::Triple> train_;
  std::vector<size_t> order_;
  kg::FilterIndex train_filter_;
  std::unique_ptr<optim::Adam> optimizer_;
  NegativeSampler sampler_;
  Rng rng_;
  Stopwatch stopwatch_;
  int epochs_run_ = 0;
  /// Best-validation state for TrainWithBestValidation, held as members
  /// (rather than locals) so checkpoints capture model selection too.
  eval::Metrics best_;
  std::vector<tensor::Tensor> best_snapshot_;
};

}  // namespace came::train

#endif  // CAME_TRAIN_TRAINER_H_
