#ifndef CAME_TRAIN_TRAINER_H_
#define CAME_TRAIN_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "baselines/kgc_model.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"
#include "kg/dataset.h"
#include "kg/filter_index.h"
#include "optim/optimizer.h"
#include "train/negative_sampler.h"

namespace came::train {

/// Hyperparameters for one training run. The regime is chosen by the
/// model (KgcModel::regime()); regime-specific fields are ignored by the
/// other regimes.
struct TrainConfig {
  int epochs = 20;
  int64_t batch_size = 256;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;
  uint64_t seed = 123;

  // 1-to-N regime.
  float label_smoothing = 0.1f;

  // Negative-sampling regimes.
  int negatives = 32;
  /// Margin gamma of the logsigmoid losses (0 for bilinear models).
  float margin = 6.0f;
  /// Self-adversarial temperature alpha.
  float adv_temperature = 1.0f;
};

struct EpochStats {
  int epoch = 0;
  float loss = 0.0f;
  /// Wall-clock seconds since training started.
  double seconds_elapsed = 0.0;
};

/// Drives one model through its training regime on a dataset. Training
/// triples are augmented with inverses; the 1-to-N labels and the
/// filtered negative sampler use an index over the training split only.
class Trainer {
 public:
  Trainer(baselines::KgcModel* model, const kg::Dataset& dataset,
          const TrainConfig& config);

  using EpochCallback = std::function<void(const EpochStats&)>;

  /// Runs config.epochs epochs; invokes `cb` after each.
  void Train(const EpochCallback& cb = nullptr);

  /// Runs a single epoch and returns its mean batch loss.
  float RunEpoch();

  /// The paper's model-selection protocol (Section V-B): trains
  /// config.epochs epochs, evaluates validation MRR every `eval_every`
  /// epochs (on up to `valid_sample` triples; -1 = all), keeps the
  /// best-MRR parameter snapshot (Hits@10 breaks exact ties) and
  /// restores it when training ends. Returns the best validation
  /// metrics.
  eval::Metrics TrainWithBestValidation(const eval::Evaluator& evaluator,
                                        int eval_every = 5,
                                        int64_t valid_sample = -1,
                                        const EpochCallback& cb = nullptr);

  double elapsed_seconds() const { return stopwatch_.ElapsedSeconds(); }
  int epochs_run() const { return epochs_run_; }

 private:
  float OneToNEpoch();
  float NegativeSamplingEpoch(bool self_adversarial);

  baselines::KgcModel* model_;
  const kg::Dataset& dataset_;
  TrainConfig config_;
  std::vector<kg::Triple> train_;  // with inverses
  kg::FilterIndex train_filter_;
  std::unique_ptr<optim::Adam> optimizer_;
  NegativeSampler sampler_;
  Rng rng_;
  Stopwatch stopwatch_;
  int epochs_run_ = 0;
};

}  // namespace came::train

#endif  // CAME_TRAIN_TRAINER_H_
