#ifndef CAME_TRAIN_SCALE_TRAINER_H_
#define CAME_TRAIN_SCALE_TRAINER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "eval/metrics.h"
#include "kg/filter_index.h"
#include "kg/triple_store.h"
#include "tensor/shard_store.h"

namespace came::train {

/// One-pass triple iterator: the ScaleTrainer's only view of the data, so
/// a billion-triple TSV and a small in-memory vector train identically.
class TripleSource {
 public:
  virtual ~TripleSource() = default;
  /// Rewinds to the first triple.
  virtual Status Reset() = 0;
  /// Fetches the next triple; returns false at end of stream.
  virtual Result<bool> Next(kg::Triple* t) = 0;
};

/// In-memory source (small-scale runs and parity tests).
class VectorTripleSource : public TripleSource {
 public:
  explicit VectorTripleSource(std::vector<kg::Triple> triples)
      : triples_(std::move(triples)) {}
  Status Reset() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(kg::Triple* t) override {
    if (pos_ >= triples_.size()) return false;
    *t = triples_[pos_++];
    return true;
  }

 private:
  std::vector<kg::Triple> triples_;
  size_t pos_ = 0;
};

/// Streaming source over a TSV triple file (one "h\tr\tt" line per
/// triple, the format Dataset::SaveTsv and StreamGenerateBkg emit).
/// Bounded memory: one line at a time; ids are checked-parsed and
/// range-validated against the vocab sizes.
class TsvTripleSource : public TripleSource {
 public:
  TsvTripleSource(std::string path, int64_t num_entities,
                  int64_t num_relations)
      : path_(std::move(path)),
        num_entities_(num_entities),
        num_relations_(num_relations) {}
  Status Reset() override;
  Result<bool> Next(kg::Triple* t) override;

 private:
  std::string path_;
  int64_t num_entities_;
  int64_t num_relations_;
  std::ifstream in_;
  int64_t lineno_ = 0;
};

/// Beyond-RAM trainer configuration. With `store_dir` empty every table
/// is an anonymous in-RAM ShardStore; with a directory set, the entity
/// tables (embeddings + both Adam moments) live in mmap-backed slabs
/// under it, `rows_per_shard` rows each, at most `max_resident_shards`
/// mapped at once. Either way the compute path is identical — sharding
/// is a storage layout, which is what makes the sharded-vs-in-RAM
/// bitwise-parity guarantee testable.
struct ScaleTrainConfig {
  int64_t dim = 32;
  double lr = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double init_scale = 0.1;
  int64_t negatives = 4;  // tail corruptions per positive
  int64_t batch_size = 512;
  uint64_t seed = 7;

  std::string store_dir;            // empty => in-RAM
  int64_t rows_per_shard = 0;       // 0 => single shard
  int64_t max_resident_shards = 0;  // 0 => unlimited residency

  int64_t eval_panel_rows = 4096;   // filtered-eval GEMM panel height
  int64_t eval_query_batch = 64;
};

/// DistMult link-prediction trainer whose every table — entity and
/// relation embeddings plus their Adam first/second moments — is a
/// ShardStore, so training and filtered evaluation scale past RAM.
///
/// Determinism contract (the sharded-vs-in-RAM and threads-1-vs-4 parity
/// suite pins this): negatives are drawn sequentially from the trainer
/// Rng; per-sample forward/backward runs under ParallelFor writing
/// per-sample slots only; gradients scatter into per-row contribution
/// lists accumulated in sample order; sparse Adam applies sequentially
/// over the sorted unique touched rows. No step depends on the thread
/// count or the shard geometry.
class ScaleTrainer {
 public:
  /// Empty shell (Result<T> plumbing); only Create() yields a usable one.
  ScaleTrainer() = default;

  static Result<ScaleTrainer> Create(int64_t num_entities,
                                     int64_t num_relations,
                                     const ScaleTrainConfig& config);

  /// One pass over `source` (positives; negatives are sampled inside).
  /// Returns the mean logistic loss per sample.
  Result<double> TrainEpoch(TripleSource* source);

  /// Filtered tail-ranking over `queries` in the Bordes et al. protocol,
  /// swept shard panel by shard panel so the score matrix never exceeds
  /// [query_batch, eval_panel_rows].
  Result<eval::Metrics> EvaluateFiltered(TripleSource* queries,
                                         const kg::FilterIndex& filter);

  /// Streams all parameters into a CRC-framed "CAMESCL1" file via the
  /// atomic-replace path. Byte-identical across storage layouts.
  Status SaveParams(const std::string& path);

  /// CRC32 over entity then relation parameter bytes (parity checks).
  uint32_t ParamsCrc();

  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations() const { return num_relations_; }
  int64_t dim() const { return config_.dim; }
  int64_t step() const { return step_; }

  tensor::ShardStore& entity_store() { return entities_; }
  tensor::ShardStore& relation_store() { return relations_; }

 private:
  struct Sample {
    int64_t head;
    int64_t rel;
    int64_t tail;
    float label;
  };

  /// Runs forward+backward+Adam on one batch; returns summed loss.
  double TrainBatch(const std::vector<Sample>& samples);

  int64_t num_entities_ = 0;
  int64_t num_relations_ = 0;
  ScaleTrainConfig config_;
  Rng rng_{0};
  int64_t step_ = 0;

  tensor::ShardStore entities_;
  tensor::ShardStore relations_;
  tensor::ShardStore ent_m_;
  tensor::ShardStore ent_v_;
  tensor::ShardStore rel_m_;
  tensor::ShardStore rel_v_;
};

}  // namespace came::train

#endif  // CAME_TRAIN_SCALE_TRAINER_H_
