#include "train/grid_search.h"

#include "common/logging.h"

namespace came::train {

GridSearchResult GridSearch(const ModelFactory& factory,
                            const kg::Dataset& dataset,
                            const eval::Evaluator& evaluator,
                            const std::vector<TrainConfig>& candidates,
                            int64_t valid_sample) {
  CAME_CHECK(!candidates.empty());
  GridSearchResult result;
  for (const TrainConfig& config : candidates) {
    std::unique_ptr<baselines::KgcModel> model = factory();
    CAME_CHECK(model != nullptr);
    Trainer trainer(model.get(), dataset, config);
    const eval::Metrics valid = trainer.TrainWithBestValidation(
        evaluator, std::max(1, config.epochs / 4), valid_sample);
    result.trials.emplace_back(config, valid);
    if (result.best_model == nullptr ||
        valid.Hits10() > result.best_valid.Hits10()) {
      result.best_config = config;
      result.best_valid = valid;
      result.best_model = std::move(model);
    }
  }
  return result;
}

std::vector<TrainConfig> MarginGrid(const TrainConfig& base,
                                    const std::vector<float>& margins) {
  std::vector<TrainConfig> grid;
  grid.reserve(margins.size());
  for (float margin : margins) {
    TrainConfig c = base;
    c.margin = margin;
    grid.push_back(c);
  }
  return grid;
}

}  // namespace came::train
