#include "train/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "tensor/tensor_ops.h"

namespace came::train {

Trainer::Trainer(baselines::KgcModel* model, const kg::Dataset& dataset,
                 const TrainConfig& config)
    : model_(model),
      dataset_(dataset),
      config_(config),
      train_(dataset.TrainWithInverses()),
      train_filter_(dataset.num_entities(), dataset.num_relations()),
      sampler_(&train_filter_, dataset.num_entities(), config.seed ^ 0x5151),
      rng_(config.seed) {
  CAME_CHECK(model != nullptr);
  CAME_CHECK(!dataset.train.empty());
  train_filter_.AddTriples(dataset.train);
  optimizer_ = std::make_unique<optim::Adam>(
      model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
      config.weight_decay);
  stopwatch_.Reset();
}

void Trainer::Train(const EpochCallback& cb) {
  model_->SetTraining(true);
  for (int e = 0; e < config_.epochs; ++e) {
    const float loss = RunEpoch();
    if (cb) cb({epochs_run_, loss, stopwatch_.ElapsedSeconds()});
  }
}

eval::Metrics Trainer::TrainWithBestValidation(
    const eval::Evaluator& evaluator, int eval_every, int64_t valid_sample,
    const EpochCallback& cb) {
  CAME_CHECK_GT(eval_every, 0);
  CAME_CHECK(!dataset_.valid.empty()) << "no validation split";
  eval::EvalConfig ec;
  ec.max_triples = valid_sample;
  eval::Metrics best;
  std::vector<tensor::Tensor> best_snapshot;
  model_->SetTraining(true);
  for (int e = 0; e < config_.epochs; ++e) {
    const float loss = RunEpoch();
    if (cb) cb({epochs_run_, loss, stopwatch_.ElapsedSeconds()});
    if ((e + 1) % eval_every != 0 && e + 1 != config_.epochs) continue;
    const eval::Metrics m =
        evaluator.Evaluate(model_, dataset_.valid, ec);
    // The paper selects checkpoints on validation MRR; Hits@10 only
    // breaks exact MRR ties.
    const bool improved =
        best_snapshot.empty() || m.Mrr() > best.Mrr() ||
        (m.Mrr() == best.Mrr() && m.Hits10() > best.Hits10());
    if (improved) {
      best = m;
      best_snapshot = model_->SnapshotParameters();
    }
  }
  if (!best_snapshot.empty()) model_->RestoreParameters(best_snapshot);
  return best;
}

float Trainer::RunEpoch() {
  model_->SetTraining(true);
  rng_.Shuffle(&train_);
  float loss = 0.0f;
  switch (model_->regime()) {
    case baselines::TrainingRegime::kOneToN:
      loss = OneToNEpoch();
      break;
    case baselines::TrainingRegime::kNegativeSampling:
      loss = NegativeSamplingEpoch(/*self_adversarial=*/false);
      break;
    case baselines::TrainingRegime::kSelfAdversarial:
      loss = NegativeSamplingEpoch(/*self_adversarial=*/true);
      break;
  }
  ++epochs_run_;
  return loss;
}

float Trainer::OneToNEpoch() {
  const int64_t n_entities = dataset_.num_entities();
  const float eps = config_.label_smoothing;
  const float off_value = eps / static_cast<float>(n_entities);
  const float on_value = 1.0f - eps + off_value;

  double total = 0.0;
  int64_t batches = 0;
  for (size_t start = 0; start < train_.size();
       start += static_cast<size_t>(config_.batch_size)) {
    const size_t end =
        std::min(train_.size(), start + static_cast<size_t>(config_.batch_size));
    const int64_t b = static_cast<int64_t>(end - start);
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    heads.reserve(static_cast<size_t>(b));
    rels.reserve(static_cast<size_t>(b));
    tensor::Tensor labels =
        tensor::Tensor::Full({b, n_entities}, off_value);
    for (size_t i = start; i < end; ++i) {
      heads.push_back(train_[i].head);
      rels.push_back(train_[i].rel);
    }
    // Rows of the multi-label target are independent slabs; scatter the
    // known tails across the pool (reads of the filter index are const).
    ParallelFor(0, b, /*grain=*/16, [&](int64_t lo, int64_t hi) {
      for (int64_t row = lo; row < hi; ++row) {
        const kg::Triple& t = train_[start + static_cast<size_t>(row)];
        for (int64_t tail : train_filter_.Tails(t.head, t.rel)) {
          labels.data()[row * n_entities + tail] = on_value;
        }
      }
    });
    ag::Var scores = model_->ScoreAllTails(heads, rels);
    ag::Var loss = ag::BceWithLogitsMean(scores, labels);
    optimizer_->ZeroGrad();
    loss.Backward();
    if (config_.grad_clip > 0.0f) {
      optim::ClipGradNorm(model_->Parameters(), config_.grad_clip);
    }
    optimizer_->Step();
    total += loss.value().data()[0];
    ++batches;
  }
  return static_cast<float>(total / std::max<int64_t>(1, batches));
}

float Trainer::NegativeSamplingEpoch(bool self_adversarial) {
  const int64_t k = config_.negatives;
  double total = 0.0;
  int64_t batches = 0;
  for (size_t start = 0; start < train_.size();
       start += static_cast<size_t>(config_.batch_size)) {
    const size_t end =
        std::min(train_.size(), start + static_cast<size_t>(config_.batch_size));
    const int64_t b = static_cast<int64_t>(end - start);
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    std::vector<int64_t> tails;
    std::vector<int64_t> rep_heads;
    std::vector<int64_t> rep_rels;
    std::vector<int64_t> neg_tails;
    for (size_t i = start; i < end; ++i) {
      const kg::Triple& t = train_[i];
      heads.push_back(t.head);
      rels.push_back(t.rel);
      tails.push_back(t.tail);
      sampler_.AppendSamples(t.head, t.rel, k, &neg_tails);
      for (int64_t j = 0; j < k; ++j) {
        rep_heads.push_back(t.head);
        rep_rels.push_back(t.rel);
      }
    }
    ag::Var pos = model_->ScoreTriples(heads, rels, tails);        // [B]
    ag::Var neg = ag::Reshape(
        model_->ScoreTriples(rep_heads, rep_rels, neg_tails), {b, k});

    const float gamma = config_.margin;
    // L = -mean logsig(gamma + s_pos) - mean_i w_i logsig(-gamma - s_neg).
    ag::Var pos_term =
        ag::Neg(ag::MeanAll(ag::LogSigmoid(ag::AddScalar(pos, gamma))));
    ag::Var neg_logsig =
        ag::LogSigmoid(ag::Neg(ag::AddScalar(neg, gamma)));  // [B,K]
    ag::Var neg_term;
    if (self_adversarial) {
      ag::Var weights =
          ag::SoftmaxAlong(ag::Scale(neg, config_.adv_temperature), 1)
              .Detach();  // [B,K]
      neg_term = ag::Neg(ag::MeanAll(
          ag::SumAlong(ag::Mul(weights, neg_logsig), 1, false)));
    } else {
      neg_term = ag::Neg(ag::MeanAll(neg_logsig));
    }
    ag::Var loss = ag::Add(pos_term, neg_term);

    // Model-specific auxiliary loss (e.g. TransAE reconstruction).
    std::vector<int64_t> batch_entities = heads;
    batch_entities.insert(batch_entities.end(), tails.begin(), tails.end());
    ag::Var aux = model_->AuxiliaryLoss(batch_entities);
    if (aux.defined()) loss = ag::Add(loss, aux);

    optimizer_->ZeroGrad();
    loss.Backward();
    if (config_.grad_clip > 0.0f) {
      optim::ClipGradNorm(model_->Parameters(), config_.grad_clip);
    }
    optimizer_->Step();
    total += loss.value().data()[0];
    ++batches;
  }
  return static_cast<float>(total / std::max<int64_t>(1, batches));
}

}  // namespace came::train
