#include "train/trainer.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "tensor/tensor_ops.h"
#include "train/checkpoint.h"

namespace came::train {

Trainer::Trainer(baselines::KgcModel* model, const kg::Dataset& dataset,
                 const TrainConfig& config)
    : model_(model),
      dataset_(dataset),
      config_(config),
      train_(dataset.TrainWithInverses()),
      train_filter_(dataset.num_entities(), dataset.num_relations()),
      sampler_(&train_filter_, dataset.num_entities(), config.seed ^ 0x5151),
      rng_(config.seed) {
  CAME_CHECK(model != nullptr);
  CAME_CHECK(!dataset.train.empty());
  order_.resize(train_.size());
  train_filter_.AddTriples(dataset.train);
  optimizer_ = std::make_unique<optim::Adam>(
      model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
      config.weight_decay);
  stopwatch_.Reset();
}

void Trainer::Train(const EpochCallback& cb) {
  model_->SetTraining(true);
  while (epochs_run_ < config_.epochs) {
    const float loss = RunEpoch();
    if (cb) cb({epochs_run_, loss, stopwatch_.ElapsedSeconds()});
    MaybeCheckpoint();
  }
}

void Trainer::MaybeCheckpoint() const {
  if (config_.checkpoint_path.empty()) return;
  const int every = std::max(1, config_.checkpoint_every);
  if (epochs_run_ % every != 0 && epochs_run_ != config_.epochs) return;
  const Status st = SaveCheckpoint(config_.checkpoint_path);
  if (!st.ok()) {
    CAME_LOG(Warning) << "checkpoint save failed (training continues): "
                      << st.ToString();
  }
}

eval::Metrics Trainer::TrainWithBestValidation(
    const eval::Evaluator& evaluator, int eval_every, int64_t valid_sample,
    const EpochCallback& cb) {
  CAME_CHECK_GT(eval_every, 0);
  CAME_CHECK(!dataset_.valid.empty()) << "no validation split";
  eval::EvalConfig ec;
  ec.max_triples = valid_sample;
  model_->SetTraining(true);
  while (epochs_run_ < config_.epochs) {
    const float loss = RunEpoch();
    if (cb) cb({epochs_run_, loss, stopwatch_.ElapsedSeconds()});
    if (epochs_run_ % eval_every != 0 && epochs_run_ != config_.epochs) {
      MaybeCheckpoint();
      continue;
    }
    const eval::Metrics m =
        evaluator.Evaluate(model_, dataset_.valid, ec);
    // The paper selects checkpoints on validation MRR; Hits@10 only
    // breaks exact MRR ties.
    const bool improved =
        best_snapshot_.empty() || m.Mrr() > best_.Mrr() ||
        (m.Mrr() == best_.Mrr() && m.Hits10() > best_.Hits10());
    if (improved) {
      best_ = m;
      best_snapshot_ = model_->SnapshotParameters();
    }
    MaybeCheckpoint();
  }
  if (!best_snapshot_.empty()) model_->RestoreParameters(best_snapshot_);
  return best_;
}

float Trainer::RunEpoch() {
  model_->SetTraining(true);
  // Shuffle a fresh identity permutation rather than the triples in
  // place: the epoch's visit order then depends only on the Rng state at
  // epoch start, so a resumed run replays the same order as an
  // uninterrupted one.
  std::iota(order_.begin(), order_.end(), size_t{0});
  rng_.Shuffle(&order_);
  float loss = 0.0f;
  switch (model_->regime()) {
    case baselines::TrainingRegime::kOneToN:
      loss = OneToNEpoch();
      break;
    case baselines::TrainingRegime::kNegativeSampling:
      loss = NegativeSamplingEpoch(/*self_adversarial=*/false);
      break;
    case baselines::TrainingRegime::kSelfAdversarial:
      loss = NegativeSamplingEpoch(/*self_adversarial=*/true);
      break;
  }
  ++epochs_run_;
  return loss;
}

float Trainer::OneToNEpoch() {
  const int64_t n_entities = dataset_.num_entities();
  const float eps = config_.label_smoothing;
  const float off_value = eps / static_cast<float>(n_entities);
  const float on_value = 1.0f - eps + off_value;

  double total = 0.0;
  int64_t batches = 0;
  // Hoisted out of the batch loop: the vectors keep their capacity and the
  // label tensor recycles the same pooled buffer every full-sized batch.
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  for (size_t start = 0; start < train_.size();
       start += static_cast<size_t>(config_.batch_size)) {
    const size_t end =
        std::min(train_.size(), start + static_cast<size_t>(config_.batch_size));
    const int64_t b = static_cast<int64_t>(end - start);
    heads.clear();
    rels.clear();
    tensor::Tensor labels =
        tensor::Tensor::Full({b, n_entities}, off_value);
    for (size_t i = start; i < end; ++i) {
      heads.push_back(EpochTriple(i).head);
      rels.push_back(EpochTriple(i).rel);
    }
    // Rows of the multi-label target are independent slabs; scatter the
    // known tails across the pool (reads of the filter index are const).
    ParallelFor(0, b, /*grain=*/16, [&](int64_t lo, int64_t hi) {
      for (int64_t row = lo; row < hi; ++row) {
        const kg::Triple& t = EpochTriple(start + static_cast<size_t>(row));
        for (int64_t tail : train_filter_.Tails(t.head, t.rel)) {
          labels.data()[row * n_entities + tail] = on_value;
        }
      }
    });
    ag::Var scores = model_->ScoreAllTails(heads, rels);
    ag::Var loss = ag::BceWithLogitsMean(scores, labels);
    optimizer_->ZeroGrad();
    loss.Backward();
    if (config_.grad_clip > 0.0f) {
      optim::ClipGradNorm(model_->Parameters(), config_.grad_clip);
    }
    optimizer_->Step();
    total += loss.value().data()[0];
    ++batches;
  }
  return static_cast<float>(total / std::max<int64_t>(1, batches));
}

Status Trainer::SaveCheckpoint(const std::string& path) const {
  CheckpointState st;
  for (const auto& [name, p] : model_->NamedParameters()) {
    st.params.emplace_back(name, p.value());
  }
  st.adam_step = optimizer_->step_count();
  st.adam_m = optimizer_->first_moments();
  st.adam_v = optimizer_->second_moments();
  st.rng_streams = {rng_.GetState(), sampler_.rng_state(),
                    model_->mutable_rng()->GetState()};
  st.epochs_run = epochs_run_;
  st.has_best = !best_snapshot_.empty();
  st.best = best_;
  st.best_snapshot = best_snapshot_;
  return WriteCheckpoint(path, st);
}

Status Trainer::Resume(const std::string& path) {
  CheckpointState st;
  CAME_RETURN_IF_ERROR(ReadCheckpoint(path, &st));

  // Validate every cross-reference before mutating anything, so a bad
  // checkpoint leaves the trainer in its pre-Resume state.
  if (st.rng_streams.size() != 3) {
    return Status::InvalidArgument(
        path + ": expected 3 rng streams (trainer, sampler, model), found " +
        std::to_string(st.rng_streams.size()));
  }
  const auto named = model_->NamedParameters();
  if (st.has_best && st.best_snapshot.size() != named.size()) {
    return Status::InvalidArgument(path + ": best-snapshot tensor count " +
                                   std::to_string(st.best_snapshot.size()) +
                                   " does not match the model's " +
                                   std::to_string(named.size()));
  }
  for (size_t i = 0; st.has_best && i < named.size(); ++i) {
    if (!tensor::SameShape(st.best_snapshot[i].shape(),
                           named[i].second.shape())) {
      return Status::InvalidArgument(path +
                                     ": best-snapshot shape mismatch for " +
                                     named[i].first);
    }
  }
  // Pre-check the optimizer state against the model's parameters (the
  // optimizer was built from them, in the same order) so that once any
  // application starts, nothing can fail halfway.
  if (st.adam_m.size() != named.size() || st.adam_v.size() != named.size()) {
    return Status::InvalidArgument(path + ": Adam moment count mismatch");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (!tensor::SameShape(st.adam_m[i].shape(), named[i].second.shape()) ||
        !tensor::SameShape(st.adam_v[i].shape(), named[i].second.shape())) {
      return Status::InvalidArgument(path + ": Adam moment shape mismatch for " +
                                     named[i].first);
    }
  }
  CAME_RETURN_IF_ERROR(model_->LoadParameterValues(st.params));
  CAME_RETURN_IF_ERROR(
      optimizer_->RestoreState(st.adam_step, st.adam_m, st.adam_v));

  rng_.SetState(st.rng_streams[0]);
  sampler_.set_rng_state(st.rng_streams[1]);
  model_->mutable_rng()->SetState(st.rng_streams[2]);
  epochs_run_ = static_cast<int>(st.epochs_run);
  best_ = st.best;
  best_snapshot_ = std::move(st.best_snapshot);
  if (!st.has_best) {
    best_ = eval::Metrics{};
    best_snapshot_.clear();
  }
  return Status::OK();
}

float Trainer::NegativeSamplingEpoch(bool self_adversarial) {
  const int64_t k = config_.negatives;
  double total = 0.0;
  int64_t batches = 0;
  // Hoisted out of the batch loop so each keeps its capacity across
  // batches instead of reallocating every iteration.
  std::vector<int64_t> heads;
  std::vector<int64_t> rels;
  std::vector<int64_t> tails;
  std::vector<int64_t> rep_heads;
  std::vector<int64_t> rep_rels;
  std::vector<int64_t> neg_tails;
  for (size_t start = 0; start < train_.size();
       start += static_cast<size_t>(config_.batch_size)) {
    const size_t end =
        std::min(train_.size(), start + static_cast<size_t>(config_.batch_size));
    const int64_t b = static_cast<int64_t>(end - start);
    heads.clear();
    rels.clear();
    tails.clear();
    rep_heads.clear();
    rep_rels.clear();
    neg_tails.clear();
    for (size_t i = start; i < end; ++i) {
      const kg::Triple& t = EpochTriple(i);
      heads.push_back(t.head);
      rels.push_back(t.rel);
      tails.push_back(t.tail);
      sampler_.AppendSamples(t.head, t.rel, k, &neg_tails);
      for (int64_t j = 0; j < k; ++j) {
        rep_heads.push_back(t.head);
        rep_rels.push_back(t.rel);
      }
    }
    ag::Var pos = model_->ScoreTriples(heads, rels, tails);        // [B]
    ag::Var neg = ag::Reshape(
        model_->ScoreTriples(rep_heads, rep_rels, neg_tails), {b, k});

    const float gamma = config_.margin;
    // L = -mean logsig(gamma + s_pos) - mean_i w_i logsig(-gamma - s_neg).
    ag::Var pos_term =
        ag::Neg(ag::MeanAll(ag::LogSigmoid(ag::AddScalar(pos, gamma))));
    ag::Var neg_logsig =
        ag::LogSigmoid(ag::Neg(ag::AddScalar(neg, gamma)));  // [B,K]
    ag::Var neg_term;
    if (self_adversarial) {
      ag::Var weights =
          ag::SoftmaxAlong(ag::Scale(neg, config_.adv_temperature), 1)
              .Detach();  // [B,K]
      neg_term = ag::Neg(ag::MeanAll(
          ag::SumAlong(ag::Mul(weights, neg_logsig), 1, false)));
    } else {
      neg_term = ag::Neg(ag::MeanAll(neg_logsig));
    }
    ag::Var loss = ag::Add(pos_term, neg_term);

    // Model-specific auxiliary loss (e.g. TransAE reconstruction).
    std::vector<int64_t> batch_entities = heads;
    batch_entities.insert(batch_entities.end(), tails.begin(), tails.end());
    ag::Var aux = model_->AuxiliaryLoss(batch_entities);
    if (aux.defined()) loss = ag::Add(loss, aux);

    optimizer_->ZeroGrad();
    loss.Backward();
    if (config_.grad_clip > 0.0f) {
      optim::ClipGradNorm(model_->Parameters(), config_.grad_clip);
    }
    optimizer_->Step();
    total += loss.value().data()[0];
    ++batches;
  }
  return static_cast<float>(total / std::max<int64_t>(1, batches));
}

}  // namespace came::train
