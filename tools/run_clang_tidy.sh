#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the checks in .clang-tidy.
#
# Usage: tools/run_clang_tidy.sh [--require] [BUILD_DIR]
#
#   --require   fail (exit 2) when clang-tidy is not installed — used by CI
#               so a missing tool can never silently pass the lint job.
#               Without it the script prints a notice and exits 0, so local
#               builds without clang-tidy are not blocked.
#   BUILD_DIR   directory holding compile_commands.json (default: build).
set -euo pipefail

require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi
build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Accept both relative-to-repo and absolute build dirs.
if [[ "$build_dir" != /* ]]; then
  build_dir="$repo_root/$build_dir"
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ "$require" == 1 ]]; then
    echo "run_clang_tidy: clang-tidy not found and --require given" >&2
    exit 2
  fi
  echo "run_clang_tidy: clang-tidy not installed; skipping (use --require to fail instead)"
  exit 0
fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "run_clang_tidy: $db missing — configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

cd "$repo_root"
mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_clang_tidy: checking ${#sources[@]} files against .clang-tidy"
clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "run_clang_tidy: clean"
