#!/usr/bin/env python3
"""Op-coverage linter: every autograd op must carry its own safety net.

Cross-checks three sources of truth and fails the build when they drift:

  1. ``src/autograd/ops.h``   — the public op surface (``Var Name(...)``).
  2. ``src/autograd/ops.cc``  — the registry (``RegisterOp("Name"[, spec])``).
  3. ``tests/autograd/gradcheck_test.cc`` — finite-difference coverage.

Rules enforced:

  R1  Every public op declared in ops.h is registered in the op registry
      (so the tape auditor can name it in diagnostics).
  R2  Every registered op is exercised by gradcheck_test.cc — either as a
      function reference (``&Name``) or a direct call (``Name(``).
  R3  Every op registered with BroadcastSpec::kNumpy is additionally
      called inside at least one TEST whose name contains "Broadcast",
      so the unequal-shape gradient-reduction path is covered, not just
      the same-shape path.

Exit status 0 when clean, 1 with a per-op listing otherwise.

Usage:
  check_op_coverage.py [--repo DIR]   # lint the repository (default: cwd)
  check_op_coverage.py --self-test    # verify the linter catches drift
"""

import argparse
import re
import sys
from pathlib import Path

OPS_HEADER = "src/autograd/ops.h"
OPS_SOURCE = "src/autograd/ops.cc"
GRADCHECK_TEST = "tests/autograd/gradcheck_test.cc"

# Ops excused from R2/R3 with the reason on record. Keep this empty unless
# an op is genuinely untestable by finite differences.
GRADCHECK_EXEMPT: dict = {}

DECL_RE = re.compile(r"^Var\s+(\w+)\s*\(", re.MULTILINE)
REGISTER_RE = re.compile(
    r'RegisterOp\(\s*"(\w+)"\s*(?:,\s*BroadcastSpec::(\w+))?\s*\)')
TEST_BLOCK_RE = re.compile(
    r"TEST(?:_P|_F)?\s*\(\s*(\w+)\s*,\s*(\w+)\s*\)", re.MULTILINE)


def parse_declared_ops(header_text):
    """Public op names declared in ops.h."""
    return sorted(set(DECL_RE.findall(header_text)))


def parse_registered_ops(source_text):
    """Map of registered op name -> broadcast spec ('kNone'/'kNumpy')."""
    ops = {}
    for name, spec in REGISTER_RE.findall(source_text):
        ops[name] = spec or "kNone"
    return ops


def op_mentioned(test_text, name):
    """True if the op is gradcheck-covered: ``&Name`` or ``Name(``."""
    return re.search(r"(&%s\b|\b%s\s*\()" % (name, name), test_text) is not None


def split_test_blocks(test_text):
    """Yields (test_suite, test_name, body) by brace matching from TEST(."""
    for m in TEST_BLOCK_RE.finditer(test_text):
        depth = 0
        start = test_text.index("{", m.end())
        for i in range(start, len(test_text)):
            if test_text[i] == "{":
                depth += 1
            elif test_text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(1), m.group(2), test_text[start:i + 1]
                    break


def broadcast_covered(test_text, name):
    """True if the op is called in a TEST whose name mentions Broadcast."""
    for _suite, test_name, body in split_test_blocks(test_text):
        if "Broadcast" in test_name and re.search(r"\b%s\s*\(" % name, body):
            return True
    return False


def lint(header_text, source_text, test_text):
    """Returns a list of violation strings (empty when clean)."""
    declared = parse_declared_ops(header_text)
    registered = parse_registered_ops(source_text)
    problems = []

    for name in declared:
        if name not in registered:
            problems.append(
                f"R1 {name}: declared in {OPS_HEADER} but never registered "
                f"via RegisterOp in {OPS_SOURCE} — the tape auditor cannot "
                f"name it in diagnostics")

    for name, spec in sorted(registered.items()):
        if name in GRADCHECK_EXEMPT:
            continue
        if not op_mentioned(test_text, name):
            problems.append(
                f"R2 {name}: registered but not exercised in "
                f"{GRADCHECK_TEST} — add a gradcheck (finite-difference) "
                f"case before shipping the op")
        elif spec == "kNumpy" and not broadcast_covered(test_text, name):
            problems.append(
                f"R3 {name}: registered as a broadcasting op but never "
                f"called inside a TEST named *Broadcast* in "
                f"{GRADCHECK_TEST} — the gradient-reduction path for "
                f"unequal shapes is untested")
    return problems


def lint_repo(repo):
    paths = [repo / OPS_HEADER, repo / OPS_SOURCE, repo / GRADCHECK_TEST]
    for p in paths:
        if not p.is_file():
            print(f"check_op_coverage: missing {p}", file=sys.stderr)
            return 2
    problems = lint(*(p.read_text() for p in paths))
    if problems:
        print(f"check_op_coverage: {len(problems)} violation(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    declared = parse_declared_ops((repo / OPS_HEADER).read_text())
    registered = parse_registered_ops((repo / OPS_SOURCE).read_text())
    n_bcast = sum(1 for s in registered.values() if s == "kNumpy")
    print(f"check_op_coverage: OK — {len(declared)} declared ops, "
          f"{len(registered)} registered ({n_bcast} broadcasting), "
          f"all gradcheck-covered")
    return 0


def self_test():
    """Negative fixtures: the linter must catch each drift class."""
    header = "Var Foo(const Var& v);\nVar Bar(const Var& a, const Var& b);\n"
    source = ('static const int kOp = RegisterOp("Foo");\n'
              'static const int kOp2 = '
              'RegisterOp("Bar", BroadcastSpec::kNumpy);\n')
    covered = ("TEST(GradCheckTest, Foo) { Foo(x); }\n"
               "TEST(GradCheckTest, BarBroadcastRow) { Bar(a, b); }\n")

    failures = []

    def expect(label, problems, rule):
        hits = [p for p in problems if p.startswith(rule)]
        if not hits:
            failures.append(f"{label}: expected a {rule} violation, got "
                            f"{problems or 'none'}")

    # Clean fixture passes.
    if lint(header, source, covered):
        failures.append("clean fixture should produce no violations")
    # R1: declared but unregistered.
    expect("unregistered decl",
           lint(header + "Var Baz(const Var& v);\n", source, covered), "R1")
    # R2: registered but no gradcheck mention.
    expect("uncovered op",
           lint(header, source + 'RegisterOp("Qux");\n', covered), "R2")
    # R3: broadcast op mentioned only outside Broadcast-named tests.
    no_bcast = "TEST(GradCheckTest, Foo) { Foo(x); Bar(a, b); }\n"
    expect("missing broadcast case", lint(header, source, no_bcast), "R3")
    # R3 must not fire when the op *is* broadcast-covered.
    if any(p.startswith("R3") for p in lint(header, source, covered)):
        failures.append("R3 fired on a covered broadcast op")
    # &Name references count as coverage (parameterised unary tests).
    ref_style = ("TEST(GradCheckTest, Unary) { run(&Foo); }\n"
                 "TEST(GradCheckTest, BarBroadcastRow) { Bar(a, b); }\n")
    if any(p.startswith("R2") and "Foo" in p
           for p in lint(header, source, ref_style)):
        failures.append("&Foo reference should count as coverage")
    # Substring op names must not shadow each other (MatMul vs BatchMatMul).
    sub_header = "Var MatMul(const Var& a, const Var& b);\n"
    sub_source = 'RegisterOp("MatMul");\n'
    sub_test = "TEST(GradCheckTest, Batch) { BatchMatMul(a, b); }\n"
    expect("substring shadowing", lint(sub_header, sub_source, sub_test), "R2")

    if failures:
        print("check_op_coverage --self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("check_op_coverage --self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's own negative fixtures")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return lint_repo(Path(args.repo))


if __name__ == "__main__":
    sys.exit(main())
