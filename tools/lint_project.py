#!/usr/bin/env python3
"""Project-rule linter: mechanical invariants the compiler cannot express.

Each rule bans a pattern whose legitimate uses live in exactly one place,
so "the pattern appears anywhere else" is always a defect:

  M1  naked-mutex       — std::mutex / std::lock_guard / std::unique_lock /
      std::condition_variable (and friends) anywhere in src/ outside
      src/common/mutex.{h,cc}. Raw mutexes are invisible to clang Thread
      Safety Analysis and to the CAME_DEADLOCK_CHECK lock-order validator;
      came::Mutex / came::MutexLock / came::CondVar are the only lockable
      types allowed.

  P1  raw-parse         — atoi / atof / atol / strtol / strtod / ... in
      src/, examples/ or bench/ outside src/common/flags.cc. The raw
      functions silently turn "abc" into 0 and "10x" into 10; use
      came::flags::ParseInt/ParseUint/ParseDouble (full-consumption,
      range-checked) or the *Flag CLI wrappers.

  U1  uninit-justify    — Tensor::Uninitialized(...) call sites in src/
      without a `// fully-written:` justification on the same line or one
      of the two lines above. Uninitialized elides the zero-fill, which is
      only sound when every element is provably written before being read;
      the comment pins that proof to the call site so a later refactor
      that turns the output into an accumulator trips review (and the
      CAME_TENSOR_POOL=scrub sNaN mode at runtime).

  S1  status-swallow    — `(void)` casts that discard a came::Status (or a
      call to a function the tree declares as Status-returning), in src/,
      examples/, bench/ or tests/. Status is [[nodiscard]]; the escape
      valve is Status::LogIfError("context"), which keeps the decision to
      survive an error explicit and greppable.

There are no inline suppressions: the allowlists above are the complete
set, so a new violation can only be fixed, not waved through.

Exit status 0 when clean, 1 with a per-violation listing otherwise.

Usage:
  lint_project.py [--repo DIR]   # lint the repository (default: cwd)
  lint_project.py --self-test    # verify every rule fires on fixtures
"""

import argparse
import re
import sys
from pathlib import Path

SRC_EXTS = {".h", ".cc", ".cpp"}

MUTEX_ALLOWED = {"src/common/mutex.h", "src/common/mutex.cc"}
RAW_PARSE_ALLOWED = {"src/common/flags.cc"}

MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b")
RAW_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:atoi|atof|atol|atoll|strtol|strtoll|strtoul|strtoull|"
    r"strtof|strtod|strtold)\s*\(")
UNINIT_CALL_RE = re.compile(r"\bUninitialized\s*\(")
UNINIT_NON_CALL_RE = re.compile(
    r"^\s*(?:static\s+Tensor\s+Uninitialized\s*\(|"  # declaration
    r"Tensor\s+Tensor::Uninitialized\s*\()")          # definition
FULLY_WRITTEN_RE = re.compile(r"//\s*fully-written:")
# `(void)<expr>` where <expr> plainly names a status.
VOID_STATUS_RE = re.compile(r"\(void\)\s*[\w.>-]*[Ss]tatus\w*\b|"
                            r"\(void\)\s*_?st\b")
# Declarations like `Status Foo(...)` / `static Status Foo(...)` in any
# header: the tree's own Status-returning API surface.
STATUS_FN_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+)*"
    r"(?:came::|common::)?Status\s+(\w+)\s*\(", re.MULTILINE)
LINE_COMMENT_RE = re.compile(r"//.*$")


def iter_source_files(repo, subdirs):
    for sub in subdirs:
        root = repo / sub
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SRC_EXTS and path.is_file():
                yield path


def rel(repo, path):
    return path.relative_to(repo).as_posix()


def strip_comment(line):
    """Drops a trailing // comment so commented-out code never fires."""
    return LINE_COMMENT_RE.sub("", line)


def check_naked_mutex(relpath, lines):
    if relpath in MUTEX_ALLOWED:
        return []
    problems = []
    for i, line in enumerate(lines, 1):
        if MUTEX_RE.search(strip_comment(line)):
            problems.append((relpath, i, "M1 naked-mutex",
                             "use came::Mutex/MutexLock/CondVar "
                             "(common/mutex.h), not std:: locking types"))
    return problems


def check_raw_parse(relpath, lines):
    if relpath in RAW_PARSE_ALLOWED:
        return []
    problems = []
    for i, line in enumerate(lines, 1):
        if RAW_PARSE_RE.search(strip_comment(line)):
            problems.append((relpath, i, "P1 raw-parse",
                             "use came::flags::ParseInt/ParseDouble or the "
                             "*Flag wrappers, not atoi/strtol-family"))
    return problems


def check_uninit_justified(relpath, lines):
    problems = []
    for i, line in enumerate(lines, 1):
        if not UNINIT_CALL_RE.search(strip_comment(line)):
            continue
        if UNINIT_NON_CALL_RE.search(line):
            continue  # the declaration/definition, not a call site
        window = lines[max(0, i - 3):i]  # two lines above + the line itself
        if not any(FULLY_WRITTEN_RE.search(w) for w in window):
            problems.append((relpath, i, "U1 uninit-justify",
                             "Tensor::Uninitialized needs a "
                             "`// fully-written:` justification within the "
                             "two preceding lines"))
    return problems


def check_status_swallow(relpath, lines, status_fns):
    problems = []
    void_call_re = None
    if status_fns:
        names = "|".join(sorted(status_fns))
        void_call_re = re.compile(
            r"\(void\)\s*(?:[\w.>-]+(?:\.|->|::))?(?:%s)\s*\(" % names)
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if VOID_STATUS_RE.search(code) or (void_call_re and
                                           void_call_re.search(code)):
            problems.append((relpath, i, "S1 status-swallow",
                             "don't (void)-discard a Status; handle it, "
                             "propagate it, or call "
                             "status.LogIfError(\"context\")"))
    return problems


def collect_status_fns(repo):
    """Function names declared as returning Status in src/ headers."""
    names = set()
    for path in iter_source_files(repo, ["src"]):
        if path.suffix != ".h":
            continue
        names.update(STATUS_FN_DECL_RE.findall(path.read_text()))
    # Factory helpers named like `Status OK()` are constructors of Status,
    # not fallible operations; discard obvious constructors.
    return names - {"OK"}


def lint_repo(repo):
    repo = Path(repo)
    problems = []
    status_fns = collect_status_fns(repo)
    for path in iter_source_files(repo, ["src"]):
        relpath = rel(repo, path)
        lines = path.read_text().splitlines()
        problems += check_naked_mutex(relpath, lines)
        problems += check_uninit_justified(relpath, lines)
    for path in iter_source_files(repo, ["src", "examples", "bench"]):
        relpath = rel(repo, path)
        lines = path.read_text().splitlines()
        problems += check_raw_parse(relpath, lines)
    for path in iter_source_files(repo, ["src", "examples", "bench",
                                         "tests"]):
        relpath = rel(repo, path)
        lines = path.read_text().splitlines()
        problems += check_status_swallow(relpath, lines, status_fns)
    return problems


def report(problems):
    for relpath, line, rule, msg in problems:
        print(f"{relpath}:{line}: [{rule}] {msg}")
    print(f"lint_project: {len(problems)} violation(s)")
    return 1


# --- self-test fixtures ----------------------------------------------------

FIXTURES = [
    # (label, rule that must fire or None for clean, file-relpath, source)
    ("naked std::mutex member", "M1", "src/foo/bar.h",
     "class C {\n  std::mutex mu_;\n};\n"),
    ("naked lock_guard", "M1", "src/foo/bar.cc",
     "void F() {\n  std::lock_guard<std::mutex> l(mu_);\n}\n"),
    ("condition_variable_any", "M1", "src/foo/bar.cc",
     "std::condition_variable_any cv;\n"),
    ("came::Mutex is fine", None, "src/foo/bar.h",
     "class C {\n  came::Mutex mu_;\n  came::CondVar cv_;\n};\n"),
    ("mutex.h itself may use std::mutex", None, "src/common/mutex.h",
     "class Mutex {\n  std::mutex mu_;\n};\n"),
    ("commented-out mutex does not fire", None, "src/foo/bar.cc",
     "// std::mutex old_mu_;\n"),
    ("raw atoi", "P1", "examples/tool.cpp",
     "int n = atoi(argv[1]);\n"),
    ("raw std::strtol", "P1", "src/foo/parse.cc",
     "long v = std::strtol(s, &end, 10);\n"),
    ("flags.cc may use strtoll", None, "src/common/flags.cc",
     "long long v = strtoll(s, &end, 10);\n"),
    ("checked parser is fine", None, "src/foo/parse.cc",
     "auto v = flags::ParseInt(s);\n"),
    ("unjustified Uninitialized", "U1", "src/foo/kernel.cc",
     "Tensor out = Tensor::Uninitialized(x.shape());\n"),
    ("justified same line", None, "src/foo/kernel.cc",
     "Tensor out = Tensor::Uninitialized(x.shape());"
     "  // fully-written: elementwise loop below\n"),
    ("justified line above", None, "src/foo/kernel.cc",
     "// fully-written: every element stored by the gather loop\n"
     "Tensor out = Tensor::Uninitialized(x.shape());\n"),
    ("justification too far away", "U1", "src/foo/kernel.cc",
     "// fully-written: stale comment\n\n\n"
     "Tensor out = Tensor::Uninitialized(x.shape());\n"),
    ("the declaration itself is exempt", None, "src/tensor/tensor.h",
     "  static Tensor Uninitialized(Shape shape);\n"),
    ("(void) status variable", "S1", "src/foo/save.cc",
     "(void)status;\n"),
    ("(void) st variable", "S1", "src/foo/save.cc",
     "(void)st;\n"),
    ("(void) Status-returning call", "S1", "src/foo/save.cc",
     "(void)writer.Close();\n"),
    ("(void) on non-status is fine", None, "src/foo/save.cc",
     "(void)unused_arg;\n"),
    ("LogIfError is the sanctioned form", None, "src/foo/save.cc",
     "writer.Close().LogIfError(\"Abort\");\n"),
]

SELF_TEST_STATUS_FNS = {"Close", "Save"}


def self_test():
    failures = []
    for label, want_rule, relpath, source in FIXTURES:
        lines = source.splitlines()
        problems = (check_naked_mutex(relpath, lines) +
                    check_raw_parse(relpath, lines) +
                    check_uninit_justified(relpath, lines) +
                    check_status_swallow(relpath, lines,
                                         SELF_TEST_STATUS_FNS))
        fired = {rule.split()[0] for _, _, rule, _ in problems}
        if want_rule is None and fired:
            failures.append(f"{label!r}: expected clean, fired {fired}")
        elif want_rule is not None and want_rule not in fired:
            failures.append(f"{label!r}: expected {want_rule}, "
                            f"fired {fired or 'nothing'}")
    if failures:
        print("lint_project --self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint_project --self-test OK ({len(FIXTURES)} fixtures)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=".")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter against its own fixtures")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    problems = lint_repo(args.repo)
    if problems:
        return report(problems)
    print("lint_project OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
