#!/usr/bin/env python3
"""CI gate for the quantized serving path.

Reads the BENCH_serving.json emitted by bench_serving and enforces the
quantized-vs-fp32 quality floor on the int8 section:

  * top-K agreement >= the floor (default 0.99),
  * entity-matrix bytes <= the ratio ceiling (default 0.3x fp32),
  * the parity numbers were produced on the *expected pinned kernel*
    (default scalar), so the gated values are host-independent,
  * quantized throughput at the max thread count is reported (and gated
    only by --min_throughput_ratio when explicitly requested: wall-clock
    numbers from shared CI runners are too noisy for a hard default gate).

Also gates the exact panel-skip pruning section ("pruning"): the
pruned-vs-unpruned bitwise parity grid must have run on the pinned
kernel over every serving dtype with zero mismatches, and pruning must
have actually skipped panels (a sweep that never prunes trivially
passes parity and gates nothing). The prune-on/prune-off speedup is
reported, and gated only by --min_prune_speedup when explicitly
requested, for the same wall-clock-noise reason as above.

Exit code 0 when every check passes, 1 with a per-check report otherwise.

Usage:
  check_serving_parity.py --json BENCH_serving.json [--min_agreement 0.99]
      [--max_bytes_ratio 0.3] [--expect_kernel scalar]
      [--min_throughput_ratio R] [--min_prune_speedup S]
  check_serving_parity.py --self-test
"""

import argparse
import json
import sys
import tempfile


PRUNE_DTYPES = ("fp32", "int8", "bf16")


def check_pruning(bench, expect_kernel, min_prune_speedup):
    """Failure strings for the panel-skip pruning section."""
    failures = []
    pruning = bench.get("pruning")
    if pruning is None:
        return ["BENCH_serving.json has no \"pruning\" section"]
    parity = pruning.get("prune_parity")
    if parity is None:
        return ["\"pruning\" section has no \"prune_parity\" grid"]

    kernel = parity.get("parity_kernel")
    if kernel != expect_kernel:
        failures.append(
            f"prune parity kernel is {kernel!r}, expected {expect_kernel!r} "
            "— the gated grid is not host-independent")
    cases = parity.get("cases", 0)
    if cases <= 0:
        failures.append("prune parity grid ran zero cases")
    mismatches = parity.get("mismatches", -1)
    if mismatches != 0:
        failures.append(
            f"pruned sweep diverged from unpruned in {mismatches} of "
            f"{cases} cases — pruning must be bitwise exact")
    dtypes = parity.get("dtypes", [])
    for dtype in PRUNE_DTYPES:
        if dtype not in dtypes:
            failures.append(f"prune parity grid did not cover {dtype}")
    if parity.get("panels_skipped", 0) <= 0:
        failures.append(
            "prune parity grid skipped zero panels — parity is vacuous "
            "when pruning never fires")
    if pruning.get("panels_skipped_ratio", 0.0) <= 0.0:
        failures.append(
            "pruning benchmark skipped zero panels on the skewed table")
    if min_prune_speedup is not None:
        speedup = pruning.get("combined_speedup_at_4_clients", 0.0)
        if speedup < min_prune_speedup:
            failures.append(
                f"prune-on speedup {speedup:.2f}x at 4 clients < "
                f"floor {min_prune_speedup}x")
    return failures


def check(bench, min_agreement, max_bytes_ratio, expect_kernel,
          min_throughput_ratio, min_prune_speedup=None):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = check_pruning(bench, expect_kernel, min_prune_speedup)
    quant = bench.get("quantized")
    if quant is None:
        return failures + ["BENCH_serving.json has no \"quantized\" section"]
    int8 = quant.get("int8")
    if int8 is None:
        return failures + ["\"quantized\" section has no \"int8\" entry"]

    kernel = int8.get("parity_kernel")
    if kernel != expect_kernel:
        failures.append(
            f"parity kernel is {kernel!r}, expected {expect_kernel!r} — "
            "the gated numbers are not host-independent")

    agreement = int8.get("agreement_at_k", 0.0)
    if agreement < min_agreement:
        failures.append(
            f"int8 top-K agreement {agreement:.4f} < floor {min_agreement}")

    ratio = int8.get("bytes_ratio", 1.0)
    if ratio > max_bytes_ratio:
        failures.append(
            f"int8 entity-matrix bytes {ratio:.3f}x fp32 > "
            f"ceiling {max_bytes_ratio}x")

    if min_throughput_ratio is not None:
        tput = int8.get("throughput_vs_fp32", 0.0)
        if tput < min_throughput_ratio:
            failures.append(
                f"int8 throughput {tput:.2f}x fp32 < "
                f"floor {min_throughput_ratio}x")
    return failures


def run_gate(args):
    with open(args.json, "r", encoding="utf-8") as f:
        bench = json.load(f)
    failures = check(bench, args.min_agreement, args.max_bytes_ratio,
                     args.expect_kernel, args.min_throughput_ratio,
                     args.min_prune_speedup)
    int8 = bench.get("quantized", {}).get("int8", {})
    print(f"quantized serving gate ({args.json}):")
    print(f"  parity kernel      {int8.get('parity_kernel')}")
    print(f"  agreement@K        {int8.get('agreement_at_k')}")
    print(f"  jaccard@K          {int8.get('jaccard_at_k')}")
    print(f"  max |score err|    {int8.get('max_abs_score_err')}")
    print(f"  bytes vs fp32      {int8.get('bytes_ratio')}")
    print(f"  throughput vs fp32 {int8.get('throughput_vs_fp32')}")
    pruning = bench.get("pruning", {})
    parity = pruning.get("prune_parity", {})
    print(f"  prune parity       {parity.get('mismatches')} mismatches / "
          f"{parity.get('cases')} cases over {parity.get('dtypes')}")
    print(f"  panels skipped     {pruning.get('panels_skipped')} "
          f"(ratio {pruning.get('panels_skipped_ratio')})")
    print(f"  prune speedup @4   {pruning.get('combined_speedup_at_4_clients')}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def self_test():
    """The gate gates itself: known-good and each known-bad shape."""
    good = {
        "quantized": {
            "int8": {
                "parity_kernel": "scalar",
                "agreement_at_k": 0.995,
                "bytes_ratio": 0.28,
                "throughput_vs_fp32": 1.1,
            }
        },
        "pruning": {
            "panels_skipped": 120,
            "panels_skipped_ratio": 0.62,
            "combined_speedup_at_4_clients": 2.1,
            "prune_parity": {
                "parity_kernel": "scalar",
                "cases": 432,
                "mismatches": 0,
                "panels_skipped": 310,
                "dtypes": ["fp32", "int8", "bf16"],
            },
        },
    }
    cases = []

    def variant(**overrides):
        bench = json.loads(json.dumps(good))
        bench["quantized"]["int8"].update(overrides)
        return bench

    def prune_variant(**overrides):
        bench = json.loads(json.dumps(good))
        parity_keys = {"parity_kernel", "cases", "mismatches",
                       "panels_skipped", "dtypes"}
        for key, val in overrides.items():
            if key in parity_keys:
                bench["pruning"]["prune_parity"][key] = val
            else:
                bench["pruning"][key] = val
        return bench

    cases.append(("good", good, 0))
    cases.append(("low agreement", variant(agreement_at_k=0.98), 1))
    cases.append(("fat bytes", variant(bytes_ratio=0.5), 1))
    cases.append(("wrong kernel", variant(parity_kernel="vnni"), 1))
    cases.append(("missing section", {"bench": "serving"}, 1))
    cases.append(("missing int8",
                  {"quantized": {}, "pruning": good["pruning"]}, 1))
    cases.append(("prune mismatch", prune_variant(mismatches=3), 1))
    cases.append(("prune zero cases", prune_variant(cases=0), 1))
    cases.append(("prune missing dtype",
                  prune_variant(dtypes=["fp32", "int8"]), 1))
    cases.append(("prune never fired", prune_variant(panels_skipped=0), 1))
    cases.append(("bench never pruned",
                  prune_variant(panels_skipped_ratio=0.0), 1))
    cases.append(("prune wrong kernel",
                  prune_variant(parity_kernel="avx2"), 1))
    no_pruning = {"quantized": good["quantized"]}
    cases.append(("missing pruning section", no_pruning, 1))

    failed = []
    for name, bench, want in cases:
        got = 1 if check(bench, 0.99, 0.3, "scalar", None) else 0
        if got != want:
            failed.append(f"{name}: gate returned {got}, wanted {want}")
    # Throughput is only gated when a floor is passed explicitly.
    if check(variant(throughput_vs_fp32=0.5), 0.99, 0.3, "scalar", None):
        failed.append("throughput gated without an explicit floor")
    if not check(variant(throughput_vs_fp32=0.5), 0.99, 0.3, "scalar", 1.0):
        failed.append("throughput floor not enforced when requested")
    # Same opt-in contract for the prune speedup floor.
    slow = prune_variant(combined_speedup_at_4_clients=1.1)
    if check(slow, 0.99, 0.3, "scalar", None):
        failed.append("prune speedup gated without an explicit floor")
    if not check(slow, 0.99, 0.3, "scalar", None, min_prune_speedup=1.5):
        failed.append("prune speedup floor not enforced when requested")
    # End to end through a real temp file.
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(good, f)
        path = f.name
    ns = argparse.Namespace(json=path, min_agreement=0.99,
                            max_bytes_ratio=0.3, expect_kernel="scalar",
                            min_throughput_ratio=None,
                            min_prune_speedup=None)
    if run_gate(ns) != 0:
        failed.append("end-to-end run on known-good JSON failed")

    if failed:
        for f in failed:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test: {len(cases) + 5} cases OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="BENCH_serving.json to gate")
    parser.add_argument("--min_agreement", type=float, default=0.99)
    parser.add_argument("--max_bytes_ratio", type=float, default=0.3)
    parser.add_argument("--expect_kernel", default="scalar")
    parser.add_argument("--min_throughput_ratio", type=float, default=None)
    parser.add_argument("--min_prune_speedup", type=float, default=None)
    parser.add_argument("--self-test", action="store_true",
                        dest="self_test")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.json:
        parser.error("--json is required unless --self-test")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
