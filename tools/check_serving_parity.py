#!/usr/bin/env python3
"""CI gate for the quantized serving path.

Reads the BENCH_serving.json emitted by bench_serving and enforces the
quantized-vs-fp32 quality floor on the int8 section:

  * top-K agreement >= the floor (default 0.99),
  * entity-matrix bytes <= the ratio ceiling (default 0.3x fp32),
  * the parity numbers were produced on the *expected pinned kernel*
    (default scalar), so the gated values are host-independent,
  * quantized throughput at the max thread count is reported (and gated
    only by --min_throughput_ratio when explicitly requested: wall-clock
    numbers from shared CI runners are too noisy for a hard default gate).

Exit code 0 when every check passes, 1 with a per-check report otherwise.

Usage:
  check_serving_parity.py --json BENCH_serving.json [--min_agreement 0.99]
      [--max_bytes_ratio 0.3] [--expect_kernel scalar]
      [--min_throughput_ratio R]
  check_serving_parity.py --self-test
"""

import argparse
import json
import sys
import tempfile


def check(bench, min_agreement, max_bytes_ratio, expect_kernel,
          min_throughput_ratio):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    quant = bench.get("quantized")
    if quant is None:
        return ["BENCH_serving.json has no \"quantized\" section"]
    int8 = quant.get("int8")
    if int8 is None:
        return ["\"quantized\" section has no \"int8\" entry"]

    kernel = int8.get("parity_kernel")
    if kernel != expect_kernel:
        failures.append(
            f"parity kernel is {kernel!r}, expected {expect_kernel!r} — "
            "the gated numbers are not host-independent")

    agreement = int8.get("agreement_at_k", 0.0)
    if agreement < min_agreement:
        failures.append(
            f"int8 top-K agreement {agreement:.4f} < floor {min_agreement}")

    ratio = int8.get("bytes_ratio", 1.0)
    if ratio > max_bytes_ratio:
        failures.append(
            f"int8 entity-matrix bytes {ratio:.3f}x fp32 > "
            f"ceiling {max_bytes_ratio}x")

    if min_throughput_ratio is not None:
        tput = int8.get("throughput_vs_fp32", 0.0)
        if tput < min_throughput_ratio:
            failures.append(
                f"int8 throughput {tput:.2f}x fp32 < "
                f"floor {min_throughput_ratio}x")
    return failures


def run_gate(args):
    with open(args.json, "r", encoding="utf-8") as f:
        bench = json.load(f)
    failures = check(bench, args.min_agreement, args.max_bytes_ratio,
                     args.expect_kernel, args.min_throughput_ratio)
    int8 = bench.get("quantized", {}).get("int8", {})
    print(f"quantized serving gate ({args.json}):")
    print(f"  parity kernel      {int8.get('parity_kernel')}")
    print(f"  agreement@K        {int8.get('agreement_at_k')}")
    print(f"  jaccard@K          {int8.get('jaccard_at_k')}")
    print(f"  max |score err|    {int8.get('max_abs_score_err')}")
    print(f"  bytes vs fp32      {int8.get('bytes_ratio')}")
    print(f"  throughput vs fp32 {int8.get('throughput_vs_fp32')}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def self_test():
    """The gate gates itself: known-good and each known-bad shape."""
    good = {
        "quantized": {
            "int8": {
                "parity_kernel": "scalar",
                "agreement_at_k": 0.995,
                "bytes_ratio": 0.28,
                "throughput_vs_fp32": 1.1,
            }
        }
    }
    cases = []

    def variant(**overrides):
        bench = json.loads(json.dumps(good))
        bench["quantized"]["int8"].update(overrides)
        return bench

    cases.append(("good", good, 0))
    cases.append(("low agreement", variant(agreement_at_k=0.98), 1))
    cases.append(("fat bytes", variant(bytes_ratio=0.5), 1))
    cases.append(("wrong kernel", variant(parity_kernel="vnni"), 1))
    cases.append(("missing section", {"bench": "serving"}, 1))
    cases.append(("missing int8", {"quantized": {}}, 1))

    failed = []
    for name, bench, want in cases:
        got = 1 if check(bench, 0.99, 0.3, "scalar", None) else 0
        if got != want:
            failed.append(f"{name}: gate returned {got}, wanted {want}")
    # Throughput is only gated when a floor is passed explicitly.
    if check(variant(throughput_vs_fp32=0.5), 0.99, 0.3, "scalar", None):
        failed.append("throughput gated without an explicit floor")
    if not check(variant(throughput_vs_fp32=0.5), 0.99, 0.3, "scalar", 1.0):
        failed.append("throughput floor not enforced when requested")
    # End to end through a real temp file.
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(good, f)
        path = f.name
    ns = argparse.Namespace(json=path, min_agreement=0.99,
                            max_bytes_ratio=0.3, expect_kernel="scalar",
                            min_throughput_ratio=None)
    if run_gate(ns) != 0:
        failed.append("end-to-end run on known-good JSON failed")

    if failed:
        for f in failed:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test: {len(cases) + 3} cases OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="BENCH_serving.json to gate")
    parser.add_argument("--min_agreement", type=float, default=0.99)
    parser.add_argument("--max_bytes_ratio", type=float, default=0.3)
    parser.add_argument("--expect_kernel", default="scalar")
    parser.add_argument("--min_throughput_ratio", type=float, default=None)
    parser.add_argument("--self-test", action="store_true",
                        dest="self_test")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.json:
        parser.error("--json is required unless --self-test")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
