#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace came::tensor {
namespace {

Tensor RandomTensor(Shape shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal());
  }
  return t;
}

TEST(BroadcastTest, ShapeRules) {
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 1}, {1, 4}), (Shape{2, 4}));
  EXPECT_EQ(BroadcastShape({1}, {5, 5}), (Shape{5, 5}));
  EXPECT_DEATH(BroadcastShape({2, 3}, {2, 4}), "broadcast");
}

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(BroadcastTest, MulColumnBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {2, 3});
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.at({0, 2}), 6.0f);
  EXPECT_EQ(c.at({1, 0}), 12.0f);
}

TEST(BroadcastTest, ScalarBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(10.0f);
  Tensor c = Sub(a, s);
  EXPECT_EQ(c.at({1, 1}), -6.0f);
}

TEST(ReduceToShapeTest, InvertsBroadcast) {
  Tensor g = Tensor::Full({2, 3}, 1.0f);
  Tensor r = ReduceToShape(g, {3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r.data()[0], 2.0f);
  Tensor r2 = ReduceToShape(g, {2, 1});
  EXPECT_EQ(r2.at({0, 0}), 3.0f);
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(MatMulTest, TransposeFlagsAgreeWithExplicitTranspose) {
  Rng rng(1);
  Tensor a = RandomTensor({4, 3}, &rng);
  Tensor b = RandomTensor({4, 5}, &rng);
  Tensor c1 = MatMul(a, b, /*trans_a=*/true, false);
  Tensor c2 = MatMul(Transpose2D(a), b);
  for (int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5);
  }
  Tensor d = RandomTensor({5, 4}, &rng);
  Tensor e1 = MatMul(a, d, true, /*trans_b=*/true);
  Tensor e2 = MatMul(Transpose2D(a), Transpose2D(d));
  for (int64_t i = 0; i < e1.numel(); ++i) {
    EXPECT_NEAR(e1.data()[i], e2.data()[i], 1e-5);
  }
}

TEST(MatMulTest, ShapeMismatchDies) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dim");
}

TEST(BatchMatMulTest, MatchesPerSliceMatMul) {
  Rng rng(2);
  Tensor a = RandomTensor({3, 2, 4}, &rng);
  Tensor b = RandomTensor({3, 4, 5}, &rng);
  Tensor c = BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 5}));
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor as = SliceAlong(a, 0, bi, 1).Reshape({2, 4});
    Tensor bs = SliceAlong(b, 0, bi, 1).Reshape({4, 5});
    Tensor cs = MatMul(as, bs);
    for (int64_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(c.data()[bi * 10 + i], cs.data()[i], 1e-5);
    }
  }
}

TEST(BatchMatMulTest, TransposeFlags) {
  Rng rng(3);
  Tensor a = RandomTensor({2, 4, 3}, &rng);
  Tensor b = RandomTensor({2, 4, 5}, &rng);
  Tensor c1 = BatchMatMul(a, b, /*trans_a=*/true, false);
  Tensor c2 = BatchMatMul(BatchTranspose(a), b);
  for (int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5);
  }
}

TEST(TransposeTest, TwoD) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({2, 1}), 6.0f);
}

TEST(SoftmaxTest, RowsSumToOneLastDim) {
  Rng rng(4);
  Tensor a = RandomTensor({5, 7}, &rng);
  Tensor s = SoftmaxAlong(a, 1);
  for (int64_t r = 0; r < 5; ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < 7; ++c) acc += s.at({r, c});
    EXPECT_NEAR(acc, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, Dim1Of3DSumsToOne) {
  Rng rng(5);
  Tensor a = RandomTensor({2, 4, 3}, &rng);
  Tensor s = SoftmaxAlong(a, 1);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t c = 0; c < 3; ++c) {
      double acc = 0.0;
      for (int64_t r = 0; r < 4; ++r) acc += s.at({b, r, c});
      EXPECT_NEAR(acc, 1.0, 1e-5);
    }
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = SoftmaxAlong(a, 1);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(s.data()[i], 1.0f / 3, 1e-5);
}

TEST(ReductionTest, SumAlongKeepdim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = SumAlong(a, 0, true);
  EXPECT_EQ(s0.shape(), (Shape{1, 3}));
  EXPECT_EQ(s0.at({0, 1}), 7.0f);
  Tensor s1 = SumAlong(a, 1, false);
  EXPECT_EQ(s1.shape(), (Shape{2}));
  EXPECT_EQ(s1.data()[1], 15.0f);
}

TEST(ReductionTest, MaxAlong) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 3, 4, 5, 6});
  Tensor m = MaxAlong(a, 1, false);
  EXPECT_EQ(m.data()[0], 9.0f);
  EXPECT_EQ(m.data()[1], 6.0f);
}

TEST(ReductionTest, SumAllAndMaxAbs) {
  Tensor a = Tensor::FromVector({4}, {1, -2, 3, -4});
  EXPECT_EQ(SumAllScalar(a), -2.0f);
  EXPECT_EQ(MaxAbs(a), 4.0f);
}

TEST(ConcatTest, AlongDim1) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 8});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.at({0, 2}), 9.0f);
  EXPECT_EQ(c.at({1, 2}), 8.0f);
}

TEST(ConcatTest, AlongDim0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.at({2, 1}), 6.0f);
}

TEST(SliceTest, InvertsConcat) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceAlong(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_EQ(s.at({1, 1}), 6.0f);
}

TEST(GatherScatterTest, GatherRows) {
  Tensor m = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(m, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_EQ(g.at({0, 0}), 5.0f);
  EXPECT_EQ(g.at({1, 1}), 2.0f);
  EXPECT_EQ(g.at({2, 1}), 6.0f);
}

TEST(GatherScatterTest, ScatterAddAccumulatesDuplicates) {
  Tensor src = Tensor::FromVector({3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor out = ScatterAddRows(src, {0, 1, 0}, 2);
  EXPECT_EQ(out.at({0, 0}), 4.0f);  // rows 0 and 2 both land on 0
  EXPECT_EQ(out.at({1, 0}), 2.0f);
}

TEST(GatherScatterTest, ScatterIsAdjointOfGather) {
  // <Gather(M, idx), S> == <M, Scatter(S, idx)> for random data.
  Rng rng(6);
  Tensor m = RandomTensor({5, 3}, &rng);
  Tensor s = RandomTensor({4, 3}, &rng);
  std::vector<int64_t> idx = {1, 3, 3, 0};
  Tensor g = GatherRows(m, idx);
  Tensor sc = ScatterAddRows(s, idx, 5);
  EXPECT_NEAR(SumAllScalar(Mul(g, s)), SumAllScalar(Mul(m, sc)), 1e-4);
}

TEST(WhereTest, SelectsByMask) {
  Tensor mask = Tensor::FromVector({4}, {1, 0, 1, 0});
  Tensor a = Tensor::Full({4}, 1.0f);
  Tensor b = Tensor::Full({4}, 2.0f);
  Tensor w = Where(mask, a, b);
  EXPECT_EQ(w.data()[0], 1.0f);
  EXPECT_EQ(w.data()[1], 2.0f);
  EXPECT_EQ(w.data()[2], 1.0f);
  EXPECT_EQ(w.data()[3], 2.0f);
}

TEST(UnaryTest, SigmoidStableAtExtremes) {
  Tensor a = Tensor::FromVector({2}, {100.0f, -100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.data()[0], 1.0f, 1e-6);
  EXPECT_NEAR(s.data()[1], 0.0f, 1e-6);
}

TEST(UnaryTest, BasicIdentities) {
  Tensor a = Tensor::FromVector({3}, {-1, 0, 2});
  EXPECT_EQ(Relu(a).data()[0], 0.0f);
  EXPECT_EQ(Relu(a).data()[2], 2.0f);
  EXPECT_EQ(Neg(a).data()[2], -2.0f);
  EXPECT_EQ(Square(a).data()[2], 4.0f);
  EXPECT_EQ(Abs(a).data()[0], 1.0f);
  EXPECT_NEAR(Exp(Log(Tensor::Full({1}, 3.0f))).data()[0], 3.0f, 1e-5);
}

TEST(Im2ColTest, IdentityKernelNoPad) {
  // 1x1 kernel with no padding: columns equal the image pixels.
  Tensor img = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor cols = Im2Col(img, 1, 1, 0);
  EXPECT_EQ(cols.shape(), (Shape{1, 1, 4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(cols.data()[i], img.data()[i]);
}

TEST(Im2ColTest, PaddedShapes) {
  Tensor img(Shape{2, 3, 5, 4});
  Tensor cols = Im2Col(img, 3, 3, 1);
  EXPECT_EQ(cols.shape(), (Shape{2, 27, 20}));
}

TEST(Im2ColTest, Col2ImIsAdjoint) {
  // <Im2Col(x), c> == <x, Col2Im(c)>.
  Rng rng(7);
  Tensor x = RandomTensor({2, 2, 4, 3}, &rng);
  Tensor cx = Im2Col(x, 3, 3, 1);
  Tensor c = RandomTensor(cx.shape(), &rng);
  Tensor xc = Col2Im(c, 2, 2, 4, 3, 3, 3, 1);
  EXPECT_NEAR(SumAllScalar(Mul(cx, c)), SumAllScalar(Mul(x, xc)), 1e-3);
}

TEST(AxpyTest, AccumulatesInPlace) {
  Tensor x = Tensor::Full({3}, 2.0f);
  Tensor y = Tensor::Full({3}, 1.0f);
  Axpy(0.5f, x, &y);
  EXPECT_EQ(y.data()[0], 2.0f);
}

}  // namespace
}  // namespace came::tensor
