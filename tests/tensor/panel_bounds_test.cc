// PanelBoundTable: the soundness contract behind exact panel-skip
// pruning. For every dtype's serving encoding, every block-aligned or
// ragged row range, and every query, the Cauchy–Schwarz combination
//   ||q|| * MaxNorm(range) + MaxBias(range)
// must dominate the actual score of every row in the range — otherwise
// the ScoreServer could skip a panel holding a true top-K candidate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "tensor/panel_bounds.h"
#include "tensor/qgemm.h"

namespace came::tensor {
namespace {

constexpr int64_t kRows = 203;  // ragged: 3 full 64-row blocks + 11
constexpr int64_t kDim = 24;

struct TestTable {
  std::vector<float> rows;
  std::vector<float> bias;
};

TestTable MakeTable(uint64_t seed) {
  Rng rng(seed);
  TestTable t;
  t.rows.resize(static_cast<size_t>(kRows * kDim));
  t.bias.resize(static_cast<size_t>(kRows));
  for (int64_t i = 0; i < kRows; ++i) {
    // Mix of magnitudes so blocks differ: some rows 100x larger.
    const float scale = (i % 17 == 0) ? 10.0f : 0.1f;
    for (int64_t j = 0; j < kDim; ++j) {
      t.rows[static_cast<size_t>(i * kDim + j)] =
          scale * static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    t.bias[static_cast<size_t>(i)] =
        static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return t;
}

std::vector<float> MakeQuery(uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(static_cast<size_t>(kDim));
  for (float& v : q) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return q;
}

double Dot(const float* a, const float* b, int64_t d) {
  double s = 0.0;
  for (int64_t j = 0; j < d; ++j) s += static_cast<double>(a[j]) * b[j];
  return s;
}

// Checks the bound over every row of every [begin, end) range in a small
// grid, against exact double-precision scores of the *decoded* rows.
void CheckDominates(const PanelBoundTable& bounds,
                    const std::vector<float>& decoded_rows,
                    const std::vector<float>& bias, uint64_t query_seed) {
  const std::vector<float> q = MakeQuery(query_seed);
  const double qnorm = std::sqrt(Dot(q.data(), q.data(), kDim));
  for (int64_t begin : {int64_t{0}, int64_t{37}, int64_t{64}, int64_t{128},
                        int64_t{192}}) {
    for (int64_t end : {begin + 1, begin + 29, kRows}) {
      if (end <= begin || end > kRows) continue;
      const double bound =
          qnorm * bounds.MaxNorm(begin, end) + bounds.MaxBias(begin, end);
      for (int64_t r = begin; r < end; ++r) {
        const double score =
            Dot(q.data(), decoded_rows.data() + r * kDim, kDim) +
            (bias.empty() ? 0.0 : bias[static_cast<size_t>(r)]);
        EXPECT_GE(bound, score) << "range [" << begin << "," << end
                                << ") row " << r;
      }
    }
  }
}

TEST(PanelBoundTableTest, EmptyTableNeverPrunes) {
  const PanelBoundTable bounds;
  EXPECT_TRUE(bounds.empty());
  EXPECT_EQ(bounds.MaxNorm(0, 10), std::numeric_limits<float>::infinity());
  EXPECT_EQ(bounds.MaxBias(0, 10), std::numeric_limits<float>::infinity());
}

TEST(PanelBoundTableTest, Fp32BoundDominatesEveryScore) {
  const TestTable t = MakeTable(0xF32);
  PanelBoundTable bounds(kRows, kDefaultBoundBlockRows);
  AccountRowsFp32(&bounds, t.rows.data(), t.bias.data(), 0, kRows, kDim);
  EXPECT_EQ(bounds.num_blocks(), (kRows + 63) / 64);
  for (uint64_t qs : {1u, 2u, 3u}) CheckDominates(bounds, t.rows, t.bias, qs);
}

TEST(PanelBoundTableTest, Int8BoundDominatesDequantizedScores) {
  const TestTable t = MakeTable(0x18);
  std::vector<int8_t> codes(static_cast<size_t>(kRows * kDim));
  std::vector<float> scales(static_cast<size_t>(kRows));
  ASSERT_TRUE(qgemm::QuantizeRowsInt8(t.rows.data(), kRows, kDim,
                                      codes.data(), scales.data())
                  .ok());
  PanelBoundTable bounds(kRows, kDefaultBoundBlockRows);
  AccountRowsInt8(&bounds, codes.data(), scales.data(), t.bias.data(), 0,
                  kRows, kDim);
  // The int8 path scores *dequantized* codes, so the bound must cover
  // those — not the original fp32 rows.
  std::vector<float> deq(static_cast<size_t>(kRows * kDim));
  for (int64_t i = 0; i < kRows; ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      deq[static_cast<size_t>(i * kDim + j)] = qgemm::DequantizeInt8(
          codes[static_cast<size_t>(i * kDim + j)],
          scales[static_cast<size_t>(i)]);
    }
  }
  for (uint64_t qs : {4u, 5u, 6u}) CheckDominates(bounds, deq, t.bias, qs);
}

TEST(PanelBoundTableTest, Bf16BoundDominatesDecodedScores) {
  const TestTable t = MakeTable(0xBF16);
  std::vector<uint16_t> enc(static_cast<size_t>(kRows * kDim));
  ASSERT_TRUE(
      qgemm::EncodeRowsBf16(t.rows.data(), kRows, kDim, enc.data()).ok());
  PanelBoundTable bounds(kRows, kDefaultBoundBlockRows);
  AccountRowsBf16(&bounds, enc.data(), t.bias.data(), 0, kRows, kDim);
  std::vector<float> dec(static_cast<size_t>(kRows * kDim));
  qgemm::DecodeBf16(enc.data(), kRows * kDim, dec.data());
  for (uint64_t qs : {7u, 8u, 9u}) CheckDominates(bounds, dec, t.bias, qs);
}

TEST(PanelBoundTableTest, StreamedRangesMatchOneShotAccounting) {
  // ShardStore streams disjoint row ranges through first_row offsets;
  // the result must equal accounting the whole table at once.
  const TestTable t = MakeTable(0x5EED);
  PanelBoundTable whole(kRows, kDefaultBoundBlockRows);
  AccountRowsFp32(&whole, t.rows.data(), t.bias.data(), 0, kRows, kDim);
  PanelBoundTable streamed(kRows, kDefaultBoundBlockRows);
  for (int64_t first = 0; first < kRows; first += 37) {
    const int64_t n = std::min<int64_t>(37, kRows - first);
    AccountRowsFp32(&streamed, t.rows.data() + first * kDim,
                    t.bias.data() + first, first, n, kDim);
  }
  EXPECT_EQ(whole, streamed);
}

TEST(PanelBoundTableTest, NanRowWidensItsBlockToInfinity) {
  PanelBoundTable bounds(128, 64);
  bounds.AccountRow(3, 1.0f, 0.5f);
  bounds.AccountRow(70, std::numeric_limits<float>::quiet_NaN(), 0.0f);
  bounds.AccountRow(71, 2.0f,
                    std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(bounds.MaxNorm(0, 64), 1.0f);
  EXPECT_EQ(bounds.MaxBias(0, 64), 0.5f);
  EXPECT_EQ(bounds.MaxNorm(64, 128), std::numeric_limits<float>::infinity());
  EXPECT_EQ(bounds.MaxBias(64, 128), std::numeric_limits<float>::infinity());
  // Cross-block query sees the widened block.
  EXPECT_EQ(bounds.MaxNorm(0, 128), std::numeric_limits<float>::infinity());
}

TEST(PanelBoundTableTest, EncodeDecodeRoundTrips) {
  const TestTable t = MakeTable(0xE2C);
  PanelBoundTable bounds(kRows, kDefaultBoundBlockRows);
  AccountRowsFp32(&bounds, t.rows.data(), t.bias.data(), 0, kRows, kDim);
  const std::string payload = bounds.Encode();
  const Result<PanelBoundTable> decoded =
      PanelBoundTable::Decode(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), bounds);
}

TEST(PanelBoundTableTest, DecodeRejectsTruncatedAndCorruptPayloads) {
  PanelBoundTable bounds(100, 64);
  bounds.AccountRow(0, 1.0f, 0.0f);
  const std::string payload = bounds.Encode();
  for (size_t cut : {size_t{0}, size_t{7}, payload.size() - 1}) {
    EXPECT_FALSE(PanelBoundTable::Decode(payload.data(), cut).ok())
        << "truncated to " << cut;
  }
  // num_blocks inflated past the payload: must refuse, not overread.
  std::string bloated = payload;
  bloated[16] = static_cast<char>(0xFF);
  EXPECT_FALSE(PanelBoundTable::Decode(bloated.data(), bloated.size()).ok());
}

}  // namespace
}  // namespace came::tensor
