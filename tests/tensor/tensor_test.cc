#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace came::tensor {
namespace {

TEST(TensorTest, ZeroInitialised) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, SetWritesThrough) {
  Tensor t(Shape{2, 2});
  t.set({1, 0}, 5.0f);
  EXPECT_EQ(t.at({1, 0}), 5.0f);
  EXPECT_EQ(t.data()[2], 5.0f);
}

TEST(TensorTest, CopyAliasesBuffer) {
  Tensor a = Tensor::Full(Shape{3}, 1.0f);
  Tensor b = a;  // NOLINT: aliasing is the documented behaviour
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 9.0f);
  EXPECT_TRUE(a.SharesBufferWith(b));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Full(Shape{3}, 1.0f);
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
  EXPECT_FALSE(a.SharesBufferWith(b));
}

TEST(TensorTest, ReshapeSharesBufferAndChecksNumel) {
  Tensor a = Tensor::Arange(6);
  Tensor b = a.Reshape(Shape{2, 3});
  EXPECT_TRUE(a.SharesBufferWith(b));
  EXPECT_EQ(b.at({1, 2}), 5.0f);
  EXPECT_DEATH(a.Reshape(Shape{7}), "reshape");
}

TEST(TensorTest, ArangeAndScalar) {
  Tensor a = Tensor::Arange(4);
  EXPECT_EQ(a.data()[3], 3.0f);
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.data()[0], 2.5f);
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, OutOfBoundsAtDies) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.at({2, 0}), "CHECK");
}

TEST(TensorTest, ShapeToStringFormat) {
  EXPECT_EQ(ShapeToString(Shape{2, 3}), "[2, 3]");
  EXPECT_EQ(NumElements(Shape{2, 3, 4}), 24);
}

}  // namespace
}  // namespace came::tensor
